/**
 * @file
 * Event-kernel throughput bench.
 *
 * Measures host-side simulation speed (kernel events per second), not
 * simulated behaviour: each model x workload pair is simulated
 * directly --reps times (no result cache, no trace tier) and the best
 * repetition is reported, plus a synthetic "kernel-chain" row that
 * exercises nothing but EventQueue::scheduleAfter/run to isolate the
 * kernel's own overhead from model code.
 *
 * The --par-domains axis re-runs every pair under the domain-parallel
 * engine and reports the scaling curve; simulated results are
 * bit-identical across the axis (that is tested elsewhere — here only
 * the host clock changes). With --par-spec-window > 0 the MC domains
 * speculate past their conservative bounds and the misspec/rollback
 * columns record how often that bet failed.
 *
 * Everything here is wall-clock derived and therefore
 * non-deterministic; the table goes to stdout and the artifact
 * (default BENCH_kernel.json) is a perf record, unlike the figure
 * benches whose stdout must be byte-stable.
 *
 *   --ops N             operations per thread (default 400)
 *   --reps N            repetitions per pair, best-of (default 5)
 *   --workload W        restrict to one workload (default: cceh,dash-lh,queue)
 *   --par-domains LIST  comma list of parallelism degrees (default 1,2,4)
 *   --par-spec-window T speculative window for parallel rows (default 0)
 *   --json PATH         artifact path (default BENCH_kernel.json; "" = none)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

using namespace asap;

namespace
{

double
nowNs()
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Row
{
    std::string workload;
    std::string model;
    unsigned parDomains = 1;
    std::uint64_t events = 0;
    std::uint64_t misspec = 0;
    std::uint64_t rollbacks = 0;
    double bestNs = 0.0;

    double
    eventsPerSec() const
    {
        return bestNs > 0 ? events * 1e9 / bestNs : 0.0;
    }
};

/** Raw kernel overhead: chains of self-rescheduling no-op events. */
Row
kernelChainRow(unsigned reps)
{
    constexpr unsigned chains = 64;
    constexpr std::uint64_t eventsPerChain = 20000;
    Row row;
    row.workload = "kernel-chain";
    row.model = "-";
    for (unsigned r = 0; r < reps; ++r) {
        EventQueue eq;
        struct Chain
        {
            EventQueue *eq;
            std::uint64_t left;
            void
            step()
            {
                if (--left == 0)
                    return;
                eq->scheduleAfter(1, [this]() { step(); });
            }
        };
        std::vector<Chain> cs(chains);
        for (unsigned c = 0; c < chains; ++c) {
            cs[c] = Chain{&eq, eventsPerChain};
            // Stagger starts so the heap holds all chains at once.
            eq.scheduleAfter(1 + c, [&cs, c]() { cs[c].step(); });
        }
        const double t0 = nowNs();
        eq.run();
        const double ns = nowNs() - t0;
        if (row.bestNs == 0.0 || ns < row.bestNs)
            row.bestNs = ns;
        row.events = eq.executed();
    }
    return row;
}

std::vector<unsigned>
parseParList(const char *arg)
{
    std::vector<unsigned> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 0);
        if (end == p || v == 0)
            return {};
        out.push_back(static_cast<unsigned>(v));
        p = (*end == ',') ? end + 1 : end;
        if (*end != '\0' && *end != ',')
            return {};
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    unsigned ops = 400;
    unsigned reps = 5;
    std::string only;
    std::string jsonPath = "BENCH_kernel.json";
    std::vector<unsigned> parList = {1, 2, 4};
    Tick specWindow = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
            ops = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--workload") && i + 1 < argc) {
            only = argv[++i];
        } else if (!std::strcmp(argv[i], "--par-domains") &&
                   i + 1 < argc) {
            parList = parseParList(argv[++i]);
            if (parList.empty()) {
                std::fprintf(stderr,
                             "error: --par-domains wants a comma list "
                             "of positive integers\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--par-spec-window") &&
                   i + 1 < argc) {
            specWindow = std::strtoull(argv[++i], nullptr, 0);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--ops N] [--reps N] "
                         "[--workload W] [--par-domains LIST] "
                         "[--par-spec-window T] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps == 0)
        reps = 1;

    const std::vector<std::pair<ModelKind, PersistencyModel>> models = {
        {ModelKind::Baseline, PersistencyModel::Epoch},
        {ModelKind::Hops, PersistencyModel::Release},
        {ModelKind::Asap, PersistencyModel::Release},
        {ModelKind::Eadr, PersistencyModel::Release},
    };
    std::vector<std::string> workloads;
    if (!only.empty())
        workloads.push_back(only);
    else
        workloads = {"cceh", "dash-lh", "queue"};

    std::vector<Row> rows;
    for (const std::string &w : workloads) {
        WorkloadParams p;
        p.opsPerThread = ops;
        const TraceSet trace = buildTrace(w, 4, p);
        for (const auto &[kind, pm] : models) {
            for (unsigned par : parList) {
                Row row;
                row.workload = w;
                row.model = toString(kind);
                row.parDomains = par;
                for (unsigned r = 0; r < reps; ++r) {
                    SimConfig cfg;
                    cfg.model = kind;
                    cfg.persistency = pm;
                    // Four MC domains so the axis has room to scale.
                    cfg.numMCs = 4;
                    cfg.parDomains = par;
                    cfg.parSpecWindow = par > 1 ? specWindow : 0;
                    System sys(cfg);
                    sys.loadTrace(trace);
                    const double t0 = nowNs();
                    sys.run();
                    const double ns = nowNs() - t0;
                    if (row.bestNs == 0.0 || ns < row.bestNs)
                        row.bestNs = ns;
                    row.events = sys.eventQueue().executed();
                    row.misspec = sys.eventQueue().misspeculations();
                    row.rollbacks = sys.eventQueue().rollbacks();
                }
                rows.push_back(row);
            }
        }
    }
    rows.push_back(kernelChainRow(reps));

    std::printf("=== Event-kernel throughput (best of %u reps, "
                "--ops %u, spec window %llu) ===\n", reps, ops,
                static_cast<unsigned long long>(specWindow));
    std::printf("%-12s %-9s %4s %10s %10s %9s %8s %8s\n", "workload",
                "model", "par", "events", "hostMs", "Mev/s", "misspec",
                "rollback");
    for (const Row &r : rows) {
        std::printf("%-12s %-9s %4u %10llu %10.2f %9.2f %8llu %8llu\n",
                    r.workload.c_str(), r.model.c_str(), r.parDomains,
                    static_cast<unsigned long long>(r.events),
                    r.bestNs / 1e6, r.eventsPerSec() / 1e6,
                    static_cast<unsigned long long>(r.misspec),
                    static_cast<unsigned long long>(r.rollbacks));
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        os << "{ \"bench\": \"kernel\", \"ops\": " << ops
           << ", \"reps\": " << reps << ", \"specWindow\": "
           << specWindow << ", \"rows\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            os << "  { \"workload\": \"" << r.workload
               << "\", \"model\": \"" << r.model
               << "\", \"parDomains\": " << r.parDomains
               << ", \"events\": " << r.events
               << ", \"misspec\": " << r.misspec
               << ", \"rollbacks\": " << r.rollbacks
               << ", \"bestNs\": " << static_cast<std::uint64_t>(r.bestNs)
               << ", \"eventsPerSec\": "
               << static_cast<std::uint64_t>(r.eventsPerSec()) << " }"
               << (i + 1 < rows.size() ? "," : "") << '\n';
        }
        os << "] }\n";
    }
    return 0;
}
