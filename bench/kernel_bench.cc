/**
 * @file
 * Event-kernel throughput bench.
 *
 * Measures host-side simulation speed (kernel events per second), not
 * simulated behaviour: each model x workload pair is simulated
 * directly --reps times (no result cache, no trace tier) and the best
 * repetition is reported, plus a synthetic "kernel-chain" row that
 * exercises nothing but EventQueue::scheduleAfter/run to isolate the
 * kernel's own overhead from model code.
 *
 * Everything here is wall-clock derived and therefore
 * non-deterministic; the table goes to stdout and the artifact
 * (default BENCH_kernel.json) is a perf record, unlike the figure
 * benches whose stdout must be byte-stable.
 *
 *   --ops N        operations per thread (default 400)
 *   --reps N       repetitions per pair, best-of (default 5)
 *   --workload W   restrict to one workload (default: cceh,dash-lh,queue)
 *   --json PATH    artifact path (default BENCH_kernel.json; "" = none)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

using namespace asap;

namespace
{

double
nowNs()
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Row
{
    std::string workload;
    std::string model;
    std::uint64_t events = 0;
    double bestNs = 0.0;

    double
    eventsPerSec() const
    {
        return bestNs > 0 ? events * 1e9 / bestNs : 0.0;
    }
};

/** Raw kernel overhead: chains of self-rescheduling no-op events. */
Row
kernelChainRow(unsigned reps)
{
    constexpr unsigned chains = 64;
    constexpr std::uint64_t eventsPerChain = 20000;
    Row row;
    row.workload = "kernel-chain";
    row.model = "-";
    for (unsigned r = 0; r < reps; ++r) {
        EventQueue eq;
        struct Chain
        {
            EventQueue *eq;
            std::uint64_t left;
            void
            step()
            {
                if (--left == 0)
                    return;
                eq->scheduleAfter(1, [this]() { step(); });
            }
        };
        std::vector<Chain> cs(chains);
        for (unsigned c = 0; c < chains; ++c) {
            cs[c] = Chain{&eq, eventsPerChain};
            // Stagger starts so the heap holds all chains at once.
            eq.scheduleAfter(1 + c, [&cs, c]() { cs[c].step(); });
        }
        const double t0 = nowNs();
        eq.run();
        const double ns = nowNs() - t0;
        if (row.bestNs == 0.0 || ns < row.bestNs)
            row.bestNs = ns;
        row.events = eq.executed();
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    unsigned ops = 400;
    unsigned reps = 5;
    std::string only;
    std::string jsonPath = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
            ops = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--workload") && i + 1 < argc) {
            only = argv[++i];
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--ops N] [--reps N] "
                         "[--workload W] [--json PATH]\n", argv[0]);
            return 2;
        }
    }
    if (reps == 0)
        reps = 1;

    const std::vector<std::pair<ModelKind, PersistencyModel>> models = {
        {ModelKind::Baseline, PersistencyModel::Epoch},
        {ModelKind::Hops, PersistencyModel::Release},
        {ModelKind::Asap, PersistencyModel::Release},
        {ModelKind::Eadr, PersistencyModel::Release},
    };
    std::vector<std::string> workloads;
    if (!only.empty())
        workloads.push_back(only);
    else
        workloads = {"cceh", "dash-lh", "queue"};

    std::vector<Row> rows;
    for (const std::string &w : workloads) {
        WorkloadParams p;
        p.opsPerThread = ops;
        const TraceSet trace = buildTrace(w, 4, p);
        for (const auto &[kind, pm] : models) {
            Row row;
            row.workload = w;
            row.model = toString(kind);
            for (unsigned r = 0; r < reps; ++r) {
                SimConfig cfg;
                cfg.model = kind;
                cfg.persistency = pm;
                System sys(cfg);
                sys.loadTrace(trace);
                const double t0 = nowNs();
                sys.run();
                const double ns = nowNs() - t0;
                if (row.bestNs == 0.0 || ns < row.bestNs)
                    row.bestNs = ns;
                row.events = sys.eventQueue().executed();
            }
            rows.push_back(row);
        }
    }
    rows.push_back(kernelChainRow(reps));

    std::printf("=== Event-kernel throughput (best of %u reps, "
                "--ops %u) ===\n", reps, ops);
    std::printf("%-12s %-9s %10s %10s %9s\n", "workload", "model",
                "events", "hostMs", "Mev/s");
    for (const Row &r : rows) {
        std::printf("%-12s %-9s %10llu %10.2f %9.2f\n",
                    r.workload.c_str(), r.model.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.bestNs / 1e6, r.eventsPerSec() / 1e6);
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        os << "{ \"bench\": \"kernel\", \"ops\": " << ops
           << ", \"reps\": " << reps << ", \"rows\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            os << "  { \"workload\": \"" << r.workload
               << "\", \"model\": \"" << r.model
               << "\", \"events\": " << r.events
               << ", \"bestNs\": " << static_cast<std::uint64_t>(r.bestNs)
               << ", \"eventsPerSec\": "
               << static_cast<std::uint64_t>(r.eventsPerSec()) << " }"
               << (i + 1 < rows.size() ? "," : "") << '\n';
        }
        os << "] }\n";
    }
    return 0;
}
