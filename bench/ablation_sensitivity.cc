/**
 * @file
 * Ablation / sensitivity sweeps for ASAP's design parameters:
 *
 *  - Recovery-table size: the paper argues a small RT suffices
 *    because NACKs degrade gracefully to conservative flushing
 *    (Section V-D / Figure 12 discussion).
 *  - Persist-buffer size: Figure 11's "similar performance with
 *    smaller PBs" expectation.
 *  - NVM write bandwidth (banks per controller): Section I's claim
 *    that ASAP "offers greater performance benefit with increasing
 *    NVM write bandwidth".
 */

#include "bench/bench_util.hh"

using namespace asap;

namespace
{

RunResult
runWith(const std::string &w, ModelKind kind, const SimConfig &cfg,
        const WorkloadParams &p)
{
    SimConfig c = cfg;
    c.model = kind;
    return runExperiment(w, c, p);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::string w =
        args.workload.empty() ? "p-art" : args.workload;
    const WorkloadParams p = args.params();

    std::printf("=== Ablation: recovery-table entries (ASAP, %s) ===\n",
                w.c_str());
    std::printf("%8s %10s %10s %10s\n", "rtSize", "cycles",
                "nacks", "rtMax");
    for (unsigned rt : {2u, 4u, 8u, 16u, 32u, 64u}) {
        SimConfig cfg;
        cfg.rtEntries = rt;
        RunResult r = runWith(w, ModelKind::Asap, cfg, p);
        std::printf("%8u %10llu %10llu %10llu\n", rt,
                    static_cast<unsigned long long>(r.runTicks),
                    static_cast<unsigned long long>(r.nacks),
                    static_cast<unsigned long long>(r.rtMaxOccupancy));
    }

    std::printf("\n=== Ablation: persist-buffer entries (%s) ===\n",
                w.c_str());
    std::printf("%8s %12s %12s\n", "pbSize", "ASAP", "HOPS");
    for (unsigned pb : {8u, 16u, 32u, 64u}) {
        SimConfig cfg;
        cfg.pbEntries = pb;
        RunResult a = runWith(w, ModelKind::Asap, cfg, p);
        RunResult h = runWith(w, ModelKind::Hops, cfg, p);
        std::printf("%8u %12llu %12llu\n", pb,
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks));
    }

    std::printf("\n=== Sensitivity: NVM write bandwidth "
                "(256B burst microbenchmark) ===\n");
    std::printf("%8s %12s %12s %10s\n", "banks", "ASAP", "HOPS",
                "ASAP/HOPS");
    for (unsigned banks : {2u, 4u, 8u, 16u, 24u, 32u}) {
        SimConfig cfg;
        cfg.nvmBanks = banks;
        RunResult a = runWith("bandwidth", ModelKind::Asap, cfg, p);
        RunResult h = runWith("bandwidth", ModelKind::Hops, cfg, p);
        std::printf("%8u %12llu %12llu %9.2fx\n", banks,
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks),
                    static_cast<double>(h.runTicks) /
                        static_cast<double>(a.runTicks));
    }
    std::printf("(paper: ASAP's advantage grows with NVM write "
                "bandwidth)\n");

    std::printf("\n=== Sensitivity: memory-controller count "
                "(256B burst microbenchmark, fixed total "
                "bandwidth) ===\n");
    std::printf("%8s %12s %12s %10s\n", "MCs", "ASAP", "HOPS",
                "HOPS/ASAP");
    for (unsigned mcs : {1u, 2u, 4u}) {
        SimConfig cfg;
        cfg.numMCs = mcs;
        cfg.nvmBanks = 48 / mcs; // fixed aggregate write bandwidth
        RunResult a = runWith("bandwidth", ModelKind::Asap, cfg, p);
        RunResult h = runWith("bandwidth", ModelKind::Hops, cfg, p);
        std::printf("%8u %12llu %12llu %9.2fx\n", mcs,
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks),
                    static_cast<double>(h.runTicks) /
                        static_cast<double>(a.runTicks));
    }
    std::printf("(Section III: conservative designs pay for ordering "
                "across controllers; ASAP overlaps them)\n");

    std::printf("\n=== Ablation: cross-thread dependency resolution "
                "(lock ping-pong) ===\n");
    std::printf("%-20s %12s %12s %10s\n", "mechanism", "cycles",
                "per-handoff", "vsHOPS");
    {
        SimConfig cfg;
        RunResult h = runWith("handoff", ModelKind::Hops, cfg, p);
        RunResult a = runWith("handoff", ModelKind::Asap, cfg, p);
        RunResult e = runWith("handoff", ModelKind::Eadr, cfg, p);
        const double handoffs = 4.0 * p.opsPerThread;
        std::printf("%-20s %12llu %12.0f %10s\n", "HOPS polling",
                    static_cast<unsigned long long>(h.runTicks),
                    h.runTicks / handoffs, "1.00");
        std::printf("%-20s %12llu %12.0f %9.2fx\n", "ASAP CDR",
                    static_cast<unsigned long long>(a.runTicks),
                    a.runTicks / handoffs,
                    static_cast<double>(h.runTicks) / a.runTicks);
        std::printf("%-20s %12llu %12.0f %9.2fx\n", "eADR (none)",
                    static_cast<unsigned long long>(e.runTicks),
                    e.runTicks / handoffs,
                    static_cast<double>(h.runTicks) / e.runTicks);
    }
    std::printf("(Section IV-E: direct CDR messages avoid the "
                "polling latency of HOPS's global register)\n");
    return 0;
}
