/**
 * @file
 * Ablation / sensitivity sweeps for ASAP's design parameters:
 *
 *  - Recovery-table size: the paper argues a small RT suffices
 *    because NACKs degrade gracefully to conservative flushing
 *    (Section V-D / Figure 12 discussion).
 *  - Persist-buffer size: Figure 11's "similar performance with
 *    smaller PBs" expectation.
 *  - NVM write bandwidth (banks per controller): Section I's claim
 *    that ASAP "offers greater performance benefit with increasing
 *    NVM write bandwidth".
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::string w =
        args.workload.empty() ? "p-art" : args.workload;
    const WorkloadParams p = args.params();

    // Every section's jobs go into one deduplicated parallel sweep;
    // the tables below read results back by index.
    JobSet set;
    auto addKind = [&](const std::string &name, ModelKind kind,
                       SimConfig cfg) {
        cfg.model = kind;
        return set.add(name, cfg, p);
    };

    const unsigned rtSizes[] = {2u, 4u, 8u, 16u, 32u, 64u};
    std::vector<std::size_t> rtIdx;
    for (unsigned rt : rtSizes) {
        SimConfig cfg = args.baseConfig();
        cfg.rtEntries = rt;
        rtIdx.push_back(addKind(w, ModelKind::Asap, cfg));
    }

    const unsigned pbSizes[] = {8u, 16u, 32u, 64u};
    std::vector<std::size_t> pbAsap, pbHops;
    for (unsigned pb : pbSizes) {
        SimConfig cfg = args.baseConfig();
        cfg.pbEntries = pb;
        pbAsap.push_back(addKind(w, ModelKind::Asap, cfg));
        pbHops.push_back(addKind(w, ModelKind::Hops, cfg));
    }

    const unsigned bankCounts[] = {2u, 4u, 8u, 16u, 24u, 32u};
    std::vector<std::size_t> bwAsap, bwHops;
    for (unsigned banks : bankCounts) {
        SimConfig cfg = args.baseConfig();
        cfg.nvmBanks = banks;
        bwAsap.push_back(addKind("bandwidth", ModelKind::Asap, cfg));
        bwHops.push_back(addKind("bandwidth", ModelKind::Hops, cfg));
    }

    const unsigned mcCounts[] = {1u, 2u, 4u};
    std::vector<std::size_t> mcAsap, mcHops;
    for (unsigned mcs : mcCounts) {
        SimConfig cfg = args.baseConfig();
        cfg.numMCs = mcs;
        cfg.nvmBanks = 48 / mcs; // fixed aggregate write bandwidth
        mcAsap.push_back(addKind("bandwidth", ModelKind::Asap, cfg));
        mcHops.push_back(addKind("bandwidth", ModelKind::Hops, cfg));
    }

    SimConfig defCfg = args.baseConfig();
    const std::size_t hoHops = addKind("handoff", ModelKind::Hops,
                                       defCfg);
    const std::size_t hoAsap = addKind("handoff", ModelKind::Asap,
                                       defCfg);
    const std::size_t hoEadr = addKind("handoff", ModelKind::Eadr,
                                       defCfg);

    if (maybeRunShard(args, set.jobs()))
        return 0;
    const SweepResult sr = runBenchJobs(args, set.jobs());

    std::printf("=== Ablation: recovery-table entries (ASAP, %s) ===\n",
                w.c_str());
    std::printf("%8s %10s %10s %10s\n", "rtSize", "cycles",
                "nacks", "rtMax");
    for (std::size_t i = 0; i < std::size(rtSizes); ++i) {
        const RunResult &r = sr.at(rtIdx[i]);
        std::printf("%8u %10llu %10llu %10llu\n", rtSizes[i],
                    static_cast<unsigned long long>(r.runTicks),
                    static_cast<unsigned long long>(r.nacks),
                    static_cast<unsigned long long>(r.rtMaxOccupancy));
    }

    std::printf("\n=== Ablation: persist-buffer entries (%s) ===\n",
                w.c_str());
    std::printf("%8s %12s %12s\n", "pbSize", "ASAP", "HOPS");
    for (std::size_t i = 0; i < std::size(pbSizes); ++i) {
        const RunResult &a = sr.at(pbAsap[i]);
        const RunResult &h = sr.at(pbHops[i]);
        std::printf("%8u %12llu %12llu\n", pbSizes[i],
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks));
    }

    std::printf("\n=== Sensitivity: NVM write bandwidth "
                "(256B burst microbenchmark) ===\n");
    std::printf("%8s %12s %12s %10s\n", "banks", "ASAP", "HOPS",
                "ASAP/HOPS");
    for (std::size_t i = 0; i < std::size(bankCounts); ++i) {
        const RunResult &a = sr.at(bwAsap[i]);
        const RunResult &h = sr.at(bwHops[i]);
        std::printf("%8u %12llu %12llu %9.2fx\n", bankCounts[i],
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks),
                    static_cast<double>(h.runTicks) /
                        static_cast<double>(a.runTicks));
    }
    std::printf("(paper: ASAP's advantage grows with NVM write "
                "bandwidth)\n");

    std::printf("\n=== Sensitivity: memory-controller count "
                "(256B burst microbenchmark, fixed total "
                "bandwidth) ===\n");
    std::printf("%8s %12s %12s %10s\n", "MCs", "ASAP", "HOPS",
                "HOPS/ASAP");
    for (std::size_t i = 0; i < std::size(mcCounts); ++i) {
        const RunResult &a = sr.at(mcAsap[i]);
        const RunResult &h = sr.at(mcHops[i]);
        std::printf("%8u %12llu %12llu %9.2fx\n", mcCounts[i],
                    static_cast<unsigned long long>(a.runTicks),
                    static_cast<unsigned long long>(h.runTicks),
                    static_cast<double>(h.runTicks) /
                        static_cast<double>(a.runTicks));
    }
    std::printf("(Section III: conservative designs pay for ordering "
                "across controllers; ASAP overlaps them)\n");

    std::printf("\n=== Ablation: cross-thread dependency resolution "
                "(lock ping-pong) ===\n");
    std::printf("%-20s %12s %12s %10s\n", "mechanism", "cycles",
                "per-handoff", "vsHOPS");
    {
        const RunResult &h = sr.at(hoHops);
        const RunResult &a = sr.at(hoAsap);
        const RunResult &e = sr.at(hoEadr);
        const double handoffs = 4.0 * p.opsPerThread;
        std::printf("%-20s %12llu %12.0f %10s\n", "HOPS polling",
                    static_cast<unsigned long long>(h.runTicks),
                    h.runTicks / handoffs, "1.00");
        std::printf("%-20s %12llu %12.0f %9.2fx\n", "ASAP CDR",
                    static_cast<unsigned long long>(a.runTicks),
                    a.runTicks / handoffs,
                    static_cast<double>(h.runTicks) / a.runTicks);
        std::printf("%-20s %12llu %12.0f %9.2fx\n", "eADR (none)",
                    static_cast<unsigned long long>(e.runTicks),
                    e.runTicks / handoffs,
                    static_cast<double>(h.runTicks) / e.runTicks);
    }
    std::printf("(Section IV-E: direct CDR messages avoid the "
                "polling latency of HOPS's global register)\n");
    finishSweep(args, sr);
    return 0;
}
