/**
 * @file
 * Component microbenchmarks (google-benchmark): host-side throughput
 * of the simulator's hot structures. These do not reproduce a paper
 * figure; they guard the simulator's own performance so the figure
 * benches stay fast.
 */

#include <benchmark/benchmark.h>

#include "core/recovery_table.hh"
#include "mem/wpq.hh"
#include "persist/bloom_filter.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace
{

using namespace asap;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 100),
                        [&sink]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_WpqInsertPop(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state) {
        Wpq wpq(16);
        for (int i = 0; i < 64; ++i) {
            if (wpq.insert(rng.below(32), rng.next()) ==
                Wpq::Insert::Full) {
                wpq.pop();
            }
        }
        benchmark::DoNotOptimize(wpq.size());
    }
}
BENCHMARK(BM_WpqInsertPop);

void
BM_RecoveryTableFlushCommit(benchmark::State &state)
{
    Rng rng(11);
    for (auto _ : state) {
        StatSet stats;
        RecoveryTable rt(0, 32, stats);
        for (std::uint64_t e = 1; e <= 8; ++e) {
            for (int i = 0; i < 4; ++i) {
                FlushPacket pkt{rng.below(64), rng.next(), 0, e, true};
                rt.onFlush(pkt, 0);
            }
            rt.onCommit(0, e, [](std::uint64_t, std::uint64_t) {});
        }
        benchmark::DoNotOptimize(rt.occupancy());
    }
}
BENCHMARK(BM_RecoveryTableFlushCommit);

void
BM_CountingBloom(benchmark::State &state)
{
    Rng rng(13);
    CountingBloom bloom(1024, 3);
    for (auto _ : state) {
        const std::uint64_t line = rng.below(1u << 20);
        bloom.insert(line);
        benchmark::DoNotOptimize(bloom.test(line));
        bloom.remove(line);
    }
}
BENCHMARK(BM_CountingBloom);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

} // namespace

BENCHMARK_MAIN();
