/**
 * @file
 * Figure 12: recovery-table maximum occupancy at 4 and 8 threads
 * (ASAP, release persistency, 32-entry RT per controller).
 *
 * Expected shape (paper): max occupancy grows little from 4 to 8
 * threads; Nstore is the exception that fills the table and triggers
 * NACKs (which fall back to conservative flushing without hurting
 * performance below HOPS).
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    SweepSpec spec;
    spec.workloads = args.workloads();
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {4, 8};
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    std::printf("=== Figure 12: RT max occupancy (ASAP RP) ===\n");
    std::printf("%-12s %10s %10s %10s %10s\n", "workload", "4thr",
                "8thr", "nacks4", "nacks8");
    for (const std::string &name : spec.workloads) {
        const RunResult &r4 = *sr.find(name, ModelKind::Asap,
                                       PersistencyModel::Release, 4);
        const RunResult &r8 = *sr.find(name, ModelKind::Asap,
                                       PersistencyModel::Release, 8);
        std::printf("%-12s %10llu %10llu %10llu %10llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(r4.rtMaxOccupancy),
                    static_cast<unsigned long long>(r8.rtMaxOccupancy),
                    static_cast<unsigned long long>(r4.nacks),
                    static_cast<unsigned long long>(r8.nacks));
    }
    std::printf("(paper: little growth from 4 to 8 threads; Nstore "
                "occasionally fills the RT)\n");
    finishSweep(args, sr);
    return 0;
}
