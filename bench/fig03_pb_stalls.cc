/**
 * @file
 * Figure 3: percentage of cycles the persist buffers are blocked
 * without flushing writes, under HOPS (conservative flushing).
 *
 * Expected shape (paper): ~26% of cycles on average; highest for the
 * new concurrent persistent data structures because of their frequent
 * cross-thread dependencies.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    std::printf("=== Figure 3: %% persist-buffer blocked cycles "
                "(HOPS, 4 threads, RP) ===\n");
    std::printf("%-12s %10s\n", "workload", "blocked%");
    std::vector<double> pct;
    for (const std::string &name : args.workloads()) {
        RunResult r = runExperiment(name, ModelKind::Hops,
                                    PersistencyModel::Release, 4,
                                    args.params());
        const double p = 100.0 * static_cast<double>(r.cyclesBlocked) /
                         static_cast<double>(r.totalCoreCycles());
        pct.push_back(p);
        std::printf("%-12s %9.1f%%\n", name.c_str(), p);
    }
    double avg = 0;
    for (double p : pct)
        avg += p;
    avg /= pct.empty() ? 1 : pct.size();
    std::printf("%-12s %9.1f%%   (paper: ~26%% average)\n", "average",
                avg);
    return 0;
}
