/**
 * @file
 * Figure 3: percentage of cycles the persist buffers are blocked
 * without flushing writes, under HOPS (conservative flushing).
 *
 * Expected shape (paper): ~26% of cycles on average; highest for the
 * new concurrent persistent data structures because of their frequent
 * cross-thread dependencies.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    SweepSpec spec;
    spec.workloads = args.workloads();
    spec.models = {{ModelKind::Hops, PersistencyModel::Release}};
    spec.coreCounts = {4};
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    std::printf("=== Figure 3: %% persist-buffer blocked cycles "
                "(HOPS, 4 threads, RP) ===\n");
    std::printf("%-12s %10s\n", "workload", "blocked%");
    std::vector<double> pct;
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const RunResult &r = sr.at(i);
        const double p = 100.0 * static_cast<double>(r.cyclesBlocked) /
                         static_cast<double>(r.totalCoreCycles());
        pct.push_back(p);
        std::printf("%-12s %9.1f%%\n", sr.jobs[i].workload.c_str(), p);
    }
    std::printf("%-12s %9.1f%%   (paper: ~26%% average)\n", "average",
                amean(pct));
    finishSweep(args, sr);
    return 0;
}
