/**
 * @file
 * Media-profile sweep driver: does ASAP's win over HOPS/baseline
 * survive on other media?
 *
 * Runs the cross-product (media profile x model x workload) through
 * the experiment engine and prints, per profile, each workload's
 * runtime under every model, ASAP's speedups, and the media-side
 * story: bytes written, time lost to the bandwidth-cap queue, and
 * bank utilisation. The profile axis rides the cache key, so re-runs
 * and sharded executions (--shard + bench/sweep_merge) dedup exactly
 * like any other sweep.
 */

#include "bench/bench_util.hh"

using namespace asap;

namespace
{

struct MediaSweepArgs
{
    BenchArgs bench;                   //!< shared engine/shard flags
    std::vector<std::string> profiles; //!< media axis (order kept)
    std::string models = "baseline_rp,hops_rp,asap_rp";
    unsigned cores = 4;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ops N] [--seed S] [--workload W]\n"
        "          [--profiles p1,p2,...] [--models m1_pm1,...] "
        "[--cores N]\n"
        "          [--jobs N] [--json PATH] [--progress]\n"
        "          [--list-media] [--list-workloads]\n"
        "          [--shard i/n [--claim] [--salt S] "
        "[--lease-ttl SEC]]\n",
        argv0);
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        if (end > start)
            out.push_back(list.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

/** Parse "asap_rp,hops_ep,..." into (model, persistency) pairs. */
std::vector<ModelPair>
parseModels(const std::string &list)
{
    std::vector<ModelPair> models;
    for (const std::string &item : splitList(list)) {
        const std::size_t us = item.rfind('_');
        if (us == std::string::npos) {
            std::fprintf(stderr,
                         "error: bad --models entry '%s' (want e.g. "
                         "asap_rp)\n", item.c_str());
            std::exit(2);
        }
        models.emplace_back(parseModelKind(item.substr(0, us)),
                            parsePersistencyModel(item.substr(us + 1)));
    }
    return models;
}

MediaSweepArgs
parseArgs(int argc, char **argv)
{
    MediaSweepArgs a;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--ops"))
            a.bench.ops = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--seed"))
            a.bench.seed = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--workload"))
            a.bench.workload = need(i), ++i;
        else if (!std::strcmp(arg, "--profiles"))
            a.profiles = splitList(need(i)), ++i;
        else if (!std::strcmp(arg, "--models"))
            a.models = need(i), ++i;
        else if (!std::strcmp(arg, "--cores"))
            a.cores = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--jobs"))
            a.bench.jobs = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--json"))
            a.bench.jsonPath = need(i), ++i;
        else if (!std::strcmp(arg, "--progress"))
            a.bench.progress = true;
        else if (!std::strcmp(arg, "--list-media")) {
            for (const MediaProfileInfo &m : allMediaProfiles())
                std::printf("%-14s %s\n", m.name.c_str(),
                            m.description.c_str());
            std::exit(0);
        }
        else if (!std::strcmp(arg, "--list-workloads")) {
            for (const WorkloadInfo &w : allWorkloads())
                std::printf("%-10s %s\n", w.name.c_str(),
                            w.description.c_str());
            std::exit(0);
        }
        else if (!std::strcmp(arg, "--shard")) {
            const std::string salt = a.bench.shard.salt; // keep --salt
            a.bench.shard = parseShardSpec(need(i)), ++i;
            a.bench.shard.salt = salt;
            a.bench.sharded = true;
        } else if (!std::strcmp(arg, "--claim"))
            a.bench.claim = true;
        else if (!std::strcmp(arg, "--salt"))
            a.bench.shard.salt = need(i), ++i;
        else if (!std::strcmp(arg, "--lease-ttl"))
            a.bench.leaseTtl = std::strtod(need(i), nullptr), ++i;
        else
            usage(argv[0]);
    }
    if (a.profiles.empty()) {
        for (const MediaProfileInfo &m : allMediaProfiles())
            a.profiles.push_back(m.name);
    }
    for (const std::string &p : a.profiles) {
        if (!isMediaProfile(p)) {
            std::fprintf(stderr, "error: unknown media profile '%s' "
                         "(try --list-media)\n", p.c_str());
            std::exit(2);
        }
    }
    return a;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const MediaSweepArgs a = parseArgs(argc, argv);

    SweepSpec spec;
    spec.workloads = a.bench.workloads();
    spec.mediaProfiles = a.profiles;
    spec.models = parseModels(a.models);
    spec.coreCounts = {a.cores};
    spec.params = a.bench.params();
    if (maybeRunShard(a.bench, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(a.bench, spec);

    // Expansion order: workload-major, media next, models, cores
    // innermost (one core count here).
    const std::size_t nMedia = a.profiles.size();
    const std::size_t nModels = spec.models.size();
    auto at = [&](std::size_t w, std::size_t m, std::size_t k)
        -> const RunResult & {
        return sr.at((w * nMedia + m) * nModels + k);
    };
    // ASAP vs. the slowest of the other models present, typically the
    // baseline: the cross-media question is whether the win survives.
    std::size_t asapCol = nModels, refCol = nModels;
    for (std::size_t k = 0; k < nModels; ++k) {
        if (spec.models[k].first == ModelKind::Asap && asapCol == nModels)
            asapCol = k;
        if (spec.models[k].first != ModelKind::Asap)
            refCol = k;
    }
    for (std::size_t k = 0; k < nModels; ++k) {
        if (spec.models[k].first == ModelKind::Baseline)
            refCol = k;
    }

    std::printf("=== Media-profile sweep: %zu profiles x %zu models "
                "x %zu workloads (%u cores) ===\n",
                nMedia, nModels, spec.workloads.size(), a.cores);
    for (std::size_t m = 0; m < nMedia; ++m) {
        const std::string &profile = a.profiles[m];
        // Bank count for the utilisation column: profile defaults
        // under the sweep's base config (per MC).
        SimConfig pcfg = spec.base;
        pcfg.mediaProfile = profile;
        const MediaParams mp = resolveMediaParams(pcfg);

        char cap[48] = "";
        if (mp.writeGBps > 0)
            std::snprintf(cap, sizeof cap, ", %g GB/s cap",
                          mp.writeGBps);
        std::printf("\n--- media %s (read %llu / write %llu cycles, "
                    "%u banks/MC%s) ---\n", profile.c_str(),
                    (unsigned long long)mp.readLatency,
                    (unsigned long long)mp.writeLatency, mp.banks,
                    cap);
        std::printf("%-12s", "workload");
        for (const ModelPair &mk : spec.models)
            std::printf(" %11s",
                        (toString(mk.first) + "_" +
                         toString(mk.second)).c_str());
        std::printf(" %8s %9s %7s %8s\n", "speedup", "mediaMB",
                    "qdel%", "bankUtil");

        std::vector<double> speedups;
        for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
            std::printf("%-12s", spec.workloads[w].c_str());
            for (std::size_t k = 0; k < nModels; ++k)
                std::printf(" %11llu",
                            (unsigned long long)at(w, m, k).runTicks);
            double speedup = 0.0;
            if (asapCol < nModels && refCol < nModels &&
                refCol != asapCol) {
                speedup =
                    double(at(w, m, refCol).runTicks) /
                    double(at(w, m, asapCol).runTicks);
                speedups.push_back(speedup);
            }
            // Media columns describe the ASAP run (or the first model
            // when ASAP is not in the sweep).
            const RunResult &r =
                at(w, m, asapCol < nModels ? asapCol : 0);
            // Normalise against total bank-time across all MCs.
            const double bankTime =
                double(r.runTicks) * mp.banks * pcfg.numMCs;
            const double mb = double(r.mediaBytesWritten) / 1e6;
            const double qdel =
                bankTime > 0
                    ? 100.0 * double(r.mediaQueueDelayTicks) / bankTime
                    : 0.0;
            const double util =
                bankTime > 0
                    ? double(r.mediaBankBusyTicks) / bankTime
                    : 0.0;
            std::printf(" %8.2f %9.3f %6.1f%% %8.3f\n", speedup, mb,
                        qdel, util);
        }
        if (!speedups.empty())
            std::printf("%-12s gmean speedup %.2f\n", "",
                        gmean(speedups));
    }
    finishSweep(a.bench, sr);
    return 0;
}
