/**
 * @file
 * Figure 13: system write-bandwidth utilisation microbenchmark.
 *
 * Each thread issues 256-byte writes alternating across the two
 * memory controllers, ordered with ofence between bursts (Section
 * VII-C). Expected shape (paper): ASAP achieves ~2x HOPS's bandwidth
 * because eager flushing overlaps the writes to both controllers.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.ops == 200)
        args.ops = 400; // bursts per thread

    struct Row
    {
        const char *label;
        ModelKind kind;
    };
    const Row rows[] = {
        {"baseline", ModelKind::Baseline},
        {"HOPS", ModelKind::Hops},
        {"ASAP", ModelKind::Asap},
    };

    // The experiment measures how well each design *utilises* system
    // write bandwidth, so the media must not be the limit:
    // interleaving gives Optane up to 5.6x the single-DIMM write
    // bandwidth (Section III / [38]); model that headroom with more
    // banks per controller.
    JobSet set;
    std::vector<std::size_t> rowIdx;
    for (const Row &row : rows) {
        SimConfig cfg = args.baseConfig();
        cfg.model = row.kind;
        cfg.persistency = PersistencyModel::Release;
        cfg.nvmBanks = 24;
        rowIdx.push_back(set.add("bandwidth", cfg, args.params()));
    }
    if (maybeRunShard(args, set.jobs()))
        return 0;
    const SweepResult sr = runBenchJobs(args, set.jobs());

    std::printf("=== Figure 13: bandwidth utilisation "
                "(256B ofence-ordered bursts across 2 MCs) ===\n");
    std::printf("%-10s %12s %12s %10s\n", "model", "ticks", "GB/s",
                "vsHOPS");
    double hopsBw = 0;
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const RunResult &r = sr.at(rowIdx[i]);
        // One source of truth: the MCs' media byte counter. The
        // microbench writes distinct lines (no coalescing), so this
        // equals 4 threads x 256 B x ops exactly.
        const double bytes = static_cast<double>(r.mediaBytesWritten);
        const double secs = ticksToNs(r.runTicks) * 1e-9;
        const double gbps = bytes / secs / 1e9;
        if (rows[i].kind == ModelKind::Hops)
            hopsBw = gbps;
        std::printf("%-10s %12llu %12.3f %10.2f\n", rows[i].label,
                    static_cast<unsigned long long>(r.runTicks), gbps,
                    hopsBw > 0 ? gbps / hopsBw : 0.0);
    }
    std::printf("(paper: ASAP ~2x HOPS)\n");
    finishSweep(args, sr);
    return 0;
}
