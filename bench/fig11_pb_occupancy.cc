/**
 * @file
 * Figure 11: persist-buffer occupancy, average and 99th percentile
 * (time-weighted), HOPS vs ASAP with release persistency.
 *
 * Expected shape (paper): ASAP's occupancy is much lower than HOPS's
 * on both metrics — eager flushing drains the buffer — implying a
 * smaller PB would perform the same.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    SweepSpec spec;
    spec.workloads = args.workloads();
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {4};
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    std::printf("=== Figure 11: PB occupancy avg / p99 "
                "(RP, 4 cores, 32-entry PB) ===\n");
    std::printf("%-12s %12s %10s %12s %10s\n", "workload", "HOPS-avg",
                "HOPS-p99", "ASAP-avg", "ASAP-p99");
    std::vector<double> hMeans, aMeans;
    for (const std::string &name : spec.workloads) {
        const RunResult &h = *sr.find(name, ModelKind::Hops,
                                      PersistencyModel::Release, 4);
        const RunResult &a = *sr.find(name, ModelKind::Asap,
                                      PersistencyModel::Release, 4);
        hMeans.push_back(h.pbOccMean);
        aMeans.push_back(a.pbOccMean);
        std::printf("%-12s %12.2f %10llu %12.2f %10llu\n",
                    name.c_str(), h.pbOccMean,
                    static_cast<unsigned long long>(h.pbOccP99),
                    a.pbOccMean,
                    static_cast<unsigned long long>(a.pbOccP99));
    }
    std::printf("%-12s %12.2f %10s %12.2f %10s\n", "average",
                amean(hMeans), "", amean(aMeans), "");
    std::printf("(paper: ASAP well below HOPS on both average and "
                "p99)\n");
    finishSweep(args, sr);
    return 0;
}
