/**
 * @file
 * Figure 11: persist-buffer occupancy, average and 99th percentile
 * (time-weighted), HOPS vs ASAP with release persistency.
 *
 * Expected shape (paper): ASAP's occupancy is much lower than HOPS's
 * on both metrics — eager flushing drains the buffer — implying a
 * smaller PB would perform the same.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    std::printf("=== Figure 11: PB occupancy avg / p99 "
                "(RP, 4 cores, 32-entry PB) ===\n");
    std::printf("%-12s %12s %10s %12s %10s\n", "workload", "HOPS-avg",
                "HOPS-p99", "ASAP-avg", "ASAP-p99");
    double hsum = 0, asum = 0;
    unsigned n = 0;
    for (const std::string &name : args.workloads()) {
        RunResult h = runExperiment(name, ModelKind::Hops,
                                    PersistencyModel::Release, 4,
                                    args.params());
        RunResult a = runExperiment(name, ModelKind::Asap,
                                    PersistencyModel::Release, 4,
                                    args.params());
        hsum += h.pbOccMean;
        asum += a.pbOccMean;
        ++n;
        std::printf("%-12s %12.2f %10llu %12.2f %10llu\n",
                    name.c_str(), h.pbOccMean,
                    static_cast<unsigned long long>(h.pbOccP99),
                    a.pbOccMean,
                    static_cast<unsigned long long>(a.pbOccP99));
    }
    std::printf("%-12s %12.2f %10s %12.2f %10s\n", "average",
                hsum / (n ? n : 1), "", asum / (n ? n : 1), "");
    std::printf("(paper: ASAP well below HOPS on both average and "
                "p99)\n");
    return 0;
}
