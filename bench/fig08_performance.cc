/**
 * @file
 * Figure 8: speedup over the Intel baseline for HOPS_EP, HOPS_RP,
 * ASAP_EP, ASAP_RP and eADR/BBB on a 4-core, 2-MC system.
 *
 * Expected shape (paper): ASAP_RP ~2.3x over baseline on average,
 * ~23% over HOPS_RP, within ~4% of eADR/BBB; HOPS_EP drops below
 * baseline for the concurrent structures (queue, CCEH, Dash, P-ART)
 * because polling makes cross-dependency resolution slow.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    struct ModelCol
    {
        const char *label;
        ModelKind kind;
        PersistencyModel pm;
    };
    const ModelCol cols[] = {
        {"HOPS_EP", ModelKind::Hops, PersistencyModel::Epoch},
        {"HOPS_RP", ModelKind::Hops, PersistencyModel::Release},
        {"ASAP_EP", ModelKind::Asap, PersistencyModel::Epoch},
        {"ASAP_RP", ModelKind::Asap, PersistencyModel::Release},
        {"eADR/BBB", ModelKind::Eadr, PersistencyModel::Release},
    };

    // One baseline + five model columns per workload; the engine
    // dedups any repeats and runs everything in parallel.
    const std::vector<std::string> names = args.workloads();
    JobSet set;
    auto addJob = [&](const std::string &name, ModelKind kind,
                      PersistencyModel pm) {
        SimConfig cfg = args.baseConfig();
        cfg.model = kind;
        cfg.persistency = pm;
        cfg.numCores = 4;
        return set.add(name, cfg, args.params());
    };
    std::vector<std::size_t> baseIdx;
    std::vector<std::vector<std::size_t>> colIdx(std::size(cols));
    for (const std::string &name : names) {
        baseIdx.push_back(addJob(name, ModelKind::Baseline,
                                 PersistencyModel::Release));
        for (std::size_t i = 0; i < std::size(cols); ++i) {
            colIdx[i].push_back(addJob(name, cols[i].kind, cols[i].pm));
        }
    }
    if (maybeRunShard(args, set.jobs()))
        return 0;
    const SweepResult sr = runBenchJobs(args, set.jobs());

    std::printf("=== Figure 8: speedup over baseline "
                "(4 cores, 2 MCs) ===\n");
    std::printf("%-12s", "workload");
    for (const ModelCol &c : cols)
        std::printf(" %9s", c.label);
    std::printf("\n");

    std::vector<std::vector<double>> speedups(std::size(cols));
    for (std::size_t w = 0; w < names.size(); ++w) {
        const RunResult &base = sr.at(baseIdx[w]);
        std::printf("%-12s", names[w].c_str());
        for (std::size_t i = 0; i < std::size(cols); ++i) {
            const RunResult &r = sr.at(colIdx[i][w]);
            const double s = static_cast<double>(base.runTicks) /
                             static_cast<double>(r.runTicks);
            speedups[i].push_back(s);
            std::printf(" %9.2f", s);
        }
        std::printf("\n");
    }

    std::printf("%-12s", "gmean");
    for (std::size_t i = 0; i < std::size(cols); ++i)
        std::printf(" %9.2f", gmean(speedups[i]));
    std::printf("\n(paper gmean: HOPS_RP ~1.86, ASAP_EP ~2.10, "
                "ASAP_RP ~2.29, eADR ~2.38 over baseline)\n");
    finishSweep(args, sr);
    return 0;
}
