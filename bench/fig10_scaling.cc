/**
 * @file
 * Figure 10: core-count sensitivity (1/2/4/8 threads, 2 MCs fixed),
 * ASAP vs HOPS under release persistency. Shows the paper's best
 * scaler (P-ART), worst scaler (skiplist) and the all-workload mean,
 * all normalised to HOPS at 1 thread.
 *
 * Expected shape (paper): ASAP 1.18x over HOPS at one thread (eager
 * flushing uses both MCs) and scaling to ~2.85x vs HOPS's 2.15x at 8
 * threads — HOPS falls off as cross-thread dependencies multiply.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const unsigned coreCounts[] = {1, 2, 4, 8};

    std::printf("=== Figure 10: scalability over cores "
                "(normalised to HOPS @1 thread) ===\n");
    std::printf("%-12s %-6s", "workload", "model");
    for (unsigned c : coreCounts)
        std::printf(" %7u", c);
    std::printf("\n");

    // Throughput metric: operations per tick, normalised.
    auto throughput = [&](const std::string &w, ModelKind m,
                          unsigned cores) {
        RunResult r = runExperiment(w, m, PersistencyModel::Release,
                                    cores, args.params());
        // Total high-level ops scale with the thread count, so
        // throughput = cores / runTicks (ops per thread fixed).
        return static_cast<double>(cores) /
               static_cast<double>(r.runTicks);
    };

    std::vector<std::string> names = args.workload.empty()
        ? std::vector<std::string>{"p-art", "skiplist"}
        : std::vector<std::string>{args.workload};

    std::vector<std::vector<double>> asapSpeed(4), hopsSpeed(4);
    for (const std::string &name : names) {
        const double hops1 = throughput(name, ModelKind::Hops, 1);
        std::printf("%-12s %-6s", name.c_str(), "HOPS");
        for (std::size_t i = 0; i < std::size(coreCounts); ++i) {
            const double s =
                throughput(name, ModelKind::Hops, coreCounts[i]) /
                hops1;
            hopsSpeed[i].push_back(s);
            std::printf(" %7.2f", s);
        }
        std::printf("\n%-12s %-6s", "", "ASAP");
        for (std::size_t i = 0; i < std::size(coreCounts); ++i) {
            const double s =
                throughput(name, ModelKind::Asap, coreCounts[i]) /
                hops1;
            asapSpeed[i].push_back(s);
            std::printf(" %7.2f", s);
        }
        std::printf("\n");
    }

    if (args.workload.empty()) {
        // All-workload average rows (smaller op count keeps this
        // tractable: 14 workloads x 2 models x 4 core counts).
        WorkloadParams p = args.params();
        for (const WorkloadInfo &w : allWorkloads()) {
            RunResult h1 = runExperiment(w.name, ModelKind::Hops,
                                         PersistencyModel::Release, 1,
                                         p);
            const double hops1 =
                1.0 / static_cast<double>(h1.runTicks);
            for (std::size_t i = 0; i < std::size(coreCounts); ++i) {
                RunResult h = runExperiment(
                    w.name, ModelKind::Hops,
                    PersistencyModel::Release, coreCounts[i], p);
                RunResult a = runExperiment(
                    w.name, ModelKind::Asap,
                    PersistencyModel::Release, coreCounts[i], p);
                hopsSpeed[i].push_back(
                    coreCounts[i] /
                    static_cast<double>(h.runTicks) / hops1);
                asapSpeed[i].push_back(
                    coreCounts[i] /
                    static_cast<double>(a.runTicks) / hops1);
            }
        }
        std::printf("%-12s %-6s", "average", "HOPS");
        for (std::size_t i = 0; i < std::size(coreCounts); ++i)
            std::printf(" %7.2f", gmean(hopsSpeed[i]));
        std::printf("\n%-12s %-6s", "", "ASAP");
        for (std::size_t i = 0; i < std::size(coreCounts); ++i)
            std::printf(" %7.2f", gmean(asapSpeed[i]));
        std::printf("\n(paper avg: ASAP 1.18/1.79/2.51/2.85 vs HOPS "
                    "1.00/1.36/1.94/2.15)\n");
    }
    return 0;
}
