/**
 * @file
 * Figure 10: core-count sensitivity (1/2/4/8 threads, 2 MCs fixed),
 * ASAP vs HOPS under release persistency. Shows the paper's best
 * scaler (P-ART), worst scaler (skiplist) and the all-workload mean,
 * all normalised to HOPS at 1 thread.
 *
 * Expected shape (paper): ASAP 1.18x over HOPS at one thread (eager
 * flushing uses both MCs) and scaling to ~2.85x vs HOPS's 2.15x at 8
 * threads — HOPS falls off as cross-thread dependencies multiply.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::vector<unsigned> coreCounts = {1, 2, 4, 8};

    const std::vector<std::string> names = args.workload.empty()
        ? std::vector<std::string>{"p-art", "skiplist"}
        : std::vector<std::string>{args.workload};

    // Everything this figure needs, as one deduplicated parallel
    // sweep: the headline scalers plus (for the average rows) every
    // workload, each under HOPS and ASAP at every core count.
    SweepSpec spec;
    spec.workloads = names;
    if (args.workload.empty()) {
        for (const WorkloadInfo &w : allWorkloads()) {
            bool dup = false;
            for (const std::string &n : spec.workloads)
                dup = dup || n == w.name;
            if (!dup)
                spec.workloads.push_back(w.name);
        }
    }
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = coreCounts;
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    // Normalised throughput: ops scale with threads, so
    // throughput = cores / runTicks (ops per thread fixed).
    auto throughput = [&](const std::string &w, ModelKind m,
                          unsigned cores) {
        const RunResult &r =
            *sr.find(w, m, PersistencyModel::Release, cores);
        return static_cast<double>(cores) /
               static_cast<double>(r.runTicks);
    };

    std::printf("=== Figure 10: scalability over cores "
                "(normalised to HOPS @1 thread) ===\n");
    std::printf("%-12s %-6s", "workload", "model");
    for (unsigned c : coreCounts)
        std::printf(" %7u", c);
    std::printf("\n");

    std::vector<std::vector<double>> asapSpeed(4), hopsSpeed(4);
    for (const std::string &name : names) {
        const double hops1 = throughput(name, ModelKind::Hops, 1);
        std::printf("%-12s %-6s", name.c_str(), "HOPS");
        for (std::size_t i = 0; i < coreCounts.size(); ++i) {
            const double s =
                throughput(name, ModelKind::Hops, coreCounts[i]) /
                hops1;
            hopsSpeed[i].push_back(s);
            std::printf(" %7.2f", s);
        }
        std::printf("\n%-12s %-6s", "", "ASAP");
        for (std::size_t i = 0; i < coreCounts.size(); ++i) {
            const double s =
                throughput(name, ModelKind::Asap, coreCounts[i]) /
                hops1;
            asapSpeed[i].push_back(s);
            std::printf(" %7.2f", s);
        }
        std::printf("\n");
    }

    if (args.workload.empty()) {
        // All-workload average rows.
        for (const WorkloadInfo &w : allWorkloads()) {
            const double hops1 =
                throughput(w.name, ModelKind::Hops, 1);
            for (std::size_t i = 0; i < coreCounts.size(); ++i) {
                hopsSpeed[i].push_back(
                    throughput(w.name, ModelKind::Hops,
                               coreCounts[i]) / hops1);
                asapSpeed[i].push_back(
                    throughput(w.name, ModelKind::Asap,
                               coreCounts[i]) / hops1);
            }
        }
        std::printf("%-12s %-6s", "average", "HOPS");
        for (std::size_t i = 0; i < coreCounts.size(); ++i)
            std::printf(" %7.2f", gmean(hopsSpeed[i]));
        std::printf("\n%-12s %-6s", "", "ASAP");
        for (std::size_t i = 0; i < coreCounts.size(); ++i)
            std::printf(" %7.2f", gmean(asapSpeed[i]));
        std::printf("\n(paper avg: ASAP 1.18/1.79/2.51/2.85 vs HOPS "
                    "1.00/1.36/1.94/2.15)\n");
    }
    finishSweep(args, sr);
    return 0;
}
