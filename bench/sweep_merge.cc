/**
 * @file
 * Merge driver for distributed sweeps: combine per-shard manifests
 * and the shared result cache into the artifact a single host would
 * have produced.
 *
 * The CSV written here is byte-identical to the `--json out.csv`
 * artifact of an unsharded run of the same bench — emitCsv carries no
 * volatile fields — so `diff` is a complete correctness check for a
 * distributed campaign. Holes (jobs no surviving shard completed) are
 * reported on stderr with a `--repro` line each and make the exit
 * status non-zero; re-running any shard with `--claim` fills them.
 *
 * usage: sweep_merge [--cache-dir DIR] [--sweep ID] [--out PATH]
 *                    [MANIFEST...]
 *
 * With explicit MANIFEST paths those are merged; otherwise the cache
 * directory (--cache-dir, or ASAP_CACHE_DIR) is scanned for
 * `sweep-*.manifest` files, optionally filtered by --sweep.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dist/merge.hh"
#include "exp/cache.hh"
#include "exp/crash_campaign.hh"
#include "exp/emit.hh"
#include "sim/log.hh"

using namespace asap;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--cache-dir DIR] [--sweep ID] "
                 "[--out PATH] [MANIFEST...]\n", argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cacheDir;
    std::string sweep;
    std::string outPath;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc)
            cacheDir = argv[++i];
        else if (!std::strcmp(argv[i], "--sweep") && i + 1 < argc)
            sweep = argv[++i];
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            outPath = argv[++i];
        else if (argv[i][0] == '-')
            usage(argv[0]);
        else
            paths.emplace_back(argv[i]);
    }

    if (cacheDir.empty()) {
        const char *env = std::getenv("ASAP_CACHE_DIR");
        cacheDir = env ? env : "";
    }
    if (cacheDir.empty()) {
        std::fprintf(stderr, "error: no cache directory (--cache-dir "
                             "or ASAP_CACHE_DIR)\n");
        return 2;
    }

    if (paths.empty()) {
        // Scan the cache directory for manifests of the requested
        // sweep (or of the only sweep present).
        const std::string prefix =
            sweep.empty() ? "sweep-" : "sweep-" + sweep + "-shard";
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(cacheDir, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(prefix, 0) == 0 &&
                name.size() > 9 &&
                name.compare(name.size() - 9, 9, ".manifest") == 0) {
                paths.push_back(entry.path().string());
            }
        }
        if (ec) {
            std::fprintf(stderr, "error: cannot scan %s: %s\n",
                         cacheDir.c_str(), ec.message().c_str());
            return 2;
        }
        std::sort(paths.begin(), paths.end());
    }
    if (paths.empty()) {
        std::fprintf(stderr, "error: no shard manifests found in %s\n",
                     cacheDir.c_str());
        return 2;
    }

    std::vector<ShardManifest> manifests;
    for (const std::string &path : paths) {
        ShardManifest m;
        if (!loadManifest(path, m))
            return 2; // loadManifest warned with the reason
        manifests.push_back(std::move(m));
    }

    ResultCache cache(cacheDir);
    const MergeReport report = mergeShards(manifests, cache);
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n", report.error.c_str());
        return 2;
    }

    if (outPath.empty()) {
        emitCsv(std::cout, report.result);
    } else {
        std::ofstream out(outPath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        emitCsv(out, report.result);
    }

    std::fprintf(stderr, "merged sweep %s: %zu jobs from %zu shards (",
                 report.sweep.c_str(), report.result.jobs.size(),
                 report.shardsSeen.size());
    for (std::size_t i = 0; i < report.shardsSeen.size(); ++i) {
        std::fprintf(stderr, "%s%s", i ? ", " : "",
                     toString(report.shardsSeen[i]).c_str());
    }
    std::fprintf(stderr, ")\n");
    std::fprintf(stderr, "simulations: %zu total across shards, "
                         "duplicate simulations: %zu\n",
                 report.simulatedTotal, report.duplicateSims);

    for (std::size_t i : report.missing) {
        const ExperimentJob &job = report.result.jobs[i];
        std::fprintf(stderr, "MISSING job %zu: %s %s_%s %u cores\n", i,
                     job.workload.c_str(),
                     toString(job.cfg.model).c_str(),
                     toString(job.cfg.persistency).c_str(),
                     job.cfg.numCores);
        if (job.kind == JobKind::Crash) {
            std::fprintf(stderr, "  repro: %s\n",
                         reproCommand(job).c_str());
        } else {
            std::fprintf(stderr, "  repro: re-run the bench with "
                                 "--shard i/n --claim to fill it\n");
        }
    }
    if (!report.missing.empty()) {
        std::fprintf(stderr, "merge incomplete: %zu of %zu jobs "
                             "missing\n",
                     report.missing.size(), report.result.jobs.size());
        return 1;
    }
    return 0;
}
