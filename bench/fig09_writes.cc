/**
 * @file
 * Figure 9: number of PM write operations, ASAP normalised to HOPS
 * (release persistency, 4 cores) — plus the PM read increase the
 * paper quotes in the text (+5.3% on average for undo snapshots).
 *
 * Expected shape (paper): ASAP at or below 1.0 for most workloads
 * (suppressed writes + recovery-table and WPQ coalescing), slightly
 * above 1.0 for Memcached / Vacation / P-ART.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);

    SweepSpec spec;
    spec.workloads = args.workloads();
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {4};
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    std::printf("=== Figure 9: PM writes, ASAP normalised to HOPS "
                "(RP, 4 cores) ===\n");
    std::printf("%-12s %10s %10s %10s %12s %12s\n", "workload",
                "hopsWr", "asapWr", "ratio", "suppressed",
                "readIncr%");
    std::vector<double> ratios, readIncr;
    for (const std::string &name : spec.workloads) {
        const RunResult &h = *sr.find(name, ModelKind::Hops,
                                      PersistencyModel::Release, 4);
        const RunResult &a = *sr.find(name, ModelKind::Asap,
                                      PersistencyModel::Release, 4);
        const double ratio = h.pmWrites
                                 ? static_cast<double>(a.pmWrites) /
                                       static_cast<double>(h.pmWrites)
                                 : 0.0;
        // Reads the undo snapshots add relative to HOPS's write count
        // (the paper's +5.3% metric).
        const double ri = h.pmWrites
                              ? 100.0 *
                                    static_cast<double>(a.pmReads) /
                                    static_cast<double>(h.pmWrites)
                              : 0.0;
        ratios.push_back(ratio);
        readIncr.push_back(ri);
        std::printf("%-12s %10llu %10llu %10.3f %12llu %11.1f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(h.pmWrites),
                    static_cast<unsigned long long>(a.pmWrites), ratio,
                    static_cast<unsigned long long>(a.suppressedWrites),
                    ri);
    }
    std::printf("%-12s %21s %10.3f %12s %11.1f%%\n", "gmean", "",
                gmean(ratios), "", amean(readIncr));
    std::printf("(paper: ASAP <= HOPS writes for most workloads; PM "
                "reads +5.3%% on average)\n");
    finishSweep(args, sr);
    return 0;
}
