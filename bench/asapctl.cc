/**
 * @file
 * asapctl: command-line client for a running asapd.
 *
 *   asapctl --socket S ping
 *   asapctl --socket S submit --workloads queue,cceh [--models asap_rp]
 *           [--cores 4] [--media P] [--ops N] [--seed S]
 *           [--priority P] [--out sweep.csv]
 *   asapctl --socket S status
 *   asapctl --socket S stats [--json]
 *   asapctl --socket S top [--interval SEC] [--iterations N]
 *   asapctl --socket S cancel --sweep s3
 *   asapctl --socket S shutdown
 *
 * `submit` expands the same cross-product a figure bench would,
 * streams results from the daemon, and (with --out) writes the
 * standard CSV/JSON artifact — byte-identical to a batch run of the
 * same sweep. The submit summary line matches the bench epilogue, so
 * warm-vs-cold behaviour is visible at a glance.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/emit.hh"
#include "media/media.hh"
#include "sim/log.hh"
#include "svc/client.hh"
#include "workloads/registry.hh"

using namespace asap;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH <command> [options]\n"
        "commands:\n"
        "  ping                         liveness check\n"
        "  submit --workloads w1,w2,... run a sweep on the daemon\n"
        "         [--models m1_pm1,...] [--cores c1,c2,...]\n"
        "         [--media PROFILE] [--ops N] [--seed S]\n"
        "         [--priority P] [--client NAME] [--out PATH]\n"
        "  status                       active sweeps\n"
        "  stats [--json]               cache/scheduler/daemon stats\n"
        "  top [--interval SEC]         live-refreshing status+stats\n"
        "      [--iterations N]         view (N=0: until interrupted)\n"
        "  cancel --sweep sID           drop a sweep's queued jobs\n"
        "  shutdown                     graceful daemon shutdown\n",
        argv0);
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        if (end > start)
            items.push_back(list.substr(start, end - start));
        start = end + 1;
    }
    return items;
}

std::vector<ModelPair>
parseModels(const std::string &list)
{
    std::vector<ModelPair> models;
    for (const std::string &item : splitList(list)) {
        const std::size_t us = item.rfind('_');
        if (us == std::string::npos) {
            std::fprintf(stderr,
                         "error: bad --models entry '%s' (want e.g. "
                         "asap_rp)\n",
                         item.c_str());
            std::exit(2);
        }
        models.emplace_back(
            parseModelKind(item.substr(0, us)),
            parsePersistencyModel(item.substr(us + 1)));
    }
    return models;
}

int
printHumanStats(const Json &resp)
{
    const Json &cache = resp.get("cache");
    const Json &sched = resp.get("scheduler");
    const Json &daemon = resp.get("daemon");
    std::printf("cache:     %llu mem hits, %llu disk hits, %llu "
                "misses (%.0f%% hit), aux %llu/%llu\n",
                (unsigned long long)cache.get("memHits").asU64(),
                (unsigned long long)cache.get("diskHits").asU64(),
                (unsigned long long)cache.get("misses").asU64(),
                100.0 * cache.get("hitRate").asDouble(),
                (unsigned long long)cache.get("auxHits").asU64(),
                (unsigned long long)cache.get("auxMisses").asU64());
    std::printf("scheduler: %llu queued, %llu in flight, %llu "
                "completed, %llu cancelled\n",
                (unsigned long long)sched.get("queued").asU64(),
                (unsigned long long)sched.get("inFlight").asU64(),
                (unsigned long long)sched.get("completed").asU64(),
                (unsigned long long)sched.get("cancelled").asU64());
    for (const auto &kv : sched.get("perClient").members()) {
        std::printf("  client %-16s %llu jobs\n", kv.first.c_str(),
                    (unsigned long long)kv.second.asU64());
    }
    std::printf("daemon:    %llu connections, %llu sweeps, %llu "
                "jobs (%llu unique), %.2fs up, %.2f Mevents/s "
                "aggregate\n",
                (unsigned long long)
                    daemon.get("connections").asU64(),
                (unsigned long long)daemon.get("sweeps").asU64(),
                (unsigned long long)daemon.get("jobs").asU64(),
                (unsigned long long)daemon.get("unique").asU64(),
                daemon.get("uptimeSeconds").asDouble(),
                daemon.get("eventsPerSec").asDouble() / 1e6);
    return 0;
}

int
printHumanStatus(const Json &resp)
{
    const Json &sweeps = resp.get("sweeps");
    if (sweeps.size() == 0) {
        std::printf("no active sweeps\n");
        return 0;
    }
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const Json &row = sweeps.at(i);
        std::printf("%-6s client %-16s prio %-3lld %llu/%llu "
                    "streamed (%llu cancelled)\n",
                    row.get("sweep").asString().c_str(),
                    row.get("client").asString().c_str(),
                    (long long)row.get("priority").asI64(),
                    (unsigned long long)row.get("streamed").asU64(),
                    (unsigned long long)row.get("unique").asU64(),
                    (unsigned long long)row.get("cancelled").asU64());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    ClientOptions copt;
    std::string command;
    std::string workloadsArg, modelsArg = "asap_rp";
    std::string coresArg = "4";
    std::string media = kDefaultMediaProfile;
    std::string outPath, sweepId;
    unsigned ops = 200;
    std::uint64_t seed = 1;
    bool jsonStats = false;
    double interval = 2.0;   //!< top: seconds between refreshes
    unsigned iterations = 0; //!< top: 0 = run until interrupted

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--socket") && i + 1 < argc)
            copt.socketPath = argv[++i];
        else if (!std::strcmp(arg, "--workloads") && i + 1 < argc)
            workloadsArg = argv[++i];
        else if (!std::strcmp(arg, "--models") && i + 1 < argc)
            modelsArg = argv[++i];
        else if (!std::strcmp(arg, "--cores") && i + 1 < argc)
            coresArg = argv[++i];
        else if (!std::strcmp(arg, "--media") && i + 1 < argc)
            media = argv[++i];
        else if (!std::strcmp(arg, "--ops") && i + 1 < argc)
            ops = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        else if (!std::strcmp(arg, "--seed") && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else if (!std::strcmp(arg, "--priority") && i + 1 < argc)
            copt.priority = static_cast<int>(
                std::strtol(argv[++i], nullptr, 0));
        else if (!std::strcmp(arg, "--client") && i + 1 < argc)
            copt.clientName = argv[++i];
        else if (!std::strcmp(arg, "--out") && i + 1 < argc)
            outPath = argv[++i];
        else if (!std::strcmp(arg, "--sweep") && i + 1 < argc)
            sweepId = argv[++i];
        else if (!std::strcmp(arg, "--json"))
            jsonStats = true;
        else if (!std::strcmp(arg, "--interval") && i + 1 < argc)
            interval = std::strtod(argv[++i], nullptr);
        else if (!std::strcmp(arg, "--iterations") && i + 1 < argc)
            iterations = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        else if (arg[0] != '-' && command.empty())
            command = arg;
        else
            usage(argv[0]);
    }
    if (copt.socketPath.empty() || command.empty())
        usage(argv[0]);

    SvcClient client(copt);
    std::string why;

    if (command == "ping") {
        if (!client.ping(&why)) {
            std::fprintf(stderr, "asapctl: %s\n", why.c_str());
            return 1;
        }
        std::printf("ok\n");
        return 0;
    }

    if (command == "status" || command == "stats") {
        Json resp;
        const bool ok = command == "status"
                            ? client.status(resp, &why)
                            : client.stats(resp, &why);
        if (!ok) {
            std::fprintf(stderr, "asapctl: %s\n", why.c_str());
            return 1;
        }
        if (command == "stats" && !jsonStats)
            return printHumanStats(resp);
        if (command == "status" && !jsonStats)
            return printHumanStatus(resp);
        std::printf("%s\n", resp.dump().c_str());
        return 0;
    }

    if (command == "top") {
        // Live view: redraw status + stats every --interval seconds.
        // Each frame is one full-screen repaint (home + clear-below),
        // so a dying daemon leaves the last good frame on screen.
        for (unsigned n = 0; iterations == 0 || n < iterations; ++n) {
            if (n)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval));
            Json status, stats;
            if (!client.status(status, &why) ||
                !client.stats(stats, &why)) {
                std::fprintf(stderr, "asapctl: %s\n", why.c_str());
                return 1;
            }
            std::printf("\033[H\033[J=== asapd %s (refresh %.1fs, "
                        "^C to quit) ===\n",
                        copt.socketPath.c_str(), interval);
            printHumanStatus(status);
            printHumanStats(stats);
            std::fflush(stdout);
        }
        return 0;
    }

    if (command == "cancel") {
        if (sweepId.empty())
            usage(argv[0]);
        std::uint64_t n = 0;
        if (!client.cancel(sweepId, &n, &why)) {
            std::fprintf(stderr, "asapctl: %s\n", why.c_str());
            return 1;
        }
        std::printf("cancelled %llu queued job(s) of %s\n",
                    (unsigned long long)n, sweepId.c_str());
        return 0;
    }

    if (command == "shutdown") {
        if (!client.shutdown(&why)) {
            std::fprintf(stderr, "asapctl: %s\n", why.c_str());
            return 1;
        }
        std::printf("shutdown requested\n");
        return 0;
    }

    if (command == "submit") {
        if (workloadsArg.empty())
            usage(argv[0]);
        if (!isMediaProfile(media)) {
            std::fprintf(stderr,
                         "error: unknown media profile '%s'\n",
                         media.c_str());
            return 2;
        }
        SweepSpec spec;
        spec.workloads = splitList(workloadsArg);
        spec.models = parseModels(modelsArg);
        spec.coreCounts.clear();
        for (const std::string &c : splitList(coresArg)) {
            spec.coreCounts.push_back(static_cast<unsigned>(
                std::strtoul(c.c_str(), nullptr, 0)));
        }
        spec.params.opsPerThread = ops;
        spec.params.seed = seed;
        spec.base.mediaProfile = media;

        SweepResult sr;
        if (!client.runJobs(spec.expand(), sr, &why)) {
            std::fprintf(stderr, "asapctl: %s\n", why.c_str());
            return 1;
        }
        if (!outPath.empty() && !emitToFile(outPath, sr)) {
            std::fprintf(stderr,
                         "error: could not write artifact to %s\n",
                         outPath.c_str());
            return 1;
        }
        // Same accounting line as the bench epilogue; wall time is
        // non-deterministic, so it goes to stderr.
        std::printf(
            "[sweep: %zu jobs, %zu simulated, %llu cache hits]\n",
            sr.jobs.size(), sr.uniqueRuns,
            (unsigned long long)sr.cacheHits);
        std::fprintf(stderr, "sweep wall-clock: %.3fs\n",
                     sr.wallSeconds);
        return 0;
    }

    usage(argv[0]);
}
