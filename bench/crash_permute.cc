/**
 * @file
 * Exhaustive crash-state permuter driver. Where bench/crash_campaign
 * checks the single canonical post-crash NVM state per power-failure
 * point, this bench enumerates *every* reachable post-crash state at
 * each point (src/permute/): each subset of the in-flight commit
 * application and recovery-record effects that the crash could have
 * frozen, checked independently against the recovery checker's
 * consistency predicate.
 *
 * Campaign mode (default): one verdict-table row per configuration
 * with coverage columns (states checked / states reachable), a
 * summary line, and a non-zero exit if any enumerated state at any
 * crash point was inconsistent — each failure prints one `--repro`
 * command, pinned with `--state <hexmask>`, that replays exactly that
 * state.
 *
 * Repro mode (`--repro`): re-run one crash point (optionally one
 * state via --state) and print the full verdict with coverage.
 *
 * Enumeration is exhaustive below --bound reachable states and
 * seeded-sampled above it (corners always included); truncation is
 * reported loudly in the table and the artifact, never silently.
 */

#include "bench/bench_util.hh"

#include "exp/crash_campaign.hh"
#include "permute/permute.hh"

using namespace asap;

namespace
{

struct PermuteArgs
{
    unsigned ops = 200;
    std::uint64_t seed = 1;
    std::string workload; //!< empty = all Table III workloads
    std::string media = kDefaultMediaProfile; //!< media profile
    unsigned jobs = 0;
    std::string jsonPath;

    unsigned ticks = 12;  //!< crash points per configuration
    std::string strategy = "stride";
    std::uint64_t tickSeed = 1;
    unsigned cores = 4;
    std::string models = "asap_ep,asap_rp"; //!< comma-separated
    unsigned parDomains = 1;        //!< intra-run kernel parallelism
    std::uint64_t parSpecWindow = 0; //!< speculative window (ticks)

    std::uint64_t bound = 4096;   //!< max states checked per point
    std::uint64_t sampleSeed = 1; //!< sampling seed above the bound
    std::string fault;            //!< test-only recovery fault hook
    std::string state;            //!< hex mask: check one state only
    std::string engine;           //!< check loop ("", inc., naive)
    unsigned permuteThreads = 1;  //!< state-check worker threads

    bool repro = false;   //!< single-crash-point replay mode
    std::string model = "asap";
    std::string pm = "rp";
    std::uint64_t crashTick = 0;

    bool progress = false; //!< stderr progress/ETA lines
    bool sharded = false;  //!< --shard: distributed permute mode
    ShardSpec shard;
    bool claim = false;
    double leaseTtl = 60.0;
    std::string daemonSocket; //!< --daemon: route sweeps to an asapd
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ops N] [--seed S] [--workload W] [--media P] "
        "[--jobs N]\n"
        "          [--json PATH] [--ticks N] [--strategy NAME] "
        "[--list-strategies]\n"
        "          [--tick-seed S] [--cores N] [--models "
        "m1_pm1,m2_pm2,...]\n"
        "          [--bound N] [--sample-seed S] [--inject-fault F]\n"
        "          [--engine E] [--permute-jobs N]\n"
        "          [--progress] [--daemon SOCKET] "
        "[--par-domains N] [--par-spec-window T]\n"
        "          [--shard i/n [--claim] [--salt S] "
        "[--lease-ttl SEC]]\n"
        "       %s --repro --workload W [--media P] --model M --pm P "
        "--cores N\n"
        "          --ops N --seed S --crash-tick T [--bound N] "
        "[--sample-seed S]\n"
        "          [--inject-fault F] [--state HEXMASK] [--engine E] "
        "[--permute-jobs N]\n",
        argv0, argv0);
    std::exit(2);
}

PermuteArgs
parseArgs(int argc, char **argv)
{
    PermuteArgs a;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--ops"))
            a.ops = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--seed"))
            a.seed = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--workload"))
            a.workload = need(i), ++i;
        else if (!std::strcmp(arg, "--media")) {
            a.media = need(i), ++i;
            if (!isMediaProfile(a.media)) {
                std::fprintf(stderr, "error: unknown media profile "
                             "'%s' (try --list-media)\n",
                             a.media.c_str());
                std::exit(2);
            }
        }
        else if (!std::strcmp(arg, "--list-media")) {
            for (const MediaProfileInfo &m : allMediaProfiles())
                std::printf("%-14s %s\n", m.name.c_str(),
                            m.description.c_str());
            std::exit(0);
        }
        else if (!std::strcmp(arg, "--jobs"))
            a.jobs = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--json"))
            a.jsonPath = need(i), ++i;
        else if (!std::strcmp(arg, "--ticks"))
            a.ticks = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--strategy"))
            a.strategy = need(i), ++i;
        else if (!std::strcmp(arg, "--list-strategies")) {
            for (const TickStrategyInfo &t : allTickStrategies())
                std::printf("%-8s %s\n", t.name, t.description);
            std::exit(0);
        }
        else if (!std::strcmp(arg, "--tick-seed"))
            a.tickSeed = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--cores"))
            a.cores = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--models"))
            a.models = need(i), ++i;
        else if (!std::strcmp(arg, "--bound")) {
            a.bound = std::strtoull(need(i), nullptr, 0), ++i;
            if (a.bound == 0) {
                std::fprintf(stderr,
                             "error: --bound must be >= 1\n");
                std::exit(2);
            }
        }
        else if (!std::strcmp(arg, "--sample-seed"))
            a.sampleSeed = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--inject-fault")) {
            a.fault = need(i), ++i;
            permute::FaultMode fm;
            if (!permute::parsePermuteFault(a.fault, fm)) {
                std::fprintf(stderr,
                             "error: unknown fault mode '%s'; valid "
                             "modes: %s\n", a.fault.c_str(),
                             permute::permuteFaultNames());
                std::exit(2);
            }
        }
        else if (!std::strcmp(arg, "--engine")) {
            a.engine = need(i), ++i;
            permute::Engine eng;
            if (!permute::parsePermuteEngine(a.engine, eng)) {
                std::fprintf(stderr,
                             "error: unknown permute engine '%s'; "
                             "valid engines: %s\n", a.engine.c_str(),
                             permute::permuteEngineNames());
                std::exit(2);
            }
        }
        else if (!std::strcmp(arg, "--permute-jobs"))
            a.permuteThreads =
                unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--state")) {
            a.state = need(i), ++i;
            std::uint64_t mask;
            if (!permute::maskFromHex(a.state, mask)) {
                std::fprintf(stderr,
                             "error: --state wants a hex atom mask "
                             "(e.g. 1f), got '%s'\n", a.state.c_str());
                std::exit(2);
            }
        }
        else if (!std::strcmp(arg, "--par-domains"))
            a.parDomains =
                unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--par-spec-window"))
            a.parSpecWindow = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--repro"))
            a.repro = true;
        else if (!std::strcmp(arg, "--model"))
            a.model = need(i), ++i;
        else if (!std::strcmp(arg, "--pm"))
            a.pm = need(i), ++i;
        else if (!std::strcmp(arg, "--crash-tick"))
            a.crashTick = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--progress"))
            a.progress = true;
        else if (!std::strcmp(arg, "--shard")) {
            const std::string salt = a.shard.salt; // keep --salt
            a.shard = parseShardSpec(need(i)), ++i;
            a.shard.salt = salt;
            a.sharded = true;
        } else if (!std::strcmp(arg, "--claim"))
            a.claim = true;
        else if (!std::strcmp(arg, "--salt"))
            a.shard.salt = need(i), ++i;
        else if (!std::strcmp(arg, "--lease-ttl"))
            a.leaseTtl = std::strtod(need(i), nullptr), ++i;
        else if (!std::strcmp(arg, "--daemon"))
            a.daemonSocket = need(i), ++i;
        else
            usage(argv[0]);
    }
    return a;
}

/** Parse "asap_rp,hops_ep,..." into (model, persistency) pairs. */
std::vector<ModelPair>
parseModels(const std::string &list)
{
    std::vector<ModelPair> models;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        const std::string item = list.substr(start, end - start);
        const std::size_t us = item.rfind('_');
        if (item.empty() || us == std::string::npos) {
            std::fprintf(stderr,
                         "error: bad --models entry '%s' (want e.g. "
                         "asap_rp)\n", item.c_str());
            std::exit(2);
        }
        models.emplace_back(parseModelKind(item.substr(0, us)),
                            parsePersistencyModel(item.substr(us + 1)));
        start = end + 1;
    }
    return models;
}

WorkloadParams
paramsFor(const PermuteArgs &a)
{
    WorkloadParams p;
    p.opsPerThread = a.ops;
    p.seed = a.seed;
    return p;
}

void
printVerdict(const CrashVerdict &v)
{
    std::printf("verdict: %s\n",
                v.consistent ? "CONSISTENT" : "INCONSISTENT");
    std::printf("  crash tick  %llu (stopped at %llu)\n",
                (unsigned long long)v.crashTick,
                (unsigned long long)v.actualTick);
    std::printf("  frontier   ");
    for (std::uint64_t c : v.committedUpTo)
        std::printf(" e%llu", (unsigned long long)c);
    std::printf("\n");
    std::printf("  states checked %llu of %llu reachable (%llu "
                "distinct images, %llu atoms)%s\n",
                (unsigned long long)v.statesChecked,
                (unsigned long long)v.statesReachable,
                (unsigned long long)v.distinctStates,
                (unsigned long long)v.permuteAtoms,
                v.truncated ? " [TRUNCATED]" : "");
    std::printf("  stores logged %llu, lines survived %llu, undo "
                "replayed %llu, ADR drained %llu\n",
                (unsigned long long)v.storesLogged,
                (unsigned long long)v.linesSurvived,
                (unsigned long long)v.undoReplayed,
                (unsigned long long)v.adrDrainWrites);
    if (v.permuteNs != 0)
        std::printf("  check time %.1f ms (%.0f states/s)\n",
                    double(v.permuteNs) / 1e6,
                    double(v.statesChecked) * 1e9 /
                        double(v.permuteNs));
    if (v.inconsistentStates != 0)
        std::printf("  inconsistent states %llu (first bad mask %s)\n",
                    (unsigned long long)v.inconsistentStates,
                    v.firstBadState.c_str());
    if (!v.message.empty())
        std::printf("  violation: %s\n", v.message.c_str());
}

int
runRepro(const PermuteArgs &a)
{
    SimConfig cfg;
    cfg.mediaProfile = a.media;
    cfg.model = parseModelKind(a.model);
    cfg.persistency = parsePersistencyModel(a.pm);
    cfg.numCores = a.cores;
    cfg.seed = a.seed;
    cfg.parDomains = a.parDomains;
    cfg.parSpecWindow = a.parSpecWindow;

    JobSet set;
    set.addPermute(a.workload, cfg, paramsFor(a), a.crashTick,
                   a.bound, a.sampleSeed, a.fault, a.state, a.engine,
                   a.permuteThreads);
    RunOptions opt;
    opt.jobs = a.jobs;
    const SweepResult sr = runJobs(set.jobs(), opt);

    std::printf("=== repro: %s%s%s %s/%s %u cores, crash @ %llu",
                a.workload.c_str(),
                a.media == kDefaultMediaProfile ? "" : " on ",
                a.media == kDefaultMediaProfile ? "" : a.media.c_str(),
                a.model.c_str(), a.pm.c_str(), a.cores,
                (unsigned long long)a.crashTick);
    if (!a.state.empty())
        std::printf(", state %s", a.state.c_str());
    std::printf(" ===\n");
    printVerdict(sr.verdicts[0]);
    return sr.verdicts[0].consistent ? 0 : 1;
}

int
runPermuteCampaign(const PermuteArgs &a, const BenchArgs &emitArgs)
{
    CampaignSpec spec;
    if (a.workload.empty()) {
        for (const WorkloadInfo &w : allWorkloads())
            spec.workloads.push_back(w.name);
    } else {
        spec.workloads.push_back(a.workload);
    }
    spec.models = parseModels(a.models);
    spec.coreCounts = {a.cores};
    spec.params = paramsFor(a);
    spec.base.mediaProfile = a.media;
    spec.base.parDomains = a.parDomains;
    spec.base.parSpecWindow = a.parSpecWindow;
    spec.strategy = parseTickStrategy(a.strategy);
    spec.ticksPerConfig = a.ticks;
    spec.tickSeed = a.tickSeed;
    spec.sweepKind = JobKind::Permute;
    spec.permuteBound = a.bound;
    spec.permuteSeed = a.sampleSeed;
    spec.permuteFault = a.fault;
    spec.permuteEngine = a.engine;
    spec.permuteThreads = a.permuteThreads;

    if (emitArgs.sharded) {
        // Same protocol as the crash campaign: probes block until the
        // whole configuration set is summarized (shared-cache leases
        // keep that cluster-wide work deduplicated), then only the
        // permute sweep itself is sharded. The probe memo is shared
        // with crash campaigns over the same configs — probe jobs are
        // plain Run jobs either way.
        bool fromMemo = false;
        const std::vector<ProbeStat> stats = ensureProbeStats(
            spec, emitArgs.options(),
            [&](std::vector<ExperimentJob> jobs, const RunOptions &) {
                return ensureJobs(jobs, emitArgs.distOptions());
            },
            &fromMemo);
        if (fromMemo)
            std::fprintf(stderr,
                         "probe phase: served from memoized summary\n");
        const CampaignExpansion ex = expandCampaign(spec, stats);
        if (maybeRunShard(emitArgs, ex.crashJobs))
            return 0;
    }

    SweepRunner runner;
    if (!emitArgs.daemonSocket.empty()) {
        runner = [&](std::vector<ExperimentJob> jobs,
                     const RunOptions &opt) {
            return daemonRunJobs(emitArgs.daemonSocket,
                                 std::move(jobs), opt);
        };
    }
    const CampaignResult cr =
        runCampaign(spec, emitArgs.options(), runner);
    if (cr.probePhaseCached) {
        // stderr only: apart from the host-side states/s column, the
        // verdict table stays byte-identical between cold and warm
        // campaigns.
        std::fprintf(stderr,
                     "probe phase: served from memoized summary\n");
    }

    std::printf("=== Crash-state permutation campaign: %zu crash "
                "points, strategy %s, bound %llu%s%s ===\n",
                cr.crashPoints(), toString(spec.strategy).c_str(),
                (unsigned long long)a.bound,
                a.fault.empty() ? "" : ", fault ",
                a.fault.c_str());
    std::printf("%-12s %-10s %5s %7s %10s %10s %6s %5s %5s %9s\n",
                "workload", "model", "cores", "points", "checked",
                "reachable", "cov%", "trunc", "bad", "states/s");
    std::size_t next = 0;
    bool anyTruncated = false;
    for (const CampaignRow &row : cr.rows) {
        std::uint64_t checked = 0, reachable = 0, checkNs = 0;
        std::size_t truncated = 0, bad = 0;
        for (std::size_t i = 0; i < row.points; ++i, ++next) {
            const CrashVerdict &v = cr.sweep.verdicts[next];
            checked += v.statesChecked;
            reachable += v.statesReachable;
            checkNs += v.permuteNs;
            if (v.truncated)
                ++truncated;
            if (!v.consistent)
                ++bad;
        }
        anyTruncated = anyTruncated || truncated != 0;
        const double cov =
            reachable ? 100.0 * double(checked) / double(reachable)
                      : 100.0;
        // Host-side rate; "-" when every verdict in the row was
        // cache-served (permuteNs is never cached). The one
        // non-deterministic table column, mirroring wallSeconds in
        // the JSON header.
        char rate[24];
        if (checkNs)
            std::snprintf(rate, sizeof(rate), "%.0f",
                          double(checked) * 1e9 / double(checkNs));
        else
            std::snprintf(rate, sizeof(rate), "-");
        std::printf("%-12s %-10s %5u %7zu %10llu %10llu %6.1f %5zu "
                    "%5zu %9s\n",
                    row.workload.c_str(),
                    (toString(row.model) + "_" + toString(row.pm))
                        .c_str(),
                    row.cores, row.points,
                    (unsigned long long)checked,
                    (unsigned long long)reachable, cov, truncated,
                    bad, rate);
    }
    std::printf("permute campaign: %zu crash points, %zu consistent, "
                "%zu inconsistent%s\n",
                cr.crashPoints(), cr.crashPoints() - cr.badJobs.size(),
                cr.badJobs.size(),
                anyTruncated ? " (coverage TRUNCATED at some points; "
                               "raise --bound for exhaustive sweeps)"
                             : "");
    for (std::size_t i : cr.badJobs) {
        const CrashVerdict &v = cr.sweep.verdicts[i];
        std::printf("INCONSISTENT: %s\n", v.message.c_str());
        std::printf("  repro: %s\n",
                    reproCommand(cr.sweep.jobs[i],
                                 v.firstBadState).c_str());
    }
    finishSweep(emitArgs, cr.sweep);
    return cr.allConsistent() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const PermuteArgs a = parseArgs(argc, argv);
    // --progress also turns on the state-level meter inside the
    // permuter (states checked, states/s, ETA on stderr).
    permute::setPermuteProgress(a.progress);
    if (a.repro) {
        if (a.workload.empty()) {
            std::fprintf(stderr,
                         "error: --repro needs --workload\n");
            return 2;
        }
        return runRepro(a);
    }
    if (!a.state.empty()) {
        std::fprintf(stderr,
                     "error: --state only makes sense with --repro\n");
        return 2;
    }
    // Reuse the shared bench epilogue (artifact + accounting line).
    BenchArgs emitArgs;
    emitArgs.ops = a.ops;
    emitArgs.seed = a.seed;
    emitArgs.workload = a.workload;
    emitArgs.jobs = a.jobs;
    emitArgs.jsonPath = a.jsonPath;
    emitArgs.progress = a.progress;
    emitArgs.sharded = a.sharded;
    emitArgs.shard = a.shard;
    emitArgs.claim = a.claim;
    emitArgs.leaseTtl = a.leaseTtl;
    emitArgs.daemonSocket = a.daemonSocket;
    return runPermuteCampaign(a, emitArgs);
}
