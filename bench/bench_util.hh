/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --ops N        high-level operations per thread (default 200)
 *   --seed S       RNG seed
 *   --workload W   restrict to one workload (default: all)
 *   --media P      NVM media profile (default: paper-table2)
 *   --jobs N       parallel simulations (default: hardware threads)
 *   --par-domains N  intra-run parallel event kernel domains
 *                  (default 1 = sequential; results are bit-identical)
 *   --par-spec-window T  speculative lookahead in ticks (default 0)
 *   --json PATH    write the sweep's raw results as JSON (.csv: CSV)
 *   --progress     rate-limited progress/ETA lines on stderr
 *   --profile      host-time phase breakdown on stderr after the run
 *   --list-media   print the media-profile registry and exit
 *   --list-workloads  print the workload registry and exit
 *   --shard i/n    run only shard i of n (requires ASAP_CACHE_DIR);
 *                  results go to the shared cache + a manifest, and
 *                  bench/sweep_merge reassembles the sweep afterwards
 *   --claim        with --shard: also reclaim dead shards' jobs
 *   --salt S       re-deal the shard partition (must match cluster-wide)
 *   --lease-ttl S  claim-protocol lease staleness threshold (seconds)
 *   --daemon SOCK  execute the sweep on the asapd at SOCK instead of
 *                  in-process (bench/asapd); tables and artifacts are
 *                  byte-identical either way
 *
 * Benches build an ExperimentJob list (JobSet or SweepSpec), run it
 * through the exp engine, and format tables from the deterministic,
 * submission-ordered results — so a bench's stdout is byte-identical
 * whatever --jobs is.
 */

#ifndef ASAP_BENCH_BENCH_UTIL_HH
#define ASAP_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/executor.hh"
#include "dist/shard.hh"
#include "media/media.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "exp/sweep.hh"
#include "harness/runner.hh"
#include "sim/log.hh"
#include "svc/client.hh"
#include "workloads/registry.hh"

namespace asap
{

/** Parsed bench command line. */
struct BenchArgs
{
    unsigned ops = 200;
    std::uint64_t seed = 1;
    std::string workload; //!< empty = all
    std::string media = kDefaultMediaProfile; //!< media profile
    unsigned jobs = 0;    //!< sweep workers; 0 = hardware default
    unsigned parDomains = 1; //!< intra-run event kernel domains
    std::uint64_t parSpecWindow = 0; //!< spec lookahead (ticks)
    std::string jsonPath; //!< empty = no artifact
    bool progress = false; //!< stderr progress/ETA lines
    bool profile = false;  //!< stderr host-time phase breakdown

    bool sharded = false; //!< --shard given: distributed mode
    ShardSpec shard;      //!< which slice (with --salt folded in)
    bool claim = false;   //!< reclaim dead shards' jobs
    double leaseTtl = 60.0; //!< lease staleness threshold

    std::string daemonSocket; //!< --daemon: route sweeps to an asapd

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
                a.ops = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 0));
            } else if (!std::strcmp(argv[i], "--seed") &&
                       i + 1 < argc) {
                a.seed = std::strtoull(argv[++i], nullptr, 0);
            } else if (!std::strcmp(argv[i], "--workload") &&
                       i + 1 < argc) {
                a.workload = argv[++i];
            } else if (!std::strcmp(argv[i], "--media") &&
                       i + 1 < argc) {
                a.media = argv[++i];
                if (!isMediaProfile(a.media)) {
                    std::fprintf(stderr, "error: unknown media "
                                 "profile '%s' (try --list-media)\n",
                                 a.media.c_str());
                    std::exit(2);
                }
            } else if (!std::strcmp(argv[i], "--list-media")) {
                for (const MediaProfileInfo &m : allMediaProfiles())
                    std::printf("%-14s %s\n", m.name.c_str(),
                                m.description.c_str());
                std::exit(0);
            } else if (!std::strcmp(argv[i], "--list-workloads")) {
                for (const WorkloadInfo &w : allWorkloads())
                    std::printf("%-10s %s\n", w.name.c_str(),
                                w.description.c_str());
                std::exit(0);
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                a.jobs = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 0));
            } else if (!std::strcmp(argv[i], "--par-domains") &&
                       i + 1 < argc) {
                a.parDomains = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 0));
                if (a.parDomains == 0)
                    a.parDomains = 1;
            } else if (!std::strcmp(argv[i], "--par-spec-window") &&
                       i + 1 < argc) {
                a.parSpecWindow =
                    std::strtoull(argv[++i], nullptr, 0);
            } else if (!std::strcmp(argv[i], "--json") &&
                       i + 1 < argc) {
                a.jsonPath = argv[++i];
            } else if (!std::strcmp(argv[i], "--progress")) {
                a.progress = true;
            } else if (!std::strcmp(argv[i], "--profile")) {
                a.profile = true;
            } else if (!std::strcmp(argv[i], "--shard") &&
                       i + 1 < argc) {
                const std::string salt = a.shard.salt; // keep --salt
                a.shard = parseShardSpec(argv[++i]);
                a.shard.salt = salt;
                a.sharded = true;
            } else if (!std::strcmp(argv[i], "--claim")) {
                a.claim = true;
            } else if (!std::strcmp(argv[i], "--salt") &&
                       i + 1 < argc) {
                a.shard.salt = argv[++i];
            } else if (!std::strcmp(argv[i], "--lease-ttl") &&
                       i + 1 < argc) {
                a.leaseTtl = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(argv[i], "--daemon") &&
                       i + 1 < argc) {
                a.daemonSocket = argv[++i];
            } else {
                std::fprintf(stderr,
                             "usage: %s [--ops N] [--seed S] "
                             "[--workload W] [--media P] [--jobs N] "
                             "[--par-domains N] [--par-spec-window T] "
                             "[--json PATH] [--progress] [--profile] "
                             "[--list-media] [--list-workloads] "
                             "[--daemon SOCKET] "
                             "[--shard i/n [--claim] [--salt S] "
                             "[--lease-ttl SEC]]\n", argv[0]);
                std::exit(2);
            }
        }
        return a;
    }

    /** Workload names this bench should sweep. */
    std::vector<std::string>
    workloads() const
    {
        std::vector<std::string> names;
        if (!workload.empty()) {
            names.push_back(workload);
            return names;
        }
        for (const WorkloadInfo &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }

    WorkloadParams
    params() const
    {
        WorkloadParams p;
        p.opsPerThread = ops;
        p.seed = seed;
        return p;
    }

    /** Base SimConfig with the selected media profile applied. Every
     *  bench starts from this so --media reaches each job. */
    SimConfig
    baseConfig() const
    {
        SimConfig cfg;
        cfg.mediaProfile = media;
        cfg.parDomains = parDomains;
        cfg.parSpecWindow = parSpecWindow;
        return cfg;
    }

    RunOptions
    options() const
    {
        RunOptions opt;
        opt.jobs = jobs;
        opt.progress = progress;
        return opt;
    }

    DistOptions
    distOptions() const
    {
        DistOptions opt;
        opt.shard = shard;
        opt.claim = claim;
        opt.jobs = jobs;
        opt.progress = progress;
        opt.leaseTtlSeconds = leaseTtl;
        // Keep heartbeats comfortably inside the TTL even when tests
        // shrink it to force reclaim.
        opt.heartbeatSeconds = std::min(10.0, leaseTtl / 4.0);
        return opt;
    }
};

/**
 * Run a bench's job list where the user pointed it: on the asapd at
 * --daemon's socket, or in-process through the engine. Both paths
 * share jobKey()-addressed caching and deterministic assembly, so the
 * bench's tables and CSV artifacts are byte-identical either way.
 */
inline SweepResult
runBenchJobs(const BenchArgs &args, std::vector<ExperimentJob> jobs)
{
    if (!args.daemonSocket.empty()) {
        return daemonRunJobs(args.daemonSocket, std::move(jobs),
                             args.options());
    }
    return runJobs(std::move(jobs), args.options());
}

/** runBenchJobs() for declarative sweeps. */
inline SweepResult
runBenchSweep(const BenchArgs &args, const SweepSpec &spec)
{
    return runBenchJobs(args, spec.expand());
}

/** Geometric mean of a series (ignores non-positive entries). */
inline double
gmean(const std::vector<double> &xs)
{
    double acc = 0.0;
    unsigned n = 0;
    for (double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

/** Arithmetic mean of a series (0 if empty). */
inline double
amean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

/**
 * Shared bench epilogue: write the artifact if --json was given and
 * report the engine's dedup/cache accounting. The counters are
 * deterministic (unlike wall-clock, which only goes to stderr), so
 * stdout stays byte-identical across --jobs settings.
 */
/**
 * Print the process-wide host-time phase breakdown on stderr.
 * Wall-clock is non-deterministic, so none of this may reach stdout.
 */
inline void
printHostProfile()
{
    const HostProfile hp = hostProfile();
    auto sec = [](std::uint64_t ns) { return 1e-9 * double(ns); };
    std::fprintf(stderr,
                 "[profile] trace-gen %.3fs  trace-load %.3fs  "
                 "simulate %.3fs  check %.3fs  (%llu sim runs)\n",
                 sec(hp.traceGenNs), sec(hp.traceLoadNs),
                 sec(hp.simulateNs), sec(hp.checkNs),
                 static_cast<unsigned long long>(hp.simRuns));
    if (hp.parRounds || hp.serialRounds || hp.taintRestarts) {
        std::fprintf(stderr,
                     "[profile] kernel: %llu parallel rounds, "
                     "%llu serial rounds, %llu misspeculations, "
                     "%llu rollbacks, %llu taint restarts\n",
                     static_cast<unsigned long long>(hp.parRounds),
                     static_cast<unsigned long long>(hp.serialRounds),
                     static_cast<unsigned long long>(hp.misspeculations),
                     static_cast<unsigned long long>(hp.rollbacks),
                     static_cast<unsigned long long>(hp.taintRestarts));
    }
}

inline void
finishSweep(const BenchArgs &args, const SweepResult &sr)
{
    // Report artifact failures directly: benches run with
    // setLogQuiet(true), which would swallow emitToFile's warn().
    if (!args.jsonPath.empty() && !emitToFile(args.jsonPath, sr))
        std::fprintf(stderr, "error: could not write sweep artifact "
                     "to %s\n", args.jsonPath.c_str());
    std::printf("[sweep: %zu jobs, %zu simulated, %llu cache hits]\n",
                sr.jobs.size(), sr.uniqueRuns,
                static_cast<unsigned long long>(sr.cacheHits));
    // Disk-trace replays vary with ASAP_TRACE_DIR warmth, so they are
    // stderr-only (the JSON header carries them deterministically per
    // invocation).
    std::fprintf(stderr, "sweep wall-clock: %.2fs (%llu disk-trace "
                 "replays)\n", sr.wallSeconds,
                 static_cast<unsigned long long>(sr.traceDiskHits));
    if (args.profile)
        printHostProfile();
}

/**
 * Distributed-mode hook. When --shard i/n was given, run only this
 * shard's slice of @p jobs — results land in the shared cache and a
 * per-shard manifest, not in a table — print the shard summary, and
 * return true so the bench exits without formatting anything.
 * Reassemble with bench/sweep_merge once every shard has finished.
 */
inline bool
maybeRunShard(const BenchArgs &args,
              const std::vector<ExperimentJob> &jobs)
{
    if (!args.sharded)
        return false;
    const ShardManifest m = runJobsSharded(jobs, args.distOptions());
    std::printf("[shard %s of sweep %s: %zu jobs, %zu owned, "
                "%zu simulated, %zu claimed, %zu cached, %zu leased, "
                "%zu skipped]\n",
                toString(m.shard).c_str(), m.sweep.c_str(),
                m.jobs.size(), m.owned, m.simulated, m.claimed,
                m.cachedHits, m.leasedSkipped, m.otherSkipped);
    std::printf("[manifest: %s]\n", m.path.c_str());
    std::printf("[merge: build/bench/sweep_merge --cache-dir %s "
                "--sweep %s]\n",
                processCache().diskDir().c_str(), m.sweep.c_str());
    if (args.profile)
        printHostProfile();
    return true;
}

} // namespace asap

#endif // ASAP_BENCH_BENCH_UTIL_HH
