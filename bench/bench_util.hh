/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --ops N        high-level operations per thread (default 200)
 *   --seed S       RNG seed
 *   --workload W   restrict to one workload (default: all)
 */

#ifndef ASAP_BENCH_BENCH_UTIL_HH
#define ASAP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

namespace asap
{

/** Parsed bench command line. */
struct BenchArgs
{
    unsigned ops = 200;
    std::uint64_t seed = 1;
    std::string workload; //!< empty = all

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
                a.ops = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 0));
            } else if (!std::strcmp(argv[i], "--seed") &&
                       i + 1 < argc) {
                a.seed = std::strtoull(argv[++i], nullptr, 0);
            } else if (!std::strcmp(argv[i], "--workload") &&
                       i + 1 < argc) {
                a.workload = argv[++i];
            } else {
                std::fprintf(stderr,
                             "usage: %s [--ops N] [--seed S] "
                             "[--workload W]\n", argv[0]);
                std::exit(2);
            }
        }
        return a;
    }

    /** Workload names this bench should sweep. */
    std::vector<std::string>
    workloads() const
    {
        std::vector<std::string> names;
        if (!workload.empty()) {
            names.push_back(workload);
            return names;
        }
        for (const WorkloadInfo &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }

    WorkloadParams
    params() const
    {
        WorkloadParams p;
        p.opsPerThread = ops;
        p.seed = seed;
        return p;
    }
};

/** Geometric mean of a series (ignores non-positive entries). */
inline double
gmean(const std::vector<double> &xs)
{
    double acc = 0.0;
    unsigned n = 0;
    for (double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

} // namespace asap

#endif // ASAP_BENCH_BENCH_UTIL_HH
