/**
 * @file
 * Table V: hardware overheads of ASAP's structures (area, access
 * latency, read/write energy) from the CACTI-lite analytical model,
 * printed next to the paper's CACTI 7 @22 nm values; plus the
 * Section VII-D ADR drain-size comparison (ASAP < 4 kB vs BBB ~64 kB
 * vs eADR ~42 MB for a 32-core server).
 */

#include <cstdio>

#include "costmodel/cacti_lite.hh"

using namespace asap;

int
main()
{
    SimConfig cfg;

    struct Row
    {
        StructureSpec spec;
        double paperArea, paperNs, paperW, paperR;
    };
    const Row rows[] = {
        {persistBufferSpec(cfg), 0.093, 0.402, 30.0, 28.876},
        {epochTableSpec(cfg), 0.006, 0.185, 0.428, 0.092},
        {recoveryTableSpec(cfg), 0.097, 0.413, 31.5, 31.5},
        {l1CacheSpec(cfg), 0.759, 1.403, 327.86, 327.85},
    };

    std::printf("=== Table V: hardware overheads (22 nm) ===\n");
    std::printf("%-16s %19s %19s %19s %19s\n", "",
                "area(mm^2)", "access(ns)", "writeE(pJ)",
                "readE(pJ)");
    std::printf("%-16s %9s %9s %9s %9s %9s %9s %9s %9s\n",
                "structure", "model", "paper", "model", "paper",
                "model", "paper", "model", "paper");
    for (const Row &row : rows) {
        const CostEstimate est = estimateCost(row.spec);
        std::printf("%-16s %9.3f %9.3f %9.3f %9.3f %9.2f %9.2f "
                    "%9.2f %9.2f\n",
                    row.spec.name.c_str(), est.areaMm2, row.paperArea,
                    est.accessNs, row.paperNs, est.writePj, row.paperW,
                    est.readPj, row.paperR);
    }

    std::printf("\n=== Section VII-D: power-failure drain size ===\n");
    const unsigned serverCores = 32;
    std::printf("ASAP (RT + WPQ, %u MCs):  %8.1f kB  (paper: < 4 kB)\n",
                cfg.numMCs, adrDrainBytes(cfg) / 1024.0);
    std::printf("BBB  (PBs, %u cores):     %8.1f kB  (paper: ~64 kB)\n",
                serverCores,
                bbbDrainBytes(cfg, serverCores) / 1024.0);
    std::printf("eADR (caches, %u cores):  %8.1f MB  (paper: ~42 MB)\n",
                serverCores,
                eadrDrainBytes(cfg, serverCores) / (1024.0 * 1024.0));
    return 0;
}
