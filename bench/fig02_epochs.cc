/**
 * @file
 * Figure 2: number of epochs and cross-thread dependencies within
 * 1 ms of execution (4 threads, release persistency).
 *
 * Expected shape (paper): the concurrent persistent indexes (CCEH,
 * Dash, RECIPE structures) show far more cross-thread dependencies
 * per millisecond than the WHISPER applications (Vacation, Memcached)
 * — the motivation for ASAP's eager cross-dependency handling.
 */

#include "bench/bench_util.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const double msTicks = 2.0e6; // 1 ms at 2 GHz

    SweepSpec spec;
    spec.workloads = args.workloads();
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {4};
    spec.params = args.params();
    spec.base = args.baseConfig();
    if (maybeRunShard(args, spec.expand()))
        return 0;
    const SweepResult sr = runBenchSweep(args, spec);

    std::printf("=== Figure 2: epochs and cross-thread dependencies "
                "per 1 ms (4 threads, RP) ===\n");
    std::printf("%-12s %12s %12s %14s\n", "workload", "epochs/ms",
                "crossdep/ms", "ticks");
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const RunResult &r = sr.at(i);
        const double scale = msTicks / static_cast<double>(r.runTicks);
        std::printf("%-12s %12.0f %12.0f %14llu\n",
                    sr.jobs[i].workload.c_str(), r.epochs * scale,
                    r.crossDeps * scale,
                    static_cast<unsigned long long>(r.runTicks));
    }
    finishSweep(args, sr);
    return 0;
}
