/**
 * @file
 * asapd: the always-on sweep service (src/svc).
 *
 * Start one per machine (or per shared cache directory) and point
 * clients at its socket:
 *
 *   build/bench/asapd --socket /tmp/asap.sock --cache-dir ~/.asap &
 *   build/bench/fig08_performance --daemon /tmp/asap.sock
 *   build/bench/asapctl --socket /tmp/asap.sock stats --json
 *
 * The daemon keeps the result cache and trace memo hot across
 * sweeps, schedules concurrent clients' jobs with priorities and
 * per-client fair sharing, and shuts down gracefully on SIGTERM or
 * `asapctl shutdown`: in-flight simulations drain into the cache,
 * queued jobs stream cancellations, held dist leases are released.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/log.hh"
#include "svc/daemon.hh"

using namespace asap;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--workers N] "
                 "[--cache-dir DIR] [--lease-ttl SEC] [--no-leases] "
                 "[--verbose]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonOptions opt;
    opt.handleSignals = true;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--socket") && i + 1 < argc)
            opt.socketPath = argv[++i];
        else if (!std::strcmp(arg, "--workers") && i + 1 < argc)
            opt.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        else if (!std::strcmp(arg, "--cache-dir") && i + 1 < argc)
            opt.cacheDir = argv[++i];
        else if (!std::strcmp(arg, "--lease-ttl") && i + 1 < argc)
            opt.leaseTtlSeconds = std::strtod(argv[++i], nullptr);
        else if (!std::strcmp(arg, "--no-leases"))
            opt.useLeases = false;
        else if (!std::strcmp(arg, "--verbose"))
            verbose = true;
        else
            usage(argv[0]);
    }
    if (opt.socketPath.empty())
        usage(argv[0]);
    if (!verbose)
        setLogQuiet(true);

    Daemon daemon(opt);
    std::string why;
    if (!daemon.start(&why)) {
        std::fprintf(stderr, "asapd: cannot start: %s\n",
                     why.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "asapd: listening on %s (cache %s, leases %s)\n",
                 opt.socketPath.c_str(),
                 opt.cacheDir.empty() ? "memory-only"
                                      : opt.cacheDir.c_str(),
                 (!opt.cacheDir.empty() && opt.useLeases) ? "on"
                                                          : "off");

    daemon.waitStopped();
    const DaemonStats ds = daemon.stats();
    std::fprintf(stderr,
                 "asapd: stopped after %.1fs (%llu connections, "
                 "%llu sweeps, %llu jobs, %llu results streamed)\n",
                 ds.uptimeSeconds,
                 (unsigned long long)ds.connections,
                 (unsigned long long)ds.sweepsAdmitted,
                 (unsigned long long)ds.jobsAdmitted,
                 (unsigned long long)ds.resultsStreamed);
    return 0;
}
