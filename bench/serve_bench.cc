/**
 * @file
 * Streaming request-serving bench: datacenter scenarios at scale.
 *
 * Runs serve:* scenarios (src/serve/) through the experiment engine
 * and prints, per scenario, each model's sustained request throughput
 * and the persist-latency tail (p50/p99/p999/max in nanoseconds).
 * Ops are generated incrementally by ServeStream, so --ops can be
 * 10^8+ without materializing a trace: RSS stays bounded by the
 * touched working set, not the op count. Peak RSS is reported on
 * stderr so the constant-memory claim is checkable from scripts.
 *
 * The scenario axis rides the cache key like any workload name, so
 * re-runs, --shard slices (bench/sweep_merge) and --daemon execution
 * dedup and reassemble exactly like the figure benches.
 */

#include <sys/resource.h>

#include "bench/bench_util.hh"
#include "serve/scenario.hh"

using namespace asap;

namespace
{

struct ServeBenchArgs
{
    BenchArgs bench;        //!< shared engine/shard/daemon flags
    std::string scenarios;  //!< comma list; empty = all
    std::string models = "baseline_rp,hops_rp,asap_rp,eadr_rp";
    std::string mediaPerMc; //!< per-MC profile list; empty = uniform
    unsigned cores = 8;
    unsigned mcs = 0;       //!< 0 = SimConfig default
    unsigned keySpace = 0;  //!< 0 = WorkloadParams default
    unsigned updatePct = 200; //!< >100 = WorkloadParams default
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ops N] [--seed S] [--scenario s1,s2,...]\n"
        "          [--models m1_pm1,...] [--cores N] [--mcs N]\n"
        "          [--keyspace N] [--update-pct P] [--media P]\n"
        "          [--media-per-mc p1,p2,...]\n"
        "          [--jobs N] [--par-domains N] [--json PATH]\n"
        "          [--progress] [--profile] [--daemon SOCKET]\n"
        "          [--list-scenarios] [--list-media]\n"
        "          [--shard i/n [--claim] [--salt S] "
        "[--lease-ttl SEC]]\n",
        argv0);
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        if (end > start)
            out.push_back(list.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::vector<ModelPair>
parseModels(const std::string &list)
{
    std::vector<ModelPair> models;
    for (const std::string &item : splitList(list)) {
        const std::size_t us = item.rfind('_');
        if (us == std::string::npos) {
            std::fprintf(stderr,
                         "error: bad --models entry '%s' (want e.g. "
                         "asap_rp)\n", item.c_str());
            std::exit(2);
        }
        models.emplace_back(parseModelKind(item.substr(0, us)),
                            parsePersistencyModel(item.substr(us + 1)));
    }
    return models;
}

ServeBenchArgs
parseArgs(int argc, char **argv)
{
    ServeBenchArgs a;
    a.bench.ops = 10000; // serving runs want volume, not 200 ops
    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--ops"))
            a.bench.ops = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--seed"))
            a.bench.seed = std::strtoull(need(i), nullptr, 0), ++i;
        else if (!std::strcmp(arg, "--scenario"))
            a.scenarios = need(i), ++i;
        else if (!std::strcmp(arg, "--models"))
            a.models = need(i), ++i;
        else if (!std::strcmp(arg, "--cores"))
            a.cores = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--mcs"))
            a.mcs = unsigned(std::strtoul(need(i), nullptr, 0)), ++i;
        else if (!std::strcmp(arg, "--keyspace"))
            a.keySpace = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--update-pct"))
            a.updatePct = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--media")) {
            a.bench.media = need(i), ++i;
            if (!isMediaProfile(a.bench.media)) {
                std::fprintf(stderr, "error: unknown media profile "
                             "'%s' (try --list-media)\n",
                             a.bench.media.c_str());
                std::exit(2);
            }
        } else if (!std::strcmp(arg, "--media-per-mc"))
            a.mediaPerMc = need(i), ++i;
        else if (!std::strcmp(arg, "--jobs"))
            a.bench.jobs = unsigned(std::strtoul(need(i), nullptr, 0)),
            ++i;
        else if (!std::strcmp(arg, "--par-domains")) {
            a.bench.parDomains =
                unsigned(std::strtoul(need(i), nullptr, 0));
            if (a.bench.parDomains == 0)
                a.bench.parDomains = 1;
            ++i;
        } else if (!std::strcmp(arg, "--par-spec-window"))
            a.bench.parSpecWindow =
                std::strtoull(need(i), nullptr, 0),
            ++i;
        else if (!std::strcmp(arg, "--json"))
            a.bench.jsonPath = need(i), ++i;
        else if (!std::strcmp(arg, "--progress"))
            a.bench.progress = true;
        else if (!std::strcmp(arg, "--profile"))
            a.bench.profile = true;
        else if (!std::strcmp(arg, "--daemon"))
            a.bench.daemonSocket = need(i), ++i;
        else if (!std::strcmp(arg, "--list-scenarios")) {
            for (const ServeScenario &sc : allServeScenarios())
                std::printf("%-18s %s\n", sc.workloadName().c_str(),
                            sc.description.c_str());
            std::exit(0);
        } else if (!std::strcmp(arg, "--list-media")) {
            for (const MediaProfileInfo &m : allMediaProfiles())
                std::printf("%-14s %s\n", m.name.c_str(),
                            m.description.c_str());
            std::exit(0);
        } else if (!std::strcmp(arg, "--shard")) {
            const std::string salt = a.bench.shard.salt; // keep --salt
            a.bench.shard = parseShardSpec(need(i)), ++i;
            a.bench.shard.salt = salt;
            a.bench.sharded = true;
        } else if (!std::strcmp(arg, "--claim"))
            a.bench.claim = true;
        else if (!std::strcmp(arg, "--salt"))
            a.bench.shard.salt = need(i), ++i;
        else if (!std::strcmp(arg, "--lease-ttl"))
            a.bench.leaseTtl = std::strtod(need(i), nullptr), ++i;
        else
            usage(argv[0]);
    }
    for (const std::string &p : splitList(a.mediaPerMc)) {
        if (!isMediaProfile(p)) {
            std::fprintf(stderr, "error: unknown per-MC media "
                         "profile '%s' (try --list-media)\n",
                         p.c_str());
            std::exit(2);
        }
    }
    return a;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const ServeBenchArgs a = parseArgs(argc, argv);

    std::vector<std::string> scenarios;
    if (a.scenarios.empty()) {
        for (const ServeScenario &sc : allServeScenarios())
            scenarios.push_back(sc.workloadName());
    } else {
        for (const std::string &s : splitList(a.scenarios)) {
            const ServeScenario *sc = tryFindServeScenario(s);
            if (!sc) {
                std::fprintf(stderr, "error: unknown scenario '%s' "
                             "(try --list-scenarios)\n", s.c_str());
                std::exit(2);
            }
            scenarios.push_back(sc->workloadName());
        }
    }
    const std::vector<ModelPair> models = parseModels(a.models);

    SimConfig base = a.bench.baseConfig();
    base.numCores = a.cores;
    if (a.mcs)
        base.numMCs = a.mcs;
    base.mediaPerMc = a.mediaPerMc;
    WorkloadParams params = a.bench.params();
    if (a.keySpace)
        params.keySpace = a.keySpace;
    if (a.updatePct <= 100)
        params.updatePct = a.updatePct;

    // Scenario-major, models innermost — same expansion order the
    // table below walks.
    std::vector<ExperimentJob> jobs;
    for (const std::string &sc : scenarios) {
        for (const ModelPair &mk : models) {
            ExperimentJob j;
            j.workload = sc;
            j.cfg = base;
            j.cfg.model = mk.first;
            j.cfg.persistency = mk.second;
            j.params = params;
            jobs.push_back(std::move(j));
        }
    }
    if (maybeRunShard(a.bench, jobs))
        return 0;
    const SweepResult sr = runBenchJobs(a.bench, std::move(jobs));

    auto ns = [](std::uint64_t ticks) {
        return double(ticks) / clockGHz;
    };
    std::printf("=== Serving scenarios: %zu scenarios x %zu models "
                "(%u cores, %u ops/thread) ===\n",
                scenarios.size(), models.size(), a.cores,
                a.bench.ops);
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        std::printf("\n--- %s ---\n", scenarios[s].c_str());
        std::printf("%-12s %12s %10s %8s  persist-latency (ns)\n", "",
                    "", "", "");
        std::printf("%-12s %12s %10s %8s %8s %8s %8s %9s\n",
                    "model", "runTicks", "requests", "Mreq/s", "p50",
                    "p99", "p999", "max");
        for (std::size_t k = 0; k < models.size(); ++k) {
            const RunResult &r = sr.at(s * models.size() + k);
            const std::string label = toString(models[k].first) +
                                      "_" +
                                      toString(models[k].second);
            const double seconds =
                double(r.runTicks) / (clockGHz * 1e9);
            const double mreqs =
                seconds > 0
                    ? double(r.serveRequests) / seconds / 1e6
                    : 0.0;
            std::printf("%-12s %12llu %10llu %8.3f %8.0f %8.0f "
                        "%8.0f %9.0f\n",
                        label.c_str(),
                        (unsigned long long)r.runTicks,
                        (unsigned long long)r.serveRequests, mreqs,
                        ns(r.persistP50), ns(r.persistP99),
                        ns(r.persistP999), ns(r.persistMax));
        }
    }
    finishSweep(a.bench, sr);

    // Peak RSS on stderr: the constant-memory claim, checkable by
    // scripts/check.sh (Linux ru_maxrss is in kilobytes).
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        std::fprintf(stderr, "[rss] peak %ld KB\n", ru.ru_maxrss);
    return 0;
}
