/**
 * @file
 * asap_run: command-line simulation driver (the library's equivalent
 * of the artifact's run.sh + gem5 invocation).
 *
 * Usage:
 *   asap_run <workload> [key=value ...]
 *
 * Accepted keys: every SimConfig knob (model=, persistency=,
 * numCores=, rtEntries=, ...) plus ops=<N> and updatePct=<P> for the
 * workload, and saveTrace=<path> / loadTrace=<path> to record once
 * and replay across models. Prints the full gem5-style stats dump
 * (Table VI names included).
 *
 * Examples:
 *   asap_run cceh model=asap persistency=rp numCores=8
 *   asap_run nstore model=hops ops=500
 *   asap_run serve:kv-zipf model=asap numCores=4 ops=5000
 *   asap_run cceh saveTrace=/tmp/cceh.trace
 *   asap_run cceh loadTrace=/tmp/cceh.trace model=baseline
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "harness/system.hh"
#include "pm/recorder.hh"
#include "pm/trace_io.hh"
#include "serve/op_stream.hh"
#include "serve/scenario.hh"
#include "workloads/registry.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <workload> [key=value ...]\n\n",
                     argv[0]);
        std::fprintf(stderr, "workloads:\n");
        for (const WorkloadInfo &w : allWorkloads()) {
            std::fprintf(stderr, "  %-12s %s\n", w.name.c_str(),
                         w.description.c_str());
        }
        return 2;
    }

    SimConfig cfg;
    WorkloadParams params;
    params.opsPerThread = 200;
    std::string save_path, load_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("ops=", 0) == 0) {
            params.opsPerThread = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 4, nullptr, 0));
        } else if (arg.rfind("updatePct=", 0) == 0) {
            params.updatePct = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 10, nullptr, 0));
        } else if (arg.rfind("saveTrace=", 0) == 0) {
            save_path = arg.substr(10);
        } else if (arg.rfind("loadTrace=", 0) == 0) {
            load_path = arg.substr(10);
        } else {
            cfg.override(arg);
        }
    }
    params.seed = cfg.seed;

    std::printf("workload=%s model=%s persistency=%s cores=%u mcs=%u "
                "ops=%u\n",
                argv[1], toString(cfg.model).c_str(),
                toString(cfg.persistency).c_str(), cfg.numCores,
                cfg.numMCs, params.opsPerThread);

    System sys(cfg);
    std::unique_ptr<ServeStream> stream;
    if (load_path.empty() && isServeWorkload(argv[1])) {
        // Serving scenarios generate ops on demand; only materialize
        // (under the recorder's op cap) when a trace file was asked
        // for, otherwise run the constant-memory streaming path.
        const ServeScenario &sc = findServeScenario(argv[1]);
        stream = std::make_unique<ServeStream>(sc, cfg.numCores, params);
        if (!save_path.empty()) {
            TraceSet traces =
                materializeStream(*stream, TraceRecorder::traceOpCap());
            saveTrace(traces, save_path);
            sys.loadTrace(std::move(traces));
        } else {
            sys.loadStream(*stream);
        }
    } else {
        TraceSet traces = load_path.empty()
                              ? buildTrace(argv[1], cfg.numCores, params)
                              : loadTrace(load_path);
        if (!save_path.empty())
            saveTrace(traces, save_path);
        sys.loadTrace(std::move(traces));
    }
    const bool ok = sys.run();
    std::printf("%s\n", sys.stats().dump().c_str());
    std::printf("sim.finished %d\n", ok ? 1 : 0);
    return ok ? 0 : 1;
}
