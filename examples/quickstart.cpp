/**
 * @file
 * Quickstart: build a recoverable program, run it on the ASAP
 * simulator, and inspect the stats.
 *
 * The flow every user of this library follows:
 *   1. record a multi-threaded PM program through a TraceRecorder
 *      (stores, ofence/dfence, locks);
 *   2. build a System with the hardware model of interest;
 *   3. replay and read the gem5-style statistics.
 */

#include <cstdio>

#include "harness/system.hh"
#include "pm/recorder.hh"
#include "sim/config.hh"

using namespace asap;

int
main()
{
    // --- 1. Record a small recoverable program -------------------------
    // Two threads append records to a shared persistent log under a
    // lock: the classic "write payload, ofence, publish header"
    // recoverable idiom.
    const unsigned threads = 2;
    TraceRecorder rec(threads, /*seed=*/42);

    const std::uint64_t log = rec.space().alloc(64 * 1024, lineBytes);
    const std::uint64_t head = rec.space().alloc(64, lineBytes);
    PmLock lock = rec.makeLock();

    std::uint64_t next_slot = 1;
    for (unsigned round = 0; round < 50; ++round) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 150); // prepare the record
            rec.lockAcquire(t, lock);
            const std::uint64_t slot = next_slot++;
            // Payload first...
            rec.store64(t, log + slot * 64, 0xC0FFEE00 + slot);
            rec.store64(t, log + slot * 64 + 8, slot);
            rec.ofence(t);
            // ...then the head pointer that makes it reachable.
            rec.store64(t, head, slot);
            rec.ofence(t);
            rec.lockRelease(t, lock);
        }
    }
    // A durability point before answering a client.
    for (unsigned t = 0; t < threads; ++t)
        rec.dfence(t);

    // --- 2. Build the machine -----------------------------------------
    SimConfig cfg;
    cfg.numCores = threads;
    cfg.model = ModelKind::Asap;              // the paper's design
    cfg.persistency = PersistencyModel::Release;

    System sys(cfg);
    sys.loadTrace(rec.finish());

    // --- 3. Run and inspect --------------------------------------------
    if (!sys.run()) {
        std::fprintf(stderr, "simulation did not finish!\n");
        return 1;
    }

    std::printf("quickstart: ran %llu ops in %llu cycles (%.2f us)\n",
                static_cast<unsigned long long>(
                    sys.stats().get("core.opsRetired")),
                static_cast<unsigned long long>(sys.runTicks()),
                ticksToNs(sys.runTicks()) / 1000.0);
    std::printf("  PM media writes:        %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().get("mc.pmWrites")));
    std::printf("  early (spec) flushes:   %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().get("pb.totSpecWrites")));
    std::printf("  undo records created:   %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().get("rt.totalUndo")));
    std::printf("  dfence stall cycles:    %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().get("core.dfenceStalled")));
    std::printf("  epochs committed:       %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().get("et.epochsCommitted")));
    return 0;
}
