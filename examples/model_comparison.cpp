/**
 * @file
 * Model comparison: run one workload under all four persistence
 * models and print the headline metrics side by side — a miniature
 * Figure 8 for a single workload, with the stall breakdown that
 * explains *why* the models differ.
 *
 * Usage: model_comparison [workload] [opsPerThread]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hh"
#include "sim/log.hh"

using namespace asap;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const std::string workload = argc > 1 ? argv[1] : "cceh";
    WorkloadParams p;
    p.opsPerThread =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 150;
    p.seed = 11;

    struct Row
    {
        const char *label;
        ModelKind kind;
        PersistencyModel pm;
    };
    const Row rows[] = {
        {"baseline", ModelKind::Baseline, PersistencyModel::Release},
        {"HOPS_EP", ModelKind::Hops, PersistencyModel::Epoch},
        {"HOPS_RP", ModelKind::Hops, PersistencyModel::Release},
        {"ASAP_EP", ModelKind::Asap, PersistencyModel::Epoch},
        {"ASAP_RP", ModelKind::Asap, PersistencyModel::Release},
        {"eADR/BBB", ModelKind::Eadr, PersistencyModel::Release},
    };

    std::printf("workload: %s (%u ops/thread, 4 cores, 2 MCs)\n\n",
                workload.c_str(), p.opsPerThread);
    std::printf("%-9s %10s %8s %10s %10s %10s %8s\n", "model",
                "cycles", "speedup", "fenceStall", "pbBlocked",
                "pmWrites", "undos");

    std::uint64_t base_ticks = 0;
    for (const Row &row : rows) {
        RunResult r = runExperiment(workload, row.kind, row.pm, 4, p);
        if (row.kind == ModelKind::Baseline)
            base_ticks = r.runTicks;
        const double speedup =
            static_cast<double>(base_ticks) /
            static_cast<double>(r.runTicks);
        std::printf("%-9s %10llu %7.2fx %10llu %10llu %10llu %8llu\n",
                    row.label,
                    static_cast<unsigned long long>(r.runTicks),
                    speedup,
                    static_cast<unsigned long long>(
                        r.dfenceStalled + r.sfenceStalled),
                    static_cast<unsigned long long>(r.cyclesBlocked),
                    static_cast<unsigned long long>(r.pmWrites),
                    static_cast<unsigned long long>(r.totalUndo));
    }
    std::printf("\nExpected shape (paper Fig. 8): baseline slowest; "
                "ASAP above HOPS and within a few %% of eADR.\n");
    return 0;
}
