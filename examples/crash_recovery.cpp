/**
 * @file
 * Crash-recovery demo: inject power failures into a CCEH hash-table
 * run at random points and verify, with the Section VI checker, that
 * ASAP's undo rewind always leaves NVM in a consistent state — while
 * showing what the recovery tables actually did at each crash.
 */

#include <cstdio>

#include "harness/system.hh"
#include "recovery/checker.hh"
#include "sim/rng.hh"
#include "workloads/registry.hh"

using namespace asap;

int
main()
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.model = ModelKind::Asap;

    WorkloadParams params;
    params.opsPerThread = 60;
    params.seed = 7;

    // Measure an uninterrupted run to know the full runtime.
    Tick total = 0;
    {
        System probe(cfg);
        probe.loadTrace(buildTrace("cceh", cfg.numCores, params));
        probe.run();
        total = probe.runTicks();
    }
    std::printf("full run: %llu cycles; injecting crashes...\n\n",
                static_cast<unsigned long long>(total));
    std::printf("%10s %10s %10s %10s %10s %8s\n", "crash@", "undos",
                "delays", "rewinds", "adrDrain", "verdict");

    Rng rng(2026);
    unsigned consistent = 0;
    const unsigned trials = 10;
    for (unsigned i = 0; i < trials; ++i) {
        const Tick when = 1 + rng.below(total);
        System sys(cfg, /*keep_run_log=*/true);
        sys.loadTrace(buildTrace("cceh", cfg.numCores, params));
        sys.crashAt(when);

        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        consistent += r.ok ? 1 : 0;
        std::printf("%10llu %10llu %10llu %10llu %10llu %8s\n",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(
                        sys.stats().get("rt.totalUndo")),
                    static_cast<unsigned long long>(
                        sys.stats().get("rt.totalDelay")),
                    static_cast<unsigned long long>(
                        sys.stats().get("mc.undoRewindWrites")),
                    static_cast<unsigned long long>(
                        sys.stats().get("mc.adrDrainWrites")),
                    r.ok ? "OK" : "BROKEN");
        if (!r.ok)
            std::printf("    violation: %s\n", r.message.c_str());
    }

    std::printf("\n%u/%u crashes recovered to a consistent state.\n",
                consistent, trials);
    std::printf("(Theorem 2: memory is always consistent after the "
                "ADR drain + undo rewind.)\n");
    return consistent == trials ? 0 : 1;
}
