# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(asap_tests "/root/repo/build/tests/asap_tests")
set_tests_properties(asap_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
