# Empty compiler generated dependencies file for asap_tests.
# This may be replaced when dependencies are built.
