
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_checker.cc" "tests/CMakeFiles/asap_tests.dir/test_checker.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_checker.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/asap_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_core_replay.cc" "tests/CMakeFiles/asap_tests.dir/test_core_replay.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_core_replay.cc.o.d"
  "/root/repo/tests/test_costmodel.cc" "tests/CMakeFiles/asap_tests.dir/test_costmodel.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_costmodel.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/asap_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/asap_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/asap_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/asap_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_persist.cc" "tests/CMakeFiles/asap_tests.dir/test_persist.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_persist.cc.o.d"
  "/root/repo/tests/test_pm.cc" "tests/CMakeFiles/asap_tests.dir/test_pm.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_pm.cc.o.d"
  "/root/repo/tests/test_recovery_table.cc" "tests/CMakeFiles/asap_tests.dir/test_recovery_table.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_recovery_table.cc.o.d"
  "/root/repo/tests/test_robustness.cc" "tests/CMakeFiles/asap_tests.dir/test_robustness.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_robustness.cc.o.d"
  "/root/repo/tests/test_rt_fuzz.cc" "tests/CMakeFiles/asap_tests.dir/test_rt_fuzz.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_rt_fuzz.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/asap_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/asap_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/asap_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/asap_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/asap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/asap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/asap_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/asap_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/asap_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/asap_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/asap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/asap_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/asap_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
