file(REMOVE_RECURSE
  "CMakeFiles/asap_run.dir/asap_run.cpp.o"
  "CMakeFiles/asap_run.dir/asap_run.cpp.o.d"
  "asap_run"
  "asap_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
