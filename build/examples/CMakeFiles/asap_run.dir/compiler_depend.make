# Empty compiler generated dependencies file for asap_run.
# This may be replaced when dependencies are built.
