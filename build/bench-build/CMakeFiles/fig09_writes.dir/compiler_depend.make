# Empty compiler generated dependencies file for fig09_writes.
# This may be replaced when dependencies are built.
