file(REMOVE_RECURSE
  "../bench/fig09_writes"
  "../bench/fig09_writes.pdb"
  "CMakeFiles/fig09_writes.dir/fig09_writes.cc.o"
  "CMakeFiles/fig09_writes.dir/fig09_writes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
