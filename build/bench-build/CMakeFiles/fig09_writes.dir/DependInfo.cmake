
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_writes.cc" "bench-build/CMakeFiles/fig09_writes.dir/fig09_writes.cc.o" "gcc" "bench-build/CMakeFiles/fig09_writes.dir/fig09_writes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/asap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/asap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/asap_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/asap_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/asap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/asap_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/asap_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
