file(REMOVE_RECURSE
  "../bench/fig11_pb_occupancy"
  "../bench/fig11_pb_occupancy.pdb"
  "CMakeFiles/fig11_pb_occupancy.dir/fig11_pb_occupancy.cc.o"
  "CMakeFiles/fig11_pb_occupancy.dir/fig11_pb_occupancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pb_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
