# Empty compiler generated dependencies file for fig11_pb_occupancy.
# This may be replaced when dependencies are built.
