file(REMOVE_RECURSE
  "../bench/fig03_pb_stalls"
  "../bench/fig03_pb_stalls.pdb"
  "CMakeFiles/fig03_pb_stalls.dir/fig03_pb_stalls.cc.o"
  "CMakeFiles/fig03_pb_stalls.dir/fig03_pb_stalls.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pb_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
