# Empty dependencies file for fig03_pb_stalls.
# This may be replaced when dependencies are built.
