
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab05_hwcost.cc" "bench-build/CMakeFiles/tab05_hwcost.dir/tab05_hwcost.cc.o" "gcc" "bench-build/CMakeFiles/tab05_hwcost.dir/tab05_hwcost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/asap_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
