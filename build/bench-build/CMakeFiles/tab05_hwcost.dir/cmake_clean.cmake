file(REMOVE_RECURSE
  "../bench/tab05_hwcost"
  "../bench/tab05_hwcost.pdb"
  "CMakeFiles/tab05_hwcost.dir/tab05_hwcost.cc.o"
  "CMakeFiles/tab05_hwcost.dir/tab05_hwcost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
