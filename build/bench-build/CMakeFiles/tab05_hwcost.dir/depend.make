# Empty dependencies file for tab05_hwcost.
# This may be replaced when dependencies are built.
