# Empty dependencies file for fig02_epochs.
# This may be replaced when dependencies are built.
