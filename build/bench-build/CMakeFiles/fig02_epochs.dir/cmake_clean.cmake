file(REMOVE_RECURSE
  "../bench/fig02_epochs"
  "../bench/fig02_epochs.pdb"
  "CMakeFiles/fig02_epochs.dir/fig02_epochs.cc.o"
  "CMakeFiles/fig02_epochs.dir/fig02_epochs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
