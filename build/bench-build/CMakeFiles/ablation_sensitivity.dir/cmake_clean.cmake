file(REMOVE_RECURSE
  "../bench/ablation_sensitivity"
  "../bench/ablation_sensitivity.pdb"
  "CMakeFiles/ablation_sensitivity.dir/ablation_sensitivity.cc.o"
  "CMakeFiles/ablation_sensitivity.dir/ablation_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
