file(REMOVE_RECURSE
  "../bench/fig08_performance"
  "../bench/fig08_performance.pdb"
  "CMakeFiles/fig08_performance.dir/fig08_performance.cc.o"
  "CMakeFiles/fig08_performance.dir/fig08_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
