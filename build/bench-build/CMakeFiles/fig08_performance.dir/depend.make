# Empty dependencies file for fig08_performance.
# This may be replaced when dependencies are built.
