file(REMOVE_RECURSE
  "../bench/fig10_scaling"
  "../bench/fig10_scaling.pdb"
  "CMakeFiles/fig10_scaling.dir/fig10_scaling.cc.o"
  "CMakeFiles/fig10_scaling.dir/fig10_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
