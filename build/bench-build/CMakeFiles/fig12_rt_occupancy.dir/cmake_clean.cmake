file(REMOVE_RECURSE
  "../bench/fig12_rt_occupancy"
  "../bench/fig12_rt_occupancy.pdb"
  "CMakeFiles/fig12_rt_occupancy.dir/fig12_rt_occupancy.cc.o"
  "CMakeFiles/fig12_rt_occupancy.dir/fig12_rt_occupancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rt_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
