# Empty compiler generated dependencies file for fig12_rt_occupancy.
# This may be replaced when dependencies are built.
