# Empty compiler generated dependencies file for fig13_bandwidth.
# This may be replaced when dependencies are built.
