file(REMOVE_RECURSE
  "../bench/fig13_bandwidth"
  "../bench/fig13_bandwidth.pdb"
  "CMakeFiles/fig13_bandwidth.dir/fig13_bandwidth.cc.o"
  "CMakeFiles/fig13_bandwidth.dir/fig13_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
