
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/epoch_table.cc" "src/persist/CMakeFiles/asap_persist.dir/epoch_table.cc.o" "gcc" "src/persist/CMakeFiles/asap_persist.dir/epoch_table.cc.o.d"
  "/root/repo/src/persist/persist_buffer.cc" "src/persist/CMakeFiles/asap_persist.dir/persist_buffer.cc.o" "gcc" "src/persist/CMakeFiles/asap_persist.dir/persist_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
