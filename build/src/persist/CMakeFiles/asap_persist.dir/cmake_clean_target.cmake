file(REMOVE_RECURSE
  "libasap_persist.a"
)
