file(REMOVE_RECURSE
  "CMakeFiles/asap_persist.dir/epoch_table.cc.o"
  "CMakeFiles/asap_persist.dir/epoch_table.cc.o.d"
  "CMakeFiles/asap_persist.dir/persist_buffer.cc.o"
  "CMakeFiles/asap_persist.dir/persist_buffer.cc.o.d"
  "libasap_persist.a"
  "libasap_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
