# Empty dependencies file for asap_persist.
# This may be replaced when dependencies are built.
