# Empty dependencies file for asap_core.
# This may be replaced when dependencies are built.
