file(REMOVE_RECURSE
  "libasap_core.a"
)
