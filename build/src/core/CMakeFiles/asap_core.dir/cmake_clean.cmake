file(REMOVE_RECURSE
  "CMakeFiles/asap_core.dir/asap_model.cc.o"
  "CMakeFiles/asap_core.dir/asap_model.cc.o.d"
  "CMakeFiles/asap_core.dir/recovery_table.cc.o"
  "CMakeFiles/asap_core.dir/recovery_table.cc.o.d"
  "libasap_core.a"
  "libasap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
