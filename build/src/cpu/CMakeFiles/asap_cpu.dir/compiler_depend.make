# Empty compiler generated dependencies file for asap_cpu.
# This may be replaced when dependencies are built.
