file(REMOVE_RECURSE
  "CMakeFiles/asap_cpu.dir/core.cc.o"
  "CMakeFiles/asap_cpu.dir/core.cc.o.d"
  "libasap_cpu.a"
  "libasap_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
