file(REMOVE_RECURSE
  "libasap_cpu.a"
)
