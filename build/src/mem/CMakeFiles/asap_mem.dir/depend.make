# Empty dependencies file for asap_mem.
# This may be replaced when dependencies are built.
