file(REMOVE_RECURSE
  "libasap_mem.a"
)
