file(REMOVE_RECURSE
  "CMakeFiles/asap_mem.dir/memory_controller.cc.o"
  "CMakeFiles/asap_mem.dir/memory_controller.cc.o.d"
  "libasap_mem.a"
  "libasap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
