file(REMOVE_RECURSE
  "CMakeFiles/asap_costmodel.dir/cacti_lite.cc.o"
  "CMakeFiles/asap_costmodel.dir/cacti_lite.cc.o.d"
  "libasap_costmodel.a"
  "libasap_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
