# Empty compiler generated dependencies file for asap_costmodel.
# This may be replaced when dependencies are built.
