file(REMOVE_RECURSE
  "libasap_costmodel.a"
)
