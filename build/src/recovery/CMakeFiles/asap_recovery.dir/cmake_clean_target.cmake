file(REMOVE_RECURSE
  "libasap_recovery.a"
)
