# Empty compiler generated dependencies file for asap_recovery.
# This may be replaced when dependencies are built.
