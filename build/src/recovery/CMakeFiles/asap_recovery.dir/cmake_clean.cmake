file(REMOVE_RECURSE
  "CMakeFiles/asap_recovery.dir/checker.cc.o"
  "CMakeFiles/asap_recovery.dir/checker.cc.o.d"
  "libasap_recovery.a"
  "libasap_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
