file(REMOVE_RECURSE
  "CMakeFiles/asap_harness.dir/runner.cc.o"
  "CMakeFiles/asap_harness.dir/runner.cc.o.d"
  "CMakeFiles/asap_harness.dir/system.cc.o"
  "CMakeFiles/asap_harness.dir/system.cc.o.d"
  "libasap_harness.a"
  "libasap_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
