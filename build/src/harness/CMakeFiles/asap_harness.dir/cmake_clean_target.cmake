file(REMOVE_RECURSE
  "libasap_harness.a"
)
