# Empty dependencies file for asap_harness.
# This may be replaced when dependencies are built.
