
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/recorder.cc" "src/pm/CMakeFiles/asap_pm.dir/recorder.cc.o" "gcc" "src/pm/CMakeFiles/asap_pm.dir/recorder.cc.o.d"
  "/root/repo/src/pm/trace_io.cc" "src/pm/CMakeFiles/asap_pm.dir/trace_io.cc.o" "gcc" "src/pm/CMakeFiles/asap_pm.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/asap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/asap_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/asap_persist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
