file(REMOVE_RECURSE
  "CMakeFiles/asap_pm.dir/recorder.cc.o"
  "CMakeFiles/asap_pm.dir/recorder.cc.o.d"
  "CMakeFiles/asap_pm.dir/trace_io.cc.o"
  "CMakeFiles/asap_pm.dir/trace_io.cc.o.d"
  "libasap_pm.a"
  "libasap_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
