file(REMOVE_RECURSE
  "libasap_pm.a"
)
