# Empty dependencies file for asap_pm.
# This may be replaced when dependencies are built.
