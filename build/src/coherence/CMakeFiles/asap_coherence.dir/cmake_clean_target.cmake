file(REMOVE_RECURSE
  "libasap_coherence.a"
)
