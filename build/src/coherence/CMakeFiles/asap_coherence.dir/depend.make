# Empty dependencies file for asap_coherence.
# This may be replaced when dependencies are built.
