file(REMOVE_RECURSE
  "CMakeFiles/asap_coherence.dir/cache_hierarchy.cc.o"
  "CMakeFiles/asap_coherence.dir/cache_hierarchy.cc.o.d"
  "libasap_coherence.a"
  "libasap_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
