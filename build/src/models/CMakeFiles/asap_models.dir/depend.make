# Empty dependencies file for asap_models.
# This may be replaced when dependencies are built.
