file(REMOVE_RECURSE
  "CMakeFiles/asap_models.dir/baseline_model.cc.o"
  "CMakeFiles/asap_models.dir/baseline_model.cc.o.d"
  "CMakeFiles/asap_models.dir/hops_model.cc.o"
  "CMakeFiles/asap_models.dir/hops_model.cc.o.d"
  "libasap_models.a"
  "libasap_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
