
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/baseline_model.cc" "src/models/CMakeFiles/asap_models.dir/baseline_model.cc.o" "gcc" "src/models/CMakeFiles/asap_models.dir/baseline_model.cc.o.d"
  "/root/repo/src/models/hops_model.cc" "src/models/CMakeFiles/asap_models.dir/hops_model.cc.o" "gcc" "src/models/CMakeFiles/asap_models.dir/hops_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/persist/CMakeFiles/asap_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
