file(REMOVE_RECURSE
  "libasap_models.a"
)
