# Empty compiler generated dependencies file for asap_sim.
# This may be replaced when dependencies are built.
