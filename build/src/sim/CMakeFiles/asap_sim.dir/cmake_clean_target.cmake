file(REMOVE_RECURSE
  "libasap_sim.a"
)
