file(REMOVE_RECURSE
  "CMakeFiles/asap_sim.dir/config.cc.o"
  "CMakeFiles/asap_sim.dir/config.cc.o.d"
  "CMakeFiles/asap_sim.dir/log.cc.o"
  "CMakeFiles/asap_sim.dir/log.cc.o.d"
  "CMakeFiles/asap_sim.dir/stats.cc.o"
  "CMakeFiles/asap_sim.dir/stats.cc.o.d"
  "libasap_sim.a"
  "libasap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
