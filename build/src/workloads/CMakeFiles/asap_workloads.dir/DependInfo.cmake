
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/atlas.cc" "src/workloads/CMakeFiles/asap_workloads.dir/atlas.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/atlas.cc.o.d"
  "/root/repo/src/workloads/cceh.cc" "src/workloads/CMakeFiles/asap_workloads.dir/cceh.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/cceh.cc.o.d"
  "/root/repo/src/workloads/dash.cc" "src/workloads/CMakeFiles/asap_workloads.dir/dash.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/dash.cc.o.d"
  "/root/repo/src/workloads/fast_fair.cc" "src/workloads/CMakeFiles/asap_workloads.dir/fast_fair.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/fast_fair.cc.o.d"
  "/root/repo/src/workloads/part.cc" "src/workloads/CMakeFiles/asap_workloads.dir/part.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/part.cc.o.d"
  "/root/repo/src/workloads/pclht.cc" "src/workloads/CMakeFiles/asap_workloads.dir/pclht.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/pclht.cc.o.d"
  "/root/repo/src/workloads/pmasstree.cc" "src/workloads/CMakeFiles/asap_workloads.dir/pmasstree.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/pmasstree.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/asap_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/asap_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/synthetic.cc.o.d"
  "/root/repo/src/workloads/whisper.cc" "src/workloads/CMakeFiles/asap_workloads.dir/whisper.cc.o" "gcc" "src/workloads/CMakeFiles/asap_workloads.dir/whisper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pm/CMakeFiles/asap_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/asap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/asap_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/asap_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asap_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
