file(REMOVE_RECURSE
  "libasap_workloads.a"
)
