# Empty dependencies file for asap_workloads.
# This may be replaced when dependencies are built.
