file(REMOVE_RECURSE
  "CMakeFiles/asap_workloads.dir/atlas.cc.o"
  "CMakeFiles/asap_workloads.dir/atlas.cc.o.d"
  "CMakeFiles/asap_workloads.dir/cceh.cc.o"
  "CMakeFiles/asap_workloads.dir/cceh.cc.o.d"
  "CMakeFiles/asap_workloads.dir/dash.cc.o"
  "CMakeFiles/asap_workloads.dir/dash.cc.o.d"
  "CMakeFiles/asap_workloads.dir/fast_fair.cc.o"
  "CMakeFiles/asap_workloads.dir/fast_fair.cc.o.d"
  "CMakeFiles/asap_workloads.dir/part.cc.o"
  "CMakeFiles/asap_workloads.dir/part.cc.o.d"
  "CMakeFiles/asap_workloads.dir/pclht.cc.o"
  "CMakeFiles/asap_workloads.dir/pclht.cc.o.d"
  "CMakeFiles/asap_workloads.dir/pmasstree.cc.o"
  "CMakeFiles/asap_workloads.dir/pmasstree.cc.o.d"
  "CMakeFiles/asap_workloads.dir/registry.cc.o"
  "CMakeFiles/asap_workloads.dir/registry.cc.o.d"
  "CMakeFiles/asap_workloads.dir/synthetic.cc.o"
  "CMakeFiles/asap_workloads.dir/synthetic.cc.o.d"
  "CMakeFiles/asap_workloads.dir/whisper.cc.o"
  "CMakeFiles/asap_workloads.dir/whisper.cc.o.d"
  "libasap_workloads.a"
  "libasap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
