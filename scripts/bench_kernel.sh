#!/usr/bin/env bash
# Regenerate BENCH_kernel.json: the event-kernel throughput record,
# including the domain-parallel scaling curve (committed as the seed
# machine's numbers; regenerate on your own hardware with this
# script).
#
# Two passes over the same workload x model grid:
#   conservative  --par-spec-window 0   pure lookahead windows
#   speculative   --par-spec-window 64  MC domains bet past their
#                                       bound; misspec/rollback
#                                       columns count the failures
#
# Simulated results are bit-identical across the whole axis (tests
# and scripts/check.sh enforce that); only host throughput varies.
# On hosts with fewer cores than domains the curve will show a
# slowdown, not a speedup — that is the honest number, commit it
# anyway.
#
# Usage: scripts/bench_kernel.sh [build_dir] [out_json]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_kernel.json}"
OPS="${ASAP_KERNEL_BENCH_OPS:-400}"
REPS="${ASAP_KERNEL_BENCH_REPS:-3}"
PAR="${ASAP_KERNEL_BENCH_PAR:-1,2,4}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

unset ASAP_CACHE_DIR ASAP_TRACE_DIR

"$BUILD/bench/kernel_bench" --ops "$OPS" --reps "$REPS" \
    --par-domains "$PAR" --par-spec-window 0 \
    --json "$TMP/cons.json" > "$TMP/cons.txt"
"$BUILD/bench/kernel_bench" --ops "$OPS" --reps "$REPS" \
    --par-domains "$PAR" --par-spec-window 64 \
    --json "$TMP/spec.json" > "$TMP/spec.txt"

{
    printf '{\n'
    printf '  "bench": "kernel-scaling",\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -sr)"
    printf '  "cpus": %s,\n' "$(nproc)"
    printf '  "parDomains": "%s",\n' "$PAR"
    printf '  "conservative": '
    cat "$TMP/cons.json"
    printf '  ,\n  "speculative": '
    cat "$TMP/spec.json"
    printf '}\n'
} > "$OUT"

echo "bench_kernel.sh: wrote $OUT"
cat "$TMP/cons.txt"
cat "$TMP/spec.txt"
