#!/usr/bin/env bash
# Regenerate BENCH_permute.json: crash-state permuter engine
# throughput on one canonical exhaustive crash point (cceh, asap_rp,
# 8 cores, 400 ops/thread, crash tick 268000 with drop-undo fault
# atoms: 17 atoms = 131072 reachable states, fully enumerated).
#
# Three engines over the identical state space:
#   naive        the pre-incremental loop: full image fingerprint and
#                a fresh log index per distinct image
#   incremental  Gray-code walk, XOR fingerprint, shared CheckerIndex,
#                delta-check scope
#   parallel     the incremental engine on 8 workers (on hosts with
#                few cores this adds overhead, not speedup — commit
#                the honest number anyway)
#
# Verdicts are bit-identical across engines (tests and
# scripts/check.sh enforce that); only host throughput varies. The
# committed file records the seed machine; regenerate on your own
# hardware with this script.
#
# Usage: scripts/bench_permute.sh [build_dir] [out_json]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_permute.json}"
REPS="${ASAP_PERMUTE_BENCH_REPS:-3}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

unset ASAP_CACHE_DIR ASAP_TRACE_DIR

POINT=(--repro --workload cceh --model asap --pm rp --cores 8
       --ops 400 --seed 1 --crash-tick 268000 --bound 131072
       --inject-fault drop-undo)

# run_engine <name> <extra args...>: best-of-REPS states/s, plus the
# verdict lines (rate excluded) for the cross-engine parity check.
run_engine() {
    local name="$1"
    shift
    local best_sps=0 best_ns=0 states=0
    for _ in $(seq "$REPS"); do
        "$BUILD/bench/crash_permute" "${POINT[@]}" "$@" \
            > "$TMP/$name.txt"
        local sps ms
        states=$(awk '/states checked/{print $3}' "$TMP/$name.txt")
        ms=$(awk -F'[( ]' '/check time/{print $5}' "$TMP/$name.txt")
        sps=$(grep -oE '\([0-9]+ states/s\)' "$TMP/$name.txt" |
              tr -dc '0-9')
        if [ "$sps" -gt "$best_sps" ]; then
            best_sps=$sps
            best_ns=$(awk -v ms="$ms" 'BEGIN{printf "%.0f", ms*1e6}')
        fi
    done
    grep -E 'verdict|states checked|inconsistent states' \
        "$TMP/$name.txt" > "$TMP/$name.verdict"
    printf '{ "engine": "%s", "statesChecked": %s, "bestNs": %s, "statesPerSec": %s }' \
        "$name" "$states" "$best_ns" "$best_sps"
}

ROW_NAIVE=$(run_engine naive --engine naive)
ROW_INC=$(run_engine incremental --engine incremental)
ROW_PAR=$(run_engine parallel --engine incremental --permute-jobs 8)

# Engines must agree on every verdict number.
cmp -s "$TMP/naive.verdict" "$TMP/incremental.verdict" ||
    { echo "bench_permute.sh: naive/incremental verdicts differ" >&2
      diff "$TMP/naive.verdict" "$TMP/incremental.verdict" >&2
      exit 1; }
cmp -s "$TMP/naive.verdict" "$TMP/parallel.verdict" ||
    { echo "bench_permute.sh: naive/parallel verdicts differ" >&2
      diff "$TMP/naive.verdict" "$TMP/parallel.verdict" >&2
      exit 1; }

NAIVE_SPS=$(echo "$ROW_NAIVE" | grep -oE '"statesPerSec": [0-9]+' |
            tr -dc '0-9')
INC_SPS=$(echo "$ROW_INC" | grep -oE '"statesPerSec": [0-9]+' |
          tr -dc '0-9')
SPEEDUP=$(awk -v a="$INC_SPS" -v b="$NAIVE_SPS" \
          'BEGIN{printf "%.1f", a/b}')

{
    printf '{\n'
    printf '  "bench": "permute-engines",\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -sr)"
    printf '  "cpus": %s,\n' "$(nproc)"
    printf '  "point": "cceh asap_rp cores=8 ops=400 seed=1 tick=268000 drop-undo exhaustive 2^17",\n'
    printf '  "reps": %s,\n' "$REPS"
    printf '  "incrementalSpeedup": %s,\n' "$SPEEDUP"
    printf '  "rows": [\n'
    printf '    %s,\n' "$ROW_NAIVE"
    printf '    %s,\n' "$ROW_INC"
    printf '    %s\n' "$ROW_PAR"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

echo "bench_permute.sh: wrote $OUT (incremental ${SPEEDUP}x naive)"
cat "$TMP/naive.verdict"
