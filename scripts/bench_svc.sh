#!/usr/bin/env bash
# Measure the sweep service's warm-vs-cold submit latency and write
# the result to BENCH_svc.json (committed as the seed machine's
# numbers; regenerate on your own hardware with this script).
#
# Cold: first submit of a sweep to a fresh daemon — every unique job
# simulates. Warm: the identical resubmit — served entirely from the
# daemon's hot in-memory cache, so the gap is the service's reason to
# exist.
#
# Usage: scripts/bench_svc.sh [build_dir] [out_json]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_svc.json}"
OPS="${ASAP_SVC_BENCH_OPS:-150}"
WORKLOADS="${ASAP_SVC_BENCH_WORKLOADS:-queue,heap,cceh,skiplist}"
CORES="${ASAP_SVC_BENCH_CORES:-2,4}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
SOCK="$TMP/asap.sock"

unset ASAP_CACHE_DIR ASAP_TRACE_DIR

"$BUILD/bench/asapd" --socket "$SOCK" --workers "$(nproc)" \
    2> "$TMP/asapd.log" &
ASAPD_PID=$!
for _ in $(seq 50); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
"$BUILD/bench/asapctl" --socket "$SOCK" ping > /dev/null

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

submit() {
    "$BUILD/bench/asapctl" --socket "$SOCK" submit \
        --workloads "$WORKLOADS" --cores "$CORES" --ops "$OPS" \
        --models asap_rp,hops_ep 2>/dev/null
}

T0=$(now_ms); COLD_LINE="$(submit)"; T1=$(now_ms)
COLD_MS=$((T1 - T0))
T0=$(now_ms); WARM_LINE="$(submit)"; T1=$(now_ms)
WARM_MS=$((T1 - T0))

# The warm submit must be a pure cache pass — 0 simulated.
echo "$WARM_LINE" | grep -q ' 0 simulated,' || {
    echo "bench_svc.sh: warm submit was not fully cached: $WARM_LINE" >&2
    exit 1
}

STATS="$("$BUILD/bench/asapctl" --socket "$SOCK" stats --json)"
"$BUILD/bench/asapctl" --socket "$SOCK" shutdown > /dev/null
wait "$ASAPD_PID"

JOBS="$(echo "$COLD_LINE" | sed -E 's/.*\[sweep: ([0-9]+) jobs.*/\1/')"
SPEEDUP="$(awk -v c="$COLD_MS" -v w="$WARM_MS" \
    'BEGIN { printf "%.1f", (w > 0 ? c / w : 0) }')"

cat > "$OUT" <<EOF
{
  "bench": "svc-submit-latency",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host": "$(uname -sr)",
  "workers": $(nproc),
  "sweep": {
    "workloads": "$WORKLOADS",
    "cores": "$CORES",
    "models": "asap_rp,hops_ep",
    "ops": $OPS,
    "jobs": $JOBS
  },
  "coldSubmitMs": $COLD_MS,
  "warmSubmitMs": $WARM_MS,
  "warmSpeedup": $SPEEDUP,
  "warmFullyCached": true,
  "daemonStats": $STATS
}
EOF

echo "bench_svc.sh: cold ${COLD_MS} ms, warm ${WARM_MS} ms" \
     "(${SPEEDUP}x) -> $OUT"
