#!/usr/bin/env bash
# Reproduce every table and figure of the ASAP paper's evaluation
# (the counterpart of the artifact's run_all.sh + reproduce_results.py).
#
# Usage: scripts/reproduce_all.sh [results_dir] [--ops N]
set -euo pipefail

RESULTS="${1:-results}"
shift || true
BUILD="${BUILD:-build}"

if [ ! -d "$BUILD" ]; then
    echo "building into $BUILD..."
    cmake -B "$BUILD" -G Ninja
    cmake --build "$BUILD"
fi

mkdir -p "$RESULTS"
for bench in fig02_epochs fig03_pb_stalls fig08_performance \
             fig09_writes fig10_scaling fig11_pb_occupancy \
             fig12_rt_occupancy fig13_bandwidth tab05_hwcost \
             ablation_sensitivity; do
    echo "=== $bench ==="
    "$BUILD/bench/$bench" "$@" | tee "$RESULTS/$bench.txt"
    echo
done
echo "results written to $RESULTS/"
