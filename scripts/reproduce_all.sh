#!/usr/bin/env bash
# Reproduce every table and figure of the ASAP paper's evaluation
# (the counterpart of the artifact's run_all.sh + reproduce_results.py).
#
# Usage: scripts/reproduce_all.sh [results_dir] [--quick] [--ops N]
#   --quick  small-ops pass of every bench (smoke the full pipeline,
#            including the crash-injection campaign, in minutes)
set -euo pipefail

RESULTS="${1:-results}"
shift || true
BUILD="${BUILD:-build}"

QUICK=0
ARGS=()
for a in "$@"; do
    if [ "$a" = "--quick" ]; then QUICK=1; else ARGS+=("$a"); fi
done
if [ "$QUICK" = 1 ]; then
    ARGS+=(--ops 50)
fi

if [ ! -d "$BUILD" ]; then
    echo "building into $BUILD..."
    cmake -B "$BUILD" -G Ninja
    cmake --build "$BUILD"
fi

mkdir -p "$RESULTS"
for bench in fig02_epochs fig03_pb_stalls fig08_performance \
             fig09_writes fig10_scaling fig11_pb_occupancy \
             fig12_rt_occupancy fig13_bandwidth tab05_hwcost \
             ablation_sensitivity crash_campaign crash_permute \
             media_sweep; do
    echo "=== $bench ==="
    EXTRA=()
    if [ "$bench" = crash_campaign ] && [ "$QUICK" = 1 ]; then
        EXTRA+=(--ticks 8)
    fi
    if [ "$bench" = crash_permute ]; then
        # Every reachable post-crash state per injection point; the
        # default 12 ticks/config already covers all models, so the
        # quick pass just trims the tick count further.
        if [ "$QUICK" = 1 ]; then EXTRA+=(--ticks 4); fi
    fi
    if [ "$bench" = media_sweep ] && [ "$QUICK" = 1 ]; then
        # One workload across every registered profile keeps the
        # quick pass short while still exercising the media axis.
        EXTRA+=(--workload cceh)
    fi
    "$BUILD/bench/$bench" ${ARGS[@]+"${ARGS[@]}"} \
        ${EXTRA[@]+"${EXTRA[@]}"} \
        --json "$RESULTS/$bench.json" | tee "$RESULTS/$bench.txt"
    if [ "$QUICK" = 1 ] && [ "$bench" != tab05_hwcost ]; then
        # The same sweep, split across N hosts sharing ASAP_CACHE_DIR
        # (see EXPERIMENTS.md "Distributed execution"):
        echo "  [distributed: on each of N hosts run" \
             "'$BUILD/bench/$bench ${ARGS[*]-} ${EXTRA[*]-}" \
             "--shard i/N --claim', then '$BUILD/bench/sweep_merge'" \
             "to rebuild $bench.csv]"
    fi
    echo
done
echo "results written to $RESULTS/"
