#!/usr/bin/env bash
# CI-style check: configure, build, run the test suite, then smoke a
# small parallel sweep through the exp engine and make sure its output
# is independent of the worker count.
#
# Usage: scripts/check.sh [build_dir]
#   ASAP_SANITIZE=thread scripts/check.sh build-tsan   # TSan vetting
set -euo pipefail

BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

CMAKE_ARGS=()
if [ -n "${ASAP_SANITIZE:-}" ]; then
    CMAKE_ARGS+=("-DASAP_SANITIZE=${ASAP_SANITIZE}")
fi

cmake -B "$BUILD" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# Parallel-sweep smoke check: a real figure bench, 4 workers, and the
# determinism guarantee (stdout byte-identical to a serial run).
# A populated disk cache would change the (truthful) accounting line
# between the two runs, so keep it out of this comparison.
unset ASAP_CACHE_DIR
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$BUILD/bench/fig08_performance" --jobs 4 --ops 50 \
    --json "$TMP/fig08.json" > "$TMP/fig08_par.txt"
"$BUILD/bench/fig08_performance" --jobs 1 --ops 50 \
    > "$TMP/fig08_ser.txt"
diff "$TMP/fig08_par.txt" "$TMP/fig08_ser.txt"
grep -q '"uniqueRuns"' "$TMP/fig08.json"

# Quick crash-injection campaign: a handful of power-failure points
# through the checker. The bench exits non-zero (with a --repro line
# per failure) if any verdict is inconsistent, and under
# ASAP_SANITIZE=thread this doubles as a TSan pass over the verdict
# plumbing (crash jobs fan out across the pool like any sweep).
"$BUILD/bench/crash_campaign" --jobs 4 --ops 30 --ticks 5 \
    --workload cceh --json "$TMP/campaign.json" \
    | tee "$TMP/campaign.txt"
grep -q ' 0 inconsistent' "$TMP/campaign.txt"
grep -q '"kind": "crash"' "$TMP/campaign.json"

# Crash-state permuter smoke: every reachable post-crash state at each
# injection point, exhaustively (the bound is generous for 30-op
# runs), must pass the checker — the table asserts 100% coverage and
# 0 inconsistent, and the artifact carries the coverage columns.
# Small ops keep this sanitizer-compatible (ASAP_SANITIZE=address
# runs the full enumeration under ASan like any other bench).
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --json "$TMP/permute.json" \
    | tee "$TMP/permute.txt"
grep -q ' 0 inconsistent' "$TMP/permute.txt"
grep -qE '  100\.0 ' "$TMP/permute.txt"
! grep -q 'TRUNCATED' "$TMP/permute.txt"
grep -q '"kind": "permute"' "$TMP/permute.json"
grep -q '"statesChecked"' "$TMP/permute.json"

# Permuter engine parity: the naive (pre-incremental) check loop, the
# default incremental engine and the parallel path (8 segment workers)
# must report identical verdicts and coverage — stdout matches apart
# from the host-side states/s column of the coverage table, which is
# the one timing-dependent field. Under ASAP_SANITIZE=thread the
# --permute-jobs run doubles as the TSan pass over segment workers
# sharing one CheckerIndex and delta-check scope.
strip_rate() { sed -E 's/[[:space:]]+[0-9.]+$|[[:space:]]+-$//'; }
strip_rate < "$TMP/permute.txt" > "$TMP/engine_default.txt"
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --engine naive | strip_rate \
    > "$TMP/engine_naive.txt"
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --permute-jobs 8 | strip_rate \
    > "$TMP/engine_par.txt"
diff "$TMP/engine_default.txt" "$TMP/engine_naive.txt"
diff "$TMP/engine_default.txt" "$TMP/engine_par.txt"

# Sharded permute + merge audit: the permute sweep split over two
# shards on a shared cache must simulate every job exactly once
# (zero duplicates) and merge back to the single-host CSV artifact
# byte-for-byte, coverage columns included.
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --json "$TMP/permute_single.csv" > /dev/null
export ASAP_CACHE_DIR="$TMP/permute-cache"
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --shard 0/2 --claim > "$TMP/permute0.txt"
"$BUILD/bench/crash_permute" --jobs 4 --ops 30 --ticks 6 \
    --workload cceh --shard 1/2 --claim > "$TMP/permute1.txt"
"$BUILD/bench/sweep_merge" --cache-dir "$ASAP_CACHE_DIR" \
    --out "$TMP/permute_merged.csv" 2> "$TMP/permute_merge.txt"
unset ASAP_CACHE_DIR
diff "$TMP/permute_single.csv" "$TMP/permute_merged.csv"
grep -q 'duplicate simulations: 0' "$TMP/permute_merge.txt"
grep -q ',statesChecked,statesReachable,' "$TMP/permute_merged.csv"

# Distributed-sweep smoke check: two shards over a shared cache
# directory (same host — the claim protocol only needs the shared
# filesystem), merged back and compared byte-for-byte against the
# single-host CSV artifact. The merge must also prove that no job was
# simulated twice. Under ASAP_SANITIZE=thread this exercises the lease
# heartbeat thread and the sharded engine path.
"$BUILD/bench/fig02_epochs" --jobs 4 --ops 40 \
    --json "$TMP/fig02_single.csv" > /dev/null
export ASAP_CACHE_DIR="$TMP/shard-cache"
"$BUILD/bench/fig02_epochs" --jobs 4 --ops 40 --shard 0/2 --claim \
    > "$TMP/shard0.txt"
"$BUILD/bench/fig02_epochs" --jobs 4 --ops 40 --shard 1/2 --claim \
    > "$TMP/shard1.txt"
"$BUILD/bench/sweep_merge" --cache-dir "$ASAP_CACHE_DIR" \
    --out "$TMP/fig02_merged.csv" 2> "$TMP/merge.txt"
unset ASAP_CACHE_DIR
diff "$TMP/fig02_single.csv" "$TMP/fig02_merged.csv"
grep -q 'duplicate simulations: 0' "$TMP/merge.txt"

# Media-model smoke check: two profiles through the media sweep (the
# non-default one exercises the bandwidth-cap queue and the media
# columns in the artifact), sharded across two workers over a shared
# cache, merged and audited for duplicate simulations. Small ops keep
# this TSan-compatible.
export ASAP_CACHE_DIR="$TMP/media-cache"
"$BUILD/bench/media_sweep" --jobs 4 --ops 30 --workload cceh \
    --profiles paper-table2,slow-nvm --shard 0/2 --claim \
    > "$TMP/media0.txt"
"$BUILD/bench/media_sweep" --jobs 4 --ops 30 --workload cceh \
    --profiles paper-table2,slow-nvm --shard 1/2 --claim \
    > "$TMP/media1.txt"
"$BUILD/bench/sweep_merge" --cache-dir "$ASAP_CACHE_DIR" \
    --out "$TMP/media_merged.csv" 2> "$TMP/media_merge.txt"
unset ASAP_CACHE_DIR
grep -q 'duplicate simulations: 0' "$TMP/media_merge.txt"
grep -q '^workload,.*,media,' "$TMP/media_merged.csv"
grep -q ',slow-nvm,' "$TMP/media_merged.csv"

# Trace record/replay smoke check: cold run records TraceSets in the
# shared directory, warm run replays them (table byte-identical, every
# generation skipped — the JSON header counts the disk replays). The
# trace dir is also safe under --shard, exercised above for results;
# small ops keep this TSan-compatible.
export ASAP_TRACE_DIR="$TMP/traces"
"$BUILD/bench/fig02_epochs" --jobs 2 --ops 40 \
    > "$TMP/trace_cold.txt"
"$BUILD/bench/fig02_epochs" --jobs 2 --ops 40 \
    --json "$TMP/trace_warm.json" > "$TMP/trace_warm.txt"
unset ASAP_TRACE_DIR
diff "$TMP/trace_cold.txt" "$TMP/trace_warm.txt"
grep -q '"traceMisses": 0' "$TMP/trace_warm.json"
grep -qE '"traceDiskHits": [1-9]' "$TMP/trace_warm.json"

# Kernel-throughput smoke: the bench must run and emit its artifact
# (including the --par-domains scaling rows); the events/sec numbers
# are hardware-dependent and non-gating.
"$BUILD/bench/kernel_bench" --ops 60 --reps 1 --par-domains 1,2 \
    --json "$TMP/kernel.json" > /dev/null
grep -q '"kernel-chain"' "$TMP/kernel.json"
grep -q '"parDomains": 2' "$TMP/kernel.json"

# Domain-parallel kernel smoke: the parallel engine must reproduce
# the sequential kernel bit-for-bit — figure stdout byte-identical
# (host wall-clock goes to stderr), both conservatively and with MC
# speculation enabled, and crash-campaign verdicts unchanged. Under
# ASAP_SANITIZE=thread this doubles as the TSan pass over the round
# barrier, send buffering and rollback machinery.
"$BUILD/bench/fig08_performance" --jobs 1 --ops 50 --par-domains 4 \
    > "$TMP/fig08_dompar.txt"
diff "$TMP/fig08_ser.txt" "$TMP/fig08_dompar.txt"
"$BUILD/bench/fig08_performance" --jobs 1 --ops 50 --par-domains 4 \
    --par-spec-window 64 > "$TMP/fig08_domspec.txt"
diff "$TMP/fig08_ser.txt" "$TMP/fig08_domspec.txt"
"$BUILD/bench/crash_campaign" --jobs 1 --ops 30 --ticks 5 \
    --workload cceh > "$TMP/campaign_ser.txt"
"$BUILD/bench/crash_campaign" --jobs 1 --ops 30 --ticks 5 \
    --workload cceh --par-domains 4 --par-spec-window 64 \
    > "$TMP/campaign_dompar.txt"
diff "$TMP/campaign_ser.txt" "$TMP/campaign_dompar.txt"
grep -q ' 0 inconsistent' "$TMP/campaign_dompar.txt"

# Sweep-service smoke: start an asapd on a private socket + cache,
# route a figure bench through it with --daemon, and hold it to the
# subsystem's core guarantee — stdout and CSV byte-identical to the
# batch run above, warm resubmits served entirely from the daemon's
# hot cache, clean shutdown via asapctl. Small ops keep this
# TSan-compatible (the daemon's scheduler, streaming and shutdown
# paths all run under the same binary).
"$BUILD/bench/asapd" --socket "$TMP/asap.sock" \
    --cache-dir "$TMP/svc-cache" --workers 4 \
    2> "$TMP/asapd.log" &
ASAPD_PID=$!
for _ in $(seq 50); do
    [ -S "$TMP/asap.sock" ] && break
    sleep 0.1
done
"$BUILD/bench/asapctl" --socket "$TMP/asap.sock" ping > /dev/null
# CSV artifacts are fully deterministic (the JSON header's wall-clock
# field is not), so CSV is what the byte-identity guarantee covers.
"$BUILD/bench/fig08_performance" --ops 50 \
    --json "$TMP/fig08_batch.csv" > /dev/null
"$BUILD/bench/fig08_performance" --ops 50 --daemon "$TMP/asap.sock" \
    --json "$TMP/fig08_svc.csv" > "$TMP/fig08_svc.txt"
diff "$TMP/fig08_par.txt" "$TMP/fig08_svc.txt"
diff "$TMP/fig08_batch.csv" "$TMP/fig08_svc.csv"
"$BUILD/bench/fig08_performance" --ops 50 --daemon "$TMP/asap.sock" \
    > "$TMP/fig08_warm.txt"
grep -q ' 0 simulated,' "$TMP/fig08_warm.txt"
"$BUILD/bench/asapctl" --socket "$TMP/asap.sock" stats --json \
    > "$TMP/svc_stats.json"
grep -q '"scheduler"' "$TMP/svc_stats.json"
"$BUILD/bench/asapctl" --socket "$TMP/asap.sock" shutdown > /dev/null
wait "$ASAPD_PID"
[ ! -S "$TMP/asap.sock" ]

# Serving-scenario smoke: the streaming subsystem's guarantees, held
# the same way as everything above. Stdout must be byte-identical
# across worker counts, the CSV must carry the persist-latency tail
# columns, and a 10x-longer run must not grow peak RSS by more than
# 2x (the constant-memory claim — materialized traces would grow
# linearly). Small request counts keep this TSan-compatible.
"$BUILD/bench/serve_bench" --jobs 4 --ops 400 --cores 4 \
    --scenario kv-zipf,tenant-mix --json "$TMP/serve.csv" \
    > "$TMP/serve_par.txt"
"$BUILD/bench/serve_bench" --jobs 1 --ops 400 --cores 4 \
    --scenario kv-zipf,tenant-mix > "$TMP/serve_ser.txt"
diff "$TMP/serve_par.txt" "$TMP/serve_ser.txt"
grep -q 'persistP999' "$TMP/serve.csv"
grep -q '^serve:kv-zipf,' "$TMP/serve.csv"
"$BUILD/bench/serve_bench" --jobs 1 --ops 1000 --cores 4 \
    --scenario kv-zipf --models asap_rp \
    > /dev/null 2> "$TMP/serve_rss_small.txt"
"$BUILD/bench/serve_bench" --jobs 1 --ops 10000 --cores 4 \
    --scenario kv-zipf --models asap_rp \
    > /dev/null 2> "$TMP/serve_rss_big.txt"
RSS_SMALL="$(sed -n 's/^\[rss\] peak \([0-9]*\) KB$/\1/p' "$TMP/serve_rss_small.txt")"
RSS_BIG="$(sed -n 's/^\[rss\] peak \([0-9]*\) KB$/\1/p' "$TMP/serve_rss_big.txt")"
[ -n "$RSS_SMALL" ] && [ -n "$RSS_BIG" ]
[ "$RSS_BIG" -le "$((RSS_SMALL * 2))" ]

# Serving through the daemon: the same sweep routed to an asapd must
# be byte-identical to the in-process run (the wire codec carries
# serve jobs), and asapctl top must render a couple of frames.
"$BUILD/bench/asapd" --socket "$TMP/serve.sock" \
    --cache-dir "$TMP/serve-cache" --workers 4 \
    2> "$TMP/serve_asapd.log" &
SERVED_PID=$!
for _ in $(seq 50); do
    [ -S "$TMP/serve.sock" ] && break
    sleep 0.1
done
"$BUILD/bench/serve_bench" --ops 400 --cores 4 \
    --scenario kv-zipf,tenant-mix --daemon "$TMP/serve.sock" \
    > "$TMP/serve_svc.txt"
diff "$TMP/serve_par.txt" "$TMP/serve_svc.txt"
"$BUILD/bench/asapctl" --socket "$TMP/serve.sock" top \
    --interval 0.2 --iterations 2 > "$TMP/serve_top.txt"
grep -q 'daemon:' "$TMP/serve_top.txt"
"$BUILD/bench/asapctl" --socket "$TMP/serve.sock" shutdown > /dev/null
wait "$SERVED_PID"

echo "check.sh: build, tests, parallel sweep, crash campaign, crash-state permuter, engine parity, sharded merge, media sweep, trace replay, kernel bench, sweep service and serving scenarios all passed"
