#!/usr/bin/env bash
# Measure serving-scenario throughput and tail persist latency per
# model and write the result to BENCH_serve.json (committed as the
# seed machine's numbers; regenerate on your own hardware with this
# script).
#
# The interesting outputs are simulated quantities — sustained Mreq/s
# and the p50/p99/p999 persist-latency tail per model — which are
# deterministic for a fixed seed; host wall-clock and peak RSS ride
# along to witness that the streaming generator keeps a long run in
# constant memory.
#
# Usage: scripts/bench_serve.sh [build_dir] [out_json]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_serve.json}"
OPS="${ASAP_SERVE_BENCH_OPS:-5000}"
CORES="${ASAP_SERVE_BENCH_CORES:-8}"
SCENARIOS="${ASAP_SERVE_BENCH_SCENARIOS:-kv-zipf,tenant-mix}"
MODELS="${ASAP_SERVE_BENCH_MODELS:-baseline_rp,hops_rp,asap_rp,eadr_rp}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

unset ASAP_CACHE_DIR ASAP_TRACE_DIR

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

T0=$(now_ms)
"$BUILD/bench/serve_bench" --ops "$OPS" --cores "$CORES" \
    --scenario "$SCENARIOS" --models "$MODELS" \
    --json "$TMP/serve.csv" > "$TMP/serve.txt" 2> "$TMP/serve.err"
T1=$(now_ms)
WALL_MS=$((T1 - T0))
RSS_KB="$(sed -n 's/^\[rss\] peak \([0-9]*\) KB$/\1/p' "$TMP/serve.err")"

# Fold the deterministic CSV rows into the artifact: one object per
# (scenario, model) with throughput and the tail columns.
ROWS="$(awk -F, '
    NR == 1 {
        for (i = 1; i <= NF; ++i) col[$i] = i
        next
    }
    {
        ticks = $col["runTicks"]; reqs = $col["serveRequests"]
        mreqs = ticks > 0 ? reqs / (ticks / 2.0e9) / 1.0e6 : 0
        printf "%s    {\"scenario\": \"%s\", \"model\": \"%s_%s\", ",
               (out++ ? ",\n" : ""), $col["workload"], $col["model"],
               $col["persistency"]
        printf "\"runTicks\": %s, \"requests\": %s, ", ticks, reqs
        printf "\"mreqPerSec\": %.3f, ", mreqs
        printf "\"persistP50Ticks\": %s, \"persistP99Ticks\": %s, ",
               $col["persistP50"], $col["persistP99"]
        printf "\"persistP999Ticks\": %s, \"persistMaxTicks\": %s}",
               $col["persistP999"], $col["persistMax"]
    }
' "$TMP/serve.csv")"

cat > "$OUT" <<EOF
{
  "bench": "serve-scenarios",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host": "$(uname -sr)",
  "sweep": {
    "scenarios": "$SCENARIOS",
    "models": "$MODELS",
    "cores": $CORES,
    "requestsPerThread": $OPS
  },
  "wallMs": $WALL_MS,
  "peakRssKb": ${RSS_KB:-0},
  "results": [
$ROWS
  ]
}
EOF

echo "bench_serve.sh: $SCENARIOS x $MODELS in ${WALL_MS} ms," \
     "peak rss ${RSS_KB:-?} KB -> $OUT"
