/**
 * @file
 * Client side of the asapd protocol.
 *
 * SvcClient speaks the framed-JSON protocol (protocol.hh / wire.hh)
 * with connect retries, bounded backoff, and per-frame timeouts.
 * Its runJobs() has the exact shape and accounting of the engine's:
 * it computes the same job keys locally, streams the daemon's
 * per-unique-key results, and reassembles a SweepResult whose
 * results[i]/verdicts[i] ordering, uniqueRuns and cacheHits match
 * what the batch path would report — so a bench pointed at a daemon
 * emits byte-identical tables and CSV artifacts.
 *
 * Every method is non-fatal (returns false + reason); benches that
 * prefer to die on a broken daemon use daemonRunJobs().
 */

#ifndef ASAP_SVC_CLIENT_HH
#define ASAP_SVC_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "svc/json.hh"

namespace asap
{

/** Connection/retry tuning for one client. */
struct ClientOptions
{
    std::string socketPath;   //!< daemon socket (required)
    std::string clientName;   //!< fair-share bucket; "" = "pid<pid>"
    int priority = 0;         //!< scheduling priority for submits

    int connectTimeoutMs = 2000;  //!< per connect() attempt
    int connectRetries = 5;       //!< attempts before giving up
    int backoffMs = 100;          //!< initial retry backoff (doubles,
                                  //!< capped at 2s)
    int requestTimeoutMs = 30000; //!< control-op round trip
    /** Per-frame deadline while a sweep streams. Generous: one frame
     *  arrives per finished simulation, which can be minutes apart on
     *  a loaded daemon. */
    int streamTimeoutMs = 3600000;
};

/** One connection to a running asapd. */
class SvcClient
{
  public:
    explicit SvcClient(ClientOptions opt);

    /** Closes the connection. */
    ~SvcClient();

    SvcClient(const SvcClient &) = delete;
    SvcClient &operator=(const SvcClient &) = delete;

    /**
     * Connect (with retries + backoff) and handshake. The handshake
     * verifies the daemon's cache code salt matches this binary's —
     * mismatched builds must not share a result namespace.
     * @return true on success; @p why filled otherwise
     */
    bool connect(std::string *why = nullptr);

    void close();
    bool connected() const { return fd >= 0; }

    /**
     * Run @p jobs on the daemon; fills @p out like runJobs() would.
     * @return false (why filled) on protocol error, salt mismatch,
     *         or if the daemon cancelled any of the jobs
     */
    bool runJobs(const std::vector<ExperimentJob> &jobs,
                 SweepResult &out, std::string *why = nullptr);

    /** Control operations (auto-connect if needed). */
    bool ping(std::string *why = nullptr);
    bool stats(Json &out, std::string *why = nullptr);
    bool status(Json &out, std::string *why = nullptr);
    bool cancel(const std::string &sweep, std::uint64_t *cancelled,
                std::string *why = nullptr);
    bool shutdown(std::string *why = nullptr);

    /** The daemon's reported worker width (0 before connect()). */
    unsigned serverWidth() const { return width; }

  private:
    /** Send @p req, read one response frame into @p resp. */
    bool roundTrip(const Json &req, Json &resp, int timeout_ms,
                   std::string *why);
    bool ensureConnected(std::string *why);

    ClientOptions opt;
    int fd = -1;
    unsigned width = 0;
};

/**
 * Bench adapter with runJobs() shape: execute @p jobs on the daemon
 * at @p socket_path, fatal on any failure (a bench pointed at a
 * broken daemon should die loudly, not silently fall back and hide a
 * deployment problem). @p opt is accepted for signature parity; the
 * daemon owns scheduling and caching.
 */
SweepResult daemonRunJobs(const std::string &socket_path,
                          std::vector<ExperimentJob> jobs,
                          const RunOptions &opt = {},
                          int priority = 0);

} // namespace asap

#endif // ASAP_SVC_CLIENT_HH
