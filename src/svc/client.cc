#include "svc/client.hh"

#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include <unistd.h>

#include "sim/log.hh"
#include "svc/protocol.hh"
#include "svc/wire.hh"

namespace asap
{

SvcClient::SvcClient(ClientOptions options) : opt(std::move(options))
{
    if (opt.clientName.empty())
        opt.clientName = "pid" + std::to_string(::getpid());
}

SvcClient::~SvcClient()
{
    close();
}

void
SvcClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
SvcClient::connect(std::string *why)
{
    close();
    std::string reason;
    int backoff = opt.backoffMs;
    const int attempts = std::max(1, opt.connectRetries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, 2000);
        }
        reason.clear();
        fd = connectUnix(opt.socketPath, opt.connectTimeoutMs,
                         &reason);
        if (fd < 0)
            continue;

        Json hello = Json::object();
        hello.set("op", Json::str("hello"));
        hello.set("client", Json::str(opt.clientName));
        Json resp;
        if (!roundTrip(hello, resp, opt.requestTimeoutMs, &reason)) {
            close();
            continue;
        }
        if (!resp.get("ok").asBool()) {
            reason = "handshake rejected: " +
                     resp.get("error").asString();
            close();
            continue;
        }
        const std::string salt = resp.get("salt").asString();
        if (salt != cacheCodeSalt()) {
            // Do not retry: the daemon is a different build and its
            // result namespace is not ours.
            if (why) {
                *why = "code-salt mismatch: daemon has '" + salt +
                       "', this binary has '" + cacheCodeSalt() +
                       "' (restart the daemon from this build)";
            }
            close();
            return false;
        }
        width = static_cast<unsigned>(resp.get("width").asU64(0));
        return true;
    }
    if (why) {
        *why = "cannot reach asapd at " + opt.socketPath + ": " +
               (reason.empty() ? "connect failed" : reason);
    }
    return false;
}

bool
SvcClient::ensureConnected(std::string *why)
{
    return fd >= 0 || connect(why);
}

bool
SvcClient::roundTrip(const Json &req, Json &resp, int timeout_ms,
                     std::string *why)
{
    if (fd < 0) {
        if (why)
            *why = "not connected";
        return false;
    }
    FrameStatus st = writeFrame(fd, req.dump(), timeout_ms);
    if (st != FrameStatus::Ok) {
        if (why)
            *why = std::string("request write failed: ") +
                   toString(st);
        return false;
    }
    std::string payload;
    st = readFrame(fd, payload, timeout_ms);
    if (st != FrameStatus::Ok) {
        if (why)
            *why = std::string("response read failed: ") +
                   toString(st);
        return false;
    }
    std::string parseWhy;
    if (!Json::parse(payload, resp, &parseWhy)) {
        if (why)
            *why = "bad response JSON: " + parseWhy;
        return false;
    }
    return true;
}

bool
SvcClient::ping(std::string *why)
{
    if (!ensureConnected(why))
        return false;
    Json req = Json::object();
    req.set("op", Json::str("ping"));
    Json resp;
    return roundTrip(req, resp, opt.requestTimeoutMs, why) &&
           resp.get("ok").asBool();
}

bool
SvcClient::stats(Json &out, std::string *why)
{
    if (!ensureConnected(why))
        return false;
    Json req = Json::object();
    req.set("op", Json::str("stats"));
    if (!roundTrip(req, out, opt.requestTimeoutMs, why))
        return false;
    if (!out.get("ok").asBool()) {
        if (why)
            *why = out.get("error").asString();
        return false;
    }
    return true;
}

bool
SvcClient::status(Json &out, std::string *why)
{
    if (!ensureConnected(why))
        return false;
    Json req = Json::object();
    req.set("op", Json::str("status"));
    if (!roundTrip(req, out, opt.requestTimeoutMs, why))
        return false;
    if (!out.get("ok").asBool()) {
        if (why)
            *why = out.get("error").asString();
        return false;
    }
    return true;
}

bool
SvcClient::cancel(const std::string &sweep, std::uint64_t *cancelled,
                  std::string *why)
{
    if (!ensureConnected(why))
        return false;
    Json req = Json::object();
    req.set("op", Json::str("cancel"));
    req.set("sweep", Json::str(sweep));
    Json resp;
    if (!roundTrip(req, resp, opt.requestTimeoutMs, why))
        return false;
    if (!resp.get("ok").asBool()) {
        if (why)
            *why = resp.get("error").asString();
        return false;
    }
    if (cancelled)
        *cancelled = resp.get("cancelled").asU64(0);
    return true;
}

bool
SvcClient::shutdown(std::string *why)
{
    if (!ensureConnected(why))
        return false;
    Json req = Json::object();
    req.set("op", Json::str("shutdown"));
    Json resp;
    if (!roundTrip(req, resp, opt.requestTimeoutMs, why))
        return false;
    if (!resp.get("ok").asBool()) {
        if (why)
            *why = resp.get("error").asString();
        return false;
    }
    close(); // daemon closes its side after the ack
    return true;
}

bool
SvcClient::runJobs(const std::vector<ExperimentJob> &jobs,
                   SweepResult &out, std::string *why)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (jobs.empty()) {
        out = SweepResult{};
        return true;
    }
    if (!ensureConnected(why))
        return false;

    // Key locally with the identical canonical text the daemon uses;
    // the stream below is addressed by these keys.
    std::vector<std::string> keys(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        keys[i] = jobKey(jobs[i]);

    Json req = Json::object();
    req.set("op", Json::str("submit"));
    req.set("client", Json::str(opt.clientName));
    req.set("priority", Json::number(std::int64_t(opt.priority)));
    Json jobsJson = Json::array();
    for (const ExperimentJob &job : jobs)
        jobsJson.push(jobToJson(job));
    req.set("jobs", std::move(jobsJson));

    Json ack;
    if (!roundTrip(req, ack, opt.requestTimeoutMs, why))
        return false;
    if (!ack.get("ok").asBool()) {
        if (why)
            *why = "submit rejected: " + ack.get("error").asString();
        return false;
    }

    // Stream: one frame per unique key (result or cancellation),
    // then the done frame.
    std::unordered_map<std::string, CachedResult> entries;
    std::size_t uniqueSimulated = 0;
    std::vector<std::string> cancelledKeys;
    while (true) {
        std::string payload;
        const FrameStatus st =
            readFrame(fd, payload, opt.streamTimeoutMs);
        if (st != FrameStatus::Ok) {
            if (why)
                *why = std::string("result stream broke: ") +
                       toString(st);
            close();
            return false;
        }
        Json frame;
        std::string parseWhy;
        if (!Json::parse(payload, frame, &parseWhy)) {
            if (why)
                *why = "bad stream frame: " + parseWhy;
            close();
            return false;
        }
        if (frame.get("done").asBool())
            break;
        const std::string key = frame.get("key").asString();
        if (key.empty()) {
            if (why)
                *why = "stream frame without a key";
            close();
            return false;
        }
        if (frame.get("cancelled").asBool()) {
            cancelledKeys.push_back(key);
            continue;
        }
        CachedResult entry;
        std::string entryWhy;
        if (!deserializeEntry(frame.get("entry").asString(), entry,
                              &entryWhy)) {
            if (why)
                *why = "bad result entry for " + key + ": " +
                       entryWhy;
            close();
            return false;
        }
        if (!frame.get("cached").asBool())
            ++uniqueSimulated;
        entries.emplace(key, std::move(entry));
    }

    if (!cancelledKeys.empty()) {
        if (why) {
            *why = std::to_string(cancelledKeys.size()) +
                   " job(s) cancelled by the daemon (cancel op or "
                   "shutdown), first key " + cancelledKeys.front();
        }
        return false;
    }

    // Reassemble with the engine's ordering guarantee: results[i]
    // belongs to jobs[i], duplicates copy their leader's entry.
    out = SweepResult{};
    out.jobs = jobs;
    out.results.resize(jobs.size());
    out.verdicts.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto it = entries.find(keys[i]);
        if (it == entries.end()) {
            if (why)
                *why = "daemon stream missing key " + keys[i];
            return false;
        }
        out.results[i] = it->second.run;
        out.verdicts[i] = it->second.verdict;
    }
    out.uniqueRuns = uniqueSimulated;
    out.cacheHits = jobs.size() - uniqueSimulated;
    out.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return true;
}

SweepResult
daemonRunJobs(const std::string &socket_path,
              std::vector<ExperimentJob> jobs, const RunOptions &opt,
              int priority)
{
    (void)opt;
    ClientOptions copt;
    copt.socketPath = socket_path;
    copt.priority = priority;
    SvcClient client(copt);
    SweepResult sr;
    std::string why;
    if (!client.runJobs(jobs, sr, &why))
        fatal("daemon sweep failed: ", why);
    return sr;
}

} // namespace asap
