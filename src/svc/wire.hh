/**
 * @file
 * Job (de)serialization for the asapd protocol.
 *
 * The codec is full-fidelity: every SimConfig and WorkloadParams
 * field crosses the wire, so the daemon reconstructs a job whose
 * jobKey() is bit-identical to the one the client computed — the
 * property that lets both sides share one cache namespace and lets
 * daemon-served sweeps emit byte-identical artifacts.
 *
 * It deliberately does NOT reuse SimConfig::override(): that parser
 * is fatal on unknown keys and covers only the CLI-exposed subset.
 * Wire decoding is non-fatal (a malformed request is the *client's*
 * error and must never kill the daemon) and validates semantic
 * fields — workload and media-profile registry membership, enum
 * names, sane core counts — before a job is accepted.
 */

#ifndef ASAP_SVC_WIRE_HH
#define ASAP_SVC_WIRE_HH

#include <string>

#include "exp/sweep.hh"
#include "svc/json.hh"

namespace asap
{

/** Non-fatal counterparts of the fatal CLI parsers. */
bool tryParseModelKind(const std::string &name, ModelKind &out);
bool tryParsePersistencyModel(const std::string &name,
                              PersistencyModel &out);
bool tryParseJobKind(const std::string &name, JobKind &out);

/** Render @p job as a JSON object (every field, insertion-ordered). */
Json jobToJson(const ExperimentJob &job);

/**
 * Rebuild a job from jobToJson() output. Missing fields keep their
 * SimConfig/WorkloadParams defaults (the encoder always writes all of
 * them; tolerance buys forward compatibility), unknown fields are
 * ignored, and semantic errors — unknown workload, unknown media
 * profile, bad enum name, absurd core count — are rejected.
 * @param why when non-null, receives the rejection reason
 * @return true and fills @p out on success
 */
bool jobFromJson(const Json &v, ExperimentJob &out,
                 std::string *why = nullptr);

} // namespace asap

#endif // ASAP_SVC_WIRE_HH
