/**
 * @file
 * Minimal JSON value for the asapd wire protocol.
 *
 * Two properties matter more than generality here:
 *
 *  - **Numbers round-trip exactly.** A job's maxRunTicks default is
 *    2^64 - 1 — outside double precision — and a one-ULP wobble would
 *    change the canonical job text and therefore the cache key, so
 *    numbers are stored as their literal text and only converted on
 *    access (u64 / i64 / double as the caller demands).
 *  - **Objects are ordered.** Members serialize in insertion order,
 *    so a frame built twice from the same inputs is byte-identical
 *    (tests diff raw frames).
 *
 * The parser is non-fatal (malformed client bytes must never kill
 * the daemon), depth-limited, and rejects trailing garbage.
 */

#ifndef ASAP_SVC_JSON_HH
#define ASAP_SVC_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace asap
{

/** JSON value kinds. */
enum class JsonType
{
    Null,
    Bool,
    Number, //!< literal text, converted lazily
    String,
    Array,
    Object,
};

/** One JSON value (tree). Copyable; cheap moves. */
class Json
{
  public:
    Json() = default;

    /** Leaf constructors. */
    static Json null();
    static Json boolean(bool b);
    static Json number(std::uint64_t v);
    static Json number(std::int64_t v);
    static Json number(double v); //!< rendered %.17g (round-trips)
    /** A number from already-canonical literal text (trusted). */
    static Json numberText(std::string literal);
    static Json str(std::string s);
    static Json array();
    static Json object();

    JsonType type() const { return ty; }
    bool isNull() const { return ty == JsonType::Null; }
    bool isBool() const { return ty == JsonType::Bool; }
    bool isNumber() const { return ty == JsonType::Number; }
    bool isString() const { return ty == JsonType::String; }
    bool isArray() const { return ty == JsonType::Array; }
    bool isObject() const { return ty == JsonType::Object; }

    /** Leaf accessors; defaults returned on type mismatch. */
    bool asBool(bool fallback = false) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    const std::string &asString() const; //!< empty on mismatch
    /** The number's literal text ("" when not a number). */
    const std::string &numberLiteral() const;

    /** Array access. */
    std::size_t size() const; //!< elements / members; 0 for leaves
    const Json &at(std::size_t i) const; //!< null sentinel if absent
    void push(Json v);

    /** Object access (insertion-ordered). */
    const Json &get(const std::string &key) const; //!< null if absent
    bool has(const std::string &key) const;
    void set(const std::string &key, Json v); //!< replaces in place
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Compact serialization (no whitespace, escaped control chars). */
    std::string dump() const;

    /**
     * Parse @p text (whole-string: trailing non-space is an error).
     * @param why when non-null, receives a human-readable reason on
     *            failure
     * @return true and fills @p out on success
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *why = nullptr);

  private:
    JsonType ty = JsonType::Null;
    bool b = false;
    std::string text; //!< number literal or string payload
    std::vector<Json> elems;
    std::vector<std::pair<std::string, Json>> membs;
};

} // namespace asap

#endif // ASAP_SVC_JSON_HH
