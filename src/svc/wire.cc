#include "svc/wire.hh"

#include "media/media.hh"
#include "permute/permute.hh"
#include "serve/scenario.hh"
#include "workloads/registry.hh"

namespace asap
{

namespace
{

/** Upper bound on accepted core counts: far beyond any real sweep,
 *  small enough that a corrupt count cannot allocate the machine. */
constexpr unsigned kMaxWireCores = 512;

bool
reject(std::string *why, const std::string &reason)
{
    if (why)
        *why = reason;
    return false;
}

} // namespace

bool
tryParseModelKind(const std::string &name, ModelKind &out)
{
    if (name == "baseline")
        out = ModelKind::Baseline;
    else if (name == "hops")
        out = ModelKind::Hops;
    else if (name == "asap")
        out = ModelKind::Asap;
    else if (name == "eadr")
        out = ModelKind::Eadr;
    else
        return false;
    return true;
}

bool
tryParsePersistencyModel(const std::string &name, PersistencyModel &out)
{
    if (name == "ep")
        out = PersistencyModel::Epoch;
    else if (name == "rp")
        out = PersistencyModel::Release;
    else
        return false;
    return true;
}

bool
tryParseJobKind(const std::string &name, JobKind &out)
{
    if (name == "run")
        out = JobKind::Run;
    else if (name == "crash")
        out = JobKind::Crash;
    else if (name == "permute")
        out = JobKind::Permute;
    else
        return false;
    return true;
}

Json
jobToJson(const ExperimentJob &job)
{
    const SimConfig &c = job.cfg;
    const WorkloadParams &p = job.params;

    Json v = Json::object();
    v.set("workload", Json::str(job.workload));
    v.set("kind", Json::str(toString(job.kind)));
    v.set("crashTick", Json::number(job.crashTick));
    // Enumeration knobs only travel for permute jobs, keeping every
    // pre-permuter frame byte-identical.
    if (job.kind == JobKind::Permute) {
        v.set("permuteBound", Json::number(job.permuteBound));
        v.set("permuteSeed", Json::number(job.permuteSeed));
        if (!job.permuteFault.empty())
            v.set("permuteFault", Json::str(job.permuteFault));
        if (!job.permuteState.empty())
            v.set("permuteState", Json::str(job.permuteState));
    }

    Json cfg = Json::object();
    cfg.set("numCores", Json::number(std::uint64_t(c.numCores)));
    cfg.set("numMCs", Json::number(std::uint64_t(c.numMCs)));
    cfg.set("model", Json::str(toString(c.model)));
    cfg.set("persistency", Json::str(toString(c.persistency)));
    cfg.set("l1Latency", Json::number(c.l1Latency));
    cfg.set("l2Latency", Json::number(c.l2Latency));
    cfg.set("llcLatency", Json::number(c.llcLatency));
    cfg.set("cacheToCacheLatency",
            Json::number(c.cacheToCacheLatency));
    cfg.set("l1Sets", Json::number(std::uint64_t(c.l1Sets)));
    cfg.set("l1Ways", Json::number(std::uint64_t(c.l1Ways)));
    cfg.set("l2Sets", Json::number(std::uint64_t(c.l2Sets)));
    cfg.set("l2Ways", Json::number(std::uint64_t(c.l2Ways)));
    cfg.set("llcSets", Json::number(std::uint64_t(c.llcSets)));
    cfg.set("llcWays", Json::number(std::uint64_t(c.llcWays)));
    cfg.set("mediaProfile", Json::str(c.mediaProfile));
    if (!c.mediaPerMc.empty())
        cfg.set("mediaPerMc", Json::str(c.mediaPerMc));
    cfg.set("mediaReadLatency", Json::number(c.mediaReadLatency));
    cfg.set("mediaWriteLatency", Json::number(c.mediaWriteLatency));
    cfg.set("mediaBanks", Json::number(std::uint64_t(c.mediaBanks)));
    cfg.set("mediaWriteGBps", Json::number(c.mediaWriteGBps));
    cfg.set("dramLatency", Json::number(c.dramLatency));
    cfg.set("pmReadLatency", Json::number(c.pmReadLatency));
    cfg.set("pmWriteLatency", Json::number(c.pmWriteLatency));
    cfg.set("wpqEntries", Json::number(std::uint64_t(c.wpqEntries)));
    cfg.set("wpqCombineWindow", Json::number(c.wpqCombineWindow));
    cfg.set("nvmBanks", Json::number(std::uint64_t(c.nvmBanks)));
    cfg.set("interleaveBytes",
            Json::number(std::uint64_t(c.interleaveBytes)));
    cfg.set("xpBufferLines",
            Json::number(std::uint64_t(c.xpBufferLines)));
    cfg.set("xpBufferHitLatency",
            Json::number(c.xpBufferHitLatency));
    cfg.set("pbEntries", Json::number(std::uint64_t(c.pbEntries)));
    cfg.set("etEntries", Json::number(std::uint64_t(c.etEntries)));
    cfg.set("rtEntries", Json::number(std::uint64_t(c.rtEntries)));
    cfg.set("pbFlushLatency", Json::number(c.pbFlushLatency));
    cfg.set("pbMaxInflight",
            Json::number(std::uint64_t(c.pbMaxInflight)));
    cfg.set("clwbMaxInflight",
            Json::number(std::uint64_t(c.clwbMaxInflight)));
    cfg.set("mcMessageLatency", Json::number(c.mcMessageLatency));
    cfg.set("interCoreLatency", Json::number(c.interCoreLatency));
    cfg.set("hopsPollPeriod", Json::number(c.hopsPollPeriod));
    cfg.set("hopsPollCost", Json::number(c.hopsPollCost));
    cfg.set("eadrDfenceCost", Json::number(c.eadrDfenceCost));
    cfg.set("coreIssueWidth",
            Json::number(std::uint64_t(c.coreIssueWidth)));
    cfg.set("seed", Json::number(c.seed));
    cfg.set("maxRunTicks", Json::number(c.maxRunTicks));
    v.set("cfg", std::move(cfg));

    Json params = Json::object();
    params.set("opsPerThread",
               Json::number(std::uint64_t(p.opsPerThread)));
    params.set("keySpace", Json::number(std::uint64_t(p.keySpace)));
    params.set("valueBytes",
               Json::number(std::uint64_t(p.valueBytes)));
    params.set("updatePct", Json::number(std::uint64_t(p.updatePct)));
    params.set("seed", Json::number(p.seed));
    v.set("params", std::move(params));

    return v;
}

namespace
{

void
readU32(const Json &obj, const char *key, unsigned &field)
{
    if (obj.has(key))
        field = static_cast<unsigned>(obj.get(key).asU64(field));
}

void
readU64(const Json &obj, const char *key, std::uint64_t &field)
{
    if (obj.has(key))
        field = obj.get(key).asU64(field);
}

void
readF64(const Json &obj, const char *key, double &field)
{
    if (obj.has(key))
        field = obj.get(key).asDouble(field);
}

} // namespace

bool
jobFromJson(const Json &v, ExperimentJob &out, std::string *why)
{
    if (!v.isObject())
        return reject(why, "job is not a JSON object");

    ExperimentJob job;

    job.workload = v.get("workload").asString();
    if (job.workload.empty())
        return reject(why, "job has no workload");
    if (isServeWorkload(job.workload)) {
        if (!tryFindServeScenario(job.workload)) {
            return reject(why, "unknown serving scenario '" +
                                   job.workload + "'");
        }
    } else {
        bool known = false;
        for (const WorkloadInfo &w : allWorkloads()) {
            if (w.name == job.workload) {
                known = true;
                break;
            }
        }
        if (!known) {
            return reject(why,
                          "unknown workload '" + job.workload + "'");
        }
    }

    if (v.has("kind") &&
        !tryParseJobKind(v.get("kind").asString(), job.kind)) {
        return reject(why,
                      "bad job kind '" + v.get("kind").asString() +
                          "'");
    }
    job.crashTick = v.get("crashTick").asU64(0);
    if (job.kind != JobKind::Run && job.crashTick == 0)
        return reject(why, "crash job without a crash tick");
    if (job.kind == JobKind::Permute) {
        job.permuteBound = v.get("permuteBound").asU64(job.permuteBound);
        if (job.permuteBound == 0)
            return reject(why, "permute bound must be >= 1");
        job.permuteSeed = v.get("permuteSeed").asU64(job.permuteSeed);
        if (v.has("permuteFault"))
            job.permuteFault = v.get("permuteFault").asString();
        {
            permute::FaultMode fault;
            if (!permute::parsePermuteFault(job.permuteFault, fault)) {
                return reject(why, "unknown permute fault '" +
                                       job.permuteFault + "' (valid: " +
                                       permute::permuteFaultNames() +
                                       ")");
            }
        }
        if (v.has("permuteState")) {
            job.permuteState = v.get("permuteState").asString();
            std::uint64_t mask = 0;
            if (!permute::maskFromHex(job.permuteState, mask)) {
                return reject(why, "bad permute state mask '" +
                                       job.permuteState + "'");
            }
        }
    }

    const Json &cfg = v.get("cfg");
    if (!cfg.isNull()) {
        if (!cfg.isObject())
            return reject(why, "cfg is not a JSON object");
        SimConfig &c = job.cfg;
        readU32(cfg, "numCores", c.numCores);
        readU32(cfg, "numMCs", c.numMCs);
        if (cfg.has("model") &&
            !tryParseModelKind(cfg.get("model").asString(), c.model)) {
            return reject(why, "bad model '" +
                                   cfg.get("model").asString() + "'");
        }
        if (cfg.has("persistency") &&
            !tryParsePersistencyModel(
                cfg.get("persistency").asString(), c.persistency)) {
            return reject(
                why, "bad persistency model '" +
                         cfg.get("persistency").asString() + "'");
        }
        readU64(cfg, "l1Latency", c.l1Latency);
        readU64(cfg, "l2Latency", c.l2Latency);
        readU64(cfg, "llcLatency", c.llcLatency);
        readU64(cfg, "cacheToCacheLatency", c.cacheToCacheLatency);
        readU32(cfg, "l1Sets", c.l1Sets);
        readU32(cfg, "l1Ways", c.l1Ways);
        readU32(cfg, "l2Sets", c.l2Sets);
        readU32(cfg, "l2Ways", c.l2Ways);
        readU32(cfg, "llcSets", c.llcSets);
        readU32(cfg, "llcWays", c.llcWays);
        if (cfg.has("mediaProfile"))
            c.mediaProfile = cfg.get("mediaProfile").asString();
        if (!isMediaProfile(c.mediaProfile)) {
            return reject(why, "unknown media profile '" +
                                   c.mediaProfile + "'");
        }
        if (cfg.has("mediaPerMc"))
            c.mediaPerMc = cfg.get("mediaPerMc").asString();
        // Validate every comma-separated per-MC profile up front so a
        // bad list is a wire error, not a worker fatal() mid-job.
        for (std::size_t pos = 0;
             !c.mediaPerMc.empty() && pos <= c.mediaPerMc.size();) {
            std::size_t comma = c.mediaPerMc.find(',', pos);
            if (comma == std::string::npos)
                comma = c.mediaPerMc.size();
            const std::string name =
                c.mediaPerMc.substr(pos, comma - pos);
            if (name.empty() || !isMediaProfile(name)) {
                return reject(why, "unknown per-MC media profile '" +
                                       name + "'");
            }
            pos = comma + 1;
        }
        readU64(cfg, "mediaReadLatency", c.mediaReadLatency);
        readU64(cfg, "mediaWriteLatency", c.mediaWriteLatency);
        readU32(cfg, "mediaBanks", c.mediaBanks);
        readF64(cfg, "mediaWriteGBps", c.mediaWriteGBps);
        readU64(cfg, "dramLatency", c.dramLatency);
        readU64(cfg, "pmReadLatency", c.pmReadLatency);
        readU64(cfg, "pmWriteLatency", c.pmWriteLatency);
        readU32(cfg, "wpqEntries", c.wpqEntries);
        readU64(cfg, "wpqCombineWindow", c.wpqCombineWindow);
        readU32(cfg, "nvmBanks", c.nvmBanks);
        readU32(cfg, "interleaveBytes", c.interleaveBytes);
        readU32(cfg, "xpBufferLines", c.xpBufferLines);
        readU64(cfg, "xpBufferHitLatency", c.xpBufferHitLatency);
        readU32(cfg, "pbEntries", c.pbEntries);
        readU32(cfg, "etEntries", c.etEntries);
        readU32(cfg, "rtEntries", c.rtEntries);
        readU64(cfg, "pbFlushLatency", c.pbFlushLatency);
        readU32(cfg, "pbMaxInflight", c.pbMaxInflight);
        readU32(cfg, "clwbMaxInflight", c.clwbMaxInflight);
        readU64(cfg, "mcMessageLatency", c.mcMessageLatency);
        readU64(cfg, "interCoreLatency", c.interCoreLatency);
        readU64(cfg, "hopsPollPeriod", c.hopsPollPeriod);
        readU64(cfg, "hopsPollCost", c.hopsPollCost);
        readU64(cfg, "eadrDfenceCost", c.eadrDfenceCost);
        readU32(cfg, "coreIssueWidth", c.coreIssueWidth);
        readU64(cfg, "seed", c.seed);
        readU64(cfg, "maxRunTicks", c.maxRunTicks);
    }
    if (job.cfg.numCores == 0 || job.cfg.numCores > kMaxWireCores) {
        return reject(why, "core count out of range [1, " +
                               std::to_string(kMaxWireCores) + "]");
    }
    if (job.cfg.numMCs == 0)
        return reject(why, "memory controller count must be >= 1");

    const Json &params = v.get("params");
    if (!params.isNull()) {
        if (!params.isObject())
            return reject(why, "params is not a JSON object");
        WorkloadParams &p = job.params;
        readU32(params, "opsPerThread", p.opsPerThread);
        readU32(params, "keySpace", p.keySpace);
        readU32(params, "valueBytes", p.valueBytes);
        readU32(params, "updatePct", p.updatePct);
        readU64(params, "seed", p.seed);
        if (p.keySpace == 0)
            return reject(why, "keySpace must be >= 1");
    }

    out = std::move(job);
    return true;
}

} // namespace asap
