/**
 * @file
 * asapd: the always-on sweep service.
 *
 * One daemon process owns the hot state a cold bench pays for on
 * every launch — the in-memory result cache, the memoized trace set,
 * the worker pool — and serves sweep and crash-campaign requests from
 * many concurrent clients over a Unix-domain socket (framing in
 * protocol.hh, job codec in wire.hh).
 *
 * Execution model: every submitted sweep is deduplicated by
 * jobKey() exactly as the batch engine does, admission-time cache
 * hits stream back immediately, and the remaining unique jobs are
 * queued on the PriorityScheduler under the client's name — so the
 * daemon-served result set is keyed identically to the batch path's
 * and artifacts reassembled by the client are byte-identical.
 *
 * Shutdown (SIGTERM/SIGINT or the `shutdown` op) is graceful: stop
 * accepting, cancel queued jobs (each streams a cancellation frame to
 * its waiting client), drain in-flight simulations, release any held
 * dist leases, join connection threads, unlink the socket.
 */

#ifndef ASAP_SVC_DAEMON_HH
#define ASAP_SVC_DAEMON_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/lease.hh"
#include "exp/cache.hh"
#include "exp/pool.hh"
#include "svc/json.hh"
#include "svc/scheduler.hh"

namespace asap
{

/** Daemon configuration. */
struct DaemonOptions
{
    std::string socketPath;   //!< Unix socket to listen on (required)
    unsigned workers = 0;     //!< simulation threads; 0 = default
    std::string cacheDir;     //!< disk cache tier; "" = memory only
    double leaseTtlSeconds = 60.0; //!< dist-lease TTL over cacheDir
    /** Coordinate with concurrent shards/daemons on cacheDir through
     *  dist leases (ignored when cacheDir is empty). */
    bool useLeases = true;
    /** Install SIGTERM/SIGINT handlers that trigger graceful
     *  shutdown (the bench binary does; in-process tests do not). */
    bool handleSignals = false;
};

/** Lifetime counters for the `stats` op. */
struct DaemonStats
{
    std::uint64_t connections = 0;     //!< accepted since start
    std::uint64_t sweepsAdmitted = 0;  //!< submit ops accepted
    std::uint64_t jobsAdmitted = 0;    //!< jobs across those submits
    std::uint64_t uniqueAdmitted = 0;  //!< post-dedup unique keys
    std::uint64_t resultsStreamed = 0; //!< result frames written
    std::uint64_t eventsExecuted = 0;  //!< kernel events simulated
    std::uint64_t hostNs = 0;          //!< host ns spent simulating
    double uptimeSeconds = 0.0;

    /** Aggregate simulation throughput (0 until a job has run). */
    double eventsPerSecond() const
    {
        return hostNs == 0 ? 0.0
                           : static_cast<double>(eventsExecuted) *
                                 1e9 / static_cast<double>(hostNs);
    }
};

/**
 * The service. Construct, start(), and either wait for stop (the
 * bench) or drive it from a test and requestStop() when done.
 */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions opt);

    /** Stops the service if still running. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket and start the accept thread.
     * @param why when non-null, receives the failure reason
     * @return false (nothing started) on listen failure
     */
    bool start(std::string *why = nullptr);

    /** Trigger graceful shutdown (safe from any thread). */
    void requestStop();

    /** Block until the service has fully shut down. */
    void waitStopped();

    /** True between successful start() and completed shutdown. */
    bool running() const { return live.load(); }

    /** The cache the daemon serves from (tests pre-warm through it). */
    ResultCache &cache() { return resultCache; }

    /** Scheduler snapshot + lifetime counters. */
    SchedStats schedulerStats() const;
    DaemonStats stats() const;

  private:
    struct SweepSession;

    void acceptLoop();
    void connectionLoop(int fd);
    /** One request frame; @return false to close the connection. */
    bool handleRequest(int fd, const std::string &payload);
    bool handleSubmit(int fd, const Json &req);
    Json statusJson();
    Json statsJson();

    /** Simulate (or cache-serve) one unique job for @p session. */
    void runJobTask(const std::shared_ptr<SweepSession> &session,
                    const ExperimentJob &job, const std::string &key);

    void shutdownSequence();

    DaemonOptions opt;
    ResultCache resultCache;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<PriorityScheduler> sched;
    std::unique_ptr<LeaseManager> leases;

    int listenFd = -1;
    int wakePipe[2] = {-1, -1}; //!< self-pipe: signals/requestStop
    std::thread acceptor;
    std::mutex connMu;
    std::vector<std::thread> connThreads;

    std::atomic<bool> stopping{false};
    std::atomic<bool> live{false};
    std::mutex stopMu;
    bool stopped = false;
    std::condition_variable stopCv;

    std::mutex sessionMu;
    std::map<std::uint64_t, std::shared_ptr<SweepSession>> sessions;
    std::uint64_t nextSweepId = 1;

    std::chrono::steady_clock::time_point startedAt;
    std::atomic<std::uint64_t> nConnections{0};
    std::atomic<std::uint64_t> nSweeps{0};
    std::atomic<std::uint64_t> nJobs{0};
    std::atomic<std::uint64_t> nUnique{0};
    std::atomic<std::uint64_t> nResultsStreamed{0};
    std::atomic<std::uint64_t> nEvents{0};
    std::atomic<std::uint64_t> nHostNs{0};
};

} // namespace asap

#endif // ASAP_SVC_DAEMON_HH
