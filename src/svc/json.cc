#include "svc/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace asap
{

namespace
{

const Json kNullJson;
const std::string kEmptyString;

/** Recursive-descent parser over a bounded view. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *why)
        : s(text), why(why)
    {
    }

    bool
    run(Json &out)
    {
        skipSpace();
        if (!value(out, 0))
            return false;
        skipSpace();
        if (pos != s.size())
            return fail("trailing garbage after value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 32;

    bool
    fail(const char *reason)
    {
        if (why && why->empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s (at byte %zu)",
                          reason, pos);
            *why = buf;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = Json::null();
            return true;
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = Json::boolean(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = Json::boolean(false);
            return true;
          case '"':
            return stringValue(out);
          case '[':
            return arrayValue(out, depth);
          case '{':
            return objectValue(out, depth);
          default:
            return numberValue(out);
        }
    }

    bool
    stringBody(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (true) {
            if (pos >= s.size())
                return fail("unterminated string");
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos;
                continue;
            }
            if (++pos >= s.size())
                return fail("unterminated escape");
            switch (s[pos]) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 >= s.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = s[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                pos += 4;
                // The protocol only emits \u00XX for control bytes;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
            ++pos;
        }
    }

    bool
    stringValue(Json &out)
    {
        std::string body;
        if (!stringBody(body))
            return false;
        out = Json::str(std::move(body));
        return true;
    }

    bool
    numberValue(Json &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() || !std::isdigit(
                static_cast<unsigned char>(s[pos]))) {
            return fail("bad number");
        }
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() || !std::isdigit(
                    static_cast<unsigned char>(s[pos]))) {
                return fail("bad number: no digits after '.'");
            }
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos]))) {
                ++pos;
            }
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() || !std::isdigit(
                    static_cast<unsigned char>(s[pos]))) {
                return fail("bad number: empty exponent");
            }
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos]))) {
                ++pos;
            }
        }
        out = Json::numberText(s.substr(start, pos - start));
        return true;
    }

    bool
    arrayValue(Json &out, int depth)
    {
        ++pos; // '['
        out = Json::array();
        skipSpace();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            Json elem;
            skipSpace();
            if (!value(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipSpace();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    objectValue(Json &out, int depth)
    {
        ++pos; // '{'
        out = Json::object();
        skipSpace();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!stringBody(key))
                return false;
            skipSpace();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':' after object key");
            ++pos;
            Json val;
            skipSpace();
            if (!value(val, depth + 1))
                return false;
            out.set(key, std::move(val));
            skipSpace();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    const std::string &s;
    std::string *why;
    std::size_t pos = 0;
};

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
dumpTo(const Json &v, std::string &out)
{
    switch (v.type()) {
      case JsonType::Null:
        out += "null";
        break;
      case JsonType::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case JsonType::Number:
        out += v.numberLiteral();
        break;
      case JsonType::String:
        appendEscaped(out, v.asString());
        break;
      case JsonType::Array: {
        out.push_back('[');
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                out.push_back(',');
            dumpTo(v.at(i), out);
        }
        out.push_back(']');
        break;
      }
      case JsonType::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &kv : v.members()) {
            if (!first)
                out.push_back(',');
            first = false;
            appendEscaped(out, kv.first);
            out.push_back(':');
            dumpTo(kv.second, out);
        }
        out.push_back('}');
        break;
      }
    }
}

} // namespace

Json
Json::null()
{
    return Json();
}

Json
Json::boolean(bool b)
{
    Json v;
    v.ty = JsonType::Bool;
    v.b = b;
    return v;
}

Json
Json::number(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return numberText(buf);
}

Json
Json::number(std::int64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return numberText(buf);
}

Json
Json::number(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return numberText(buf);
}

Json
Json::numberText(std::string literal)
{
    Json v;
    v.ty = JsonType::Number;
    v.text = std::move(literal);
    return v;
}

Json
Json::str(std::string s)
{
    Json v;
    v.ty = JsonType::String;
    v.text = std::move(s);
    return v;
}

Json
Json::array()
{
    Json v;
    v.ty = JsonType::Array;
    return v;
}

Json
Json::object()
{
    Json v;
    v.ty = JsonType::Object;
    return v;
}

bool
Json::asBool(bool fallback) const
{
    return ty == JsonType::Bool ? b : fallback;
}

std::uint64_t
Json::asU64(std::uint64_t fallback) const
{
    if (ty != JsonType::Number || text.empty() || text[0] == '-')
        return fallback;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return fallback;
    return v;
}

std::int64_t
Json::asI64(std::int64_t fallback) const
{
    if (ty != JsonType::Number || text.empty())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return fallback;
    return v;
}

double
Json::asDouble(double fallback) const
{
    if (ty != JsonType::Number || text.empty())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return fallback;
    return v;
}

const std::string &
Json::asString() const
{
    return ty == JsonType::String ? text : kEmptyString;
}

const std::string &
Json::numberLiteral() const
{
    return ty == JsonType::Number ? text : kEmptyString;
}

std::size_t
Json::size() const
{
    if (ty == JsonType::Array)
        return elems.size();
    if (ty == JsonType::Object)
        return membs.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    if (ty != JsonType::Array || i >= elems.size())
        return kNullJson;
    return elems[i];
}

void
Json::push(Json v)
{
    ty = JsonType::Array;
    elems.push_back(std::move(v));
}

const Json &
Json::get(const std::string &key) const
{
    if (ty == JsonType::Object) {
        for (const auto &kv : membs) {
            if (kv.first == key)
                return kv.second;
        }
    }
    return kNullJson;
}

bool
Json::has(const std::string &key) const
{
    return !get(key).isNull() || [this, &key] {
        for (const auto &kv : membs) {
            if (kv.first == key)
                return true;
        }
        return false;
    }();
}

void
Json::set(const std::string &key, Json v)
{
    ty = JsonType::Object;
    for (auto &kv : membs) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    membs.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    return membs;
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

bool
Json::parse(const std::string &text, Json &out, std::string *why)
{
    if (why)
        why->clear();
    Parser p(text, why);
    return p.run(out);
}

} // namespace asap
