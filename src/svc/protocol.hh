/**
 * @file
 * asapd wire framing: length-prefixed JSON over a Unix-domain socket.
 *
 * Every message is one frame: a 4-byte little-endian payload length
 * followed by that many bytes of UTF-8 JSON text. Framing and JSON
 * are separate layers on purpose — readFrame() can reject oversized
 * or truncated frames without parsing a byte, and the tests exercise
 * the framing with deliberate garbage.
 *
 * All reads and writes take a timeout (poll()-based), so a stalled or
 * vanished peer can never wedge a daemon connection thread, and a
 * client never blocks forever on a hung daemon.
 */

#ifndef ASAP_SVC_PROTOCOL_HH
#define ASAP_SVC_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace asap
{

/** Upper bound on one frame's payload (rejects runaway lengths from
 *  corrupt or hostile peers before any allocation). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20; // 64 MiB

/** What a framed read/write attempt produced. */
enum class FrameStatus
{
    Ok,       //!< full frame transferred
    Eof,      //!< peer closed cleanly before/at a frame boundary
    Timeout,  //!< deadline expired mid-transfer
    TooLarge, //!< advertised length exceeds kMaxFrameBytes
    Error,    //!< socket error (errno-level) or mid-frame close
};

/** Printable name for FrameStatus (logs and test failures). */
const char *toString(FrameStatus status);

/**
 * Read one frame from @p fd into @p payload.
 * @param timeout_ms total deadline for the whole frame; <0 = block
 * @return Eof only when the peer closed before byte one — a close
 *         mid-frame is Error (the message was truncated)
 */
FrameStatus readFrame(int fd, std::string &payload, int timeout_ms);

/** Write one frame (length prefix + @p payload) to @p fd. */
FrameStatus writeFrame(int fd, const std::string &payload,
                       int timeout_ms);

/**
 * Create, bind and listen on a Unix-domain socket at @p path.
 * An existing socket file is reclaimed only when nothing accepts on
 * it (stale leftover of a killed daemon); a live listener is an
 * error — two daemons must not fight over one path.
 * @param why when non-null, receives the failure reason
 * @return listening fd (close()-owned by the caller), or -1
 */
int listenUnix(const std::string &path, std::string *why = nullptr);

/**
 * Connect to the daemon socket at @p path.
 * @param timeout_ms connect deadline; <0 = block
 * @return connected fd, or -1 (why filled when non-null)
 */
int connectUnix(const std::string &path, int timeout_ms,
                std::string *why = nullptr);

} // namespace asap

#endif // ASAP_SVC_PROTOCOL_HH
