#include "svc/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exp/engine.hh"
#include "sim/log.hh"
#include "svc/protocol.hh"
#include "svc/wire.hh"

namespace asap
{

namespace
{

/** Self-pipe write end for the signal handler (one daemon per
 *  process is the supported configuration). */
std::atomic<int> gWakeFd{-1};

void
onTermSignal(int)
{
    const int fd = gWakeFd.load();
    if (fd >= 0) {
        const char byte = 's';
        // Best-effort: a full pipe already means a wake-up is pending.
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
}

/** Frame-write timeout: generous enough for a paging client, small
 *  enough that a vanished one frees its connection thread. */
constexpr int kWriteTimeoutMs = 30'000;

/** Idle poll period for connection reads — the upper bound on how
 *  long a connection thread takes to notice shutdown. */
constexpr int kReadPollMs = 500;

} // namespace

/** Streaming state of one admitted sweep. The connection thread is
 *  the only writer on the socket; workers and cancellations push
 *  frames into the outbox and it drains them in arrival order. */
struct Daemon::SweepSession
{
    std::uint64_t id = 0;
    std::string client;
    int priority = 0;
    std::size_t total = 0; //!< unique keys = frames to stream

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Json> outbox;
    std::size_t produced = 0;  //!< frames pushed so far
    std::size_t results = 0;   //!< ... that carried a result
    std::size_t cancelled = 0; //!< ... that carried a cancellation
    std::size_t streamed = 0;  //!< frames actually written out

    void
    push(Json frame, bool is_cancel)
    {
        std::lock_guard<std::mutex> lock(mu);
        outbox.push_back(std::move(frame));
        ++produced;
        if (is_cancel)
            ++cancelled;
        else
            ++results;
        cv.notify_all();
    }
};

Daemon::Daemon(DaemonOptions options)
    : opt(std::move(options)), resultCache(opt.cacheDir)
{
}

Daemon::~Daemon()
{
    requestStop();
    waitStopped();
    if (acceptor.joinable())
        acceptor.join();
}

bool
Daemon::start(std::string *why)
{
    if (opt.socketPath.empty()) {
        if (why)
            *why = "no socket path configured";
        return false;
    }
    listenFd = listenUnix(opt.socketPath, why);
    if (listenFd < 0)
        return false;
    if (::pipe(wakePipe) != 0) {
        if (why)
            *why = std::string("pipe: ") + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opt.socketPath.c_str());
        return false;
    }
    ::fcntl(wakePipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wakePipe[1], F_SETFL, O_NONBLOCK);

    pool = std::make_unique<ThreadPool>(opt.workers);
    sched = std::make_unique<PriorityScheduler>(*pool);
    if (!opt.cacheDir.empty() && opt.useLeases) {
        LeaseConfig lc;
        lc.dir = opt.cacheDir;
        lc.ttlSeconds = opt.leaseTtlSeconds;
        lc.heartbeatSeconds =
            std::max(1.0, opt.leaseTtlSeconds / 6.0);
        leases = std::make_unique<LeaseManager>(lc);
    }

    if (opt.handleSignals) {
        gWakeFd.store(wakePipe[1]);
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = onTermSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
    }

    startedAt = std::chrono::steady_clock::now();
    stopping.store(false);
    {
        std::lock_guard<std::mutex> lock(stopMu);
        stopped = false;
    }
    live.store(true);
    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
Daemon::requestStop()
{
    stopping.store(true);
    const int fd = wakePipe[1];
    if (fd >= 0) {
        const char byte = 'q';
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
}

void
Daemon::waitStopped()
{
    if (!acceptor.joinable())
        return; // never started
    std::unique_lock<std::mutex> lock(stopMu);
    stopCv.wait(lock, [this] { return stopped; });
}

void
Daemon::acceptLoop()
{
    while (!stopping.load()) {
        struct pollfd pfds[2];
        pfds[0].fd = wakePipe[0];
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = listenFd;
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        const int rc = ::poll(pfds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[0].revents != 0 || stopping.load())
            break;
        if (pfds[1].revents == 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        nConnections.fetch_add(1);
        std::lock_guard<std::mutex> lock(connMu);
        connThreads.emplace_back(
            [this, fd] { connectionLoop(fd); });
    }
    shutdownSequence();
}

void
Daemon::connectionLoop(int fd)
{
    std::string payload;
    while (true) {
        const FrameStatus st = readFrame(fd, payload, kReadPollMs);
        if (st == FrameStatus::Timeout) {
            if (stopping.load())
                break;
            continue;
        }
        if (st != FrameStatus::Ok)
            break; // EOF, truncated frame, oversize, or socket error
        if (!handleRequest(fd, payload))
            break;
    }
    ::close(fd);
}

namespace
{

Json
errorResponse(const std::string &message)
{
    Json v = Json::object();
    v.set("ok", Json::boolean(false));
    v.set("error", Json::str(message));
    return v;
}

bool
sendJson(int fd, const Json &v)
{
    return writeFrame(fd, v.dump(), kWriteTimeoutMs) ==
           FrameStatus::Ok;
}

} // namespace

bool
Daemon::handleRequest(int fd, const std::string &payload)
{
    Json req;
    std::string why;
    if (!Json::parse(payload, req, &why) || !req.isObject())
        return sendJson(fd, errorResponse("bad request: " + why));

    const std::string op = req.get("op").asString();
    if (op == "ping") {
        Json resp = Json::object();
        resp.set("ok", Json::boolean(true));
        return sendJson(fd, resp);
    }
    if (op == "hello") {
        Json resp = Json::object();
        resp.set("ok", Json::boolean(true));
        resp.set("server", Json::str("asapd"));
        resp.set("salt", Json::str(cacheCodeSalt()));
        resp.set("width", Json::number(std::uint64_t(pool->size())));
        return sendJson(fd, resp);
    }
    if (op == "submit")
        return handleSubmit(fd, req);
    if (op == "status")
        return sendJson(fd, statusJson());
    if (op == "stats")
        return sendJson(fd, statsJson());
    if (op == "cancel") {
        const std::string sweep = req.get("sweep").asString();
        std::uint64_t id = 0;
        if (sweep.size() > 1 && sweep[0] == 's')
            id = std::strtoull(sweep.c_str() + 1, nullptr, 10);
        if (id == 0) {
            return sendJson(
                fd, errorResponse("bad sweep id '" + sweep + "'"));
        }
        const std::size_t n = sched->cancelTag(id);
        Json resp = Json::object();
        resp.set("ok", Json::boolean(true));
        resp.set("cancelled", Json::number(std::uint64_t(n)));
        return sendJson(fd, resp);
    }
    if (op == "shutdown") {
        Json resp = Json::object();
        resp.set("ok", Json::boolean(true));
        resp.set("draining", Json::boolean(true));
        sendJson(fd, resp);
        requestStop();
        return false;
    }
    return sendJson(fd, errorResponse("unknown op '" + op + "'"));
}

bool
Daemon::handleSubmit(int fd, const Json &req)
{
    std::string client = req.get("client").asString();
    if (client.empty())
        client = "anon";
    const int priority =
        static_cast<int>(req.get("priority").asI64(0));

    const Json &jobsJson = req.get("jobs");
    if (!jobsJson.isArray() || jobsJson.size() == 0) {
        return sendJson(fd,
                        errorResponse("submit without a jobs array"));
    }

    std::vector<ExperimentJob> jobs;
    jobs.reserve(jobsJson.size());
    for (std::size_t i = 0; i < jobsJson.size(); ++i) {
        ExperimentJob job;
        std::string why;
        if (!jobFromJson(jobsJson.at(i), job, &why)) {
            return sendJson(fd, errorResponse(
                                    "job " + std::to_string(i) +
                                    ": " + why));
        }
        jobs.push_back(std::move(job));
    }

    // Deduplicate exactly as runJobs() does: one frame per distinct
    // key, whatever the duplication in the submission.
    std::vector<std::string> keys(jobs.size());
    std::vector<std::size_t> leaders;
    {
        std::unordered_map<std::string, std::size_t> leaderOf;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            keys[i] = jobKey(jobs[i]);
            if (leaderOf.emplace(keys[i], i).second)
                leaders.push_back(i);
        }
    }

    auto session = std::make_shared<SweepSession>();
    session->client = client;
    session->priority = priority;
    session->total = leaders.size();
    {
        std::lock_guard<std::mutex> lock(sessionMu);
        session->id = nextSweepId++;
        sessions.emplace(session->id, session);
    }
    nSweeps.fetch_add(1);
    nJobs.fetch_add(jobs.size());
    nUnique.fetch_add(leaders.size());

    Json ack = Json::object();
    ack.set("ok", Json::boolean(true));
    ack.set("sweep", Json::str("s" + std::to_string(session->id)));
    ack.set("jobs", Json::number(std::uint64_t(jobs.size())));
    ack.set("unique", Json::number(std::uint64_t(leaders.size())));
    if (!sendJson(fd, ack)) {
        std::lock_guard<std::mutex> lock(sessionMu);
        sessions.erase(session->id);
        return false;
    }

    // Admission: cache hits stream immediately (no queue latency for
    // a warm resubmit); misses queue under the client's fair share.
    for (const std::size_t i : leaders) {
        CachedResult hit;
        if (resultCache.lookup(keys[i], hit)) {
            Json frame = Json::object();
            frame.set("key", Json::str(keys[i]));
            frame.set("cached", Json::boolean(true));
            frame.set("entry", Json::str(serializeEntry(hit)));
            session->push(std::move(frame), /*is_cancel=*/false);
            continue;
        }
        SchedTask task;
        task.client = client;
        task.priority = priority;
        task.tag = session->id;
        const ExperimentJob &job = jobs[i];
        const std::string &key = keys[i];
        task.fn = [this, session, job, key] {
            runJobTask(session, job, key);
        };
        task.onCancel = [session, key] {
            Json frame = Json::object();
            frame.set("key", Json::str(key));
            frame.set("cancelled", Json::boolean(true));
            session->push(std::move(frame), /*is_cancel=*/true);
        };
        sched->enqueue(std::move(task));
    }

    // Stream the outbox. Every admitted key produces exactly one
    // frame — a result or a cancellation — so this loop terminates
    // even across daemon shutdown (cancelTag covers the queue, drain
    // covers the in-flight tail).
    bool alive = true;
    std::size_t written = 0;
    while (written < session->total) {
        Json frame;
        {
            std::unique_lock<std::mutex> lock(session->mu);
            if (session->outbox.empty()) {
                session->cv.wait_for(
                    lock, std::chrono::milliseconds(kReadPollMs));
                continue;
            }
            frame = std::move(session->outbox.front());
            session->outbox.pop_front();
        }
        ++written;
        if (alive && !sendJson(fd, frame)) {
            // Client vanished mid-stream: stop writing, drop its
            // queued work, but keep consuming frames so in-flight
            // results land in the cache accounting cleanly.
            alive = false;
            sched->cancelTag(session->id);
        }
        if (alive) {
            std::lock_guard<std::mutex> lock(session->mu);
            session->streamed = written;
        }
    }
    nResultsStreamed.fetch_add(written);

    std::size_t cancelled = 0;
    {
        std::lock_guard<std::mutex> lock(session->mu);
        cancelled = session->cancelled;
    }
    if (alive) {
        Json done = Json::object();
        done.set("done", Json::boolean(true));
        done.set("results",
                 Json::number(std::uint64_t(session->total -
                                            cancelled)));
        done.set("cancelled", Json::number(std::uint64_t(cancelled)));
        alive = sendJson(fd, done);
    }
    {
        std::lock_guard<std::mutex> lock(sessionMu);
        sessions.erase(session->id);
    }
    return alive;
}

void
Daemon::runJobTask(const std::shared_ptr<SweepSession> &session,
                   const ExperimentJob &job, const std::string &key)
{
    CachedResult e;
    // Re-check: a concurrent sweep (or another process sharing the
    // disk tier) may have produced this key since admission.
    bool cached = resultCache.lookup(key, e);
    if (!cached && leases) {
        // Coordinate with other daemons/shards on the same cache
        // directory: one owner simulates, everyone else polls for
        // the result (stale owners are stolen from after the TTL).
        while (!cached) {
            if (leases->tryAcquire(key) ==
                LeaseManager::Acquire::Acquired) {
                if (!resultCache.lookup(key, e)) {
                    e = executeJob(job);
                    resultCache.insert(key, e);
                    nEvents.fetch_add(e.run.eventsExecuted);
                    nHostNs.fetch_add(e.run.hostNs);
                } else {
                    cached = true;
                }
                leases->release(key);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            cached = resultCache.lookup(key, e);
        }
    } else if (!cached) {
        e = executeJob(job);
        resultCache.insert(key, e);
        nEvents.fetch_add(e.run.eventsExecuted);
        nHostNs.fetch_add(e.run.hostNs);
    }

    Json frame = Json::object();
    frame.set("key", Json::str(key));
    frame.set("cached", Json::boolean(cached));
    frame.set("entry", Json::str(serializeEntry(e)));
    session->push(std::move(frame), /*is_cancel=*/false);
}

Json
Daemon::statusJson()
{
    Json sweeps = Json::array();
    {
        std::lock_guard<std::mutex> lock(sessionMu);
        for (const auto &kv : sessions) {
            const std::shared_ptr<SweepSession> &s = kv.second;
            Json row = Json::object();
            row.set("sweep", Json::str("s" + std::to_string(s->id)));
            row.set("client", Json::str(s->client));
            row.set("priority",
                    Json::number(std::int64_t(s->priority)));
            std::lock_guard<std::mutex> slock(s->mu);
            row.set("unique", Json::number(std::uint64_t(s->total)));
            row.set("produced",
                    Json::number(std::uint64_t(s->produced)));
            row.set("streamed",
                    Json::number(std::uint64_t(s->streamed)));
            row.set("cancelled",
                    Json::number(std::uint64_t(s->cancelled)));
            sweeps.push(std::move(row));
        }
    }
    Json resp = Json::object();
    resp.set("ok", Json::boolean(true));
    resp.set("sweeps", std::move(sweeps));
    return resp;
}

Json
Daemon::statsJson()
{
    const CacheStats cs = resultCache.stats();
    const SchedStats ss = sched->stats();
    const DaemonStats ds = stats();

    Json cacheJ = Json::object();
    cacheJ.set("memHits", Json::number(cs.memHits));
    cacheJ.set("diskHits", Json::number(cs.diskHits));
    cacheJ.set("misses", Json::number(cs.misses));
    cacheJ.set("auxHits", Json::number(cs.auxHits));
    cacheJ.set("auxMisses", Json::number(cs.auxMisses));
    const std::uint64_t lookups = cs.hits() + cs.misses;
    cacheJ.set("hitRate",
               Json::number(lookups == 0
                                ? 0.0
                                : static_cast<double>(cs.hits()) /
                                      static_cast<double>(lookups)));

    Json schedJ = Json::object();
    schedJ.set("queued", Json::number(std::uint64_t(ss.queued)));
    schedJ.set("inFlight", Json::number(std::uint64_t(ss.inFlight)));
    schedJ.set("completed", Json::number(ss.completed));
    schedJ.set("cancelled", Json::number(ss.cancelled));
    Json perClient = Json::object();
    for (const auto &kv : ss.perClient)
        perClient.set(kv.first, Json::number(kv.second));
    schedJ.set("perClient", std::move(perClient));

    Json daemonJ = Json::object();
    daemonJ.set("connections", Json::number(ds.connections));
    daemonJ.set("sweeps", Json::number(ds.sweepsAdmitted));
    daemonJ.set("jobs", Json::number(ds.jobsAdmitted));
    daemonJ.set("unique", Json::number(ds.uniqueAdmitted));
    daemonJ.set("resultsStreamed",
                Json::number(ds.resultsStreamed));
    daemonJ.set("eventsExecuted", Json::number(ds.eventsExecuted));
    daemonJ.set("hostNs", Json::number(ds.hostNs));
    daemonJ.set("eventsPerSec", Json::number(ds.eventsPerSecond()));
    daemonJ.set("uptimeSeconds", Json::number(ds.uptimeSeconds));
    daemonJ.set("workers", Json::number(std::uint64_t(pool->size())));

    Json resp = Json::object();
    resp.set("ok", Json::boolean(true));
    resp.set("cache", std::move(cacheJ));
    resp.set("scheduler", std::move(schedJ));
    resp.set("daemon", std::move(daemonJ));
    return resp;
}

SchedStats
Daemon::schedulerStats() const
{
    return sched ? sched->stats() : SchedStats{};
}

DaemonStats
Daemon::stats() const
{
    DaemonStats ds;
    ds.connections = nConnections.load();
    ds.sweepsAdmitted = nSweeps.load();
    ds.jobsAdmitted = nJobs.load();
    ds.uniqueAdmitted = nUnique.load();
    ds.resultsStreamed = nResultsStreamed.load();
    ds.eventsExecuted = nEvents.load();
    ds.hostNs = nHostNs.load();
    ds.uptimeSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startedAt)
            .count();
    return ds;
}

void
Daemon::shutdownSequence()
{
    stopping.store(true);
    if (opt.handleSignals)
        gWakeFd.store(-1);
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opt.socketPath.c_str());
    }

    // Queued jobs become cancellation frames to their waiting
    // clients; in-flight simulations run to completion (and land in
    // the cache) before the workers are released.
    std::vector<std::uint64_t> ids;
    {
        std::lock_guard<std::mutex> lock(sessionMu);
        for (const auto &kv : sessions)
            ids.push_back(kv.first);
    }
    for (const std::uint64_t id : ids)
        sched->cancelTag(id);
    if (sched)
        sched->drain();

    // Connection threads notice `stopping` within one poll period
    // once their streams complete.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMu);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }

    // LeaseManager's destructor releases anything still held.
    leases.reset();
    sched.reset();
    pool.reset();

    if (wakePipe[0] >= 0) {
        ::close(wakePipe[0]);
        ::close(wakePipe[1]);
        wakePipe[0] = wakePipe[1] = -1;
    }

    live.store(false);
    {
        std::lock_guard<std::mutex> lock(stopMu);
        stopped = true;
    }
    stopCv.notify_all();
}

} // namespace asap
