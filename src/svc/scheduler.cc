#include "svc/scheduler.hh"

#include <algorithm>
#include <limits>
#include <utility>

namespace asap
{

namespace
{
constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
} // namespace

PriorityScheduler::PriorityScheduler(ThreadPool &pool) : pool(pool)
{
}

PriorityScheduler::~PriorityScheduler()
{
    drain();
}

void
PriorityScheduler::enqueue(SchedTask task)
{
    std::unique_lock<std::mutex> lock(mu);
    Entry e;
    e.seq = nextSeq++;
    e.task = std::move(task);
    clients[e.task.client].queued++;
    pending.push_back(std::move(e));
    pump(lock);
}

void
PriorityScheduler::submit(std::function<void()> task)
{
    SchedTask t;
    t.fn = std::move(task);
    enqueue(std::move(t));
}

std::size_t
PriorityScheduler::pickLocked() const
{
    std::size_t best = npos;
    int bestPrio = 0;
    std::size_t bestLoad = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const Entry &e = pending[i];
        const auto it = clients.find(e.task.client);
        const std::size_t load =
            it == clients.end() ? 0
                                : it->second.running +
                                      it->second.started;
        if (best == npos || e.task.priority > bestPrio ||
            (e.task.priority == bestPrio &&
             (load < bestLoad ||
              (load == bestLoad &&
               e.seq < pending[best].seq)))) {
            best = i;
            bestPrio = e.task.priority;
            bestLoad = load;
        }
    }
    return best;
}

void
PriorityScheduler::pump(std::unique_lock<std::mutex> &lock)
{
    while (running < pool.size() && !pending.empty()) {
        const std::size_t i = pickLocked();
        if (i == npos)
            break;
        Entry e = std::move(pending[i]);
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(i));

        ClientShare &share = clients[e.task.client];
        --share.queued;
        ++share.running;
        ++share.started;
        // Round-robin resets once a client's queue drains: its next
        // burst starts on equal footing instead of paying for the
        // jobs it already ran.
        if (share.queued == 0)
            share.started = 0;
        ++running;

        auto fn = std::make_shared<SchedTask>(std::move(e.task));
        pool.submit([this, fn] {
            if (fn->fn)
                fn->fn();
            std::unique_lock<std::mutex> inner(mu);
            ClientShare &s = clients[fn->client];
            --s.running;
            ++s.completed;
            --running;
            ++completedCount;
            pump(inner);
            if (running == 0 && pending.empty())
                idle.notify_all();
        });
    }
    (void)lock;
}

std::size_t
PriorityScheduler::cancelTag(std::uint64_t tag)
{
    if (tag == 0)
        return 0;
    std::vector<Entry> removed;
    {
        std::unique_lock<std::mutex> lock(mu);
        auto split = std::stable_partition(
            pending.begin(), pending.end(),
            [tag](const Entry &e) { return e.task.tag != tag; });
        for (auto it = split; it != pending.end(); ++it) {
            ClientShare &share = clients[it->task.client];
            --share.queued;
            if (share.queued == 0)
                share.started = 0;
            removed.push_back(std::move(*it));
        }
        pending.erase(split, pending.end());
        cancelledCount += removed.size();
        if (running == 0 && pending.empty())
            idle.notify_all();
    }
    // Callbacks run unlocked: they typically take the daemon's
    // session locks, which in turn call back into the scheduler.
    for (Entry &e : removed) {
        if (e.task.onCancel)
            e.task.onCancel();
    }
    return removed.size();
}

void
PriorityScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock,
              [this] { return running == 0 && pending.empty(); });
}

SchedStats
PriorityScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    SchedStats s;
    s.queued = pending.size();
    s.inFlight = running;
    s.completed = completedCount;
    s.cancelled = cancelledCount;
    for (const auto &kv : clients)
        s.perClient.emplace_back(kv.first, kv.second.completed);
    return s;
}

} // namespace asap
