#include "svc/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace asap
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Absolute deadline from a relative timeout (<0 = no deadline). */
struct Deadline
{
    explicit Deadline(int timeout_ms)
        : infinite(timeout_ms < 0),
          at(Clock::now() + std::chrono::milliseconds(
                                infinite ? 0 : timeout_ms))
    {
    }

    /** Remaining milliseconds for poll(): -1 = infinite, 0 = expired. */
    int
    remainingMs() const
    {
        if (infinite)
            return -1;
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(at - Clock::now()).count();
        return left <= 0 ? 0 : static_cast<int>(left);
    }

    const bool infinite;
    const Clock::time_point at;
};

/** Wait for @p events on @p fd until the deadline.
 *  @return 1 ready, 0 timed out, -1 error */
int
waitFor(int fd, short events, const Deadline &deadline)
{
    while (true) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int remaining = deadline.remainingMs();
        if (!deadline.infinite && remaining == 0)
            return 0;
        const int rc = ::poll(&pfd, 1, remaining);
        if (rc > 0)
            return 1;
        if (rc == 0)
            return 0;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

/**
 * Read exactly @p len bytes. @p any_read reports whether byte one
 * arrived, so the caller can tell clean EOF from a truncated frame.
 */
FrameStatus
readFully(int fd, void *buf, std::size_t len, const Deadline &deadline,
          bool *any_read = nullptr)
{
    char *p = static_cast<char *>(buf);
    std::size_t got = 0;
    while (got < len) {
        const int ready = waitFor(fd, POLLIN, deadline);
        if (ready == 0)
            return FrameStatus::Timeout;
        if (ready < 0)
            return FrameStatus::Error;
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            if (any_read)
                *any_read = true;
            continue;
        }
        if (n == 0)
            return got == 0 ? FrameStatus::Eof : FrameStatus::Error;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return FrameStatus::Error;
    }
    return FrameStatus::Ok;
}

FrameStatus
writeFully(int fd, const void *buf, std::size_t len,
           const Deadline &deadline)
{
    const char *p = static_cast<const char *>(buf);
    std::size_t sent = 0;
    while (sent < len) {
        const int ready = waitFor(fd, POLLOUT, deadline);
        if (ready == 0)
            return FrameStatus::Timeout;
        if (ready < 0)
            return FrameStatus::Error;
        // MSG_NOSIGNAL: a vanished peer must produce EPIPE, not kill
        // the daemon with SIGPIPE.
        const ssize_t n =
            ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
            continue;
        }
        return FrameStatus::Error;
    }
    return FrameStatus::Ok;
}

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string *why)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        if (why)
            *why = "socket path too long: " + path;
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

void
setWhyErrno(std::string *why, const char *what)
{
    if (why)
        *why = std::string(what) + ": " + std::strerror(errno);
}

} // namespace

const char *
toString(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::Eof: return "eof";
      case FrameStatus::Timeout: return "timeout";
      case FrameStatus::TooLarge: return "too-large";
      case FrameStatus::Error: return "error";
    }
    return "?";
}

FrameStatus
readFrame(int fd, std::string &payload, int timeout_ms)
{
    const Deadline deadline(timeout_ms);

    unsigned char header[4];
    bool anyRead = false;
    FrameStatus st =
        readFully(fd, header, sizeof(header), deadline, &anyRead);
    if (st == FrameStatus::Error && !anyRead)
        return FrameStatus::Error;
    if (st != FrameStatus::Ok)
        return st;

    const std::uint32_t len = std::uint32_t(header[0]) |
                              std::uint32_t(header[1]) << 8 |
                              std::uint32_t(header[2]) << 16 |
                              std::uint32_t(header[3]) << 24;
    if (len > kMaxFrameBytes)
        return FrameStatus::TooLarge;

    payload.resize(len);
    if (len == 0)
        return FrameStatus::Ok;
    st = readFully(fd, &payload[0], len, deadline);
    // EOF inside the payload means the peer truncated the message.
    return st == FrameStatus::Eof ? FrameStatus::Error : st;
}

FrameStatus
writeFrame(int fd, const std::string &payload, int timeout_ms)
{
    if (payload.size() > kMaxFrameBytes)
        return FrameStatus::TooLarge;
    const Deadline deadline(timeout_ms);

    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>(len & 0xFF),
        static_cast<unsigned char>((len >> 8) & 0xFF),
        static_cast<unsigned char>((len >> 16) & 0xFF),
        static_cast<unsigned char>((len >> 24) & 0xFF),
    };
    const FrameStatus st =
        writeFully(fd, header, sizeof(header), deadline);
    if (st != FrameStatus::Ok)
        return st;
    if (payload.empty())
        return FrameStatus::Ok;
    return writeFully(fd, payload.data(), payload.size(), deadline);
}

int
listenUnix(const std::string &path, std::string *why)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, why))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        setWhyErrno(why, "socket");
        return -1;
    }

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE) {
            setWhyErrno(why, "bind");
            ::close(fd);
            return -1;
        }
        // A socket file exists. Reclaim it only if nothing accepts on
        // it — the stale leftover of a killed daemon. A live listener
        // is a hard error: two daemons must not fight over one path.
        int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (probe >= 0 &&
            ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            ::close(probe);
            ::close(fd);
            if (why)
                *why = "another daemon is listening on " + path;
            return -1;
        }
        if (probe >= 0)
            ::close(probe);
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            setWhyErrno(why, "bind (after reclaiming stale socket)");
            ::close(fd);
            return -1;
        }
    }

    if (::listen(fd, 64) != 0) {
        setWhyErrno(why, "listen");
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, int timeout_ms, std::string *why)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, why))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        setWhyErrno(why, "socket");
        return -1;
    }

    // Non-blocking connect so the deadline also bounds this step.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            setWhyErrno(why, "connect");
            ::close(fd);
            return -1;
        }
        const Deadline deadline(timeout_ms);
        const int ready = waitFor(fd, POLLOUT, deadline);
        if (ready <= 0) {
            if (why)
                *why = ready == 0 ? "connect timed out"
                                  : "connect poll failed";
            ::close(fd);
            return -1;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            if (why)
                *why = std::string("connect: ") +
                       std::strerror(err ? err : errno);
            ::close(fd);
            return -1;
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    return fd;
}

} // namespace asap
