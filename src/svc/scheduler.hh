/**
 * @file
 * Priority queue with per-client fair sharing over a ThreadPool.
 *
 * asapd serves many clients from one set of workers; the scheduler
 * decides who runs next. Tasks are admitted to the pool only while
 * fewer than `width` are in flight, so the queue — not the pool's
 * FIFO — always holds the pending work and a late high-priority
 * submit overtakes everything still queued.
 *
 * Pick order (deterministic):
 *   1. highest priority;
 *   2. among those, the client with the fewest running + recently
 *      started tasks (a round-robin that resets when a client's
 *      queue drains, so past heavy use never starves a client that
 *      comes back later);
 *   3. ties broken by submission order.
 *
 * cancelTag() removes queued tasks before they run (running tasks
 * finish — simulations are not preemptible) and fires each task's
 * onCancel callback so the daemon can notify the waiting client.
 */

#ifndef ASAP_SVC_SCHEDULER_HH
#define ASAP_SVC_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/pool.hh"

namespace asap
{

/** One schedulable unit of work. */
struct SchedTask
{
    std::string client;    //!< fair-share bucket ("" = anonymous)
    int priority = 0;      //!< higher runs first
    std::uint64_t tag = 0; //!< cancellation group (0 = uncancellable)
    std::function<void()> fn;       //!< the work
    std::function<void()> onCancel; //!< fired by cancelTag() instead
};

/** Queue/throughput snapshot for the daemon's `stats` op. */
struct SchedStats
{
    std::size_t queued = 0;       //!< admitted, not yet started
    std::size_t inFlight = 0;     //!< currently on a worker
    std::uint64_t completed = 0;  //!< tasks finished since start
    std::uint64_t cancelled = 0;  //!< tasks removed by cancelTag()
    /** completed-task count per client (lifetime). */
    std::vector<std::pair<std::string, std::uint64_t>> perClient;
};

/** The policy layer between the daemon and its ThreadPool. */
class PriorityScheduler : public TaskExecutor
{
  public:
    /** @param pool executes picked tasks; externally owned */
    explicit PriorityScheduler(ThreadPool &pool);

    /** Drains remaining work (running + queued) before destruction. */
    ~PriorityScheduler() override;

    PriorityScheduler(const PriorityScheduler &) = delete;
    PriorityScheduler &operator=(const PriorityScheduler &) = delete;

    /** Enqueue @p task under the policy above. */
    void enqueue(SchedTask task);

    /** TaskExecutor: anonymous client, default priority, no tag. */
    void submit(std::function<void()> task) override;

    /** TaskExecutor: parallelism equals the pool's worker count. */
    unsigned width() const override { return pool.size(); }

    /**
     * Remove every still-queued task with @p tag, firing onCancel
     * for each. Tasks already on a worker are unaffected.
     * @return number of tasks cancelled
     */
    std::size_t cancelTag(std::uint64_t tag);

    /** Block until the queue is empty and no task is in flight. */
    void drain();

    /** Counter snapshot. */
    SchedStats stats() const;

  private:
    struct Entry
    {
        SchedTask task;
        std::uint64_t seq = 0;
    };

    struct ClientShare
    {
        std::size_t queued = 0;   //!< entries waiting in `pending`
        std::size_t running = 0;  //!< entries on a worker
        std::size_t started = 0;  //!< starts since last queue drain
        std::uint64_t completed = 0;
    };

    /** Launch queued tasks while capacity remains (mu held). */
    void pump(std::unique_lock<std::mutex> &lock);

    /** Index of the best pending entry, or npos (mu held). */
    std::size_t pickLocked() const;

    ThreadPool &pool;
    mutable std::mutex mu;
    std::condition_variable idle; //!< drain() waits here
    std::vector<Entry> pending;
    std::map<std::string, ClientShare> clients;
    std::size_t running = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t completedCount = 0;
    std::uint64_t cancelledCount = 0;
};

} // namespace asap

#endif // ASAP_SVC_SCHEDULER_HH
