/**
 * @file
 * Status and error reporting, following the gem5 panic/fatal/warn/inform
 * convention.
 *
 *  - panic():  a simulator bug; aborts.
 *  - fatal():  a user/configuration error; exits with an error code.
 *  - warn():   suspicious but survivable condition.
 *  - inform(): plain status output.
 */

#ifndef ASAP_SIM_LOG_HH
#define ASAP_SIM_LOG_HH

#include <sstream>
#include <string>

namespace asap
{

/** Severity levels understood by logMessage(). */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a log message; Fatal exits, Panic aborts.
 *
 * @param level severity of the message
 * @param where "file:line" the message originates from
 * @param msg   preformatted message text
 */
[[gnu::cold]] void logMessage(LogLevel level, const char *where,
                              const std::string &msg);

/** Silence warn()/inform() output (used by tests and benches). */
void setLogQuiet(bool quiet);

/**
 * Write one status line to stderr through the locked log path,
 * regardless of the quiet flag. For opt-in progress/ETA output:
 * callers only reach this when the user asked for it, so it must not
 * be swallowed by the quiet mode benches run under.
 */
void statusLine(const std::string &msg);

namespace log_detail
{

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace log_detail

#define ASAP_LOG_STRINGIFY2(x) #x
#define ASAP_LOG_STRINGIFY(x) ASAP_LOG_STRINGIFY2(x)
#define ASAP_LOG_WHERE __FILE__ ":" ASAP_LOG_STRINGIFY(__LINE__)

/** Report a simulator bug and abort. */
#define panic(...)                                                         \
    ::asap::logMessage(::asap::LogLevel::Panic, ASAP_LOG_WHERE,            \
                       ::asap::log_detail::format(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define fatal(...)                                                         \
    ::asap::logMessage(::asap::LogLevel::Fatal, ASAP_LOG_WHERE,            \
                       ::asap::log_detail::format(__VA_ARGS__))

/** Report a suspicious condition; continues. */
#define warn(...)                                                          \
    ::asap::logMessage(::asap::LogLevel::Warn, ASAP_LOG_WHERE,             \
                       ::asap::log_detail::format(__VA_ARGS__))

/** Report simulation status; continues. */
#define inform(...)                                                        \
    ::asap::logMessage(::asap::LogLevel::Inform, ASAP_LOG_WHERE,           \
                       ::asap::log_detail::format(__VA_ARGS__))

/** panic() if a required invariant does not hold. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** fatal() if a user-facing precondition does not hold. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

} // namespace asap

#endif // ASAP_SIM_LOG_HH
