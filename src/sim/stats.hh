/**
 * @file
 * Statistics collection.
 *
 * Mirrors the gem5 stats the paper's artifact exports (Table VI):
 * named counters plus sampled distributions (used for the occupancy
 * averages and 99th percentiles of Figure 11).
 */

#ifndef ASAP_SIM_STATS_HH
#define ASAP_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asap
{

/**
 * A sampled distribution supporting mean, max and percentile queries.
 *
 * Samples are accumulated into fixed integer buckets, so percentile
 * queries are exact for the small-valued occupancy series we record
 * (buffer occupancies are bounded by buffer capacity).
 */
class Distribution
{
  public:
    /** @param max_value largest sample value that can be recorded */
    explicit Distribution(std::uint64_t max_value = 256);

    /** Record one sample; values beyond the bound are clamped. */
    void sample(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Arithmetic mean of the samples (0 if empty). */
    double mean() const;

    /** Largest sample seen (0 if empty). */
    std::uint64_t max() const { return maxSeen; }

    /**
     * Value at percentile @p pct (e.g.\ 99.0).
     * @return smallest value v such that pct% of samples are <= v
     */
    std::uint64_t percentile(double pct) const;

    /** Discard all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    std::uint64_t weightedSum = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A log-bucketed histogram for wide-range latency samples.
 *
 * The linear Distribution above is exact but needs one bucket per
 * value — fine for buffer occupancies bounded by capacity, useless
 * for persist latencies spanning five orders of magnitude. This
 * variant buckets by magnitude: 16 linear sub-buckets per power of
 * two, so any sample lands in a bucket whose width is at most 1/16 of
 * its value (<= 6.25% relative error on percentile queries) while the
 * whole 64-bit range fits in ~1 k buckets. percentile() returns the
 * lower bound of the answering bucket, so reported tails never
 * overstate the truth.
 */
class LogHistogram
{
  public:
    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Arithmetic mean of the samples (0 if empty). */
    double mean() const;

    /** Largest sample seen, exactly (0 if empty). */
    std::uint64_t max() const { return maxSeen; }

    /**
     * Value at percentile @p pct (e.g.\ 99.9): the lower bound of the
     * smallest bucket b such that pct% of samples fall in buckets
     * <= b. Within 6.25% (one sub-bucket) of the exact answer.
     */
    std::uint64_t percentile(double pct) const;

    /** Discard all samples. */
    void reset();

    /** Bucket index of @p value (exposed for tests). */
    static unsigned bucketOf(std::uint64_t value);

    /** Smallest value mapping to bucket @p idx (exposed for tests). */
    static std::uint64_t bucketFloor(unsigned idx);

  private:
    /** 16 sub-buckets per binade: values < 16 map 1:1, and 60 full
     *  binades cover the rest of the 64-bit range. */
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSub = 1u << kSubBits;
    static constexpr unsigned kBuckets = kSub + (64 - kSubBits) * kSub;

    std::vector<std::uint64_t> buckets; //!< lazily sized to kBuckets
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * Flat registry of named statistics for one simulated system.
 *
 * Components increment counters by name; the harness walks the
 * registry to print gem5-style "stats.txt" output and the benches read
 * specific names (see Table VI in the paper).
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters[name] = value;
    }

    /** Raise counter @p name to at least @p value. */
    void
    maxTo(const std::string &name, std::uint64_t value)
    {
        auto &slot = counters[name];
        if (value > slot)
            slot = value;
    }

    /**
     * Handle to counter @p name (created at zero). std::map node
     * references are stable, so components fetch their hot counters
     * once at construction and bump through the reference instead of
     * paying a string compare chain per event. Invalidated only by
     * reset().
     */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters[name];
    }

    /** Read counter @p name (0 if never touched). */
    std::uint64_t get(const std::string &name) const;

    /** Access (creating) the distribution @p name. */
    Distribution &dist(const std::string &name,
                       std::uint64_t max_value = 256);

    /** True if a distribution with this name exists. */
    bool hasDist(const std::string &name) const;

    /**
     * Access (creating) the log-bucketed histogram @p name. Like
     * counter(), map nodes are stable: components fetch the reference
     * once at construction and sample through it.
     */
    LogHistogram &logHist(const std::string &name);

    /** True if a log histogram with this name exists. */
    bool hasLogHist(const std::string &name) const;

    /** Read-only view of all log histograms. */
    const std::map<std::string, LogHistogram> &
    allLogHists() const
    {
        return logHists;
    }

    /** Read-only view of all counters. */
    const std::map<std::string, std::uint64_t> &
    allCounters() const
    {
        return counters;
    }

    /** Read-only view of all distributions. */
    const std::map<std::string, Distribution> &
    allDists() const
    {
        return dists;
    }

    /** Render all stats as a gem5-style text block. */
    std::string dump() const;

    /** Clear every counter and distribution. */
    void reset();

  private:
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Distribution> dists;
    std::map<std::string, LogHistogram> logHists;
};

} // namespace asap

#endif // ASAP_SIM_STATS_HH
