/**
 * @file
 * Domain-parallel event engine.
 *
 * The sequential engine lives entirely in the header (hot path). This
 * file implements the parallel protocol: conservative-lookahead
 * rounds, speculation with barrier-time validation and rollback, and
 * the worker pool. Determinism needs no merge step — sequence keys
 * are minted from creator-domain-local counters at schedule time
 * (EventQueue::makeKey), so they are final immediately and identical
 * to the keys the sequential engine would assign. src/sim/README.md
 * documents the protocol and the bit-identity argument.
 */

#include "sim/event_queue.hh"

#include <unordered_set>

namespace asap
{

namespace
{

/** Saturating tick addition (bounds against maxTick sentinels). */
inline Tick
satAdd(Tick a, Tick b)
{
    const Tick s = a + b;
    return s < a ? maxTick : s;
}

/** Polite spin-wait body. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

EventQueue::~EventQueue()
{
    stopWorkers();
    clear();
}

void
EventQueue::growSlab(std::vector<std::unique_ptr<Slot[]>> &chunks,
                     std::vector<std::uint32_t> &freeSlots, bool capped)
{
    fatal_if(capped && chunks.size() >= kParallelChunkReserve,
             "event-domain slab exhausted (", kParallelChunkReserve,
             " chunks) — pending events far beyond any expected peak");
    const auto base =
        static_cast<std::uint32_t>(chunks.size() * slotsPerChunk);
    chunks.push_back(std::make_unique<Slot[]>(slotsPerChunk));
    freeSlots.reserve(freeSlots.size() + slotsPerChunk);
    // Push high indices first so the freelist hands out low ones.
    for (std::uint32_t i = slotsPerChunk; i-- > 0;)
        freeSlots.push_back(base + i);
}

void
EventQueue::releaseSlot(std::uint32_t id)
{
    if (!parallel_) {
        Slot &s = chunks[id / slotsPerChunk][id % slotsPerChunk];
        if (s.destroy)
            s.destroy(s.storage);
        freeSlots.push_back(id);
        return;
    }
    Domain &d = *domains_[id >> kDomainShift];
    const std::uint32_t idx = id & kSlotIdxMask;
    Slot &s = d.chunks[idx / slotsPerChunk][idx % slotsPerChunk];
    if (s.destroy)
        s.destroy(s.storage);
    d.freeSlots.push_back(idx);
}

std::size_t
EventQueue::pending() const
{
    if (!parallel_)
        return heap.size();
    std::size_t n = 0;
    for (const auto &d : domains_)
        n += d->heap.size();
    return n;
}

std::size_t
EventQueue::clear()
{
    if (!parallel_) {
        const std::size_t dropped = heap.size();
        for (const Node &n : heap)
            releaseSlot(n.slot);
        heap.clear();
        return dropped;
    }
    std::size_t dropped = 0;
    for (const auto &d : domains_) {
        dropped += d->heap.size();
        for (const Node &n : d->heap)
            releaseSlot(n.slot);
        d->heap.clear();
    }
    return dropped;
}

void
EventQueue::configureParallel(unsigned numMcs, unsigned threads,
                              Tick coreToMcLatency, Tick mcToCoreLatency,
                              Tick specWindow)
{
    fatal_if(parallel_, "configureParallel() called twice");
    fatal_if(!heap.empty() || executed_ != 0 ||
                 sendCounters_[kCoreDomain].v != 0,
             "configureParallel() after events were scheduled");
    fatal_if(numMcs == 0, "parallel engine needs at least one MC domain");
    fatal_if(coreToMcLatency == 0 || mcToCoreLatency == 0,
             "parallel engine needs nonzero cross-domain latencies");
    const unsigned n = numMcs + 1;
    fatal_if(n > kMaxDomains, "too many event domains (", n, ")");
    domains_.clear();
    domains_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        auto d = std::make_unique<Domain>();
        d->id = static_cast<DomainId>(i);
        d->chunks.reserve(kParallelChunkReserve);
        domains_.push_back(std::move(d));
    }
    threads_ = std::min(std::max(threads, 1u), n);
    latCoreToMc_ = coreToMcLatency;
    latMcToCore_ = mcToCoreLatency;
    specWindow_ = specWindow;
    parallel_ = true;
}

void
EventQueue::setSerialPredicate(std::function<bool()> pred)
{
    serialPred_ = std::move(pred);
}

void
EventQueue::setCheckpointHooks(DomainId domain, std::function<void()> save,
                               std::function<void()> restore,
                               std::function<void()> discard)
{
    fatal_if(!parallel_ || domain >= domains_.size(),
             "setCheckpointHooks: no such domain");
    Domain &d = *domains_[domain];
    d.ckptSave = std::move(save);
    d.ckptRestore = std::move(restore);
    d.ckptDiscard = std::move(discard);
}

void
EventQueue::taint(const char *why)
{
    const char *expected = nullptr;
    taintReason_.compare_exchange_strong(expected, why,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
    taintFlag_.store(true, std::memory_order_release);
}

bool
EventQueue::crossCallHazard(DomainId home)
{
    if (!parallel_ || !inRound_.load(std::memory_order_relaxed))
        return false;
    if (tlsExec_.owner == this && tlsExec_.dom != nullptr &&
        tlsExec_.dom->id == home)
        return false;
    taint("synchronous cross-domain callback during a parallel round");
    return true;
}

void
EventQueue::noteCrossProbe()
{
    if (tlsExec_.owner == this && tlsExec_.dom != nullptr &&
        inRound_.load(std::memory_order_relaxed))
        ++tlsExec_.dom->crossProbes;
}

void
EventQueue::noteCrossWrite()
{
    if (tlsExec_.owner == this && tlsExec_.dom != nullptr &&
        inRound_.load(std::memory_order_relaxed))
        ++tlsExec_.dom->crossWrites;
}

void
EventQueue::routeEvent(DomainId target, Tick when, std::uint32_t slot)
{
    Domain &t = *domains_[target];
    Domain *cur = (tlsExec_.owner == this) ? tlsExec_.dom : nullptr;
    if (!inRound_.load(std::memory_order_relaxed) || cur == nullptr) {
        // Direct mode: no round in flight (or a serial chunk), one
        // thread. The creator is the executing event's domain, or the
        // core domain outside event context — the same attribution
        // the sequential engine makes, so keys match it exactly.
        panic_if(when < now(), "scheduling event in the past (", when,
                 " < ", now(), ")");
        const DomainId creator = cur ? cur->id : kCoreDomain;
        const std::uint64_t key = makeKey(creator);
        // Same-domain same-tick children may legally carry a lower
        // key than already-executed events (the sequential heap would
        // run them next anyway); cross-domain arrivals must land
        // strictly after the target's committed frontier.
        panic_if(creator != target && t.commitAny &&
                     (when < t.commitHigh ||
                      (when == t.commitHigh && key < t.commitHighKey)),
                 "direct send (", when, ", key ", key,
                 ") lands below domain ", target,
                 "'s committed frontier (", t.commitHigh, ", key ",
                 t.commitHighKey, ")");
        t.heap.push_back(Node{when, key, slot, target});
        std::push_heap(t.heap.begin(), t.heap.end(), NodeAfter{});
        return;
    }
    Domain &d = *cur;
    panic_if(when < d.curTick, "scheduling event in the past (", when,
             " < ", d.curTick, ")");
    const std::uint64_t key = makeKey(d.id);
    if (target == d.id && when < d.specBound) {
        // Same-domain child inside this window: goes straight into
        // the heap (its key is final) and executes this round. It is
        // also recorded — flagged direct — so rollback and abort can
        // find its slot; commit skips routing it a second time.
        d.children.push_back(Child{when, key, slot, target, true});
        d.heap.push_back(Node{when, key, slot, target});
        std::push_heap(d.heap.begin(), d.heap.end(), NodeAfter{});
        return;
    }
    if (target != d.id && when < t.bound) {
        if (d.curTick >= d.bound) {
            // A speculative event produced a send into the target's
            // committed window — this speculation cannot commit.
            d.specAborted = true;
        } else {
            panic("cross-domain send below the target's lookahead "
                  "bound (", when, " < ", t.bound, ", from domain ",
                  d.id, " @", d.curTick, " to domain ", target,
                  ") — latency contract violated");
        }
    }
    d.children.push_back(Child{when, key, slot, target, false});
}

void
EventQueue::runDomainWindow(Domain &d)
{
    tlsExec_ = TlsExec{this, &d};
    while (!d.heap.empty() && d.heap.front().when < d.specBound &&
           !d.specAborted &&
           !taintFlag_.load(std::memory_order_relaxed)) {
        const Node top = d.heap.front();
        std::pop_heap(d.heap.begin(), d.heap.end(), NodeAfter{});
        d.heap.pop_back();
        d.curTick = top.when;
        d.lastExecTick = top.when;
        d.lastExecKey = top.seq;
        d.executedAny = true;
        Slot &s = slotAt(top.slot);
        s.invoke(s.storage);
        d.executedSlots.push_back(top.slot);
        ++d.roundExecuted;
    }
    tlsExec_ = TlsExec{nullptr, nullptr};
}

void
EventQueue::runStripe(unsigned threadIdx)
{
    for (std::size_t i = 0; i < domains_.size(); ++i)
        if (i % threads_ == threadIdx)
            runDomainWindow(*domains_[i]);
}

void
EventQueue::computeBounds(Tick limitP1)
{
    // Conservative lookahead. Every cross-domain hop goes through the
    // core (star topology), so each domain's window must stop below
    // the earliest event that can causally reach it — including
    // through chains that lower another domain's effective front.
    // The fixpoint over "earliest future execution per domain" is:
    //
    //   earliestCore = min(core front, min MC front + latMcToCore)
    //   earliestMc   = min(min MC front, earliestCore + latCoreToMc)
    //
    // (an in-flight core->MC send can drop an MC's front to
    // earliestCore + latCoreToMc, whose reply then echoes back into
    // the core — deeper echoes only add latency). Arrivals into an
    // MC come only from core executions, arrivals into the core only
    // from MC executions, so:
    Domain &core = *domains_[kCoreDomain];
    const Tick fCore =
        core.heap.empty() ? maxTick : core.heap.front().when;
    Tick minMcFront = maxTick;
    for (std::size_t i = 1; i < domains_.size(); ++i) {
        Domain &m = *domains_[i];
        if (!m.heap.empty())
            minMcFront = std::min(minMcFront, m.heap.front().when);
    }
    const Tick earliestCore =
        std::min(fCore, satAdd(minMcFront, latMcToCore_));
    const Tick mcBound =
        std::min(satAdd(earliestCore, latCoreToMc_), limitP1);
    for (std::size_t i = 1; i < domains_.size(); ++i)
        domains_[i]->bound = mcBound;
    const Tick earliestMc =
        std::min(minMcFront, satAdd(earliestCore, latCoreToMc_));
    core.bound =
        std::min(satAdd(earliestMc, latMcToCore_), limitP1);
}

void
EventQueue::serialChunk(Tick limit)
{
    // Exact serial execution of a small chunk of the global order,
    // used when a parallel round would not pay off (sparse window) or
    // is not licensed (serial predicate). Direct-mode scheduling
    // applies throughout, so this is literally the sequential engine
    // walking multiple heaps.
    constexpr int kSerialChunk = 128;
    ++serialRounds_;
    for (int i = 0; i < kSerialChunk; ++i) {
        Domain *best = nullptr;
        for (const auto &dp : domains_) {
            if (dp->heap.empty())
                continue;
            const Node &f = dp->heap.front();
            if (best == nullptr ||
                NodeAfter{}(best->heap.front(), f))
                best = dp.get();
        }
        if (best == nullptr || best->heap.front().when > limit)
            return;
        Domain &d = *best;
        const Node top = d.heap.front();
        std::pop_heap(d.heap.begin(), d.heap.end(), NodeAfter{});
        d.heap.pop_back();
        d.curTick = top.when;
        d.commitHigh = top.when;
        d.commitHighKey = top.seq;
        d.commitAny = true;
        curTick_ = top.when;
        ++executed_;
        tlsExec_ = TlsExec{this, &d};
        Slot &s = slotAt(top.slot);
        s.invoke(s.storage);
        tlsExec_ = TlsExec{nullptr, nullptr};
        releaseSlot(top.slot);
    }
}

bool
EventQueue::stepParallel()
{
    Domain *best = nullptr;
    for (const auto &dp : domains_) {
        if (dp->heap.empty())
            continue;
        if (best == nullptr ||
            NodeAfter{}(best->heap.front(), dp->heap.front()))
            best = dp.get();
    }
    if (best == nullptr)
        return false;
    Domain &d = *best;
    const Node top = d.heap.front();
    std::pop_heap(d.heap.begin(), d.heap.end(), NodeAfter{});
    d.heap.pop_back();
    d.curTick = top.when;
    d.commitHigh = top.when;
    d.commitHighKey = top.seq;
    d.commitAny = true;
    curTick_ = top.when;
    ++executed_;
    tlsExec_ = TlsExec{this, &d};
    Slot &s = slotAt(top.slot);
    s.invoke(s.storage);
    tlsExec_ = TlsExec{nullptr, nullptr};
    releaseSlot(top.slot);
    return true;
}

void
EventQueue::validateSpeculation()
{
    // Barrier-time validation. A speculative window executed events
    // at ticks its conservative bound did not license; it may commit
    // only if nothing can ever arrive at or below its last executed
    // tick. Two arrival paths exist in the star topology (all
    // cross-domain traffic is core<->MC):
    //
    //  - direct: a send buffered this round targeting the domain.
    //  - chained: any pending event anywhere can reach the core (its
    //    own heap front, a buffered send into it, or an MC front plus
    //    one MC->core hop) and then send onward with >= latCoreToMc_;
    //    longer chains only add delay.
    //
    // Both are fully known at the barrier, so validity is decided
    // here and checkpoints never outlive their round. The computation
    // uses the pre-rollback barrier state of every domain — heap
    // fronts and buffered children, even those of windows about to be
    // rolled back. A rolled-back window re-executes deterministically
    // and re-creates the same sends, so its pre-rollback children are
    // exactly the arrivals its replay will produce; counting them
    // here keeps the decision both sound and deterministic.
    std::vector<Tick> minIncoming(domains_.size(), maxTick);
    for (const auto &sp : domains_)
        for (const Child &c : sp->children)
            if (!c.direct)
                minIncoming[c.target] =
                    std::min(minIncoming[c.target], c.when);

    const Domain &core = *domains_[kCoreDomain];
    Tick earliestCore =
        core.heap.empty() ? maxTick : core.heap.front().when;
    earliestCore = std::min(earliestCore, minIncoming[kCoreDomain]);
    for (std::size_t i = 1; i < domains_.size(); ++i) {
        const Domain &m = *domains_[i];
        Tick f = m.heap.empty() ? maxTick : m.heap.front().when;
        f = std::min(f, minIncoming[m.id]);
        earliestCore = std::min(earliestCore, satAdd(f, latMcToCore_));
    }
    const Tick chainedThreat = satAdd(earliestCore, latCoreToMc_);

    for (const auto &dp : domains_) {
        Domain &d = *dp;
        if (!d.executedAny)
            continue;
        const bool threatened =
            minIncoming[d.id] <= d.lastExecTick ||
            (d.id != kCoreDomain && chainedThreat <= d.lastExecTick);
        if (!d.snapped) {
            // Conservative windows stop strictly below their bound
            // and the latency contract puts every arrival at or past
            // it, so a threat here is a kernel bug, not a rollback.
            panic_if(threatened, "conservative domain ", d.id,
                     " outran an arrival — cross-domain latency "
                     "contract bug");
            continue;
        }
        if (threatened || d.specAborted) {
            ++misspeculations_;
            ++rollbacks_;
            rollbackDomain(d);
        }
    }
}

void
EventQueue::rollbackDomain(Domain &d)
{
    // Misspeculation: discard the whole window. Every child slot dies
    // (direct ones also leave the heap via the snapshot restore).
    // Executed pre-round slots are NOT released: the restored heap
    // references them and they will execute again in a later round
    // (the component checkpoint restores the state they read). No
    // conservative re-execution is needed — speculation only starts
    // on an empty conservative window (front >= bound).
    for (const Child &c : d.children)
        releaseSlot(c.slot);
    d.children.clear();
    d.executedSlots.clear();
    d.heap = std::move(d.heapSnap);
    d.heapSnap.clear();
    d.curTick = d.tickSnap;
    sendCounters_[d.id].v = d.counterSnap;
    d.lastExecTick = 0;
    d.executedAny = false;
    d.specAborted = false;
    d.roundExecuted = 0;
    d.ckptRestore();
    d.snapped = false;
}

void
EventQueue::commitRound()
{
    // This round's windows are now irrevocable: advance the committed
    // execution frontiers before routing, so every routed send is
    // checked against the final frontier of its target.
    for (const auto &dp : domains_) {
        if (dp->executedAny) {
            dp->commitHigh = dp->lastExecTick;
            dp->commitHighKey = dp->lastExecKey;
            dp->commitAny = true;
        }
    }
    // Route the surviving buffered sends — their keys were final at
    // creation, so this is pure heap insertion, no renumbering. The
    // domain iteration order is fixed, and unique keys make the heap
    // pop order independent of insertion order anyway.
    for (const auto &sp : domains_) {
        for (const Child &c : sp->children) {
            if (c.direct)
                continue; // executed in-round; slot released below
            Domain &t = *domains_[c.target];
            panic_if(t.commitAny &&
                         (c.when < t.commitHigh ||
                          (c.when == t.commitHigh &&
                           c.key < t.commitHighKey)),
                     "committed send (", c.when, ", key ", c.key,
                     ") lands below domain ", c.target,
                     "'s committed frontier (", t.commitHigh, ", key ",
                     t.commitHighKey, ")");
            t.heap.push_back(Node{c.when, c.key, c.slot, c.target});
            std::push_heap(t.heap.begin(), t.heap.end(), NodeAfter{});
        }
    }
    for (const auto &dp : domains_) {
        Domain &d = *dp;
        // Direct children always drain inside their window, so
        // executedSlots releases them exactly once.
        for (std::uint32_t s : d.executedSlots)
            releaseSlot(s);
        executed_ += d.roundExecuted;
        if (d.snapped) {
            d.ckptDiscard();
            d.snapped = false;
            d.heapSnap.clear();
        }
        d.children.clear();
        d.executedSlots.clear();
        d.roundExecuted = 0;
        d.lastExecTick = 0;
        d.executedAny = false;
        d.specAborted = false;
        d.crossProbes = 0;
        d.crossWrites = 0;
    }
}

void
EventQueue::abortRound()
{
    // Taint teardown: the run's results are discarded, so component
    // state no longer matters — but slot bookkeeping must stay sound
    // for clear() and the destructor. Direct children may still sit
    // in the heap (a tainted window exits early); they are recognized
    // by slot id and removed, then released through the children
    // list. Executed non-child slots release here; their nodes are
    // already off the heap.
    for (const auto &dp : domains_) {
        Domain &d = *dp;
        std::unordered_set<std::uint32_t> childSlots;
        for (const Child &c : d.children)
            childSlots.insert(c.slot);
        d.heap.erase(std::remove_if(d.heap.begin(), d.heap.end(),
                                    [&childSlots](const Node &n) {
                                        return childSlots.count(n.slot) >
                                               0;
                                    }),
                     d.heap.end());
        std::make_heap(d.heap.begin(), d.heap.end(), NodeAfter{});
        for (const Child &c : d.children)
            releaseSlot(c.slot);
        for (std::uint32_t s : d.executedSlots)
            if (!childSlots.count(s))
                releaseSlot(s);
        d.children.clear();
        d.executedSlots.clear();
        d.roundExecuted = 0;
        d.lastExecTick = 0;
        d.executedAny = false;
        d.specAborted = false;
        d.crossProbes = 0;
        d.crossWrites = 0;
        d.snapped = false;
        d.heapSnap.clear();
    }
    inRound_.store(false, std::memory_order_relaxed);
}

void
EventQueue::ensureWorkers()
{
    if (!workers_.empty() || threads_ <= 1)
        return;
    workers_.reserve(threads_ - 1);
    for (unsigned t = 1; t < threads_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
}

void
EventQueue::stopWorkers()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> g(barrierMtx_);
        quit_.store(true, std::memory_order_release);
    }
    cvRound_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
}

void
EventQueue::workerLoop(unsigned threadIdx)
{
    constexpr unsigned kSpinsBeforePark = 4096;
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t gen = roundGen_.load(std::memory_order_acquire);
        unsigned spins = 0;
        while (gen == seen && !quit_.load(std::memory_order_acquire)) {
            if (++spins < kSpinsBeforePark) {
                cpuRelax();
            } else {
                std::unique_lock<std::mutex> l(barrierMtx_);
                cvRound_.wait(l, [&] {
                    return roundGen_.load(std::memory_order_acquire) !=
                               seen ||
                           quit_.load(std::memory_order_acquire);
                });
            }
            gen = roundGen_.load(std::memory_order_acquire);
        }
        if (gen == seen)
            return; // quit_ set with no new round pending
        seen = gen;
        runStripe(threadIdx);
        const unsigned nWorkers = threads_ - 1;
        if (doneCount_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nWorkers) {
            // Last worker in: wake the coordinator if it parked.
            std::lock_guard<std::mutex> g(barrierMtx_);
            cvDone_.notify_one();
        }
    }
}

bool
EventQueue::runParallel(Tick limit)
{
    const Tick limitP1 = limit == maxTick ? maxTick : limit + 1;
    for (;;) {
        if (tainted())
            return false;

        // Global frontier.
        Tick horizon = maxTick;
        Tick maxCur = curTick_;
        bool any = false;
        for (const auto &dp : domains_) {
            maxCur = std::max(maxCur, dp->curTick);
            if (!dp->heap.empty()) {
                any = true;
                horizon = std::min(horizon, dp->heap.front().when);
            }
        }
        if (!any) {
            curTick_ = maxCur;
            return true;
        }
        if (horizon > limit) {
            curTick_ = limit;
            return false;
        }
        curTick_ = horizon;

        if (serialPred_ && serialPred_()) {
            serialChunk(limit);
            continue;
        }

        computeBounds(limitP1);

        // Window ends: conservative by default; an MC whose lookahead
        // window is empty may speculate past its bound (checkpoint
        // hooks required).
        unsigned runnable = 0;
        for (const auto &dp : domains_) {
            Domain &d = *dp;
            d.specBound = d.bound;
            if (d.heap.empty())
                continue;
            const Tick f = d.heap.front().when;
            if (d.id != kCoreDomain && specWindow_ > 0 && d.ckptSave &&
                f >= d.bound) {
                const Tick sb =
                    std::min(satAdd(d.bound, specWindow_), limitP1);
                if (f < sb)
                    d.specBound = sb;
            }
            if (f < d.specBound)
                ++runnable;
        }
        if (runnable < 2) {
            serialChunk(limit);
            continue;
        }

        for (const auto &dp : domains_) {
            Domain &d = *dp;
            if (d.specBound > d.bound) {
                d.heapSnap = d.heap;
                d.tickSnap = d.curTick;
                d.counterSnap = sendCounters_[d.id].v;
                d.snapped = true;
                d.ckptSave();
            }
        }

        // The round: publish, execute the stripes, wait at the
        // barrier. roundGen_'s release pairs with the workers'
        // acquire (bounds and snapshots are visible to them);
        // doneCount_'s release pairs with our acquire (their domain
        // state is visible to us).
        inRound_.store(true, std::memory_order_relaxed);
        ensureWorkers();
        doneCount_.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> g(barrierMtx_);
            roundGen_.fetch_add(1, std::memory_order_release);
        }
        cvRound_.notify_all();
        runStripe(0);
        const unsigned nWorkers =
            static_cast<unsigned>(workers_.size());
        unsigned spins = 0;
        while (doneCount_.load(std::memory_order_acquire) < nWorkers) {
            if (++spins < 4096) {
                cpuRelax();
            } else {
                std::unique_lock<std::mutex> l(barrierMtx_);
                cvDone_.wait(l, [&] {
                    return doneCount_.load(
                               std::memory_order_acquire) >= nWorkers;
                });
            }
        }

        if (tainted()) {
            abortRound();
            return false;
        }
        // A synchronous cross-domain probe and a mutation of the
        // probed state in the same round may have raced — the probe's
        // answer is not trustworthy even if the zero-count fast path
        // took it. Taint rather than guess.
        std::uint64_t probes = 0, writes = 0;
        for (const auto &dp : domains_) {
            probes += dp->crossProbes;
            writes += dp->crossWrites;
        }
        if (probes > 0 && writes > 0) {
            taint("cross-domain probe/write overlap in a parallel "
                  "round");
            abortRound();
            return false;
        }

        validateSpeculation();
        commitRound();
        inRound_.store(false, std::memory_order_relaxed);
        ++parallelRounds_;
    }
}

} // namespace asap
