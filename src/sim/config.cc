#include "sim/config.hh"

#include <cstdlib>

#include "sim/log.hh"

namespace asap
{

ModelKind
parseModelKind(const std::string &name)
{
    if (name == "baseline")
        return ModelKind::Baseline;
    if (name == "hops")
        return ModelKind::Hops;
    if (name == "asap")
        return ModelKind::Asap;
    if (name == "eadr" || name == "bbb" || name == "ideal")
        return ModelKind::Eadr;
    fatal("unknown model '", name, "' (want baseline|hops|asap|eadr)");
    return ModelKind::Asap; // unreachable
}

PersistencyModel
parsePersistencyModel(const std::string &name)
{
    if (name == "ep" || name == "epoch")
        return PersistencyModel::Epoch;
    if (name == "rp" || name == "release")
        return PersistencyModel::Release;
    fatal("unknown persistency model '", name, "' (want ep|rp)");
    return PersistencyModel::Release; // unreachable
}

std::string
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Baseline: return "baseline";
      case ModelKind::Hops: return "hops";
      case ModelKind::Asap: return "asap";
      case ModelKind::Eadr: return "eadr";
    }
    return "?";
}

std::string
toString(PersistencyModel pm)
{
    return pm == PersistencyModel::Epoch ? "ep" : "rp";
}

void
SimConfig::override(const std::string &assignment)
{
    auto eq = assignment.find('=');
    fatal_if(eq == std::string::npos, "override '", assignment,
             "' is not key=value");
    const std::string key = assignment.substr(0, eq);
    const std::string val = assignment.substr(eq + 1);
    auto as_u64 = [&]() -> std::uint64_t {
        return std::strtoull(val.c_str(), nullptr, 0);
    };

    if (key == "media" || key == "mediaProfile") mediaProfile = val;
    else if (key == "mediaPerMc") mediaPerMc = val;
    else if (key == "mediaReadLatency") mediaReadLatency = as_u64();
    else if (key == "mediaWriteLatency") mediaWriteLatency = as_u64();
    else if (key == "mediaBanks") mediaBanks = as_u64();
    else if (key == "mediaWriteGBps")
        mediaWriteGBps = std::strtod(val.c_str(), nullptr);
    else if (key == "numCores") numCores = as_u64();
    else if (key == "numMCs") numMCs = as_u64();
    else if (key == "model") model = parseModelKind(val);
    else if (key == "persistency") persistency = parsePersistencyModel(val);
    else if (key == "pbEntries") pbEntries = as_u64();
    else if (key == "etEntries") etEntries = as_u64();
    else if (key == "rtEntries") rtEntries = as_u64();
    else if (key == "wpqEntries") wpqEntries = as_u64();
    else if (key == "wpqCombineWindow") wpqCombineWindow = as_u64();
    else if (key == "nvmBanks") nvmBanks = as_u64();
    else if (key == "interleaveBytes") interleaveBytes = as_u64();
    else if (key == "dramLatency") dramLatency = as_u64();
    else if (key == "pmReadLatency") pmReadLatency = as_u64();
    else if (key == "pmWriteLatency") pmWriteLatency = as_u64();
    else if (key == "pbFlushLatency") pbFlushLatency = as_u64();
    else if (key == "pbMaxInflight") pbMaxInflight = as_u64();
    else if (key == "clwbMaxInflight") clwbMaxInflight = as_u64();
    else if (key == "mcMessageLatency") mcMessageLatency = as_u64();
    else if (key == "interCoreLatency") interCoreLatency = as_u64();
    else if (key == "hopsPollPeriod") hopsPollPeriod = as_u64();
    else if (key == "hopsPollCost") hopsPollCost = as_u64();
    else if (key == "eadrDfenceCost") eadrDfenceCost = as_u64();
    else if (key == "coreIssueWidth") coreIssueWidth = as_u64();
    else if (key == "seed") seed = as_u64();
    else if (key == "maxRunTicks") maxRunTicks = as_u64();
    else if (key == "xpBufferLines") xpBufferLines = as_u64();
    else if (key == "parDomains") parDomains = as_u64();
    else if (key == "parSpecWindow") parSpecWindow = as_u64();
    else
        fatal("unknown config key '", key, "'");
}

} // namespace asap
