#include "sim/pool.hh"

#include <utility>

namespace asap
{

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    hasWork.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(task));
        ++inFlight;
    }
    hasWork.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    allDone.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            hasWork.wait(lock,
                         [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu);
            --inFlight;
            if (inFlight == 0)
                allDone.notify_all();
        }
    }
}

} // namespace asap
