/**
 * @file
 * Fixed-size worker pool over a FIFO work queue.
 *
 * Deliberately minimal: tasks are opaque closures, submission order
 * is preserved by the queue, and wait() gives the engine a barrier.
 * No work stealing — sweep jobs are coarse (whole simulations), so a
 * single locked queue is nowhere near contention.
 */

#ifndef ASAP_SIM_POOL_HH
#define ASAP_SIM_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asap
{

/**
 * Where the engine puts simulation tasks. ThreadPool is the default
 * implementation; a long-running service can substitute its own
 * scheduler (e.g. src/svc's priority queue) so sweeps from many
 * clients share one set of workers under an admission policy the
 * engine knows nothing about.
 */
class TaskExecutor
{
  public:
    virtual ~TaskExecutor() = default;

    /** Enqueue @p task; the executor runs it on some worker. */
    virtual void submit(std::function<void()> task) = 0;

    /** Worker parallelism (used for progress/ETA estimates). */
    virtual unsigned width() const = 0;
};

/** Worker threads draining a shared FIFO of closures. */
class ThreadPool : public TaskExecutor
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreads()
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; it runs on some worker in FIFO order. */
    void submit(std::function<void()> task) override;

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** TaskExecutor: parallelism equals the worker count. */
    unsigned width() const override { return size(); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mu;
    std::condition_variable hasWork;  //!< workers wait here
    std::condition_variable allDone;  //!< wait() waits here
    std::deque<std::function<void()>> queue;
    std::size_t inFlight = 0; //!< queued + currently executing tasks
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace asap

#endif // ASAP_SIM_POOL_HH
