/**
 * @file
 * Simulated time base.
 *
 * The simulator counts time in core clock cycles of a 2 GHz processor
 * (Table II of the paper). Helpers convert the nanosecond latencies the
 * paper quotes (e.g.\ PM read = 175 ns) into cycles.
 */

#ifndef ASAP_SIM_TICKS_HH
#define ASAP_SIM_TICKS_HH

#include <cstdint>

namespace asap
{

/** Simulated time, in CPU cycles. */
using Tick = std::uint64_t;

/** A Tick value that compares greater than every real event time. */
constexpr Tick maxTick = ~Tick(0);

/** Core clock frequency in GHz (Table II: 2 GHz cores). */
constexpr double clockGHz = 2.0;

/** Convert a latency in nanoseconds to cycles, rounding up. */
constexpr Tick
nsToTicks(double ns)
{
    double cycles = ns * clockGHz;
    Tick whole = static_cast<Tick>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/** Convert cycles back to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / clockGHz;
}

} // namespace asap

#endif // ASAP_SIM_TICKS_HH
