#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace asap
{

namespace
{
bool quietLogs = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    quietLogs = quiet;
}

void
logMessage(LogLevel level, const char *where, const std::string &msg)
{
    switch (level) {
      case LogLevel::Inform:
        if (!quietLogs)
            std::fprintf(stderr, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        if (!quietLogs)
            std::fprintf(stderr, "warn: %s (%s)\n", msg.c_str(), where);
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s (%s)\n", msg.c_str(), where);
        std::exit(1);
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s (%s)\n", msg.c_str(), where);
        std::abort();
    }
}

} // namespace asap
