#include "sim/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace asap
{

namespace
{

/** Atomic so concurrent sweep workers can toggle/read it racelessly. */
std::atomic<bool> quietLogs{false};

/** Serialises the actual stream writes: one message, one line. */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

/** The single write path; every emitted line goes through here. */
void
writeLine(const char *prefix, const std::string &msg, const char *where)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (where)
        std::fprintf(stderr, "%s: %s (%s)\n", prefix, msg.c_str(),
                     where);
    else
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
setLogQuiet(bool quiet)
{
    quietLogs.store(quiet, std::memory_order_relaxed);
}

void
statusLine(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s\n", msg.c_str());
}

void
logMessage(LogLevel level, const char *where, const std::string &msg)
{
    const bool quiet = quietLogs.load(std::memory_order_relaxed);
    switch (level) {
      case LogLevel::Inform:
        if (!quiet)
            writeLine("info", msg, nullptr);
        break;
      case LogLevel::Warn:
        if (!quiet)
            writeLine("warn", msg, where);
        break;
      case LogLevel::Fatal:
        writeLine("fatal", msg, where);
        std::exit(1);
      case LogLevel::Panic:
        writeLine("panic", msg, where);
        std::abort();
    }
}

} // namespace asap
