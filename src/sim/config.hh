/**
 * @file
 * Simulation configuration.
 *
 * Collects every knob of the simulated system. Defaults reproduce
 * Table II of the paper (4-core, 2 GHz, 2 memory controllers, 32-entry
 * persist buffers / epoch tables / recovery tables, 16-entry WPQ,
 * PM read 175 ns / write 90 ns, 60 ns persist-buffer flush) plus the
 * HOPS polling fix described in Section VII (500-cycle poll period,
 * 50-cycle global timestamp register access).
 */

#ifndef ASAP_SIM_CONFIG_HH
#define ASAP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace asap
{

/** The media profile that reproduces the seed's Table II constants
 *  (the default of SimConfig::mediaProfile; see src/media/). */
inline constexpr const char *kDefaultMediaProfile = "paper-table2";

/** Which persistence hardware model a run simulates. */
enum class ModelKind
{
    Baseline,   //!< Intel-style synchronous clwb + sfence
    Hops,       //!< HOPS buffered persistency, conservative flushing
    Asap,       //!< this paper: eager flushing + recovery tables
    Eadr,       //!< eADR/BBB ideal: persistence domain covers caches
};

/** ISA/language-level persistency model the workload runs under. */
enum class PersistencyModel
{
    Epoch,      //!< epoch persistency (EP): deps on conflicting accesses
    Release,    //!< release persistency (RP): deps only on acquire/release
};

/** Parse "baseline|hops|asap|eadr" (fatal on anything else). */
ModelKind parseModelKind(const std::string &name);

/** Parse "ep|rp" (fatal on anything else). */
PersistencyModel parsePersistencyModel(const std::string &name);

/** Printable names for the enums above. */
std::string toString(ModelKind kind);
std::string toString(PersistencyModel pm);

/** All parameters of one simulated system. */
struct SimConfig
{
    // --- topology -------------------------------------------------------
    unsigned numCores = 4;          //!< CPU cores (1 SW thread per core)
    unsigned numMCs = 2;            //!< memory controllers

    // --- model selection ------------------------------------------------
    ModelKind model = ModelKind::Asap;
    PersistencyModel persistency = PersistencyModel::Release;

    // --- cache hierarchy (latencies in cycles @2 GHz) --------------------
    Tick l1Latency = nsToTicks(1);      //!< private L1, 32 kB 8-way
    Tick l2Latency = nsToTicks(10);     //!< private L2, 2 MB 8-way
    Tick llcLatency = nsToTicks(20);    //!< shared LLC, 16 MB 16-way
    Tick cacheToCacheLatency = nsToTicks(30); //!< dirty-line transfer
    unsigned l1Sets = 64, l1Ways = 8;         //!< 64 * 8 * 64 B = 32 kB
    unsigned l2Sets = 4096, l2Ways = 8;       //!< 4096 * 8 * 64 B = 2 MB
    unsigned llcSets = 16384, llcWays = 16;   //!< 16384 * 16 * 64 B = 16 MB

    // --- NVM media backend ----------------------------------------------
    /**
     * Named media profile (see src/media/). The default,
     * kDefaultMediaProfile, reproduces the Table II constants below;
     * other profiles (dram, optane-dcpmm, cxl-dram, cxl-flash,
     * slow-nvm) own their timing and ignore the legacy knobs.
     */
    std::string mediaProfile = kDefaultMediaProfile;
    /** Per-profile parameter overrides; 0 (or negative for the
     *  bandwidth cap) means "use the profile's value". */
    Tick mediaReadLatency = 0;    //!< override media read service
    Tick mediaWriteLatency = 0;   //!< override media write service
    unsigned mediaBanks = 0;      //!< override per-MC bank count
    double mediaWriteGBps = -1.0; //!< override write cap (0 = uncap)
    /**
     * Heterogeneous media: comma-separated profile names assigned to
     * MCs round-robin (MC i gets list[i % len]). Empty (default) means
     * every MC uses mediaProfile. E.g. "optane-dcpmm,cxl-flash" on a
     * 4-MC system puts DCPMM behind MCs 0/2 and CXL flash behind 1/3.
     * The media* override knobs above apply to every entry.
     */
    std::string mediaPerMc;

    // --- NVM / memory controller ----------------------------------------
    Tick dramLatency = nsToTicks(80);     //!< volatile DRAM fill latency
    Tick pmReadLatency = nsToTicks(175);  //!< Table II: Read = 175 ns
    Tick pmWriteLatency = nsToTicks(90);  //!< Table II: Write = 90 ns
    unsigned wpqEntries = 16;             //!< write pending queue size
    /** Write-combining window: a WPQ entry becomes eligible for the
     *  media once it has aged this long (or under queue pressure),
     *  giving same-line writes a chance to coalesce. Writes are
     *  already durable in the WPQ, so this costs no visible latency. */
    Tick wpqCombineWindow = nsToTicks(250);
    unsigned nvmBanks = 4;                //!< per-MC write parallelism
    unsigned interleaveBytes = 256;       //!< MC address interleave grain
    unsigned xpBufferLines = 4096;        //!< MC-side line cache (XPBuffer)
    Tick xpBufferHitLatency = nsToTicks(10); //!< undo read hit service

    // --- persist path ----------------------------------------------------
    unsigned pbEntries = 32;            //!< persist buffer entries per core
    unsigned etEntries = 32;            //!< epoch table entries per core
    unsigned rtEntries = 32;            //!< recovery table entries per MC
    Tick pbFlushLatency = nsToTicks(60); //!< Table II: flush = 60 ns
    unsigned pbMaxInflight = 16;        //!< concurrent flushes per PB
    unsigned clwbMaxInflight = 8;       //!< line-fill buffers (baseline)
    Tick mcMessageLatency = nsToTicks(4);  //!< commit/ACK/NACK link hop
    Tick interCoreLatency = nsToTicks(8);  //!< CDR message between cores

    // --- HOPS specifics (Section VII polling fix) ------------------------
    Tick hopsPollPeriod = 500;      //!< cycles between global TS polls
    Tick hopsPollCost = 50;         //!< cycles per global TS access

    // --- eADR/BBB specifics ----------------------------------------------
    Tick eadrDfenceCost = 4;        //!< residual dfence pipeline cost

    // --- replay core ------------------------------------------------------
    unsigned coreIssueWidth = 2;    //!< simple-core ops retired per cycle

    // --- run control ------------------------------------------------------
    std::uint64_t seed = 42;        //!< deterministic RNG seed
    Tick maxRunTicks = maxTick;     //!< safety stop for runaway runs

    // --- parallel event kernel (src/sim/README.md) ------------------------
    /**
     * Event-execution domains for one run: 1 = the sequential kernel
     * (default), N > 1 = domain-partitioned parallel execution with up
     * to min(N, numMCs + 1) worker threads. Results are bit-identical
     * either way, so this knob deliberately does NOT enter experiment
     * job keys (src/exp/README.md).
     */
    unsigned parDomains = 1;
    /**
     * Speculative lookahead beyond the conservative bound, in ticks.
     * 0 (default) = conservative-only; > 0 lets a starved MC domain
     * run ahead under a checkpoint and roll back on misspeculation.
     */
    Tick parSpecWindow = 0;

    /**
     * Apply one "key=value" override (e.g.\ "numCores=8").
     * Unknown keys are fatal so typos cannot silently run defaults.
     */
    void override(const std::string &assignment);
};

} // namespace asap

#endif // ASAP_SIM_CONFIG_HH
