/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) events.
 * Ties at the same tick execute in scheduling order, which keeps the
 * simulation deterministic. Components schedule closures; there is no
 * threading — the whole multicore system is simulated on one host
 * thread, as in gem5's event queue.
 *
 * The kernel is allocation-free in steady state. Callbacks are
 * constructed in place inside fixed-size slots (small-buffer storage,
 * enforced at compile time — no heap fallback) that live in
 * chunk-allocated slabs and recycle through a freelist; the priority
 * queue itself is a binary heap of 24-byte plain-data nodes
 * {tick, seq, slot}, so sift operations move trivially copyable
 * values and never touch the callbacks. Once the heap vector and the
 * slab have warmed to the simulation's peak pending-event count, the
 * schedule/pop cycle performs zero heap allocation.
 */

#ifndef ASAP_SIM_EVENT_QUEUE_HH
#define ASAP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "sim/ticks.hh"

namespace asap
{

/** Ordered queue of simulation events. */
class EventQueue
{
  public:
    /**
     * Inline storage per event callback. Large enough for every
     * capture list in the simulator (the biggest — a persist-buffer
     * dispatch capturing a FlushPacket plus a PbEntry — is under 90
     * bytes); schedule() rejects larger callables at compile time
     * rather than falling back to the heap.
     */
    static constexpr std::size_t inlineCallbackBytes = 104;

    EventQueue() = default;
    ~EventQueue() { clear(); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap.size(); }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        panic_if(when < curTick_, "scheduling event in the past (", when,
                 " < ", curTick_, ")");
        heap.push_back(Node{when, nextSeq++, makeSlot(std::forward<F>(cb))});
        std::push_heap(heap.begin(), heap.end(), NodeAfter{});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&cb)
    {
        schedule(curTick_ + delay, std::forward<F>(cb));
    }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * @param limit stop before executing events later than this tick
     * @return true if the queue drained, false if the limit stopped it
     */
    bool
    run(Tick limit = maxTick)
    {
        while (!heap.empty()) {
            if (heap.front().when > limit) {
                curTick_ = limit;
                return false;
            }
            popAndExecute();
        }
        return true;
    }

    /** Run a single event; returns false when the queue is empty. */
    bool
    step()
    {
        if (heap.empty())
            return false;
        popAndExecute();
        return true;
    }

    /**
     * Drop all pending events in one sweep (used by crash injection —
     * no O(n log n) heap drain, just callback teardown).
     * @return the number of events dropped
     */
    std::size_t
    clear()
    {
        const std::size_t dropped = heap.size();
        for (const Node &n : heap)
            releaseSlot(n.slot);
        heap.clear();
        return dropped;
    }

  private:
    /** One constructed-in-place callback. Slots never move: slabs are
     *  chunk-allocated and only the freelist recycles them. */
    struct Slot
    {
        alignas(std::max_align_t) unsigned char storage[inlineCallbackBytes];
        void (*invoke)(void *);
        void (*destroy)(void *); //!< null for trivially destructible
    };

    /** Heap node: plain data, cheap to sift. */
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Heap order: the front is the earliest (tick, seq) pair. */
    struct NodeAfter
    {
        bool
        operator()(const Node &a, const Node &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::size_t slotsPerChunk = 256;

    Slot &
    slotAt(std::uint32_t idx)
    {
        return chunks[idx / slotsPerChunk][idx % slotsPerChunk];
    }

    template <typename F>
    std::uint32_t
    makeSlot(F &&cb)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineCallbackBytes,
                      "event callback capture exceeds the inline slot; "
                      "shrink the capture or raise inlineCallbackBytes");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback");
        if (freeSlots.empty())
            growSlab();
        const std::uint32_t idx = freeSlots.back();
        freeSlots.pop_back();
        Slot &s = slotAt(idx);
        ::new (static_cast<void *>(s.storage)) Fn(std::forward<F>(cb));
        s.invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
        if constexpr (std::is_trivially_destructible_v<Fn>)
            s.destroy = nullptr;
        else
            s.destroy = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        return idx;
    }

    void
    releaseSlot(std::uint32_t idx)
    {
        Slot &s = slotAt(idx);
        if (s.destroy)
            s.destroy(s.storage);
        freeSlots.push_back(idx);
    }

    void
    growSlab()
    {
        const std::uint32_t base =
            static_cast<std::uint32_t>(chunks.size() * slotsPerChunk);
        chunks.push_back(std::make_unique<Slot[]>(slotsPerChunk));
        freeSlots.reserve(freeSlots.size() + slotsPerChunk);
        // Hand out low indices first (cosmetic: keeps early slots hot).
        for (std::uint32_t i = slotsPerChunk; i > 0; --i)
            freeSlots.push_back(base + i - 1);
    }

    /** Pop the earliest event and execute it. The node leaves the heap
     *  before the callback runs (callbacks schedule new events); the
     *  slot is released after, so an executing callback never aliases
     *  a live one. */
    void
    popAndExecute()
    {
        const Node top = heap.front();
        std::pop_heap(heap.begin(), heap.end(), NodeAfter{});
        heap.pop_back();
        curTick_ = top.when;
        ++executed_;
        Slot &s = slotAt(top.slot);
        s.invoke(s.storage);
        releaseSlot(top.slot);
    }

    std::vector<Node> heap;
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<std::uint32_t> freeSlots;
    Tick curTick_ = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed_ = 0;
};

} // namespace asap

#endif // ASAP_SIM_EVENT_QUEUE_HH
