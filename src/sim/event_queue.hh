/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) events.
 * Ties at the same tick execute in scheduling order, which keeps the
 * simulation deterministic. Components schedule closures; there is no
 * threading — the whole multicore system is simulated on one host
 * thread, as in gem5's event queue.
 */

#ifndef ASAP_SIM_EVENT_QUEUE_HH
#define ASAP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.hh"
#include "sim/ticks.hh"

namespace asap
{

/** Ordered queue of simulation events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap.size(); }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < curTick_, "scheduling event in the past (", when,
                 " < ", curTick_, ")");
        heap.push(Event{when, nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * @param limit stop before executing events later than this tick
     * @return true if the queue drained, false if the limit stopped it
     */
    bool
    run(Tick limit = maxTick)
    {
        while (!heap.empty()) {
            const Event &top = heap.top();
            if (top.when > limit) {
                curTick_ = limit;
                return false;
            }
            curTick_ = top.when;
            Callback cb = std::move(const_cast<Event &>(top).cb);
            heap.pop();
            ++executed_;
            cb();
        }
        return true;
    }

    /** Run a single event; returns false when the queue is empty. */
    bool
    step()
    {
        if (heap.empty())
            return false;
        const Event &top = heap.top();
        curTick_ = top.when;
        Callback cb = std::move(const_cast<Event &>(top).cb);
        heap.pop();
        ++executed_;
        cb();
        return true;
    }

    /** Drop all pending events (used by crash injection). */
    void
    clear()
    {
        while (!heap.empty())
            heap.pop();
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
    Tick curTick_ = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed_ = 0;
};

} // namespace asap

#endif // ASAP_SIM_EVENT_QUEUE_HH
