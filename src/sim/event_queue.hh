/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A queue of (tick, sequence, callback) events with one global total
 * order. The sequence key is assigned at schedule time from state
 * local to the *scheduling* domain — (per-domain send counter,
 * domain id) packed into 64 bits — so ties at the same tick resolve
 * identically no matter which engine (or host thread) executes the
 * schedule call. That locality is what lets the parallel engine
 * reproduce the sequential engine bit for bit; see src/sim/README.md.
 *
 * The kernel is allocation-free in steady state. Callbacks are
 * constructed in place inside fixed-size slots (small-buffer storage,
 * enforced at compile time — no heap fallback) that live in
 * chunk-allocated slabs and recycle through a freelist; the priority
 * queue itself is a binary heap of 24-byte plain-data nodes
 * {tick, seq, slot, domain}, so sift operations move trivially
 * copyable values and never touch the callbacks. Once the heap vector
 * and the slab have warmed to the simulation's peak pending-event
 * count, the schedule/pop cycle performs zero heap allocation.
 *
 * Two execution engines share that storage layer:
 *
 *  - the sequential engine (default): one heap, one host thread,
 *    exactly the pre-parallel kernel hot path plus a per-domain
 *    counter increment in place of the old global one.
 *  - the domain-parallel engine (configureParallel()): events are
 *    partitioned into domains (0 = the core complex: cores, caches,
 *    persist buffers, models; 1+i = memory controller i), each with
 *    its own heap and slab. Per-domain event windows execute
 *    concurrently under conservative lookahead bounded by the
 *    minimum cross-domain message latency, with optional speculative
 *    execution past the bound backed by checkpoint/rollback and
 *    validated against a threat horizon at the round barrier.
 *    Results are bit-identical to the sequential engine.
 */

#ifndef ASAP_SIM_EVENT_QUEUE_HH
#define ASAP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "sim/ticks.hh"

namespace asap
{

/** Identifier of an event domain (0 = core complex, 1+i = MC i). */
using DomainId = std::uint16_t;

/** Ordered queue of simulation events. */
class EventQueue
{
  public:
    /**
     * Inline storage per event callback. Large enough for every
     * capture list in the simulator (the biggest — a persist-buffer
     * dispatch capturing a FlushPacket plus a PbEntry — is under 90
     * bytes); schedule() rejects larger callables at compile time
     * rather than falling back to the heap.
     */
    static constexpr std::size_t inlineCallbackBytes = 104;

    /** Domain of the core complex (cores, caches, PBs, models). */
    static constexpr DomainId kCoreDomain = 0;

    /** Domain of memory controller @p mc. Valid in both engines: the
     *  sequential engine routes every domain to its one heap. */
    static constexpr DomainId
    mcDomain(unsigned mc)
    {
        return static_cast<DomainId>(1 + mc);
    }

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    // --- parallel-engine configuration (before any scheduling) ------

    /**
     * Switch to the domain-parallel engine with 1 + @p numMcs domains.
     *
     * @param numMcs memory-controller count (domains 1..numMcs)
     * @param threads host threads to execute rounds with (clamped to
     *        the domain count; 1 still runs the full parallel
     *        protocol on the calling thread — useful for tests)
     * @param coreToMcLatency minimum ticks between a core-domain event
     *        and any event it schedules into an MC domain
     * @param mcToCoreLatency minimum ticks for the opposite direction
     * @param specWindow ticks an MC domain may speculate past its
     *        conservative bound (0 disables speculation; rollback
     *        requires checkpoint hooks, see setCheckpointHooks())
     */
    void configureParallel(unsigned numMcs, unsigned threads,
                           Tick coreToMcLatency, Tick mcToCoreLatency,
                           Tick specWindow);

    /** True once configureParallel() switched engines. */
    bool parallel() const { return parallel_; }

    /** Domain count (1 under the sequential engine). */
    unsigned
    domainCount() const
    {
        return parallel_ ? static_cast<unsigned>(domains_.size()) : 1;
    }

    /**
     * Install a predicate polled between rounds; while it returns
     * true, events execute in exact serial order instead of parallel
     * windows (used while cross-domain state that synchronous probes
     * read — RT NACK filters — is non-empty).
     */
    void setSerialPredicate(std::function<bool()> pred);

    /**
     * Register domain-local state checkpointing for speculation.
     * @p save is called before a speculative window, @p restore on
     * misspeculation (after the kernel rolled its own heap back),
     * @p discard when the window validated.
     */
    void setCheckpointHooks(DomainId domain, std::function<void()> save,
                            std::function<void()> restore,
                            std::function<void()> discard);

    // --- time and counters ------------------------------------------

    /** Current simulated time (the executing domain's clock while a
     *  callback runs; the global clock otherwise). */
    Tick
    now() const
    {
        if (tlsExec_.owner == this && tlsExec_.dom != nullptr)
            return tlsExec_.dom->curTick;
        return curTick_;
    }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const;

    /** Parallel rounds committed (0 under the sequential engine). */
    std::uint64_t parallelRounds() const { return parallelRounds_; }

    /** Serial fallback rounds (sparse windows or predicate). */
    std::uint64_t serialRounds() const { return serialRounds_; }

    /** Speculative windows that failed validation. */
    std::uint64_t misspeculations() const { return misspeculations_; }

    /** Domain rollbacks performed (one per misspeculation). */
    std::uint64_t rollbacks() const { return rollbacks_; }

    // --- taint (abandon-and-rerun escape hatch) ---------------------

    /**
     * Mark the run unsalvageable: a synchronous cross-domain access
     * raced (or would have raced) concurrent execution. run() returns
     * early; the caller must discard every observable result and
     * rerun with the sequential engine. This is the correctness
     * escape hatch for the rare sharing the lookahead protocol cannot
     * license — it never silently corrupts a result.
     */
    void taint(const char *why);

    /** True once taint() was called. */
    bool
    tainted() const
    {
        return taintFlag_.load(std::memory_order_acquire);
    }

    /** First taint reason (null when untainted). */
    const char *
    taintReason() const
    {
        return taintReason_.load(std::memory_order_acquire);
    }

    /** True while domains execute concurrently (inside a parallel
     *  round; false during serial rounds and outside run()). */
    bool
    inParallelRound() const
    {
        return inRound_.load(std::memory_order_relaxed);
    }

    /**
     * Guard for a callback that must run on @p home's thread but is
     * about to be invoked synchronously from another domain. Returns
     * false when the call is safe (sequential engine, serial round,
     * or already on @p home). Otherwise taints the run and returns
     * true — the caller must skip the callback.
     */
    bool crossCallHazard(DomainId home);

    /** Account a synchronous cross-domain read (e.g. an LLC evict
     *  probe of MC-side state) in the current round. */
    void noteCrossProbe();

    /** Account a mutation of cross-domain-probed state (e.g. an RT
     *  NACK filter update) in the current round. */
    void noteCrossWrite();

    // --- scheduling -------------------------------------------------

    /**
     * Schedule @p cb to run at absolute time @p when in the
     * scheduling domain (the executing event's domain, or the core
     * domain outside event context).
     * @pre when >= now()
     */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        if (!parallel_) {
            panic_if(when < curTick_, "scheduling event in the past (",
                     when, " < ", curTick_, ")");
            heap.push_back(Node{when, makeKey(curDom_),
                                makeSlot(chunks, freeSlots, false,
                                         std::forward<F>(cb)),
                                curDom_});
            std::push_heap(heap.begin(), heap.end(), NodeAfter{});
            return;
        }
        Domain *cur =
            (tlsExec_.owner == this) ? tlsExec_.dom : nullptr;
        scheduleParallel(cur ? cur->id : kCoreDomain, when,
                         std::forward<F>(cb));
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&cb)
    {
        schedule(now() + delay, std::forward<F>(cb));
    }

    /**
     * Schedule @p cb into @p target's domain at absolute @p when.
     * Cross-domain sends must respect the configured latency floors;
     * the parallel engine validates this. Under the sequential engine
     * the target only tags the event (one heap), so execution order
     * is identical in both engines.
     */
    template <typename F>
    void
    scheduleIn(DomainId target, Tick when, F &&cb)
    {
        if (!parallel_) {
            panic_if(when < curTick_, "scheduling event in the past (",
                     when, " < ", curTick_, ")");
            fatal_if(target >= kMaxDomains, "scheduleIn: domain ",
                     target, " out of range");
            heap.push_back(Node{when, makeKey(curDom_),
                                makeSlot(chunks, freeSlots, false,
                                         std::forward<F>(cb)),
                                target});
            std::push_heap(heap.begin(), heap.end(), NodeAfter{});
            return;
        }
        scheduleParallel(target, when, std::forward<F>(cb));
    }

    /** scheduleIn() with a delay relative to now(). */
    template <typename F>
    void
    scheduleAfterIn(DomainId target, Tick delay, F &&cb)
    {
        scheduleIn(target, now() + delay, std::forward<F>(cb));
    }

    // --- execution --------------------------------------------------

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * @param limit stop before executing events later than this tick
     * @return true if the queue drained, false if the limit stopped
     *         it (or, parallel engine only, the run was tainted —
     *         check tainted())
     */
    bool
    run(Tick limit = maxTick)
    {
        if (parallel_)
            return runParallel(limit);
        while (!heap.empty()) {
            if (heap.front().when > limit) {
                curTick_ = limit;
                return false;
            }
            popAndExecute();
        }
        return true;
    }

    /** Run a single event; returns false when the queue is empty. */
    bool
    step()
    {
        if (parallel_)
            return stepParallel();
        if (heap.empty())
            return false;
        popAndExecute();
        return true;
    }

    /**
     * Drop all pending events in one sweep (used by crash injection —
     * no O(n log n) heap drain, just callback teardown).
     * @return the number of events dropped
     */
    std::size_t clear();

  private:
    /** One constructed-in-place callback. Slots never move: slabs are
     *  chunk-allocated and only the freelist recycles them. */
    struct Slot
    {
        alignas(std::max_align_t) unsigned char storage[inlineCallbackBytes];
        void (*invoke)(void *);
        void (*destroy)(void *); //!< null for trivially destructible
    };

    /** Heap node: plain data, cheap to sift. @c dom is the event's
     *  home domain (sequential engine: attribution for the send
     *  counters; parallel engine: redundant with the owning heap). */
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        DomainId dom;
    };

    /** Heap order: the front is the earliest (tick, seq) pair. */
    struct NodeAfter
    {
        bool
        operator()(const Node &a, const Node &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::size_t slotsPerChunk = 256;

    /** Parallel-mode chunk-vector capacity, pre-reserved so the
     *  vector never reallocates: other domains read slots through it
     *  concurrently (entries published by an earlier round's
     *  barrier), so its data pointer must be stable. 4096 chunks = 1M
     *  pending callbacks per domain, far beyond any simulated peak;
     *  growSlab() dies loudly if it is ever hit. */
    static constexpr std::size_t kParallelChunkReserve = 4096;

    /** Slot ids carry their owning domain in the top bits so commit
     *  and clear() can return any slot to the right freelist. The
     *  sequential engine stores plain indices (domain 0). */
    static constexpr std::uint32_t kDomainShift = 26;
    static constexpr std::uint32_t kSlotIdxMask =
        (1u << kDomainShift) - 1;

    /** Domain-id bits packed into the low end of a sequence key. */
    static constexpr unsigned kDomBits = 6;
    static constexpr DomainId kMaxDomains = 1u << kDomBits;

    /** A schedule() made during a parallel round, in call order. The
     *  key is final — assigned at the schedule call from the creator
     *  domain's counter. Direct children (same-domain, inside the
     *  window) went straight into the heap and execute this round;
     *  the record exists so rollback/abort can find their slots. The
     *  rest are routed to their target heaps at commit. */
    struct Child
    {
        Tick when;
        std::uint64_t key;
        std::uint32_t slot;
        DomainId target;
        bool direct;
    };

    /** Per-domain storage plus per-round scratch state. Heap-allocated
     *  individually (stable addresses, no false sharing through a
     *  contiguous vector). */
    struct Domain
    {
        DomainId id = 0;

        // Persistent storage (same layout as the sequential engine).
        std::vector<Node> heap;
        std::vector<std::unique_ptr<Slot[]>> chunks;
        std::vector<std::uint32_t> freeSlots;
        Tick curTick = 0;

        // Round state, written by the owning thread during a round
        // and by the coordinator between rounds.
        Tick bound = 0;     //!< conservative window end (exclusive)
        Tick specBound = 0; //!< execution window end (== bound unless
                            //!< speculating)
        Tick lastExecTick = 0;
        std::uint64_t lastExecKey = 0;
        bool executedAny = false;

        // Committed execution frontier: highest (when, key) this
        // domain has irrevocably executed. Cross-domain arrivals at
        // or below it would violate sequential order — checked on
        // every insert as a speculation-soundness tripwire.
        Tick commitHigh = 0;
        std::uint64_t commitHighKey = 0;
        bool commitAny = false;
        bool specAborted = false; //!< speculation produced an unsafe send
        std::uint64_t roundExecuted = 0;
        std::uint64_t crossProbes = 0;
        std::uint64_t crossWrites = 0;
        std::vector<Child> children;
        std::vector<std::uint32_t> executedSlots;

        // Speculation checkpoint (kernel-owned heap + counter snapshot
        // plus component hooks registered by the harness).
        std::vector<Node> heapSnap;
        Tick tickSnap = 0;
        std::uint64_t counterSnap = 0;
        bool snapped = false;
        std::function<void()> ckptSave;
        std::function<void()> ckptRestore;
        std::function<void()> ckptDiscard;
    };

    /** Which (queue, domain) the calling thread is executing for.
     *  Cleared on every execution-region exit, so a stale entry can
     *  never alias a later EventQueue at the same address. */
    struct TlsExec
    {
        const EventQueue *owner;
        Domain *dom;
    };
    inline static thread_local TlsExec tlsExec_{nullptr, nullptr};

    /** Padded send counter: during a parallel round each domain
     *  increments only its own entry, so entries must not share a
     *  cache line. */
    struct alignas(64) SendCounter
    {
        std::uint64_t v = 0;
    };

    /**
     * Mint the next sequence key for a schedule call made by
     * @p creator: (creator's send counter, creator id), compared as
     * one 64-bit integer. Locally computable, so both engines — and
     * any interleaving of parallel rounds — assign identical keys to
     * identical schedule calls, which is the determinism linchpin.
     */
    std::uint64_t
    makeKey(DomainId creator)
    {
        return (sendCounters_[creator].v++ << kDomBits) | creator;
    }

    static std::uint32_t
    encodeSlot(DomainId d, std::uint32_t idx)
    {
        return (static_cast<std::uint32_t>(d) << kDomainShift) | idx;
    }

    Slot &
    slotAt(std::uint32_t id)
    {
        if (!parallel_)
            return chunks[id / slotsPerChunk][id % slotsPerChunk];
        Domain &d = *domains_[id >> kDomainShift];
        const std::uint32_t i = id & kSlotIdxMask;
        return d.chunks[i / slotsPerChunk][i % slotsPerChunk];
    }

    template <typename F>
    static std::uint32_t
    makeSlot(std::vector<std::unique_ptr<Slot[]>> &chunks,
             std::vector<std::uint32_t> &freeSlots, bool capped, F &&cb)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineCallbackBytes,
                      "event callback capture exceeds the inline slot; "
                      "shrink the capture or raise inlineCallbackBytes");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback");
        if (freeSlots.empty())
            growSlab(chunks, freeSlots, capped);
        const std::uint32_t idx = freeSlots.back();
        freeSlots.pop_back();
        Slot &s = chunks[idx / slotsPerChunk][idx % slotsPerChunk];
        ::new (static_cast<void *>(s.storage)) Fn(std::forward<F>(cb));
        s.invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
        if constexpr (std::is_trivially_destructible_v<Fn>)
            s.destroy = nullptr;
        else
            s.destroy = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        return idx;
    }

    static void growSlab(std::vector<std::unique_ptr<Slot[]>> &chunks,
                         std::vector<std::uint32_t> &freeSlots,
                         bool capped);

    void releaseSlot(std::uint32_t id);

    /** Allocate in the executing domain during a round (the only slab
     *  this thread owns), in the target's otherwise (no concurrency
     *  outside rounds — better locality). */
    template <typename F>
    void
    scheduleParallel(DomainId target, Tick when, F &&cb)
    {
        fatal_if(target >= domains_.size(), "scheduleIn: domain ",
                 target, " out of range");
        Domain &alloc =
            (inRound_.load(std::memory_order_relaxed) &&
             tlsExec_.owner == this && tlsExec_.dom != nullptr)
                ? *tlsExec_.dom
                : *domains_[target];
        const std::uint32_t slot = encodeSlot(
            alloc.id, makeSlot(alloc.chunks, alloc.freeSlots, true,
                               std::forward<F>(cb)));
        routeEvent(target, when, slot);
    }

    void routeEvent(DomainId target, Tick when, std::uint32_t slot);

    // Parallel engine (event_queue.cc).
    bool runParallel(Tick limit);
    bool stepParallel();
    void computeBounds(Tick limitP1);
    void serialChunk(Tick limit);
    void runDomainWindow(Domain &d);
    void runStripe(unsigned threadIdx);
    void validateSpeculation();
    void rollbackDomain(Domain &d);
    void commitRound();
    void abortRound();
    void ensureWorkers();
    void stopWorkers();
    void workerLoop(unsigned threadIdx);

    /** Pop the earliest event and execute it (sequential engine). The
     *  node leaves the heap before the callback runs (callbacks
     *  schedule new events); the slot is released after, so an
     *  executing callback never aliases a live one. */
    void
    popAndExecute()
    {
        const Node top = heap.front();
        std::pop_heap(heap.begin(), heap.end(), NodeAfter{});
        heap.pop_back();
        curTick_ = top.when;
        curDom_ = top.dom;
        ++executed_;
        Slot &s = slotAt(top.slot);
        s.invoke(s.storage);
        curDom_ = kCoreDomain;
        releaseSlot(top.slot);
    }

    // Sequential-engine storage (domain 0's storage lives in
    // domains_[0] under the parallel engine; these stay untouched).
    std::vector<Node> heap;
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<std::uint32_t> freeSlots;
    Tick curTick_ = 0;
    DomainId curDom_ = kCoreDomain; //!< executing event's domain
    std::uint64_t executed_ = 0;

    /** Per-domain send counters, shared by both engines (the
     *  sequential engine simply indexes them from one thread). */
    std::array<SendCounter, kMaxDomains> sendCounters_{};

    // Parallel engine.
    bool parallel_ = false;
    unsigned threads_ = 1;
    Tick latCoreToMc_ = 0;
    Tick latMcToCore_ = 0;
    Tick specWindow_ = 0;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::function<bool()> serialPred_;
    std::uint64_t parallelRounds_ = 0;
    std::uint64_t serialRounds_ = 0;
    std::uint64_t misspeculations_ = 0;
    std::uint64_t rollbacks_ = 0;

    std::atomic<bool> taintFlag_{false};
    std::atomic<const char *> taintReason_{nullptr};
    std::atomic<bool> inRound_{false};

    // Worker pool (spawned lazily on the first parallel round).
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> roundGen_{0};
    std::atomic<unsigned> doneCount_{0};
    std::atomic<bool> quit_{false};

    // Spin-then-park round barrier. Both sides spin briefly (cheap
    // when rounds are back-to-back on an unloaded machine) and fall
    // back to a condition variable, so an oversubscribed host — more
    // kernel threads than cores — schedules instead of thrashing.
    std::mutex barrierMtx_;
    std::condition_variable cvRound_;
    std::condition_variable cvDone_;
};

} // namespace asap

#endif // ASAP_SIM_EVENT_QUEUE_HH
