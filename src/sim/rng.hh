/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All randomness in the simulator (workload key streams, crash-time
 * selection, fuzz tests) flows through this splitmix64/xoshiro-style
 * generator so that every experiment is reproducible from its seed.
 */

#ifndef ASAP_SIM_RNG_HH
#define ASAP_SIM_RNG_HH

#include <cstdint>

namespace asap
{

/** Small, fast, seedable PRNG (xorshift128+ with splitmix64 seeding). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

    /** Restart the stream from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        s0 = splitmix(seed);
        s1 = splitmix(seed);
        if (s0 == 0 && s1 == 0)
            s1 = 0x9e3779b97f4a7c15ULL;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p percent / 100. */
    bool
    percent(unsigned pct)
    {
        return below(100) < pct;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    splitmix(std::uint64_t &state)
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
};

} // namespace asap

#endif // ASAP_SIM_RNG_HH
