/**
 * @file
 * Stable hashing.
 *
 * FNV-1a over bytes: the one hash every subsystem that must agree
 * across processes and hosts uses (result-cache keys, shard
 * assignment, sweep identities, trace-file names and checksums).
 * Never switch this to std::hash — its value is unspecified across
 * standard libraries and would silently invalidate every shared
 * artifact.
 */

#ifndef ASAP_SIM_HASH_HH
#define ASAP_SIM_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace asap
{

/** Stable FNV-1a 64-bit hash of a byte range. */
inline std::uint64_t
stableHash64(const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Stable FNV-1a 64-bit hash of a string. */
inline std::uint64_t
stableHash64(const std::string &text)
{
    return stableHash64(text.data(), text.size());
}

} // namespace asap

#endif // ASAP_SIM_HASH_HH
