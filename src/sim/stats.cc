#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

namespace asap
{

Distribution::Distribution(std::uint64_t max_value)
    : buckets(max_value + 1, 0)
{
}

void
Distribution::sample(std::uint64_t value, std::uint64_t weight)
{
    std::uint64_t v = std::min<std::uint64_t>(value, buckets.size() - 1);
    buckets[v] += weight;
    total += weight;
    weightedSum += value * weight;
    maxSeen = std::max(maxSeen, value);
}

double
Distribution::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(weightedSum) / static_cast<double>(total);
}

std::uint64_t
Distribution::percentile(double pct) const
{
    if (total == 0)
        return 0;
    // Smallest v with cumulative count >= ceil(pct% of total).
    const double target_f = pct / 100.0 * static_cast<double>(total);
    std::uint64_t target = static_cast<std::uint64_t>(target_f);
    if (static_cast<double>(target) < target_f)
        ++target;
    if (target == 0)
        target = 1;
    std::uint64_t cum = 0;
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        cum += buckets[v];
        if (cum >= target)
            return v;
    }
    return buckets.size() - 1;
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    weightedSum = 0;
    maxSeen = 0;
}

unsigned
LogHistogram::bucketOf(std::uint64_t value)
{
    if (value < kSub)
        return static_cast<unsigned>(value);
    // msb >= kSubBits: binade index, then the top kSubBits bits below
    // the leading one pick the sub-bucket.
    unsigned msb = 63;
    while (!(value >> msb))
        --msb;
    const unsigned sub = static_cast<unsigned>(
        (value >> (msb - kSubBits)) & (kSub - 1));
    return (msb - kSubBits + 1) * kSub + sub;
}

std::uint64_t
LogHistogram::bucketFloor(unsigned idx)
{
    if (idx < kSub)
        return idx;
    const unsigned msb = idx / kSub + kSubBits - 1;
    const std::uint64_t sub = idx % kSub;
    return (std::uint64_t(1) << msb) | (sub << (msb - kSubBits));
}

void
LogHistogram::sample(std::uint64_t value)
{
    if (buckets.empty())
        buckets.assign(kBuckets, 0);
    ++buckets[bucketOf(value)];
    ++total;
    sum += value;
    if (value > maxSeen)
        maxSeen = value;
}

double
LogHistogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(total);
}

std::uint64_t
LogHistogram::percentile(double pct) const
{
    if (total == 0)
        return 0;
    const double target_f = pct / 100.0 * static_cast<double>(total);
    std::uint64_t target = static_cast<std::uint64_t>(target_f);
    if (static_cast<double>(target) < target_f)
        ++target;
    if (target == 0)
        target = 1;
    std::uint64_t cum = 0;
    for (unsigned idx = 0; idx < buckets.size(); ++idx) {
        cum += buckets[idx];
        if (cum >= target) {
            // The top bucket's floor can exceed the true max only by
            // construction of the bound; clamp to the exact max.
            return std::min(bucketFloor(idx), maxSeen);
        }
    }
    return maxSeen;
}

void
LogHistogram::reset()
{
    buckets.clear();
    total = 0;
    sum = 0;
    maxSeen = 0;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

Distribution &
StatSet::dist(const std::string &name, std::uint64_t max_value)
{
    auto it = dists.find(name);
    if (it == dists.end())
        it = dists.emplace(name, Distribution(max_value)).first;
    return it->second;
}

bool
StatSet::hasDist(const std::string &name) const
{
    return dists.count(name) != 0;
}

LogHistogram &
StatSet::logHist(const std::string &name)
{
    return logHists[name];
}

bool
StatSet::hasLogHist(const std::string &name) const
{
    return logHists.count(name) != 0;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << " " << value << "\n";
    for (const auto &[name, d] : dists) {
        os << name << "::samples " << d.count() << "\n";
        os << name << "::mean " << d.mean() << "\n";
        os << name << "::max " << d.max() << "\n";
        os << name << "::p99 " << d.percentile(99.0) << "\n";
    }
    for (const auto &[name, h] : logHists) {
        os << name << "::samples " << h.count() << "\n";
        os << name << "::mean " << h.mean() << "\n";
        os << name << "::max " << h.max() << "\n";
        os << name << "::p50 " << h.percentile(50.0) << "\n";
        os << name << "::p99 " << h.percentile(99.0) << "\n";
        os << name << "::p999 " << h.percentile(99.9) << "\n";
    }
    return os.str();
}

void
StatSet::reset()
{
    counters.clear();
    dists.clear();
}

} // namespace asap
