/**
 * @file
 * Crash-recovery consistency checker.
 *
 * The executable counterpart of Section VI's proofs. After a crash is
 * injected and the ADR domain drained, the checker rebuilds the epoch
 * dependency DAG from the run log (intra-thread order + cross-thread
 * edges) and verifies, against the surviving NVM contents:
 *
 *  1. *Prefix closure* (Theorem 2 / epoch ordering): for every line,
 *     the surviving value's epoch may only be preceded — in the DAG —
 *     by epochs whose own writes are fully visible. No write of a
 *     later epoch survives while an earlier epoch's write was lost.
 *  2. *Committed durability* (Lemma 1.1): every epoch the hardware
 *     reported committed is fully durable.
 *  3. *No alien values*: every surviving line value is either the
 *     initial value or a token some recorded store actually wrote to
 *     that line.
 */

#ifndef ASAP_RECOVERY_CHECKER_HH
#define ASAP_RECOVERY_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/nvm_contents.hh"
#include "recovery/run_log.hh"

namespace asap
{

/** Verdict of a consistency check. */
struct CheckResult
{
    bool ok = true;
    std::string message; //!< first violation found (empty when ok)

    explicit operator bool() const { return ok; }
};

/**
 * Verify post-crash NVM contents against the run log.
 *
 * @param log stores and dependency edges recorded during the run
 * @param nvm surviving media contents (post ADR drain + undo rewind)
 * @param committed_up_to per-thread newest epoch the hardware had
 *        committed at the crash (from System::committedUpTo())
 */
CheckResult checkCrashConsistency(
    const RunLog &log, const NvmContents &nvm,
    const std::vector<std::uint64_t> &committed_up_to);

} // namespace asap

#endif // ASAP_RECOVERY_CHECKER_HH
