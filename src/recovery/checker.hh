/**
 * @file
 * Crash-recovery consistency checker.
 *
 * The executable counterpart of Section VI's proofs. After a crash is
 * injected and the ADR domain drained, the checker rebuilds the epoch
 * dependency DAG from the run log (intra-thread order + cross-thread
 * edges) and verifies, against the surviving NVM contents:
 *
 *  1. *Prefix closure* (Theorem 2 / epoch ordering): for every line,
 *     the surviving value's epoch may only be preceded — in the DAG —
 *     by epochs whose own writes are fully visible. No write of a
 *     later epoch survives while an earlier epoch's write was lost.
 *  2. *Committed durability* (Lemma 1.1): every epoch the hardware
 *     reported committed is fully durable.
 *  3. *No alien values*: every surviving line value is either the
 *     initial value or a token some recorded store actually wrote to
 *     that line.
 *
 * The log-derived part of the check (per-line sorted write lists, the
 * store-token index, the epoch dependency graph) depends only on the
 * RunLog, not on the NVM state under test. CheckerIndex captures it as
 * a build-once structure so callers checking many states against one
 * log — the crash-state permuter above all — index once and pay only
 * the per-state phase per check. checkCrashConsistency stays as the
 * one-shot wrapper.
 */

#ifndef ASAP_RECOVERY_CHECKER_HH
#define ASAP_RECOVERY_CHECKER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/nvm_contents.hh"
#include "recovery/run_log.hh"

namespace asap
{

/** Verdict of a consistency check. */
struct CheckResult
{
    bool ok = true;
    std::string message; //!< first violation found (empty when ok)

    explicit operator bool() const { return ok; }
};

/**
 * A read-only view of post-crash NVM contents: the surviving media
 * state, optionally shadowed by a sparse overlay. The permuter checks
 * each enumerated state through an overlay holding only the lines a
 * record can change, instead of mutating (and reverting) the shared
 * NvmContents — which also makes concurrent checks safe: NvmContents
 * reads are const and each worker owns its overlay.
 */
class NvmView
{
  public:
    explicit NvmView(const NvmContents &base) : base_(&base) {}
    NvmView(const NvmContents &base,
            const std::unordered_map<std::uint64_t, std::uint64_t>
                &overlay)
        : base_(&base), overlay_(&overlay)
    {
    }

    /** Overlay value when present, else the underlying media value. */
    std::uint64_t
    read(std::uint64_t line) const
    {
        if (overlay_) {
            auto it = overlay_->find(line);
            if (it != overlay_->end())
                return it->second;
        }
        return base_->read(line);
    }

  private:
    const NvmContents *base_;
    const std::unordered_map<std::uint64_t, std::uint64_t> *overlay_ =
        nullptr;
};

/**
 * Build-once index of a RunLog for repeated consistency checks.
 *
 * Construction does every log-shaped part of the check: sorts each
 * line's writes into retirement order, indexes store tokens (flagging
 * duplicates), and assembles the epoch dependency graph. check() then
 * runs only the state-shaped part — surviving-write resolution and
 * the prefix-closure / committed-durability walks — against any
 * NvmView. check() is const and allocates only per-call scratch, so
 * one index may serve many threads concurrently.
 */
class CheckerIndex
{
  public:
    explicit CheckerIndex(const RunLog &log);

    /** Check one post-crash state against the indexed log. */
    CheckResult
    check(const NvmView &view,
          const std::vector<std::uint64_t> &committed_up_to) const;

  private:
    /** Ordered epoch key: (thread, epoch timestamp). */
    using Key = std::pair<std::uint16_t, std::uint64_t>;

    struct EpochNode
    {
        /** Per-line index (into that line's write list) of this
         *  epoch's last write to the line. */
        std::unordered_map<std::uint64_t, std::size_t> lastWrite;
        /** Direct cross-thread parents. */
        std::vector<Key> depParents;
    };

    /** Per line, writes in retirement order. */
    std::unordered_map<std::uint64_t, std::vector<RunLog::StoreRecord>>
        lineWrites;
    /** token -> (line, index into that line's write list). */
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, std::size_t>>
        tokenIndex;
    /** Every epoch that wrote or appears in an edge. */
    std::map<Key, EpochNode> nodes;
    /** Per-thread sorted epoch lists for predecessor walks. */
    std::unordered_map<std::uint16_t, std::vector<std::uint64_t>>
        byThread;
    /** Log defect found at build time (duplicate store token); every
     *  check() fails with it. */
    bool buildOk = true;
    std::string buildMessage;

    friend class CheckScope;
};

/**
 * Delta-check oracle for many states that differ from one base image
 * only on a known set of *variable lines* (the permuter's effect
 * table). Everything the checker derives from fixed lines is constant
 * across those states, so construction resolves it once:
 *
 *  - base surviving-write indices and alien detection for every fixed
 *    line (a fixed-line violation fails every state: constant fail);
 *  - visibility of every epoch that writes no variable line;
 *  - per epoch, via one topological pass over the dependency DAG,
 *    whether a non-visible fixed epoch is a strict ancestor
 *    (constant fail when a committed epoch or fixed surviving value
 *    depends on one) and the bitmask of *variable* epochs — those
 *    writing at least one variable line — among its strict ancestors.
 *
 * consistent() then answers the boolean verdict in O(variable lines +
 * variable epochs): resolve the surviving index of each variable
 * line, evaluate only the variable epochs' visibility, and test the
 * precomputed ancestor masks. `true` is exact (the full check would
 * pass); `false` means "not fast-provable" — callers re-run
 * CheckerIndex::check() for the authoritative verdict and canonical
 * message, so the fallback path can never diverge from the checker.
 *
 * The scope bails (usable() == false) on structures it cannot encode:
 * more than 64 variable epochs, duplicate variable lines, or a cycle
 * in the dependency graph.
 */
class CheckScope
{
  public:
    /** Per-calling-thread scratch for consistent(). */
    struct Scratch
    {
        std::vector<std::ptrdiff_t> surv;
    };

    CheckScope(std::shared_ptr<const CheckerIndex> index,
               const NvmContents &base,
               const std::vector<std::uint64_t> &committed_up_to,
               const std::vector<std::uint64_t> &variable_lines);

    /** False when construction bailed; consistent() must not be
     *  called and every state needs the full check. */
    bool usable() const { return usable_; }

    /**
     * Exact fast verdict for one state. @p values holds the current
     * value of each variable line, aligned with the constructor's
     * variable_lines. Returns true iff the full check would pass.
     */
    bool consistent(const std::vector<std::uint64_t> &values,
                    Scratch &scratch) const;

  private:
    /** One epoch writing at least one variable line. */
    struct VarEpoch
    {
        /** A fixed line of the epoch already lost a write on the base
         *  image: the epoch is invisible in every state. */
        bool neverVisible = false;
        /** (variable-line slot, required surviving index) pairs. */
        std::vector<std::pair<std::uint32_t, std::size_t>> need;
    };

    /** Ancestor facts of one potential surviving-value epoch. */
    struct SeedInfo
    {
        bool ancBadFixed = false;   //!< strict ancestor: bad fixed epoch
        std::uint64_t varAncMask = 0; //!< strict ancestors in varEpochs_
    };

    /** One variable line. */
    struct Slot
    {
        std::uint64_t line = 0;
        bool logged = false; //!< false: checker never reads this line
        std::vector<SeedInfo> seed; //!< per write index of the line
    };

    std::shared_ptr<const CheckerIndex> index_;
    bool usable_ = false;
    /** Some fixed-line/epoch violation holds in every state. */
    bool constantFail_ = false;
    std::vector<Slot> slots_;
    std::vector<VarEpoch> varEpochs_;
    /** Variable epochs that must be visible in every consistent
     *  state: committed themselves, or a strict ancestor of a
     *  committed epoch or of a fixed surviving value's epoch. */
    std::uint64_t staticBadMask_ = 0;
};

/**
 * Verify post-crash NVM contents against the run log (one-shot: index
 * the log, run one check — exactly the pre-CheckerIndex cost).
 *
 * @param log stores and dependency edges recorded during the run
 * @param nvm surviving media contents (post ADR drain + undo rewind)
 * @param committed_up_to per-thread newest epoch the hardware had
 *        committed at the crash (from System::committedUpTo())
 */
CheckResult checkCrashConsistency(
    const RunLog &log, const NvmContents &nvm,
    const std::vector<std::uint64_t> &committed_up_to);

/**
 * Process-wide CheckerIndex memo, keyed by the log *contents* (a
 * 128-bit content hash), so every caller holding an identical log —
 * a Crash job and a Permute job probing the same tick, a campaign
 * verdict repeated after its probe — shares one build. Self-keying by
 * content means no configuration rendering can drift out of sync with
 * what actually shapes the log. Entries are capped (oldest evicted);
 * the shared_ptr keeps an evicted index alive for holders.
 */
std::shared_ptr<const CheckerIndex>
sharedCheckerIndex(const RunLog &log);

/** Hit/build counters of the shared-index memo. */
struct CheckerIndexStats
{
    std::uint64_t builds = 0; //!< indexes built (memo misses)
    std::uint64_t hits = 0;   //!< checks served an existing index
};

/** Snapshot of the process-wide shared-index counters. */
CheckerIndexStats checkerIndexStats();

/** Drop memoised indexes and zero the counters (tests). */
void clearCheckerIndexCache();

} // namespace asap

#endif // ASAP_RECOVERY_CHECKER_HH
