#include "recovery/checker.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>

namespace asap
{

CheckerIndex::CheckerIndex(const RunLog &log)
{
    // Per line, writes in retirement order (token -> index).
    for (const RunLog::StoreRecord &s : log.allStores())
        lineWrites[s.line].push_back(s);
    for (auto &[line, ws] : lineWrites) {
        std::sort(ws.begin(), ws.end(),
                  [](const auto &a, const auto &b) {
                      return a.seq < b.seq;
                  });
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (tokenIndex.count(ws[i].value)) {
                if (buildOk) {
                    std::ostringstream os;
                    os << "duplicate store token " << ws[i].value;
                    buildOk = false;
                    buildMessage = os.str();
                }
                continue;
            }
            tokenIndex[ws[i].value] = {line, i};
        }
    }

    // Epoch nodes: every epoch that wrote or appears in an edge.
    for (auto &[line, ws] : lineWrites) {
        for (std::size_t i = 0; i < ws.size(); ++i) {
            EpochNode &n = nodes[{ws[i].thread, ws[i].epoch}];
            n.lastWrite[line] = i; // ascending i: last one sticks
        }
    }
    for (const RunLog::DepEdge &e : log.allEdges()) {
        nodes[{e.thread, e.epoch}].depParents.push_back(
            {e.srcThread, e.srcEpoch});
        nodes.try_emplace({e.srcThread, e.srcEpoch});
    }

    // Per-thread sorted epoch lists for same-thread predecessor walks.
    for (const auto &[key, node] : nodes)
        byThread[key.first].push_back(key.second);
    for (auto &[t, v] : byThread)
        std::sort(v.begin(), v.end());
}

CheckResult
CheckerIndex::check(const NvmView &view,
                    const std::vector<std::uint64_t> &committed_up_to)
    const
{
    CheckResult res;
    auto fail = [&res](const std::string &msg) {
        res.ok = false;
        res.message = msg;
        return res;
    };
    if (!buildOk)
        return fail(buildMessage);

    // --- surviving index per line ----------------------------------------
    // -1 means "no recorded write survived" (initial contents).
    std::unordered_map<std::uint64_t, std::ptrdiff_t> survived;
    survived.reserve(lineWrites.size());
    for (const auto &[line, ws] : lineWrites) {
        const std::uint64_t v = view.read(line);
        if (v == 0) {
            survived[line] = -1;
            continue;
        }
        auto it = tokenIndex.find(v);
        if (it == tokenIndex.end() || it->second.first != line) {
            std::ostringstream os;
            os << "line " << line << " holds alien value " << v;
            return fail(os.str());
        }
        survived[line] =
            static_cast<std::ptrdiff_t>(it->second.second);
    }

    // --- checks ------------------------------------------------------------
    // An epoch is "fully visible" if, for every line it wrote, the
    // surviving write index is >= the epoch's last write index.
    auto epochVisible = [&](const Key &k, std::string *why) {
        auto nit = nodes.find(k);
        if (nit == nodes.end())
            return true; // wrote nothing
        for (const auto &[line, idx] : nit->second.lastWrite) {
            auto sit = survived.find(line);
            const std::ptrdiff_t got =
                sit == survived.end() ? -1 : sit->second;
            if (got < static_cast<std::ptrdiff_t>(idx)) {
                if (why) {
                    std::ostringstream os;
                    os << "epoch (t" << k.first << ",e" << k.second
                       << ") write idx " << idx << " to line " << line
                       << " not durable (surviving idx " << got << ")";
                    *why = os.str();
                }
                return false;
            }
        }
        return true;
    };

    // Walk ancestors of a seed epoch, verifying visibility of every
    // strict ancestor. The verified set depends on `survived`, so it
    // is per-check scratch — never shared across states.
    std::set<Key> verified;
    auto verifyAncestors = [&](Key seed, std::string *why) {
        std::vector<Key> work;
        auto push_parents = [&](const Key &k) {
            // Same-thread predecessor (largest logged ts < k.ts).
            auto bit = byThread.find(k.first);
            if (bit != byThread.end()) {
                const auto &v = bit->second;
                auto it = std::lower_bound(v.begin(), v.end(), k.second);
                if (it != v.begin())
                    work.push_back({k.first, *std::prev(it)});
            }
            // Cross-thread parents attached exactly to k.
            auto nit = nodes.find(k);
            if (nit != nodes.end()) {
                for (const Key &p : nit->second.depParents)
                    work.push_back(p);
            }
        };
        push_parents(seed);
        while (!work.empty()) {
            Key k = work.back();
            work.pop_back();
            if (verified.count(k))
                continue;
            verified.insert(k);
            if (!epochVisible(k, why))
                return false;
            push_parents(k);
        }
        return true;
    };

    // Check 1: prefix closure for every surviving value's epoch.
    for (const auto &[line, idx] : survived) {
        if (idx < 0)
            continue;
        const RunLog::StoreRecord &w =
            lineWrites.at(line)[static_cast<std::size_t>(idx)];
        std::string why;
        if (!verifyAncestors({w.thread, w.epoch}, &why)) {
            std::ostringstream os;
            os << "surviving value on line " << line << " (epoch t"
               << w.thread << ",e" << w.epoch
               << ") has a non-durable ancestor: " << why;
            return fail(os.str());
        }
    }

    // Check 2: committed epochs are fully durable, including their
    // ancestors.
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(committed_up_to.size()); ++t) {
        auto bit = byThread.find(t);
        if (bit == byThread.end())
            continue;
        for (std::uint64_t ts : bit->second) {
            if (ts > committed_up_to[t])
                break;
            std::string why;
            if (!epochVisible({t, ts}, &why)) {
                std::ostringstream os;
                os << "committed epoch (t" << t << ",e" << ts
                   << ") lost a write: " << why;
                return fail(os.str());
            }
            if (!verifyAncestors({t, ts}, &why)) {
                std::ostringstream os;
                os << "committed epoch (t" << t << ",e" << ts
                   << ") has a non-durable ancestor: " << why;
                return fail(os.str());
            }
        }
    }

    return res;
}

CheckScope::CheckScope(std::shared_ptr<const CheckerIndex> index,
                       const NvmContents &base,
                       const std::vector<std::uint64_t> &committed_up_to,
                       const std::vector<std::uint64_t> &variable_lines)
    : index_(std::move(index))
{
    using Key = CheckerIndex::Key;
    const CheckerIndex &ix = *index_;
    if (!ix.buildOk) {
        // Every check fails with the build message; the full-check
        // fallback reproduces it.
        constantFail_ = true;
        usable_ = true;
        return;
    }

    // Slot table. Duplicate variable lines would make "the value of
    // line L" ambiguous — bail rather than guess.
    std::unordered_map<std::uint64_t, std::uint32_t> varSlot;
    slots_.resize(variable_lines.size());
    for (std::size_t i = 0; i < variable_lines.size(); ++i) {
        slots_[i].line = variable_lines[i];
        slots_[i].logged = ix.lineWrites.count(variable_lines[i]) != 0;
        if (!varSlot
                 .emplace(variable_lines[i],
                          static_cast<std::uint32_t>(i))
                 .second) {
            return;
        }
    }

    // Base surviving index per fixed line. A fixed alien value fails
    // every state, whatever the variable lines hold.
    std::unordered_map<std::uint64_t, std::ptrdiff_t> survBase;
    survBase.reserve(ix.lineWrites.size());
    for (const auto &[line, ws] : ix.lineWrites) {
        (void)ws;
        if (varSlot.count(line))
            continue;
        const std::uint64_t v = base.read(line);
        if (v == 0) {
            survBase[line] = -1;
            continue;
        }
        auto it = ix.tokenIndex.find(v);
        if (it == ix.tokenIndex.end() || it->second.first != line) {
            constantFail_ = true;
            usable_ = true;
            return;
        }
        survBase[line] =
            static_cast<std::ptrdiff_t>(it->second.second);
    }

    // Variable epochs, in deterministic (thread, epoch) order.
    std::map<Key, std::uint32_t> varEpochId;
    for (const auto &[k, node] : ix.nodes) {
        for (const auto &[line, idx] : node.lastWrite) {
            (void)idx;
            if (varSlot.count(line)) {
                varEpochId.emplace(k, 0);
                break;
            }
        }
    }
    if (varEpochId.size() > 64)
        return;
    {
        std::uint32_t next = 0;
        for (auto &[k, id] : varEpochId) {
            (void)k;
            id = next++;
        }
    }
    varEpochs_.resize(varEpochId.size());
    for (const auto &[k, id] : varEpochId) {
        VarEpoch &ve = varEpochs_[id];
        for (const auto &[line, idx] : ix.nodes.at(k).lastWrite) {
            auto vs = varSlot.find(line);
            if (vs != varSlot.end()) {
                ve.need.push_back({vs->second, idx});
            } else if (survBase.at(line) <
                       static_cast<std::ptrdiff_t>(idx)) {
                ve.neverVisible = true;
            }
        }
    }

    // Dense node ids (std::map order: deterministic), parent lists,
    // and base visibility of every fixed epoch.
    std::map<Key, std::uint32_t> nodeId;
    for (const auto &[k, node] : ix.nodes) {
        (void)node;
        nodeId.emplace(k, static_cast<std::uint32_t>(nodeId.size()));
    }
    const std::size_t nn = nodeId.size();
    std::vector<std::vector<std::uint32_t>> parents(nn);
    std::vector<bool> visBase(nn, true);
    std::vector<std::uint64_t> varBit(nn, 0);
    for (const auto &[k, id] : nodeId) {
        const CheckerIndex::EpochNode &node = ix.nodes.at(k);
        auto bit = ix.byThread.find(k.first);
        if (bit != ix.byThread.end()) {
            const auto &v = bit->second;
            auto it =
                std::lower_bound(v.begin(), v.end(), k.second);
            if (it != v.begin())
                parents[id].push_back(
                    nodeId.at({k.first, *std::prev(it)}));
        }
        for (const Key &p : node.depParents)
            parents[id].push_back(nodeId.at(p));

        auto vit = varEpochId.find(k);
        if (vit != varEpochId.end()) {
            varBit[id] = 1ULL << vit->second;
        } else {
            for (const auto &[line, idx] : node.lastWrite) {
                if (survBase.at(line) <
                    static_cast<std::ptrdiff_t>(idx)) {
                    visBase[id] = false;
                    break;
                }
            }
        }
    }

    // One topological pass propagates, per node, whether a strict
    // ancestor is a non-visible fixed epoch (ancBad) and which
    // variable epochs are strict ancestors (anc mask).
    std::vector<std::vector<std::uint32_t>> children(nn);
    for (std::uint32_t c = 0; c < nn; ++c) {
        for (std::uint32_t p : parents[c])
            children[p].push_back(c);
    }
    std::vector<std::uint32_t> indeg(nn, 0);
    for (std::uint32_t c = 0; c < nn; ++c)
        indeg[c] = static_cast<std::uint32_t>(parents[c].size());
    std::vector<std::uint32_t> queue;
    queue.reserve(nn);
    for (std::uint32_t c = 0; c < nn; ++c) {
        if (indeg[c] == 0)
            queue.push_back(c);
    }
    std::vector<std::uint64_t> anc(nn, 0);
    std::vector<bool> ancBad(nn, false);
    std::size_t head = 0;
    while (head < queue.size()) {
        const std::uint32_t p = queue[head++];
        for (std::uint32_t c : children[p]) {
            anc[c] |= anc[p] | varBit[p];
            if (ancBad[p] || (varBit[p] == 0 && !visBase[p]))
                ancBad[c] = true;
            if (--indeg[c] == 0)
                queue.push_back(c);
        }
    }
    if (head != nn)
        return; // dependency cycle: no safe topological order

    // Static fail sources: committed epochs (Check 2) and fixed
    // lines' surviving epochs (Check 1). A fixed violation is a
    // constant fail; variable ancestors accumulate into the mask of
    // epochs every consistent state must keep visible.
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(committed_up_to.size()); ++t) {
        auto bit = ix.byThread.find(t);
        if (bit == ix.byThread.end())
            continue;
        for (std::uint64_t ts : bit->second) {
            if (ts > committed_up_to[t])
                break;
            const std::uint32_t id = nodeId.at({t, ts});
            if (ancBad[id] || (varBit[id] == 0 && !visBase[id])) {
                constantFail_ = true;
                usable_ = true;
                return;
            }
            staticBadMask_ |= anc[id] | varBit[id];
        }
    }
    for (const auto &[line, ws] : ix.lineWrites) {
        if (varSlot.count(line))
            continue;
        const std::ptrdiff_t idx = survBase.at(line);
        if (idx < 0)
            continue;
        const RunLog::StoreRecord &w =
            ws[static_cast<std::size_t>(idx)];
        const std::uint32_t id = nodeId.at({w.thread, w.epoch});
        if (ancBad[id]) {
            constantFail_ = true;
            usable_ = true;
            return;
        }
        staticBadMask_ |= anc[id];
    }

    // Per-slot seed tables: ancestor facts for every write that can
    // survive on a variable line.
    for (Slot &s : slots_) {
        if (!s.logged)
            continue;
        const auto &ws = ix.lineWrites.at(s.line);
        s.seed.resize(ws.size());
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const std::uint32_t id =
                nodeId.at({ws[i].thread, ws[i].epoch});
            s.seed[i] = {ancBad[id], anc[id]};
        }
    }
    usable_ = true;
}

bool
CheckScope::consistent(const std::vector<std::uint64_t> &values,
                       Scratch &scratch) const
{
    if (constantFail_)
        return false;
    const CheckerIndex &ix = *index_;

    // Surviving write index per variable line (alien value: not
    // fast-provable, let the full check produce the message).
    scratch.surv.assign(slots_.size(), -1);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].logged)
            continue; // the checker never reads this line
        const std::uint64_t v = values[i];
        if (v == 0)
            continue;
        auto it = ix.tokenIndex.find(v);
        if (it == ix.tokenIndex.end() ||
            it->second.first != slots_[i].line) {
            return false;
        }
        scratch.surv[i] =
            static_cast<std::ptrdiff_t>(it->second.second);
    }

    // Visibility of the variable epochs under this state.
    std::uint64_t notVisible = 0;
    for (std::size_t b = 0; b < varEpochs_.size(); ++b) {
        const VarEpoch &ve = varEpochs_[b];
        bool vis = !ve.neverVisible;
        if (vis) {
            for (const auto &[slot, idx] : ve.need) {
                if (scratch.surv[slot] <
                    static_cast<std::ptrdiff_t>(idx)) {
                    vis = false;
                    break;
                }
            }
        }
        if (!vis)
            notVisible |= 1ULL << b;
    }

    // Check 2 (+ Check 1 for fixed lines): a committed epoch, or a
    // strict ancestor of a committed epoch or fixed surviving value,
    // lost a write.
    if (notVisible & staticBadMask_)
        return false;

    // Check 1 for variable lines: the surviving value's epoch has a
    // non-durable strict ancestor.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const std::ptrdiff_t idx = scratch.surv[i];
        if (idx < 0)
            continue;
        const SeedInfo &s =
            slots_[i].seed[static_cast<std::size_t>(idx)];
        if (s.ancBadFixed || (s.varAncMask & notVisible))
            return false;
    }
    return true;
}

CheckResult
checkCrashConsistency(const RunLog &log, const NvmContents &nvm,
                      const std::vector<std::uint64_t> &committed_up_to)
{
    // Deliberately unmemoised: this is the one-shot path (and the
    // permuter's naive baseline engine) — it pays the full index build
    // per call, exactly as before CheckerIndex existed.
    CheckerIndex index(log);
    return index.check(NvmView(nvm), committed_up_to);
}

namespace
{

/** 128-bit content hash of a RunLog: two independent FNV-1a streams
 *  over every store and edge field. The index is a pure function of
 *  this content, so the hash is a safe memo key. */
struct LogFingerprint
{
    std::uint64_t a = 14695981039346656037ULL;
    std::uint64_t b = 0x2b992ddfa23249d6ULL;

    void
    mix(std::uint64_t v)
    {
        constexpr std::uint64_t kPrimeA = 1099511628211ULL;
        constexpr std::uint64_t kPrimeB = 0x100000001b3ULL ^ 0x9e37;
        for (unsigned i = 0; i < 8; ++i) {
            const std::uint64_t byte = (v >> (i * 8)) & 0xff;
            a = (a ^ byte) * kPrimeA;
            b = (b ^ (byte + 0x9e)) * kPrimeB;
        }
    }

    bool
    operator==(const LogFingerprint &o) const
    {
        return a == o.a && b == o.b;
    }
};

LogFingerprint
fingerprintLog(const RunLog &log)
{
    LogFingerprint fp;
    fp.mix(log.allStores().size());
    for (const RunLog::StoreRecord &s : log.allStores()) {
        fp.mix(s.seq);
        fp.mix((static_cast<std::uint64_t>(s.thread) << 32) ^ s.epoch);
        fp.mix(s.line);
        fp.mix(s.value);
    }
    fp.mix(log.allEdges().size());
    for (const RunLog::DepEdge &e : log.allEdges()) {
        fp.mix((static_cast<std::uint64_t>(e.thread) << 32) ^
               e.srcThread);
        fp.mix(e.epoch);
        fp.mix(e.srcEpoch);
    }
    return fp;
}

struct IndexCacheEntry
{
    LogFingerprint key;
    std::shared_ptr<const CheckerIndex> index;
};

/** Logs alive at once are few (one per in-flight experiment); a small
 *  FIFO window is plenty to bridge probe -> verdict -> permute reuse. */
constexpr std::size_t kIndexCacheCap = 16;

std::mutex gIndexMu;
std::deque<IndexCacheEntry> gIndexCache;
std::atomic<std::uint64_t> gIndexBuilds{0};
std::atomic<std::uint64_t> gIndexHits{0};

} // namespace

std::shared_ptr<const CheckerIndex>
sharedCheckerIndex(const RunLog &log)
{
    const LogFingerprint key = fingerprintLog(log);
    {
        std::lock_guard<std::mutex> lock(gIndexMu);
        for (const IndexCacheEntry &e : gIndexCache) {
            if (e.key == key) {
                gIndexHits.fetch_add(1, std::memory_order_relaxed);
                return e.index;
            }
        }
    }
    // Build outside the lock: concurrent misses on the same log may
    // build twice, but never block each other behind a sort.
    auto index = std::make_shared<const CheckerIndex>(log);
    gIndexBuilds.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(gIndexMu);
        gIndexCache.push_back({key, index});
        while (gIndexCache.size() > kIndexCacheCap)
            gIndexCache.pop_front();
    }
    return index;
}

CheckerIndexStats
checkerIndexStats()
{
    CheckerIndexStats s;
    s.builds = gIndexBuilds.load(std::memory_order_relaxed);
    s.hits = gIndexHits.load(std::memory_order_relaxed);
    return s;
}

void
clearCheckerIndexCache()
{
    std::lock_guard<std::mutex> lock(gIndexMu);
    gIndexCache.clear();
    gIndexBuilds.store(0, std::memory_order_relaxed);
    gIndexHits.store(0, std::memory_order_relaxed);
}

} // namespace asap
