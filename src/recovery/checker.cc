#include "recovery/checker.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace asap
{

namespace
{

/** Ordered epoch key. */
using Key = std::pair<std::uint16_t, std::uint64_t>;

struct EpochNode
{
    /** Per-line index (into that line's write list) of this epoch's
     *  last write to the line. */
    std::unordered_map<std::uint64_t, std::size_t> lastWrite;
    /** Direct cross-thread parents. */
    std::vector<Key> depParents;
};

} // namespace

CheckResult
checkCrashConsistency(const RunLog &log, const NvmContents &nvm,
                      const std::vector<std::uint64_t> &committed_up_to)
{
    CheckResult res;
    auto fail = [&res](const std::string &msg) {
        res.ok = false;
        res.message = msg;
        return res;
    };

    // --- index the log ---------------------------------------------------
    // Per line, writes in retirement order (token -> index).
    std::unordered_map<std::uint64_t, std::vector<RunLog::StoreRecord>>
        lineWrites;
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
        tokenIndex; // token -> (line, index)
    for (const RunLog::StoreRecord &s : log.allStores())
        lineWrites[s.line].push_back(s);
    for (auto &[line, ws] : lineWrites) {
        std::sort(ws.begin(), ws.end(),
                  [](const auto &a, const auto &b) {
                      return a.seq < b.seq;
                  });
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (tokenIndex.count(ws[i].value)) {
                std::ostringstream os;
                os << "duplicate store token " << ws[i].value;
                return fail(os.str());
            }
            tokenIndex[ws[i].value] = {line, i};
        }
    }

    // Epoch nodes: every epoch that wrote or appears in an edge.
    std::map<Key, EpochNode> nodes;
    for (auto &[line, ws] : lineWrites) {
        for (std::size_t i = 0; i < ws.size(); ++i) {
            EpochNode &n = nodes[{ws[i].thread, ws[i].epoch}];
            n.lastWrite[line] = i; // ascending i: last one sticks
        }
    }
    for (const RunLog::DepEdge &e : log.allEdges()) {
        nodes[{e.thread, e.epoch}].depParents.push_back(
            {e.srcThread, e.srcEpoch});
        nodes.try_emplace({e.srcThread, e.srcEpoch});
    }

    // Per-thread sorted epoch lists for same-thread predecessor walks.
    std::unordered_map<std::uint16_t, std::vector<std::uint64_t>> byThread;
    for (const auto &[key, node] : nodes)
        byThread[key.first].push_back(key.second);
    for (auto &[t, v] : byThread)
        std::sort(v.begin(), v.end());

    // --- surviving index per line ----------------------------------------
    // -1 means "no recorded write survived" (initial contents).
    std::unordered_map<std::uint64_t, std::ptrdiff_t> survived;
    for (const auto &[line, ws] : lineWrites) {
        const std::uint64_t v = nvm.read(line);
        if (v == 0) {
            survived[line] = -1;
            continue;
        }
        auto it = tokenIndex.find(v);
        if (it == tokenIndex.end() || it->second.first != line) {
            std::ostringstream os;
            os << "line " << line << " holds alien value " << v;
            return fail(os.str());
        }
        survived[line] =
            static_cast<std::ptrdiff_t>(it->second.second);
    }

    // --- checks ------------------------------------------------------------
    // An epoch is "fully visible" if, for every line it wrote, the
    // surviving write index is >= the epoch's last write index.
    auto epochVisible = [&](const Key &k, std::string *why) {
        auto nit = nodes.find(k);
        if (nit == nodes.end())
            return true; // wrote nothing
        for (const auto &[line, idx] : nit->second.lastWrite) {
            auto sit = survived.find(line);
            const std::ptrdiff_t got =
                sit == survived.end() ? -1 : sit->second;
            if (got < static_cast<std::ptrdiff_t>(idx)) {
                if (why) {
                    std::ostringstream os;
                    os << "epoch (t" << k.first << ",e" << k.second
                       << ") write idx " << idx << " to line " << line
                       << " not durable (surviving idx " << got << ")";
                    *why = os.str();
                }
                return false;
            }
        }
        return true;
    };

    // Walk ancestors of a seed epoch, verifying visibility of every
    // strict ancestor.
    std::set<Key> verified;
    auto verifyAncestors = [&](Key seed, std::string *why) {
        std::vector<Key> work;
        auto push_parents = [&](const Key &k) {
            // Same-thread predecessor (largest logged ts < k.ts).
            auto bit = byThread.find(k.first);
            if (bit != byThread.end()) {
                const auto &v = bit->second;
                auto it = std::lower_bound(v.begin(), v.end(), k.second);
                if (it != v.begin())
                    work.push_back({k.first, *std::prev(it)});
            }
            // Cross-thread parents attached exactly to k.
            auto nit = nodes.find(k);
            if (nit != nodes.end()) {
                for (const Key &p : nit->second.depParents)
                    work.push_back(p);
            }
        };
        push_parents(seed);
        while (!work.empty()) {
            Key k = work.back();
            work.pop_back();
            if (verified.count(k))
                continue;
            verified.insert(k);
            if (!epochVisible(k, why))
                return false;
            push_parents(k);
        }
        return true;
    };

    // Check 1: prefix closure for every surviving value's epoch.
    for (const auto &[line, idx] : survived) {
        if (idx < 0)
            continue;
        const RunLog::StoreRecord &w =
            lineWrites.at(line)[static_cast<std::size_t>(idx)];
        std::string why;
        if (!verifyAncestors({w.thread, w.epoch}, &why)) {
            std::ostringstream os;
            os << "surviving value on line " << line << " (epoch t"
               << w.thread << ",e" << w.epoch
               << ") has a non-durable ancestor: " << why;
            return fail(os.str());
        }
    }

    // Check 2: committed epochs are fully durable, including their
    // ancestors.
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(committed_up_to.size()); ++t) {
        auto bit = byThread.find(t);
        if (bit == byThread.end())
            continue;
        for (std::uint64_t ts : bit->second) {
            if (ts > committed_up_to[t])
                break;
            std::string why;
            if (!epochVisible({t, ts}, &why)) {
                std::ostringstream os;
                os << "committed epoch (t" << t << ",e" << ts
                   << ") lost a write: " << why;
                return fail(os.str());
            }
            if (!verifyAncestors({t, ts}, &why)) {
                std::ostringstream os;
                os << "committed epoch (t" << t << ",e" << ts
                   << ") has a non-durable ancestor: " << why;
                return fail(os.str());
            }
        }
    }

    return res;
}

} // namespace asap
