/**
 * @file
 * Run log: the ground truth the recovery checker needs.
 *
 * While a simulation runs, the cores append every PM store (with the
 * epoch it joined) and every cross-thread epoch dependency edge. After
 * an injected crash the checker rebuilds the epoch dependency DAG from
 * this log and verifies the Section VI theorems against the surviving
 * NVM contents.
 */

#ifndef ASAP_RECOVERY_RUN_LOG_HH
#define ASAP_RECOVERY_RUN_LOG_HH

#include <cstdint>
#include <vector>

namespace asap
{

/** Identifies one epoch globally. */
struct EpochId
{
    std::uint16_t thread = 0;
    std::uint64_t ts = 0;

    bool
    operator==(const EpochId &o) const
    {
        return thread == o.thread && ts == o.ts;
    }
};

/** Append-only record of a run's persist-relevant events. */
class RunLog
{
  public:
    /** One PM store as the core retired it. */
    struct StoreRecord
    {
        std::uint64_t seq;      //!< global retirement order
        std::uint16_t thread;
        std::uint64_t epoch;    //!< epoch timestamp on that thread
        std::uint64_t line;
        std::uint64_t value;    //!< unique token
    };

    /** Cross-thread dependency: (thread, epoch) -> (src, srcEpoch). */
    struct DepEdge
    {
        std::uint16_t thread;
        std::uint64_t epoch;
        std::uint16_t srcThread;
        std::uint64_t srcEpoch;
    };

    void
    recordStore(std::uint16_t thread, std::uint64_t epoch,
                std::uint64_t line, std::uint64_t value)
    {
        stores.push_back(StoreRecord{nextSeq++, thread, epoch, line,
                                     value});
    }

    void
    recordEdge(std::uint16_t thread, std::uint64_t epoch,
               std::uint16_t src_thread, std::uint64_t src_epoch)
    {
        edges.push_back(DepEdge{thread, epoch, src_thread, src_epoch});
    }

    const std::vector<StoreRecord> &allStores() const { return stores; }
    const std::vector<DepEdge> &allEdges() const { return edges; }

    void
    clear()
    {
        stores.clear();
        edges.clear();
        nextSeq = 0;
    }

  private:
    std::uint64_t nextSeq = 0;
    std::vector<StoreRecord> stores;
    std::vector<DepEdge> edges;
};

} // namespace asap

#endif // ASAP_RECOVERY_RUN_LOG_HH
