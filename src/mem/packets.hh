/**
 * @file
 * Message types exchanged between the persist path and the memory
 * controllers.
 *
 * All persistence traffic is line granular (64 B): a flush carries a
 * line address and an opaque 64-bit token value. Token values are
 * unique per store, which lets the recovery checker identify exactly
 * which store survived a crash.
 */

#ifndef ASAP_MEM_PACKETS_HH
#define ASAP_MEM_PACKETS_HH

#include <cstdint>
#include <functional>

namespace asap
{

/** Cache-line size used throughout the system. */
constexpr unsigned lineBytes = 64;

/** Byte address -> line address. */
constexpr std::uint64_t
lineOf(std::uint64_t byte_addr)
{
    return byte_addr / lineBytes;
}

/** A write-back travelling from a persist buffer to a controller. */
struct FlushPacket
{
    std::uint64_t line;     //!< line address (byte address / 64)
    std::uint64_t value;    //!< unique store token written to the line
    std::uint16_t thread;   //!< issuing hardware thread
    std::uint64_t epoch;    //!< epoch timestamp the write belongs to
    bool early;             //!< true if flushed before the epoch is safe
};

/** Memory controller's response to a flush. */
enum class FlushReply
{
    Ack,    //!< write accepted into the persistence domain
    Nack,   //!< rejected: recovery table full (ASAP back-pressure)
};

/** Completion callback for a flush request. */
using FlushCallback = std::function<void(FlushReply)>;

} // namespace asap

#endif // ASAP_MEM_PACKETS_HH
