/**
 * @file
 * NVM memory controller timing model.
 *
 * Each controller owns a Write Pending Queue (inside the ADR
 * persistence domain), a MediaModel (src/media/) whose banks drain it
 * with the selected profile's write service latency and bandwidth
 * cap, an XPBuffer-style recency cache that accelerates undo-snapshot
 * reads, and optionally a RecoveryPolicy (ASAP's Recovery Table). The
 * controller is entirely event driven; back-pressure emerges from the
 * WPQ filling up (amplified on bandwidth-capped media by the queueing
 * delay that extends bank occupancy), which delays flush
 * acknowledgements and in turn throttles the persist buffers.
 */

#ifndef ASAP_MEM_MEMORY_CONTROLLER_HH
#define ASAP_MEM_MEMORY_CONTROLLER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "media/media.hh"
#include "mem/nvm_contents.hh"
#include "mem/packets.hh"
#include "mem/recovery_policy.hh"
#include "mem/wpq.hh"
#include "mem/xpbuffer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

/** One NVM memory controller. */
class MemoryController
{
  public:
    /**
     * @param id controller index (for stat names)
     * @param cfg system configuration (latencies, queue sizes)
     * @param eq shared event queue
     * @param media functional NVM backing store (shared by all MCs)
     * @param stats shared stats registry
     */
    MemoryController(unsigned id, const SimConfig &cfg, EventQueue &eq,
                     NvmContents &media, StatSet &stats);

    /** Attach the speculation policy (ASAP's Recovery Table). */
    void setPolicy(RecoveryPolicy *policy) { policy_ = policy; }

    /**
     * A flush packet arrives (the sender already paid the link
     * latency). @p cb fires with Ack/Nack once the controller has
     * classified the flush and, for memory-updating actions, accepted
     * the write into the WPQ.
     */
    void receiveFlush(const FlushPacket &pkt, FlushCallback cb);

    /**
     * An epoch commit message arrives (ASAP only). The recovery
     * policy drops the epoch's undo records and releases its delay
     * records; @p ack_cb fires when the controller has acknowledged.
     */
    void receiveCommit(std::uint16_t thread, std::uint64_t epoch,
                       std::function<void()> ack_cb);

    /**
     * Power failure: flush the ADR domain. Pending WPQ writes and
     * in-flight bank writes reach the media, then undo records rewind
     * every speculative update (Section V-E).
     */
    void crash();

    /** Current durable value for @p line (WPQ takes precedence). */
    std::uint64_t durableValue(std::uint64_t line) const;

    /** Recovery-policy occupancy (0 when no policy attached). */
    std::size_t rtOccupancy() const;

    /** Attached recovery policy (nullptr for non-ASAP models). */
    const RecoveryPolicy *policy() const { return policy_; }

    /** Non-destructive WPQ snapshot (crash-state permuter). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    wpqSnapshot() const
    {
        return wpq.entries();
    }

    /** The media backend this controller drains into. */
    const MediaModel &mediaModel() const { return *mediaModel_; }

    unsigned id() const { return id_; }

    /**
     * Commit-released writes whose WPQ insertion is still pending
     * (parked in the overflow queue). While nonzero the commit ACK's
     * countdown spans events whose relative order a parallel round
     * does not reproduce, so the kernel's serial predicate keeps
     * execution in exact global order until this drains.
     */
    unsigned commitReleasePending() const { return commitReleasePending_; }

    // --- speculation checkpoints (parallel kernel) ------------------

    /** Save all domain-local state ahead of a speculative window. */
    void specSave();
    /** Roll domain-local state back to the last specSave(). */
    void specRestore();
    /** Commit the speculative window; drop the checkpoint. */
    void specDiscard();

    // --- deterministic aggregate ("mc.*") recomputation -------------

    /**
     * In parallel runs per-MC counters are bumped on the owning
     * domain's thread, but the shared "mc.*" aggregates are not (that
     * would race and make their values order-dependent). Instead the
     * harness seals stats after the run: zero the aggregates once,
     * then add every controller's counters back in MC order.
     */
    void zeroAggStats();
    void addAggStats();

  private:
    /** Enqueue a media write, waiting out a full WPQ if necessary. */
    void enqueueWrite(std::uint64_t line, std::uint64_t value,
                      std::uint64_t extra_latency,
                      std::function<void()> on_inserted);

    /** Start media writes on any idle banks. */
    void tryIssueBanks();

    /** Admit overflow writes into freed WPQ slots. */
    void admitOverflow();

    /**
     * A (per-MC, aggregate "mc.*") counter pair. Resolved once at
     * construction: the per-event path must not pay two string
     * concatenations and two map walks per statistic. Sequential runs
     * bump both inline (aggInline). Parallel runs bump only the
     * per-MC counter — the aggregate is shared across domains — and
     * the harness recomputes aggregates deterministically at seal
     * time (zeroAggStats()/addAggStats()).
     */
    class StatPair
    {
      public:
        StatPair(StatSet &stats, const std::string &prefix,
                 const char *name, bool agg_inline)
            : mc(&stats.counter(prefix + name)),
              agg(&stats.counter(std::string("mc.") + name)),
              aggInline(agg_inline)
        {
        }

        void
        inc(std::uint64_t delta = 1)
        {
            *mc += delta;
            if (aggInline)
                *agg += delta;
        }

        std::uint64_t mcValue() const { return *mc; }
        void setMcValue(std::uint64_t v) { *mc = v; }
        void zeroAgg() { *agg = 0; }
        void addAgg() { *agg += *mc; }

      private:
        std::uint64_t *mc;
        std::uint64_t *agg;
        bool aggInline;
    };

    unsigned id_;
    const SimConfig &cfg;
    EventQueue &eq;
    NvmContents &media;
    StatSet &stats;
    RecoveryPolicy *policy_ = nullptr;
    std::unique_ptr<MediaModel> mediaModel_; //!< per-MC timing + bw cap

    Wpq wpq;
    XpBuffer xpBuffer;
    unsigned busyBanks = 0;
    bool drainCheckScheduled = false;

    /** Writes waiting for WPQ space, in arrival order. */
    struct OverflowWrite
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency;
        std::function<void()> onInserted;
    };
    std::deque<OverflowWrite> overflow;

    bool crashed = false;
    unsigned commitReleasePending_ = 0;
    std::string statPrefix;

    /** Everything specRestore() must rewind (media contents roll back
     *  through NvmContents' per-shard journal, policy state through
     *  RecoveryPolicy::specRestore). */
    struct SpecSnapshot
    {
        explicit SpecSnapshot(const Wpq &w) : wpq(w) {}
        Wpq wpq;
        std::vector<std::uint64_t> xpLru;
        unsigned busyBanks = 0;
        bool drainCheckScheduled = false;
        std::deque<OverflowWrite> overflow;
        std::vector<std::uint64_t> statVals;
        Tick bwCursor = 0;
    };
    std::unique_ptr<SpecSnapshot> snap_;

    /** All pairs, for checkpointing and aggregate recomputation. */
    std::vector<StatPair *> pairs_;

    /** Bump shared aggregates inline? (false under the parallel
     *  kernel; declared before the pairs so they can read it). */
    bool aggInline_;

    StatPair stFlushesReceived;
    StatPair stEarlyFlushesReceived;
    StatPair stSuppressedWrites;
    StatPair stUndoReads;
    StatPair stXpHits;
    StatPair stXpMisses;
    StatPair stPmReads;
    StatPair stDelaysCreated;
    StatPair stNacksSent;
    StatPair stCommitsReceived;
    StatPair stDelayWritesReleased;
    StatPair stWpqCoalesced;
    StatPair stWpqFullStalls;
    StatPair stPmWrites;
    StatPair stBytesWritten;
    StatPair stBankBusyTicks;
    StatPair stBwQueueDelayTicks;
    StatPair stAdrDrainWrites;
    StatPair stUndoRewindWrites;
};

} // namespace asap

#endif // ASAP_MEM_MEMORY_CONTROLLER_HH
