/**
 * @file
 * NVM memory controller timing model.
 *
 * Each controller owns a Write Pending Queue (inside the ADR
 * persistence domain), a MediaModel (src/media/) whose banks drain it
 * with the selected profile's write service latency and bandwidth
 * cap, an XPBuffer-style recency cache that accelerates undo-snapshot
 * reads, and optionally a RecoveryPolicy (ASAP's Recovery Table). The
 * controller is entirely event driven; back-pressure emerges from the
 * WPQ filling up (amplified on bandwidth-capped media by the queueing
 * delay that extends bank occupancy), which delays flush
 * acknowledgements and in turn throttles the persist buffers.
 */

#ifndef ASAP_MEM_MEMORY_CONTROLLER_HH
#define ASAP_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include <memory>

#include "media/media.hh"
#include "mem/nvm_contents.hh"
#include "mem/packets.hh"
#include "mem/recovery_policy.hh"
#include "mem/wpq.hh"
#include "mem/xpbuffer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

/** One NVM memory controller. */
class MemoryController
{
  public:
    /**
     * @param id controller index (for stat names)
     * @param cfg system configuration (latencies, queue sizes)
     * @param eq shared event queue
     * @param media functional NVM backing store (shared by all MCs)
     * @param stats shared stats registry
     */
    MemoryController(unsigned id, const SimConfig &cfg, EventQueue &eq,
                     NvmContents &media, StatSet &stats);

    /** Attach the speculation policy (ASAP's Recovery Table). */
    void setPolicy(RecoveryPolicy *policy) { policy_ = policy; }

    /**
     * A flush packet arrives (the sender already paid the link
     * latency). @p cb fires with Ack/Nack once the controller has
     * classified the flush and, for memory-updating actions, accepted
     * the write into the WPQ.
     */
    void receiveFlush(const FlushPacket &pkt, FlushCallback cb);

    /**
     * An epoch commit message arrives (ASAP only). The recovery
     * policy drops the epoch's undo records and releases its delay
     * records; @p ack_cb fires when the controller has acknowledged.
     */
    void receiveCommit(std::uint16_t thread, std::uint64_t epoch,
                       std::function<void()> ack_cb);

    /**
     * Power failure: flush the ADR domain. Pending WPQ writes and
     * in-flight bank writes reach the media, then undo records rewind
     * every speculative update (Section V-E).
     */
    void crash();

    /** Current durable value for @p line (WPQ takes precedence). */
    std::uint64_t durableValue(std::uint64_t line) const;

    /** Recovery-policy occupancy (0 when no policy attached). */
    std::size_t rtOccupancy() const;

    /** The media backend this controller drains into. */
    const MediaModel &mediaModel() const { return *mediaModel_; }

    unsigned id() const { return id_; }

  private:
    /** Enqueue a media write, waiting out a full WPQ if necessary. */
    void enqueueWrite(std::uint64_t line, std::uint64_t value,
                      std::uint64_t extra_latency,
                      std::function<void()> on_inserted);

    /** Start media writes on any idle banks. */
    void tryIssueBanks();

    /** Admit overflow writes into freed WPQ slots. */
    void admitOverflow();

    /**
     * A (per-MC, aggregate "mc.*") counter pair bumped together.
     * Resolved once at construction: the per-event path must not pay
     * two string concatenations and two map walks per statistic.
     */
    class StatPair
    {
      public:
        StatPair(StatSet &stats, const std::string &prefix,
                 const char *name)
            : mc(&stats.counter(prefix + name)),
              agg(&stats.counter(std::string("mc.") + name))
        {
        }

        void
        inc(std::uint64_t delta = 1)
        {
            *mc += delta;
            *agg += delta;
        }

      private:
        std::uint64_t *mc;
        std::uint64_t *agg;
    };

    unsigned id_;
    const SimConfig &cfg;
    EventQueue &eq;
    NvmContents &media;
    StatSet &stats;
    RecoveryPolicy *policy_ = nullptr;
    std::unique_ptr<MediaModel> mediaModel_; //!< per-MC timing + bw cap

    Wpq wpq;
    XpBuffer xpBuffer;
    unsigned busyBanks = 0;
    bool drainCheckScheduled = false;

    /** Writes waiting for WPQ space, in arrival order. */
    struct OverflowWrite
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency;
        std::function<void()> onInserted;
    };
    std::deque<OverflowWrite> overflow;

    bool crashed = false;
    std::string statPrefix;

    StatPair stFlushesReceived;
    StatPair stEarlyFlushesReceived;
    StatPair stSuppressedWrites;
    StatPair stUndoReads;
    StatPair stXpHits;
    StatPair stXpMisses;
    StatPair stPmReads;
    StatPair stDelaysCreated;
    StatPair stNacksSent;
    StatPair stCommitsReceived;
    StatPair stDelayWritesReleased;
    StatPair stWpqCoalesced;
    StatPair stWpqFullStalls;
    StatPair stPmWrites;
    StatPair stBytesWritten;
    StatPair stBankBusyTicks;
    StatPair stBwQueueDelayTicks;
    StatPair stAdrDrainWrites;
    StatPair stUndoRewindWrites;
};

} // namespace asap

#endif // ASAP_MEM_MEMORY_CONTROLLER_HH
