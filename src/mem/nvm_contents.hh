/**
 * @file
 * Functional contents of the NVM devices.
 *
 * Tracks, per line, the token of the most recent write that actually
 * reached the media. This is the state a crash preserves (together
 * with whatever the ADR domain flushes) and the state the recovery
 * checker inspects.
 */

#ifndef ASAP_MEM_NVM_CONTENTS_HH
#define ASAP_MEM_NVM_CONTENTS_HH

#include <cstdint>
#include <unordered_map>

namespace asap
{

/** Line-granular functional NVM state. */
class NvmContents
{
  public:
    /** Write @p value to @p line (a media write, post-WPQ). */
    void
    write(std::uint64_t line, std::uint64_t value)
    {
        lines[line] = value;
    }

    /** Read the current media value (0 = never written). */
    std::uint64_t
    read(std::uint64_t line) const
    {
        auto it = lines.find(line);
        return it == lines.end() ? 0 : it->second;
    }

    /** True once the line has been written at least once. */
    bool
    present(std::uint64_t line) const
    {
        return lines.count(line) != 0;
    }

    /** All line values (for the recovery checker). */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    all() const
    {
        return lines;
    }

    void clear() { lines.clear(); }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> lines;
};

} // namespace asap

#endif // ASAP_MEM_NVM_CONTENTS_HH
