/**
 * @file
 * Functional contents of the NVM devices.
 *
 * Tracks, per line, the token of the most recent write that actually
 * reached the media. This is the state a crash preserves (together
 * with whatever the ADR domain flushes) and the state the recovery
 * checker inspects.
 *
 * Under the parallel event kernel the store is sharded per memory
 * controller (configureShards()): each MC writes only lines the
 * address map routes to it, so per-MC event windows mutate disjoint
 * shards without synchronisation. Each shard also carries an undo
 * journal so a speculative window's media writes can roll back. The
 * default single-shard layout is byte-for-byte the old behavior —
 * all() even returns the same map object.
 */

#ifndef ASAP_MEM_NVM_CONTENTS_HH
#define ASAP_MEM_NVM_CONTENTS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace asap
{

/** Line-granular functional NVM state. */
class NvmContents
{
  public:
    NvmContents() : shards_(1) {}

    /**
     * Split the store into @p n per-controller shards; @p route maps
     * a line to its shard (the address map's mcFor). Must be called
     * before any write. With n == 1 the route is ignored.
     */
    void
    configureShards(unsigned n,
                    std::function<unsigned(std::uint64_t)> route)
    {
        shards_.clear();
        shards_.resize(n ? n : 1);
        route_ = std::move(route);
    }

    /** Write @p value to @p line (a media write, post-WPQ). */
    void
    write(std::uint64_t line, std::uint64_t value)
    {
        Shard &s = shardFor(line);
        if (s.journaling) {
            auto it = s.lines.find(line);
            s.journal.push_back(JEntry{
                line, it == s.lines.end() ? 0 : it->second,
                it != s.lines.end()});
        }
        s.lines[line] = value;
    }

    /** Read the current media value (0 = never written). */
    std::uint64_t
    read(std::uint64_t line) const
    {
        const auto &lines = shardFor(line).lines;
        auto it = lines.find(line);
        return it == lines.end() ? 0 : it->second;
    }

    /** True once the line has been written at least once. */
    bool
    present(std::uint64_t line) const
    {
        return shardFor(line).lines.count(line) != 0;
    }

    /**
     * All line values (for the recovery checker). Single-shard: the
     * shard's own map (bit-identical iteration to the pre-shard
     * layout). Multi-shard: a merged snapshot — every consumer is
     * order-independent (counts and lookups only).
     */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    all() const
    {
        if (shards_.size() == 1)
            return shards_[0].lines;
        merged_.clear();
        for (const Shard &s : shards_)
            merged_.insert(s.lines.begin(), s.lines.end());
        return merged_;
    }

    void
    clear()
    {
        for (Shard &s : shards_) {
            s.lines.clear();
            s.journal.clear();
            s.journaling = false;
        }
        merged_.clear();
    }

    // --- speculation journal (parallel kernel checkpoints) ----------

    /** Start recording undo state for @p shard's writes. */
    void
    beginJournal(unsigned shard)
    {
        Shard &s = shards_[shard];
        s.journal.clear();
        s.journaling = true;
    }

    /** Undo every write since beginJournal() (reverse order). */
    void
    rollbackJournal(unsigned shard)
    {
        Shard &s = shards_[shard];
        for (auto it = s.journal.rbegin(); it != s.journal.rend();
             ++it) {
            if (it->wasPresent)
                s.lines[it->line] = it->prev;
            else
                s.lines.erase(it->line);
        }
        s.journal.clear();
        s.journaling = false;
    }

    /** Keep the writes; drop the undo records. */
    void
    discardJournal(unsigned shard)
    {
        Shard &s = shards_[shard];
        s.journal.clear();
        s.journaling = false;
    }

  private:
    struct JEntry
    {
        std::uint64_t line;
        std::uint64_t prev;
        bool wasPresent;
    };

    /** Cache-line padded: per-MC event windows write their shards
     *  concurrently. */
    struct alignas(64) Shard
    {
        std::unordered_map<std::uint64_t, std::uint64_t> lines;
        std::vector<JEntry> journal;
        bool journaling = false;
    };

    Shard &
    shardFor(std::uint64_t line)
    {
        return shards_.size() == 1 ? shards_[0]
                                   : shards_[route_(line)];
    }

    const Shard &
    shardFor(std::uint64_t line) const
    {
        return shards_.size() == 1 ? shards_[0]
                                   : shards_[route_(line)];
    }

    std::vector<Shard> shards_;
    std::function<unsigned(std::uint64_t)> route_;
    mutable std::unordered_map<std::uint64_t, std::uint64_t> merged_;
};

} // namespace asap

#endif // ASAP_MEM_NVM_CONTENTS_HH
