#include "mem/memory_controller.hh"

#include <memory>
#include <utility>

#include "sim/log.hh"

namespace asap
{

namespace
{
/** Fixed pipeline cost for classifying an incoming packet. */
constexpr Tick mcProcCost = 4;
/** Fixed pipeline cost for processing a commit message. */
constexpr Tick mcCommitCost = 8;
} // namespace

MemoryController::MemoryController(unsigned id, const SimConfig &cfg,
                                   EventQueue &eq, NvmContents &media,
                                   StatSet &stats)
    : id_(id), cfg(cfg), eq(eq), media(media), stats(stats),
      mediaModel_(makeMediaModelFor(cfg, id)), wpq(cfg.wpqEntries),
      xpBuffer(cfg.xpBufferLines),
      statPrefix("mc" + std::to_string(id) + "."),
      aggInline_(!eq.parallel()),
      stFlushesReceived(stats, statPrefix, "flushesReceived", aggInline_),
      stEarlyFlushesReceived(stats, statPrefix, "earlyFlushesReceived",
                             aggInline_),
      stSuppressedWrites(stats, statPrefix, "suppressedWrites", aggInline_),
      stUndoReads(stats, statPrefix, "undoReads", aggInline_),
      stXpHits(stats, statPrefix, "xpHits", aggInline_),
      stXpMisses(stats, statPrefix, "xpMisses", aggInline_),
      stPmReads(stats, statPrefix, "pmReads", aggInline_),
      stDelaysCreated(stats, statPrefix, "delaysCreated", aggInline_),
      stNacksSent(stats, statPrefix, "nacksSent", aggInline_),
      stCommitsReceived(stats, statPrefix, "commitsReceived", aggInline_),
      stDelayWritesReleased(stats, statPrefix, "delayWritesReleased",
                            aggInline_),
      stWpqCoalesced(stats, statPrefix, "wpqCoalesced", aggInline_),
      stWpqFullStalls(stats, statPrefix, "wpqFullStalls", aggInline_),
      stPmWrites(stats, statPrefix, "pmWrites", aggInline_),
      stBytesWritten(stats, statPrefix, "bytesWritten", aggInline_),
      stBankBusyTicks(stats, statPrefix, "bankBusyTicks", aggInline_),
      stBwQueueDelayTicks(stats, statPrefix, "bwQueueDelayTicks",
                          aggInline_),
      stAdrDrainWrites(stats, statPrefix, "adrDrainWrites", aggInline_),
      stUndoRewindWrites(stats, statPrefix, "undoRewindWrites", aggInline_)
{
    pairs_ = {&stFlushesReceived,    &stEarlyFlushesReceived,
              &stSuppressedWrites,   &stUndoReads,
              &stXpHits,             &stXpMisses,
              &stPmReads,            &stDelaysCreated,
              &stNacksSent,          &stCommitsReceived,
              &stDelayWritesReleased, &stWpqCoalesced,
              &stWpqFullStalls,      &stPmWrites,
              &stBytesWritten,       &stBankBusyTicks,
              &stBwQueueDelayTicks,  &stAdrDrainWrites,
              &stUndoRewindWrites};
}

std::uint64_t
MemoryController::durableValue(std::uint64_t line) const
{
    if (wpq.contains(line))
        return wpq.pendingValue(line);
    return media.read(line);
}

std::size_t
MemoryController::rtOccupancy() const
{
    return policy_ ? policy_->occupancy() : 0;
}

void
MemoryController::receiveFlush(const FlushPacket &pkt, FlushCallback cb)
{
    if (crashed)
        return;
    stFlushesReceived.inc();
    if (pkt.early)
        stEarlyFlushesReceived.inc();

    const std::uint64_t current = durableValue(pkt.line);
    FlushAction action = FlushAction::WriteMemory;
    if (policy_) {
        action = policy_->onFlush(pkt, current);
    } else {
        panic_if(pkt.early, "early flush arrived at a controller with no "
                 "recovery policy");
    }

    const Tick ackLink = cfg.mcMessageLatency;
    switch (action) {
      case FlushAction::WriteMemory:
        enqueueWrite(pkt.line, pkt.value, 0, [this, cb, ackLink]() {
            eq.scheduleAfterIn(EventQueue::kCoreDomain, ackLink,
                               [cb]() { cb(FlushReply::Ack); });
        });
        break;

      case FlushAction::SuppressWrite:
        // The value was absorbed into an existing undo record; no
        // media write happens (write-endurance win, Section VII-A).
        stSuppressedWrites.inc();
        eq.scheduleAfterIn(EventQueue::kCoreDomain, mcProcCost + ackLink,
                           [cb]() { cb(FlushReply::Ack); });
        break;

      case FlushAction::CreateUndoAndWrite: {
        // The undo snapshot read logically precedes the speculative
        // media update, but the write is durable (and ACKed) once it
        // sits in the WPQ next to its undo record; the read only
        // lengthens that entry's media service time. It is cheap when
        // the line is WPQ-pending or hot in the XPBuffer, a full
        // media read otherwise.
        const bool wpqHit = wpq.contains(pkt.line);
        const bool xpHit = !wpqHit && xpBuffer.hit(pkt.line);
        const bool fast = wpqHit || xpHit;
        const Tick readLat = fast ? mediaModel_->hitLatency()
                                  : mediaModel_->readLatency();
        stUndoReads.inc();
        // XPBuffer hit/miss accounting: a WPQ-pending line never
        // reaches the XPBuffer lookup, so only genuine probes count.
        if (xpHit)
            stXpHits.inc();
        else if (!wpqHit)
            stXpMisses.inc();
        if (!fast)
            stPmReads.inc();
        xpBuffer.touch(pkt.line);
        enqueueWrite(pkt.line, pkt.value, readLat,
                     [this, cb, ackLink]() {
            eq.scheduleAfterIn(EventQueue::kCoreDomain, ackLink,
                               [cb]() { cb(FlushReply::Ack); });
        });
        break;
      }

      case FlushAction::CreateDelay:
        stDelaysCreated.inc();
        eq.scheduleAfterIn(EventQueue::kCoreDomain, mcProcCost + ackLink,
                           [cb]() { cb(FlushReply::Ack); });
        break;

      case FlushAction::Nack:
        stNacksSent.inc();
        eq.scheduleAfterIn(EventQueue::kCoreDomain, mcProcCost + ackLink,
                           [cb]() { cb(FlushReply::Nack); });
        break;
    }
}

void
MemoryController::receiveCommit(std::uint16_t thread, std::uint64_t epoch,
                                std::function<void()> ack_cb)
{
    if (crashed)
        return;
    stCommitsReceived.inc();
    panic_if(!policy_, "commit message at a controller with no policy");
    // The commit may release delay-record writes; they are durable
    // only once inside the WPQ (the ADR domain), so the commit ACK —
    // which lets the epoch commit and dependents proceed — must wait
    // for every released write to be accepted.
    //
    // Parallel kernel: the countdown has two kinds of participants.
    // The fixed-cost finish below runs as a core-domain event; a
    // release that lands in the overflow queue decrements from an
    // MC-domain WPQ-drain event. Rounds execute domains out of global
    // tick order, so if both are outstanding the "last decrement"
    // could resolve differently than sequentially. While any release
    // is still parked (commitReleasePending_ != 0) the harness's
    // serial predicate forces exact-order execution, making the race
    // unreachable; crossCallHazard() is a defensive second net.
    auto pending = std::make_shared<std::atomic<unsigned>>(1);
    auto finish = [this, pending, cb = std::move(ack_cb)]() {
        if (pending->fetch_sub(1, std::memory_order_acq_rel) == 1) {
            if (eq.crossCallHazard(EventQueue::kCoreDomain))
                return;
            cb();
        }
    };
    auto finishRelease = [this, finish]() {
        panic_if(commitReleasePending_ == 0,
                 "commit release countdown underflow");
        --commitReleasePending_;
        finish();
    };
    policy_->onCommit(thread, epoch,
                      [this, pending, finishRelease](std::uint64_t line,
                                                     std::uint64_t value) {
                          stDelayWritesReleased.inc();
                          pending->fetch_add(1, std::memory_order_relaxed);
                          ++commitReleasePending_;
                          enqueueWrite(line, value, 0, finishRelease);
                      });
    eq.scheduleAfterIn(EventQueue::kCoreDomain,
                       mcCommitCost + cfg.mcMessageLatency, finish);
}

void
MemoryController::enqueueWrite(std::uint64_t line, std::uint64_t value,
                               std::uint64_t extra_latency,
                               std::function<void()> on_inserted)
{
    switch (wpq.insert(line, value, extra_latency, eq.now())) {
      case Wpq::Insert::Queued:
        on_inserted();
        tryIssueBanks();
        break;
      case Wpq::Insert::Coalesced:
        stWpqCoalesced.inc();
        on_inserted();
        break;
      case Wpq::Insert::Full:
        stWpqFullStalls.inc();
        overflow.push_back(OverflowWrite{line, value, extra_latency,
                                         std::move(on_inserted)});
        break;
    }
}

void
MemoryController::tryIssueBanks()
{
    while (busyBanks < mediaModel_->banks() && !wpq.empty()) {
        auto [line, value, extra, inserted] = wpq.front();
        // Write-combining window: a young entry waits (unless the
        // queue is under pressure) so same-line writes coalesce; the
        // entry is already durable in the WPQ either way.
        const Tick ripe = inserted + cfg.wpqCombineWindow;
        if (eq.now() < ripe && wpq.size() < cfg.wpqEntries / 2 &&
            overflow.empty()) {
            if (!drainCheckScheduled) {
                drainCheckScheduled = true;
                eq.schedule(ripe, [this]() {
                    drainCheckScheduled = false;
                    if (!crashed)
                        tryIssueBanks();
                });
            }
            break;
        }
        wpq.pop();
        admitOverflow();
        ++busyBanks;
        // Functional media state updates at issue time so same-line
        // writes apply in WPQ order regardless of their service
        // latencies; the events below model timing only. The write
        // leaving the WPQ is still inside the controller and reaches
        // the media even on a power failure (ADR).
        media.write(line, value);
        xpBuffer.touch(line);
        const MediaModel::WriteGrant grant =
            mediaModel_->startWrite(eq.now(), lineBytes);
        stPmWrites.inc();
        stBytesWritten.inc(lineBytes);
        stBankBusyTicks.inc(grant.serviceLatency);
        if (grant.queueDelay != 0)
            stBwQueueDelayTicks.inc(grant.queueDelay);
        // The undo-snapshot read (extra) is served by the separate
        // read path whose bandwidth far exceeds write bandwidth
        // (Section V-A), so it does not extend the write bank's
        // occupancy; it is accounted in the pmReads statistics.
        (void)extra;
        eq.scheduleAfter(grant.serviceLatency, [this]() {
            if (crashed)
                return;
            --busyBanks;
            tryIssueBanks();
        });
    }
}

void
MemoryController::admitOverflow()
{
    while (!overflow.empty() && !wpq.full()) {
        OverflowWrite w = std::move(overflow.front());
        overflow.pop_front();
        switch (wpq.insert(w.line, w.value, w.extraLatency, eq.now())) {
          case Wpq::Insert::Queued:
            w.onInserted();
            break;
          case Wpq::Insert::Coalesced:
            stWpqCoalesced.inc();
            w.onInserted();
            break;
          case Wpq::Insert::Full:
            panic("WPQ full immediately after freeing a slot");
        }
    }
}

void
MemoryController::crash()
{
    crashed = true;
    // ADR drains the WPQ to the media.
    for (auto &[line, value] : wpq.drainAll()) {
        media.write(line, value);
        stAdrDrainWrites.inc();
    }
    // Writes never accepted into the WPQ are lost (never ACKed).
    overflow.clear();
    // Finally, undo records rewind every speculative update.
    if (policy_) {
        policy_->onCrash([this](std::uint64_t line, std::uint64_t value) {
            media.write(line, value);
            stUndoRewindWrites.inc();
        });
    }
}

void
MemoryController::specSave()
{
    snap_ = std::make_unique<SpecSnapshot>(wpq);
    snap_->xpLru = xpBuffer.lruSnapshot();
    snap_->busyBanks = busyBanks;
    snap_->drainCheckScheduled = drainCheckScheduled;
    snap_->overflow = overflow;
    snap_->statVals.reserve(pairs_.size());
    for (StatPair *p : pairs_)
        snap_->statVals.push_back(p->mcValue());
    snap_->bwCursor = mediaModel_->bwCursor();
    media.beginJournal(id_);
    if (policy_)
        policy_->specSave();
}

void
MemoryController::specRestore()
{
    panic_if(!snap_, "specRestore without a checkpoint");
    wpq = snap_->wpq;
    xpBuffer.lruRestore(snap_->xpLru);
    busyBanks = snap_->busyBanks;
    drainCheckScheduled = snap_->drainCheckScheduled;
    overflow = snap_->overflow;
    for (std::size_t i = 0; i < pairs_.size(); ++i)
        pairs_[i]->setMcValue(snap_->statVals[i]);
    mediaModel_->setBwCursor(snap_->bwCursor);
    media.rollbackJournal(id_);
    if (policy_)
        policy_->specRestore();
    snap_.reset();
}

void
MemoryController::specDiscard()
{
    media.discardJournal(id_);
    snap_.reset();
}

void
MemoryController::zeroAggStats()
{
    for (StatPair *p : pairs_)
        p->zeroAgg();
}

void
MemoryController::addAggStats()
{
    for (StatPair *p : pairs_)
        p->addAgg();
}

} // namespace asap
