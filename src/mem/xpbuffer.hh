/**
 * @file
 * XPBuffer: the controller-side line cache of Optane DIMMs.
 *
 * Section V-A justifies ASAP's read-modify-write undo creation partly
 * because "XPBuffer in Intel Optane Persistent Memory caches most
 * recently accessed lines. [The undo read] would mostly hit in this
 * cache." We model it as a small fully-associative LRU set of line
 * addresses that makes undo-snapshot reads cheap when they hit.
 */

#ifndef ASAP_MEM_XPBUFFER_HH
#define ASAP_MEM_XPBUFFER_HH

#include <cstdint>
#include <iterator>
#include <list>
#include <unordered_map>
#include <vector>

namespace asap
{

/** Fully-associative LRU recency tracker for media lines. */
class XpBuffer
{
  public:
    explicit XpBuffer(unsigned capacity) : cap(capacity) {}

    /** Record an access to @p line; evicts the LRU line when full. */
    void
    touch(std::uint64_t line)
    {
        if (cap == 0)
            return;
        auto it = index.find(line);
        if (it != index.end()) {
            lru.erase(it->second);
        } else if (lru.size() >= cap) {
            index.erase(lru.back());
            lru.pop_back();
        }
        lru.push_front(line);
        index[line] = lru.begin();
    }

    /** True if @p line is currently resident. */
    bool
    hit(std::uint64_t line) const
    {
        return index.count(line) != 0;
    }

    std::size_t size() const { return lru.size(); }

    /**
     * Recency order, most-recent first, for speculation checkpoints.
     * The list+iterator representation breaks default copying, so the
     * snapshot is the flat address sequence.
     */
    std::vector<std::uint64_t>
    lruSnapshot() const
    {
        return std::vector<std::uint64_t>(lru.begin(), lru.end());
    }

    /** Rebuild LRU state from an lruSnapshot(). */
    void
    lruRestore(const std::vector<std::uint64_t> &snap)
    {
        lru.clear();
        index.clear();
        for (std::uint64_t line : snap) {
            lru.push_back(line);
            index[line] = std::prev(lru.end());
        }
    }

  private:
    unsigned cap;
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        index;
};

} // namespace asap

#endif // ASAP_MEM_XPBUFFER_HH
