/**
 * @file
 * Interface between a memory controller and a speculation/recovery
 * policy.
 *
 * In the ASAP model each controller hosts a Recovery Table (the
 * paper's contribution; implemented in src/core). Baseline, HOPS and
 * eADR controllers have no policy: every incoming flush simply writes
 * memory. The controller owns all timing; the policy owns the Table I
 * decision matrix and the undo/delay bookkeeping.
 */

#ifndef ASAP_MEM_RECOVERY_POLICY_HH
#define ASAP_MEM_RECOVERY_POLICY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/packets.hh"

namespace asap
{

/** Decision matrix outcomes for an incoming flush (paper Table I). */
enum class FlushAction
{
    WriteMemory,        //!< normal path: persist the value
    SuppressWrite,      //!< safe flush absorbed into an undo record
    CreateUndoAndWrite, //!< snapshot old value, then speculatively write
    CreateDelay,        //!< park the value until its epoch commits
    Nack,               //!< recovery table full: reject the early flush
};

/** Callback used by policies to emit media writes through the MC. */
using WriteOutFn =
    std::function<void(std::uint64_t line, std::uint64_t value)>;

/**
 * Read-only views of a policy's records, exported for the crash-state
 * permuter (src/permute). A policy that keeps no records exports
 * nothing.
 */
struct UndoRecordView
{
    std::uint64_t line;
    std::uint64_t value;  //!< safe value restored on crash rewind
    std::uint16_t thread;
    std::uint64_t epoch;
};

struct DelayRecordView
{
    std::uint64_t line;
    std::uint64_t value;  //!< parked early-flush value
    std::uint16_t thread;
    std::uint64_t epoch;
};

/** Per-controller speculation policy (ASAP's Recovery Table). */
class RecoveryPolicy
{
  public:
    virtual ~RecoveryPolicy() = default;

    /**
     * Classify an incoming flush.
     *
     * Called exactly once per arriving flush with the line's current
     * durable value (WPQ pending value if any, else media contents);
     * for CreateUndoAndWrite the policy snapshots that value as the
     * undo record before the controller issues the speculative write.
     */
    virtual FlushAction onFlush(const FlushPacket &pkt,
                                std::uint64_t current_value) = 0;

    /**
     * An epoch committed: drop its undo records and release its delay
     * records, emitting any resulting media writes through @p write_out.
     */
    virtual void onCommit(std::uint16_t thread, std::uint64_t epoch,
                          const WriteOutFn &write_out) = 0;

    /**
     * Power failure: emit every undo value so the controller can
     * rewind speculative updates (delay records are discarded).
     */
    virtual void onCrash(const WriteOutFn &write_out) = 0;

    /** Records currently held (undo + delay), for occupancy stats. */
    virtual std::size_t occupancy() const = 0;

    /**
     * Export the current undo/delay records (crash-state permuter).
     * Deterministic order: implementations must sort undos by line.
     * Record-free policies keep the default no-op.
     */
    virtual void
    exportRecords(std::vector<UndoRecordView> &undos,
                  std::vector<DelayRecordView> &delays) const
    {
        (void)undos;
        (void)delays;
    }

    /**
     * Speculation checkpoints (parallel kernel). A controller about
     * to execute a speculative event window asks its policy to save
     * restorable state; on misspeculation the kernel restores it.
     * Stateless policies need not override.
     */
    virtual void specSave() {}
    virtual void specRestore() {}
};

} // namespace asap

#endif // ASAP_MEM_RECOVERY_POLICY_HH
