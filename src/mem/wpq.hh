/**
 * @file
 * Write Pending Queue (WPQ) model.
 *
 * The WPQ is the small buffer inside each memory controller that is
 * part of the ADR persistence domain: once a write is accepted here it
 * survives power failure (Section II-C). Writes drain from the WPQ to
 * the NVM media. Writes to a line already pending coalesce in place,
 * which is one of ASAP's write-endurance wins (Section VII-A).
 *
 * Implementation: a fixed ring buffer sized at construction. The
 * queue is hardware-small (16 entries by default), so lookups are a
 * linear scan over a contiguous array — cheaper in practice than the
 * hash-map-over-deque it replaces, and the steady-state insert/pop
 * path performs no allocation at all.
 */

#ifndef ASAP_MEM_WPQ_HH
#define ASAP_MEM_WPQ_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace asap
{

/** FIFO of pending media writes with in-place coalescing. */
class Wpq
{
  public:
    /** Outcome of an insertion attempt. */
    enum class Insert
    {
        Queued,     //!< new entry allocated
        Coalesced,  //!< merged into an existing same-line entry
        Full,       //!< no space; caller must retry later
    };

    explicit Wpq(unsigned capacity)
        : cap(capacity), ring(capacity ? capacity : 1)
    {
    }

    /**
     * Try to add (or coalesce) a pending write.
     *
     * @param extra_latency additional media-service latency this write
     *        requires (an undo-snapshot read issued before the
     *        speculative update; coalescing keeps the maximum)
     */
    Insert
    insert(std::uint64_t line, std::uint64_t value,
           std::uint64_t extra_latency = 0, std::uint64_t now = 0)
    {
        if (Entry *e = find(line)) {
            e->value = value;
            if (extra_latency > e->extraLatency)
                e->extraLatency = extra_latency;
            return Insert::Coalesced;
        }
        if (count >= cap)
            return Insert::Full;
        Entry &e = ring[(head + count) % ring.size()];
        e.line = line;
        e.value = value;
        e.extraLatency = extra_latency;
        e.insertTick = now;
        ++count;
        return Insert::Queued;
    }

    /** True if a write for @p line is pending. */
    bool
    contains(std::uint64_t line) const
    {
        return const_cast<Wpq *>(this)->find(line) != nullptr;
    }

    /** Pending value for @p line (precondition: contains(line)). */
    std::uint64_t
    pendingValue(std::uint64_t line) const
    {
        return const_cast<Wpq *>(this)->find(line)->value;
    }

    /** Oldest entry still pending (precondition: !empty()). */
    struct FrontEntry
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency;
        std::uint64_t insertTick;
    };

    FrontEntry
    front() const
    {
        const Entry &e = ring[head];
        return {e.line, e.value, e.extraLatency, e.insertTick};
    }

    /** Retire the oldest entry (it has been issued to the media). */
    void
    pop()
    {
        head = (head + 1) % ring.size();
        --count;
    }

    bool empty() const { return count == 0; }
    bool full() const { return count >= cap; }
    std::size_t size() const { return count; }
    unsigned capacity() const { return cap; }

    /**
     * Non-destructive FIFO snapshot of the pending writes (crash-state
     * permuter). Coalescing keeps at most one entry per line, so the
     * snapshot doubles as the queue's line -> value map.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    entries() const
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const Entry &e = ring[(head + i) % ring.size()];
            out.emplace_back(e.line, e.value);
        }
        return out;
    }

    /** Snapshot of all pending writes (used by crash handling). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    drainAll()
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const Entry &e = ring[(head + i) % ring.size()];
            out.emplace_back(e.line, e.value);
        }
        head = 0;
        count = 0;
        return out;
    }

  private:
    struct Entry
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency = 0;
        std::uint64_t insertTick = 0;
    };

    Entry *
    find(std::uint64_t line)
    {
        for (std::size_t i = 0; i < count; ++i) {
            Entry &e = ring[(head + i) % ring.size()];
            if (e.line == line)
                return &e;
        }
        return nullptr;
    }

    unsigned cap;
    std::vector<Entry> ring;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace asap

#endif // ASAP_MEM_WPQ_HH
