/**
 * @file
 * Write Pending Queue (WPQ) model.
 *
 * The WPQ is the small buffer inside each memory controller that is
 * part of the ADR persistence domain: once a write is accepted here it
 * survives power failure (Section II-C). Writes drain from the WPQ to
 * the NVM media. Writes to a line already pending coalesce in place,
 * which is one of ASAP's write-endurance wins (Section VII-A).
 */

#ifndef ASAP_MEM_WPQ_HH
#define ASAP_MEM_WPQ_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace asap
{

/** FIFO of pending media writes with in-place coalescing. */
class Wpq
{
  public:
    /** Outcome of an insertion attempt. */
    enum class Insert
    {
        Queued,     //!< new entry allocated
        Coalesced,  //!< merged into an existing same-line entry
        Full,       //!< no space; caller must retry later
    };

    explicit Wpq(unsigned capacity) : cap(capacity) {}

    /**
     * Try to add (or coalesce) a pending write.
     *
     * @param extra_latency additional media-service latency this write
     *        requires (an undo-snapshot read issued before the
     *        speculative update; coalescing keeps the maximum)
     */
    Insert
    insert(std::uint64_t line, std::uint64_t value,
           std::uint64_t extra_latency = 0, std::uint64_t now = 0)
    {
        auto it = index.find(line);
        if (it != index.end()) {
            it->second->value = value;
            if (extra_latency > it->second->extraLatency)
                it->second->extraLatency = extra_latency;
            return Insert::Coalesced;
        }
        if (fifo.size() >= cap)
            return Insert::Full;
        fifo.push_back(Entry{line, value, extra_latency, now});
        index[line] = &fifo.back();
        return Insert::Queued;
    }

    /** True if a write for @p line is pending. */
    bool
    contains(std::uint64_t line) const
    {
        return index.count(line) != 0;
    }

    /** Pending value for @p line (precondition: contains(line)). */
    std::uint64_t
    pendingValue(std::uint64_t line) const
    {
        return index.at(line)->value;
    }

    /** Oldest entry still pending (precondition: !empty()). */
    struct FrontEntry
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency;
        std::uint64_t insertTick;
    };

    FrontEntry
    front() const
    {
        const Entry &e = fifo.front();
        return {e.line, e.value, e.extraLatency, e.insertTick};
    }

    /** Retire the oldest entry (it has been issued to the media). */
    void
    pop()
    {
        index.erase(fifo.front().line);
        fifo.pop_front();
        // Deque reallocation on pop_front never moves surviving
        // elements for std::deque, but rebuild the index defensively
        // when it drains to keep pointer hygiene obvious.
        if (fifo.empty())
            index.clear();
    }

    bool empty() const { return fifo.empty(); }
    bool full() const { return fifo.size() >= cap; }
    std::size_t size() const { return fifo.size(); }
    unsigned capacity() const { return cap; }

    /** Snapshot of all pending writes (used by crash handling). */
    std::deque<std::pair<std::uint64_t, std::uint64_t>>
    drainAll()
    {
        std::deque<std::pair<std::uint64_t, std::uint64_t>> out;
        for (const Entry &e : fifo)
            out.emplace_back(e.line, e.value);
        fifo.clear();
        index.clear();
        return out;
    }

  private:
    struct Entry
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t extraLatency = 0;
        std::uint64_t insertTick = 0;
    };

    unsigned cap;
    std::deque<Entry> fifo;
    std::unordered_map<std::uint64_t, Entry *> index;
};

} // namespace asap

#endif // ASAP_MEM_WPQ_HH
