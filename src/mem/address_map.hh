/**
 * @file
 * Physical address interleaving across memory controllers.
 *
 * Server platforms interleave persistent memory across controllers to
 * raise write bandwidth (Section III; [38] reports up to 5.6x). The
 * paper's experiments interleave data across 2 MCs; the default grain
 * matches the 256 B access granularity of Optane media.
 */

#ifndef ASAP_MEM_ADDRESS_MAP_HH
#define ASAP_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "mem/packets.hh"
#include "sim/log.hh"

namespace asap
{

/** Maps line addresses onto memory controllers. */
class AddressMap
{
  public:
    /**
     * @param num_mcs number of memory controllers (>= 1)
     * @param interleave_bytes interleave grain in bytes (multiple of 64)
     */
    AddressMap(unsigned num_mcs, unsigned interleave_bytes)
        : numMCs(num_mcs), grainLines(interleave_bytes / lineBytes)
    {
        fatal_if(num_mcs == 0, "need at least one memory controller");
        fatal_if(interleave_bytes % lineBytes != 0,
                 "interleave grain must be a multiple of the line size");
        fatal_if(grainLines == 0, "interleave grain smaller than a line");
    }

    /** Controller that owns @p line. */
    unsigned
    mcFor(std::uint64_t line) const
    {
        return static_cast<unsigned>((line / grainLines) % numMCs);
    }

    unsigned mcCount() const { return numMCs; }

  private:
    unsigned numMCs;
    std::uint64_t grainLines;
};

} // namespace asap

#endif // ASAP_MEM_ADDRESS_MAP_HH
