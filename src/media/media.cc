#include "media/media.hh"

#include <cmath>
#include <utility>

#include "sim/log.hh"

namespace asap
{

namespace
{

/**
 * One registry row: the profile's story plus a fill function that
 * writes its defaults. `paper-table2` reads the legacy SimConfig
 * knobs so existing `pmWriteLatency=`/`nvmBanks=` overrides (and the
 * seed's byte-identical outputs) survive; every other profile owns
 * its parameters outright. All profiles inherit the host's volatile
 * DRAM fill latency — the media model governs the persistent side,
 * and host DRAM stays local whatever the PM tier is.
 */
struct ProfileEntry
{
    MediaProfileInfo info;
    void (*fill)(const SimConfig &cfg, MediaParams &p);
};

const ProfileEntry kProfiles[] = {
    {{"paper-table2",
      "Table II constants (default; reproduces the seed exactly)"},
     [](const SimConfig &cfg, MediaParams &p) {
         p.readLatency = cfg.pmReadLatency;
         p.writeLatency = cfg.pmWriteLatency;
         p.hitLatency = cfg.xpBufferHitLatency;
         p.banks = cfg.nvmBanks;
         p.writeGBps = 0.0;
     }},
    {{"dram",
      "battery-backed DRAM (NVDIMM-N): symmetric, fast, wide"},
     [](const SimConfig &, MediaParams &p) {
         p.readLatency = nsToTicks(80);
         p.writeLatency = nsToTicks(80);
         p.hitLatency = nsToTicks(5);
         p.banks = 16;
         p.writeGBps = 0.0;
     }},
    {{"optane-dcpmm",
      "measured Optane DCPMM: slower reads, ~2 GB/s write cap"},
     [](const SimConfig &, MediaParams &p) {
         p.readLatency = nsToTicks(305);
         p.writeLatency = nsToTicks(94);
         p.hitLatency = nsToTicks(10);
         p.banks = 4;
         p.writeGBps = 2.0;
     }},
    {{"cxl-dram",
      "DRAM behind a CXL switch: +~130 ns each way, ample bandwidth"},
     [](const SimConfig &, MediaParams &p) {
         p.readLatency = nsToTicks(210);
         p.writeLatency = nsToTicks(210);
         p.hitLatency = nsToTicks(25);
         p.banks = 16;
         p.writeGBps = 12.0;
     }},
    {{"cxl-flash",
      "flash behind CXL: microsecond-class, strongly asymmetric"},
     [](const SimConfig &, MediaParams &p) {
         p.readLatency = nsToTicks(1200);
         p.writeLatency = nsToTicks(2500);
         p.hitLatency = nsToTicks(50);
         p.banks = 8;
         p.writeGBps = 1.5;
     }},
    {{"slow-nvm",
      "pessimistic SCM: write-dominated latency, narrow and capped"},
     [](const SimConfig &, MediaParams &p) {
         p.readLatency = nsToTicks(400);
         p.writeLatency = nsToTicks(600);
         p.hitLatency = nsToTicks(10);
         p.banks = 2;
         p.writeGBps = 1.0;
     }},
};

const ProfileEntry *
findProfile(const std::string &name)
{
    for (const ProfileEntry &e : kProfiles) {
        if (e.info.name == name)
            return &e;
    }
    return nullptr;
}

/**
 * Default media implementation: fixed service latencies, a bank pool
 * sized by the profile, and the write-bandwidth cap enforced as
 * queueing delay. The cap is a single next-free cursor: each write
 * reserves bytes / GBps worth of media-pipeline time, and a write
 * issued before the cursor waits out the difference (extending its
 * bank's occupancy). With the cap disabled the grant is always the
 * bare write latency — bit-for-bit the pre-media behaviour.
 */
class QueuedMediaModel : public MediaModel
{
  public:
    explicit QueuedMediaModel(MediaParams p) : MediaModel(std::move(p))
    {
        if (p_.writeGBps > 0.0) {
            // ticks per byte = (1 / GBps) ns/byte * clockGHz.
            ticksPerByte_ = clockGHz / p_.writeGBps;
        }
    }

    WriteGrant
    startWrite(Tick now, unsigned bytes) override
    {
        WriteGrant g;
        Tick start = now;
        if (ticksPerByte_ > 0.0) {
            if (pipeFreeAt_ > now) {
                start = pipeFreeAt_;
                g.queueDelay = start - now;
            }
            const Tick cost = static_cast<Tick>(
                std::llround(ticksPerByte_ * bytes));
            pipeFreeAt_ = start + cost;
        }
        g.serviceLatency = g.queueDelay + p_.writeLatency;
        return g;
    }

    Tick bwCursor() const override { return pipeFreeAt_; }
    void setBwCursor(Tick t) override { pipeFreeAt_ = t; }

  private:
    double ticksPerByte_ = 0.0; //!< 0 = cap disabled
    Tick pipeFreeAt_ = 0;       //!< media write pipeline free time
};

} // namespace

const std::vector<MediaProfileInfo> &
allMediaProfiles()
{
    static const std::vector<MediaProfileInfo> infos = [] {
        std::vector<MediaProfileInfo> v;
        for (const ProfileEntry &e : kProfiles)
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

bool
isMediaProfile(const std::string &name)
{
    return findProfile(name) != nullptr;
}

namespace
{

MediaParams
resolveNamedProfile(const SimConfig &cfg, const std::string &name)
{
    const ProfileEntry *entry = findProfile(name);
    if (!entry) {
        std::string known;
        for (const ProfileEntry &e : kProfiles)
            known += (known.empty() ? "" : "|") + e.info.name;
        fatal("unknown media profile '", name, "' (want ", known, ")");
    }
    MediaParams p;
    p.profile = entry->info.name;
    p.dramFillLatency = cfg.dramLatency;
    entry->fill(cfg, p);
    // Per-profile parameter overrides (the media* SimConfig knobs).
    if (cfg.mediaReadLatency != 0)
        p.readLatency = cfg.mediaReadLatency;
    if (cfg.mediaWriteLatency != 0)
        p.writeLatency = cfg.mediaWriteLatency;
    if (cfg.mediaBanks != 0)
        p.banks = cfg.mediaBanks;
    if (cfg.mediaWriteGBps >= 0.0)
        p.writeGBps = cfg.mediaWriteGBps;
    fatal_if(p.banks == 0, "media profile '", p.profile,
             "' resolved to zero banks");
    return p;
}

} // namespace

MediaParams
resolveMediaParams(const SimConfig &cfg)
{
    return resolveNamedProfile(cfg, cfg.mediaProfile);
}

MediaParams
resolveMediaParamsFor(const SimConfig &cfg, unsigned mcId)
{
    if (cfg.mediaPerMc.empty())
        return resolveMediaParams(cfg);
    std::vector<std::string> names;
    std::size_t pos = 0;
    while (pos <= cfg.mediaPerMc.size()) {
        std::size_t comma = cfg.mediaPerMc.find(',', pos);
        if (comma == std::string::npos)
            comma = cfg.mediaPerMc.size();
        names.push_back(cfg.mediaPerMc.substr(pos, comma - pos));
        pos = comma + 1;
    }
    fatal_if(names.empty(), "mediaPerMc is set but empty");
    for (const std::string &n : names)
        fatal_if(n.empty(), "mediaPerMc '", cfg.mediaPerMc,
                 "' has an empty entry");
    return resolveNamedProfile(cfg, names[mcId % names.size()]);
}

std::unique_ptr<MediaModel>
makeMediaModel(const SimConfig &cfg)
{
    return std::make_unique<QueuedMediaModel>(resolveMediaParams(cfg));
}

std::unique_ptr<MediaModel>
makeMediaModelFor(const SimConfig &cfg, unsigned mcId)
{
    return std::make_unique<QueuedMediaModel>(
        resolveMediaParamsFor(cfg, mcId));
}

} // namespace asap
