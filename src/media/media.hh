/**
 * @file
 * Pluggable NVM media models.
 *
 * Every persist-path result in this reproduction used to be computed
 * against one hard-coded backend: the Optane-like Table II constants
 * in SimConfig. This subsystem puts the media behind an interface so
 * the same engine can ask whether ASAP's win over HOPS/baseline
 * survives on DRAM-like, CXL-attached or slower-than-Optane media.
 *
 * A MediaModel owns all media service timing:
 *  - read/write service latency (and therefore the read/write
 *    asymmetry of the backend),
 *  - per-bank write parallelism (how many line writes a controller
 *    drains concurrently),
 *  - a write-bandwidth cap modeled as queueing delay at bank issue
 *    (a line write that would exceed the cap waits for the media's
 *    internal pipeline to free up; the wait extends the issuing
 *    bank's occupancy),
 *  - the controller-buffer (XPBuffer) hit latency for undo-snapshot
 *    reads, and the volatile DRAM fill latency.
 *
 * Backends are named profiles in a registry. `paper-table2` is the
 * default and reproduces the seed constants (it reads the legacy
 * SimConfig knobs, so `pmWriteLatency=...`/`nvmBanks=...` overrides
 * keep working and every pre-media output is byte-identical). The
 * other profiles own their parameters; `media*` SimConfig knobs
 * override individual fields of any profile.
 */

#ifndef ASAP_MEDIA_MEDIA_HH
#define ASAP_MEDIA_MEDIA_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/ticks.hh"

namespace asap
{

/** Resolved timing parameters of one media backend. */
struct MediaParams
{
    std::string profile;    //!< registry name this was resolved from
    Tick readLatency = 0;   //!< full media read service
    Tick writeLatency = 0;  //!< media write service per line
    Tick hitLatency = 0;    //!< controller-buffer (XPBuffer) hit
    Tick dramFillLatency = 0; //!< volatile DRAM fill (non-PM lines)
    unsigned banks = 0;     //!< per-MC concurrent line writes
    /** Per-MC write bandwidth cap in GB/s; 0 = uncapped (bandwidth
     *  emerges from banks x writeLatency alone). */
    double writeGBps = 0.0;
};

/** Registry entry: a named profile and its one-line story. */
struct MediaProfileInfo
{
    std::string name;
    std::string description;
};

/** All registered media profiles, in presentation order. */
const std::vector<MediaProfileInfo> &allMediaProfiles();

/** True if @p name is a registered profile. */
bool isMediaProfile(const std::string &name);

/**
 * Resolve @p cfg's media profile to concrete parameters: profile
 * defaults first, then any `media*` SimConfig overrides on top.
 * Fatal on an unknown profile name.
 */
MediaParams resolveMediaParams(const SimConfig &cfg);

/**
 * Like resolveMediaParams, but honours cfg.mediaPerMc: when the
 * comma-separated list is non-empty, MC @p mcId resolves the profile
 * at list[mcId % len] (the `media*` override knobs still apply).
 * Fatal on an unknown name anywhere in the list.
 */
MediaParams resolveMediaParamsFor(const SimConfig &cfg, unsigned mcId);

/**
 * One memory controller's view of its media device. Stateful: the
 * bandwidth cap is enforced per instance, so every MC owns one.
 */
class MediaModel
{
  public:
    virtual ~MediaModel() = default;

    const MediaParams &params() const { return p_; }

    /** Full media read service (undo-snapshot miss, PM cache fill). */
    Tick readLatency() const { return p_.readLatency; }

    /** Controller-buffer hit service (undo read hits XPBuffer/WPQ). */
    Tick hitLatency() const { return p_.hitLatency; }

    /** Volatile DRAM fill latency (non-PM cache misses). */
    Tick dramFillLatency() const { return p_.dramFillLatency; }

    /** Concurrent line writes this media sustains per controller. */
    unsigned banks() const { return p_.banks; }

    /** Outcome of issuing one line write to the media. */
    struct WriteGrant
    {
        /** Total bank occupancy: queueing delay + write service. */
        Tick serviceLatency = 0;
        /** Portion spent waiting on the bandwidth cap (0 when the
         *  cap is disabled or the media pipeline was free). */
        Tick queueDelay = 0;
    };

    /**
     * Issue one @p bytes-byte write at time @p now. Deterministic:
     * the grant depends only on the issue history of this instance.
     */
    virtual WriteGrant startWrite(Tick now, unsigned bytes) = 0;

    /**
     * Bandwidth-cap cursor (next media-pipeline free time), for
     * speculation checkpoints: the only mutable timing state a media
     * model carries, so save/restore of this value is a full
     * checkpoint. Cap-less models return 0 and ignore the setter.
     */
    virtual Tick bwCursor() const { return 0; }
    virtual void setBwCursor(Tick) {}

  protected:
    explicit MediaModel(MediaParams p) : p_(std::move(p)) {}

    MediaParams p_;
};

/** Build the media model @p cfg selects (fatal on unknown profile). */
std::unique_ptr<MediaModel> makeMediaModel(const SimConfig &cfg);

/** Build MC @p mcId's media model, honouring cfg.mediaPerMc. */
std::unique_ptr<MediaModel> makeMediaModelFor(const SimConfig &cfg,
                                              unsigned mcId);

} // namespace asap

#endif // ASAP_MEDIA_MEDIA_HH
