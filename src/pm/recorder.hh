/**
 * @file
 * Trace recorder: the bridge from workload code to replayable traces.
 *
 * Workloads run functionally (single host thread, cooperatively
 * interleaved per logical thread) against a PmSpace; every PM access,
 * fence and lock operation is recorded into per-thread TraceOp
 * streams. Lock release/acquire pairs become cross-thread sync edges
 * the replay cores honour in simulated time. PM store tokens are
 * globally unique so the recovery checker can identify surviving
 * writes exactly.
 */

#ifndef ASAP_PM_RECORDER_HH
#define ASAP_PM_RECORDER_HH

#include <cstdint>
#include <vector>

#include "cpu/op.hh"
#include "mem/packets.hh"
#include "pm/pm_space.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace asap
{

/** A lock known to the recorder (functional at generation time). */
struct PmLock
{
    std::uint64_t addr = 0;        //!< volatile lock-word address
    std::int32_t lastReleaser = -1;
    std::uint64_t lastReleaseOrdinal = 0;
    std::int32_t holder = -1;      //!< generation-time sanity check
};

/** Records per-thread operation streams while workloads execute. */
class TraceRecorder
{
  public:
    /**
     * @param num_threads logical threads to record
     * @param seed deterministic seed for value/key streams
     * @param pm_bytes size of the simulated PM space
     */
    TraceRecorder(unsigned num_threads, std::uint64_t seed,
                  std::size_t pm_bytes = 64ull << 20);

    PmSpace &space() { return pm; }
    Rng &rng() { return rng_; }
    unsigned numThreads() const { return nThreads; }

    /** Create a lock (volatile word). */
    PmLock makeLock();

    // --- per-thread recording API ---------------------------------------

    /** 64-bit PM load: functional read + Load op. */
    std::uint64_t load64(unsigned t, std::uint64_t addr);

    /** 64-bit PM store: functional write + Store op (unique token). */
    void store64(unsigned t, std::uint64_t addr, std::uint64_t value);

    /**
     * Persistent memcpy: records one Store op per touched line.
     * Passing nullptr zero-fills.
     */
    void storeBytes(unsigned t, std::uint64_t addr, const void *src,
                    std::size_t n);

    /** Persistent read of a byte range (Load op per line). */
    void loadBytes(unsigned t, std::uint64_t addr, void *dst,
                   std::size_t n);

    /** Volatile load/store (never enters the persist path). */
    std::uint64_t vload64(unsigned t, std::uint64_t addr);
    void vstore64(unsigned t, std::uint64_t addr, std::uint64_t value);

    /** CPU-only work. */
    void compute(unsigned t, std::uint32_t cycles);

    /** Persist barriers. */
    void ofence(unsigned t);
    void dfence(unsigned t);

    /** Lock operations (record sync edges). */
    void lockAcquire(unsigned t, PmLock &lock);
    void lockRelease(unsigned t, PmLock &lock);

    /** Finish recording: appends End ops and returns the trace set. */
    TraceSet finish();

    /** Ops recorded so far on thread @p t. */
    std::size_t opsRecorded(unsigned t) const
    {
        return traces.threads[t].size();
    }

    /**
     * Guardrail: largest total op count a recorder may materialize
     * before failing loudly (0 = unlimited). Defaults to 32 M ops
     * (~1.3 GB of TraceOps) and is overridable via the
     * ASAP_MAX_TRACE_OPS environment variable. Runs that need more
     * should use the streaming path (src/serve/, serve_bench) which
     * generates ops in constant memory.
     */
    static std::uint64_t traceOpCap();
    static void setTraceOpCap(std::uint64_t cap);

  private:
    void push(unsigned t, TraceOp op);
    std::uint64_t nextToken(unsigned t);

    unsigned nThreads;
    PmSpace pm;
    Rng rng_;
    TraceSet traces;
    std::vector<std::uint64_t> releaseCount;
    std::uint64_t tokenSeq = 1;
    std::uint64_t totalOps = 0;
    bool finished = false;
};

} // namespace asap

#endif // ASAP_PM_RECORDER_HH
