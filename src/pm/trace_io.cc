#include "pm/trace_io.hh"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "sim/log.hh"

namespace asap
{

namespace
{

constexpr std::uint32_t traceMagic = 0x41534150; // "ASAP"
constexpr std::uint32_t traceVersion = 1;

/** Fixed-width on-disk op record. */
struct DiskOp
{
    std::uint8_t type;
    std::uint8_t isPm;
    std::uint16_t pad = 0;
    std::uint32_t cycles;
    std::uint64_t addr;
    std::uint64_t value;
    std::int32_t srcThread;
    std::uint32_t pad2 = 0;
    std::uint64_t srcRelease;
};
static_assert(sizeof(DiskOp) == 40, "on-disk layout is fixed");

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using File = std::unique_ptr<std::FILE, FileCloser>;

void
writeAll(std::FILE *f, const void *data, std::size_t n,
         const std::string &path)
{
    fatal_if(std::fwrite(data, 1, n, f) != n, "short write to '",
             path, "'");
}

void
readAll(std::FILE *f, void *data, std::size_t n,
        const std::string &path)
{
    fatal_if(std::fread(data, 1, n, f) != n, "short read from '",
             path, "'");
}

} // namespace

void
saveTrace(const TraceSet &traces, const std::string &path)
{
    File f(std::fopen(path.c_str(), "wb"));
    fatal_if(!f, "cannot open '", path, "' for writing");

    const std::uint32_t header[3] = {
        traceMagic, traceVersion,
        static_cast<std::uint32_t>(traces.threads.size())};
    writeAll(f.get(), header, sizeof(header), path);

    for (const auto &ops : traces.threads) {
        const std::uint64_t count = ops.size();
        writeAll(f.get(), &count, sizeof(count), path);
        for (const TraceOp &op : ops) {
            DiskOp d{};
            d.type = static_cast<std::uint8_t>(op.type);
            d.isPm = op.isPm ? 1 : 0;
            d.cycles = op.cycles;
            d.addr = op.addr;
            d.value = op.value;
            d.srcThread = op.srcThread;
            d.srcRelease = op.srcRelease;
            writeAll(f.get(), &d, sizeof(d), path);
        }
    }
}

TraceSet
loadTrace(const std::string &path)
{
    File f(std::fopen(path.c_str(), "rb"));
    fatal_if(!f, "cannot open '", path, "' for reading");

    std::uint32_t header[3];
    readAll(f.get(), header, sizeof(header), path);
    fatal_if(header[0] != traceMagic, "'", path,
             "' is not an ASAP trace file");
    fatal_if(header[1] != traceVersion, "'", path,
             "' has unsupported trace version ", header[1]);

    TraceSet traces(header[2]);
    for (auto &ops : traces.threads) {
        std::uint64_t count = 0;
        readAll(f.get(), &count, sizeof(count), path);
        ops.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            DiskOp d;
            readAll(f.get(), &d, sizeof(d), path);
            TraceOp op;
            op.type = static_cast<OpType>(d.type);
            op.isPm = d.isPm != 0;
            op.cycles = d.cycles;
            op.addr = d.addr;
            op.value = d.value;
            op.srcThread = d.srcThread;
            op.srcRelease = d.srcRelease;
            ops.push_back(op);
        }
    }
    return traces;
}

} // namespace asap
