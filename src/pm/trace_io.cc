#include "pm/trace_io.hh"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "sim/hash.hh"
#include "sim/log.hh"

namespace asap
{

namespace
{

constexpr std::uint32_t traceMagic = 0x41534150; // "ASAP"
constexpr std::uint32_t traceVersion = 2;

/** Fixed-width on-disk op record. */
struct DiskOp
{
    std::uint8_t type;
    std::uint8_t isPm;
    std::uint16_t pad = 0;
    std::uint32_t cycles;
    std::uint64_t addr;
    std::uint64_t value;
    std::int32_t srcThread;
    std::uint32_t pad2 = 0;
    std::uint64_t srcRelease;
};
static_assert(sizeof(DiskOp) == 40, "on-disk layout is fixed");

/** Version-2 header. The checksum covers everything after the header
 *  (key bytes + op payload), so truncation and bit rot both miss. */
struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t keyLen;
    std::uint32_t threadCount;
    std::uint64_t checksum;
};
static_assert(sizeof(Header) == 24, "on-disk layout is fixed");

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using File = std::unique_ptr<std::FILE, FileCloser>;

void
appendRaw(std::string &buf, const void *data, std::size_t n)
{
    buf.append(static_cast<const char *>(data), n);
}

/** Key bytes + per-thread op arrays: the checksummed region. */
std::string
serializeBody(const TraceSet &traces, const std::string &key)
{
    std::string body;
    std::size_t ops_total = 0;
    for (const auto &ops : traces.threads)
        ops_total += ops.size();
    body.reserve(key.size() + traces.threads.size() * sizeof(std::uint64_t) +
                 ops_total * sizeof(DiskOp));
    body += key;
    for (const auto &ops : traces.threads) {
        const std::uint64_t count = ops.size();
        appendRaw(body, &count, sizeof(count));
        for (const TraceOp &op : ops) {
            DiskOp d{};
            d.type = static_cast<std::uint8_t>(op.type);
            d.isPm = op.isPm ? 1 : 0;
            d.cycles = op.cycles;
            d.addr = op.addr;
            d.value = op.value;
            d.srcThread = op.srcThread;
            d.srcRelease = op.srcRelease;
            appendRaw(body, &d, sizeof(d));
        }
    }
    return body;
}

std::string
serializeFile(const TraceSet &traces, const std::string &key)
{
    const std::string body = serializeBody(traces, key);
    Header h{};
    h.magic = traceMagic;
    h.version = traceVersion;
    h.keyLen = static_cast<std::uint32_t>(key.size());
    h.threadCount = static_cast<std::uint32_t>(traces.threads.size());
    h.checksum = stableHash64(body.data(), body.size());
    std::string out;
    out.reserve(sizeof(h) + body.size());
    appendRaw(out, &h, sizeof(h));
    out += body;
    return out;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    out.clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
        out.append(buf, n);
    return std::ferror(f.get()) == 0;
}

/** Cursor over an in-memory file image. */
struct Reader
{
    const std::string &data;
    std::size_t pos = 0;

    bool
    pull(void *dst, std::size_t n)
    {
        if (data.size() - pos < n)
            return false;
        std::memcpy(dst, data.data() + pos, n);
        pos += n;
        return true;
    }
};

bool
parseOps(Reader &r, std::uint32_t thread_count, TraceSet &out,
         std::string *why)
{
    TraceSet traces(thread_count);
    for (auto &ops : traces.threads) {
        std::uint64_t count = 0;
        if (!r.pull(&count, sizeof(count)) ||
            (r.data.size() - r.pos) / sizeof(DiskOp) < count) {
            if (why)
                *why = "truncated op payload";
            return false;
        }
        ops.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            DiskOp d;
            r.pull(&d, sizeof(d));
            TraceOp op;
            op.type = static_cast<OpType>(d.type);
            op.isPm = d.isPm != 0;
            op.cycles = d.cycles;
            op.addr = d.addr;
            op.value = d.value;
            op.srcThread = d.srcThread;
            op.srcRelease = d.srcRelease;
            ops.push_back(op);
        }
    }
    if (r.pos != r.data.size()) {
        if (why)
            *why = "trailing bytes after op payload";
        return false;
    }
    out = std::move(traces);
    return true;
}

/**
 * Parse a file image. @p expected_key null accepts any version and
 * any key (the standalone record/replay path); non-null demands a
 * checksummed version-2 file whose key matches (the cache path).
 */
bool
parseTrace(const std::string &data, const std::string *expected_key,
           TraceSet &out, std::string *why)
{
    Reader r{data};
    std::uint32_t magic_version[2];
    if (!r.pull(magic_version, sizeof(magic_version))) {
        if (why)
            *why = "file shorter than a header";
        return false;
    }
    if (magic_version[0] != traceMagic) {
        if (why)
            *why = "not an ASAP trace file";
        return false;
    }

    if (magic_version[1] == 1) {
        if (expected_key) {
            if (why)
                *why = "version 1 (no key/checksum)";
            return false;
        }
        std::uint32_t thread_count = 0;
        if (!r.pull(&thread_count, sizeof(thread_count))) {
            if (why)
                *why = "truncated version-1 header";
            return false;
        }
        return parseOps(r, thread_count, out, why);
    }
    if (magic_version[1] != traceVersion) {
        if (why)
            *why = "unsupported trace version " +
                   std::to_string(magic_version[1]);
        return false;
    }

    Header h{};
    r.pos = 0;
    if (!r.pull(&h, sizeof(h)) || data.size() - r.pos < h.keyLen) {
        if (why)
            *why = "truncated header";
        return false;
    }
    const std::uint64_t sum =
        stableHash64(data.data() + sizeof(h), data.size() - sizeof(h));
    if (sum != h.checksum) {
        if (why)
            *why = "checksum mismatch (truncated or corrupted)";
        return false;
    }
    std::string key(data.data() + r.pos, h.keyLen);
    r.pos += h.keyLen;
    if (expected_key && key != *expected_key) {
        if (why)
            *why = "generation-parameter key mismatch";
        return false;
    }
    return parseOps(r, h.threadCount, out, why);
}

} // namespace

void
saveTrace(const TraceSet &traces, const std::string &path,
          const std::string &key)
{
    File f(std::fopen(path.c_str(), "wb"));
    fatal_if(!f, "cannot open '", path, "' for writing");
    const std::string image = serializeFile(traces, key);
    fatal_if(std::fwrite(image.data(), 1, image.size(), f.get()) !=
                 image.size(),
             "short write to '", path, "'");
}

TraceSet
loadTrace(const std::string &path)
{
    std::string data;
    fatal_if(!readWholeFile(path, data), "cannot open '", path,
             "' for reading");
    TraceSet out;
    std::string why;
    fatal_if(!parseTrace(data, nullptr, out, &why), "'", path, "': ",
             why);
    return out;
}

bool
saveTraceAtomic(const TraceSet &traces, const std::string &path,
                const std::string &key)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) {
        warn("trace cache: cannot open '", tmp, "' for writing");
        return false;
    }
    const std::string image = serializeFile(traces, key);
    bool ok =
        std::fwrite(image.data(), 1, image.size(), f.get()) ==
        image.size();
    ok = ok && std::fflush(f.get()) == 0;
    ok = ok && ::fsync(::fileno(f.get())) == 0;
    f.reset();
    ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        warn("trace cache: failed to write '", path, "'");
        std::remove(tmp.c_str());
    }
    return ok;
}

bool
tryLoadTraceForKey(const std::string &path,
                   const std::string &expected_key, TraceSet &out,
                   std::string *why)
{
    std::string data;
    if (!readWholeFile(path, data)) {
        if (why)
            *why = "cannot read file";
        return false;
    }
    return parseTrace(data, &expected_key, out, why);
}

} // namespace asap
