/**
 * @file
 * Simulated persistent-memory address space.
 *
 * Workload data structures execute functionally against this byte
 * store at trace-generation time. Addresses start at pmBase; a bump
 * allocator with size-class free lists hands out regions. A disjoint
 * address range provides volatile allocations (locks, scratch state)
 * that never enter the persist path.
 */

#ifndef ASAP_PM_PM_SPACE_HH
#define ASAP_PM_PM_SPACE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/log.hh"

namespace asap
{

/** First byte of the simulated PM range. */
constexpr std::uint64_t pmBase = 0x10000000ULL;
/** First byte of the simulated volatile (DRAM) range. */
constexpr std::uint64_t dramBase = 0x900000000ULL;

/** True if @p addr lies in the persistent range. */
constexpr bool
isPmAddr(std::uint64_t addr)
{
    return addr >= pmBase && addr < dramBase;
}

/** Byte-addressable functional PM with an allocator. */
class PmSpace
{
  public:
    explicit PmSpace(std::size_t capacity_bytes = 64ull << 20)
        : bytes(capacity_bytes, 0)
    {
    }

    /**
     * Allocate @p size bytes of persistent memory.
     * @param align alignment (power of two, default cache line)
     */
    std::uint64_t
    alloc(std::size_t size, std::size_t align = 64)
    {
        // Size-class free list first.
        const unsigned cls = sizeClass(size);
        if (cls < freeLists.size() && !freeLists[cls].empty() &&
            align <= 64) {
            std::uint64_t addr = freeLists[cls].back();
            freeLists[cls].pop_back();
            std::memset(ptr(addr), 0, classBytes(cls));
            return addr;
        }
        bump = (bump + align - 1) & ~(align - 1);
        fatal_if(bump + size > bytes.size(),
                 "simulated PM exhausted (", bytes.size(), " bytes)");
        std::uint64_t addr = pmBase + bump;
        bump += size;
        return addr;
    }

    /** Return a region to its size-class free list. */
    void
    free(std::uint64_t addr, std::size_t size)
    {
        const unsigned cls = sizeClass(size);
        if (cls >= freeLists.size())
            freeLists.resize(cls + 1);
        freeLists[cls].push_back(addr);
    }

    /** Allocate volatile (never persisted) space. */
    std::uint64_t
    allocVolatile(std::size_t size, std::size_t align = 64)
    {
        vbump = (vbump + align - 1) & ~(align - 1);
        std::uint64_t addr = dramBase + vbump;
        vbump += size;
        return addr;
    }

    std::uint64_t
    read64(std::uint64_t addr) const
    {
        std::uint64_t v;
        std::memcpy(&v, ptr(addr), 8);
        return v;
    }

    void
    write64(std::uint64_t addr, std::uint64_t v)
    {
        std::memcpy(ptr(addr), &v, 8);
    }

    std::uint8_t read8(std::uint64_t addr) const { return *ptr(addr); }
    void write8(std::uint64_t addr, std::uint8_t v) { *ptr(addr) = v; }

    void
    readBytes(std::uint64_t addr, void *dst, std::size_t n) const
    {
        std::memcpy(dst, ptr(addr), n);
    }

    void
    writeBytes(std::uint64_t addr, const void *src, std::size_t n)
    {
        std::memcpy(ptr(addr), src, n);
    }

    /** Bytes handed out so far (bump watermark). */
    std::size_t used() const { return bump; }

  private:
    static unsigned
    sizeClass(std::size_t size)
    {
        unsigned cls = 0;
        std::size_t c = 16;
        while (c < size) {
            c <<= 1;
            ++cls;
        }
        return cls;
    }

    static std::size_t classBytes(unsigned cls) { return 16ull << cls; }

    const std::uint8_t *
    ptr(std::uint64_t addr) const
    {
        panic_if(addr < pmBase || addr - pmBase >= bytes.size(),
                 "PM access out of range: ", addr);
        return bytes.data() + (addr - pmBase);
    }

    std::uint8_t *
    ptr(std::uint64_t addr)
    {
        panic_if(addr < pmBase || addr - pmBase >= bytes.size(),
                 "PM access out of range: ", addr);
        return bytes.data() + (addr - pmBase);
    }

    std::vector<std::uint8_t> bytes;
    std::size_t bump = 0;
    std::size_t vbump = 0;
    std::vector<std::vector<std::uint64_t>> freeLists;
};

} // namespace asap

#endif // ASAP_PM_PM_SPACE_HH
