/**
 * @file
 * Trace serialization.
 *
 * Recording a workload is deterministic but not free; serializing a
 * TraceSet lets users record once and replay under every hardware
 * model and configuration (the record/replay workflow of the paper's
 * artifact, where disk images hold the workloads).
 *
 * Format (version 2): a fixed header (magic, version, key length,
 * thread count, FNV-1a checksum) followed by a generation-parameter
 * key string and per-thread op arrays in a fixed-width little-endian
 * layout. The embedded key lets a cache tier verify that a file found
 * under a hashed name really was generated from the expected
 * parameters; the checksum rejects truncated or corrupted files.
 * Version-1 files (no key, no checksum) still load.
 */

#ifndef ASAP_PM_TRACE_IO_HH
#define ASAP_PM_TRACE_IO_HH

#include <string>

#include "cpu/op.hh"

namespace asap
{

/** Write @p traces to @p path (fatal on I/O errors). @p key is the
 *  generation-parameter string embedded in the header (may be
 *  empty for standalone record/replay use). */
void saveTrace(const TraceSet &traces, const std::string &path,
               const std::string &key = "");

/** Read a trace set back (fatal on I/O or format errors). */
TraceSet loadTrace(const std::string &path);

/**
 * Write @p traces to @p path via write-to-temp + fsync + rename, so
 * concurrent readers (other sweep processes, other shards) never see
 * a partial file. Never fatal: a full disk or unwritable directory
 * costs the cache entry, not the run.
 * @return false (with a warning logged) if the write failed
 */
bool saveTraceAtomic(const TraceSet &traces, const std::string &path,
                     const std::string &key);

/**
 * Try to load @p path, accepting it only if it is a well-formed
 * version-2 trace whose embedded key equals @p expected_key and whose
 * checksum matches. Never fatal and never logs: a missing, stale,
 * truncated or corrupted file is simply not a cache hit.
 * @param why when non-null, set to a human-readable rejection reason
 * @return true and fill @p out on success
 */
bool tryLoadTraceForKey(const std::string &path,
                        const std::string &expected_key, TraceSet &out,
                        std::string *why = nullptr);

} // namespace asap

#endif // ASAP_PM_TRACE_IO_HH
