/**
 * @file
 * Trace serialization.
 *
 * Recording a workload is deterministic but not free; serializing a
 * TraceSet lets users record once and replay under every hardware
 * model and configuration (the record/replay workflow of the paper's
 * artifact, where disk images hold the workloads).
 *
 * Format: a small header (magic, version, thread count) followed by
 * per-thread op arrays in a fixed-width little-endian layout.
 */

#ifndef ASAP_PM_TRACE_IO_HH
#define ASAP_PM_TRACE_IO_HH

#include <string>

#include "cpu/op.hh"

namespace asap
{

/** Write @p traces to @p path (fatal on I/O errors). */
void saveTrace(const TraceSet &traces, const std::string &path);

/** Read a trace set back (fatal on I/O or format errors). */
TraceSet loadTrace(const std::string &path);

} // namespace asap

#endif // ASAP_PM_TRACE_IO_HH
