#include "pm/recorder.hh"

#include <cstdlib>

namespace asap
{

namespace
{

std::uint64_t
initialTraceOpCap()
{
    if (const char *env = std::getenv("ASAP_MAX_TRACE_OPS"))
        return std::strtoull(env, nullptr, 0);
    return 32ull << 20; // 32 M ops ≈ 1.3 GB of TraceOps
}

std::uint64_t &
traceOpCapSlot()
{
    static std::uint64_t cap = initialTraceOpCap();
    return cap;
}

} // namespace

std::uint64_t
TraceRecorder::traceOpCap()
{
    return traceOpCapSlot();
}

void
TraceRecorder::setTraceOpCap(std::uint64_t cap)
{
    traceOpCapSlot() = cap;
}

TraceRecorder::TraceRecorder(unsigned num_threads, std::uint64_t seed,
                             std::size_t pm_bytes)
    : nThreads(num_threads), pm(pm_bytes), rng_(seed),
      traces(num_threads), releaseCount(num_threads, 0)
{
    fatal_if(num_threads == 0, "recorder needs at least one thread");
}

void
TraceRecorder::push(unsigned t, TraceOp op)
{
    panic_if(finished, "recording after finish()");
    panic_if(t >= nThreads, "recording on unknown thread ", t);
    const std::uint64_t cap = traceOpCap();
    ++totalOps;
    fatal_if(cap != 0 && totalOps > cap,
             "materialized trace exceeds the ", cap, "-op cap; runs "
             "this large should stream ops instead of materializing "
             "them — use a serve:* scenario (src/serve/, serve_bench) "
             "or raise ASAP_MAX_TRACE_OPS");
    traces.threads[t].push_back(op);
}

std::uint64_t
TraceRecorder::nextToken(unsigned t)
{
    // Unique, never zero: thread in the top bits, sequence below.
    return (static_cast<std::uint64_t>(t + 1) << 44) | tokenSeq++;
}

PmLock
TraceRecorder::makeLock()
{
    PmLock lock;
    lock.addr = pm.allocVolatile(lineBytes, lineBytes);
    return lock;
}

std::uint64_t
TraceRecorder::load64(unsigned t, std::uint64_t addr)
{
    TraceOp op;
    op.type = OpType::Load;
    op.isPm = true;
    op.addr = addr;
    push(t, op);
    return pm.read64(addr);
}

void
TraceRecorder::store64(unsigned t, std::uint64_t addr, std::uint64_t value)
{
    pm.write64(addr, value);
    TraceOp op;
    op.type = OpType::Store;
    op.isPm = true;
    op.addr = addr;
    op.value = nextToken(t);
    push(t, op);
}

void
TraceRecorder::storeBytes(unsigned t, std::uint64_t addr, const void *src,
                          std::size_t n)
{
    if (src) {
        pm.writeBytes(addr, src, n);
    } else {
        std::vector<std::uint8_t> zeros(n, 0);
        pm.writeBytes(addr, zeros.data(), n);
    }
    // One persist-path store per touched line.
    const std::uint64_t first = lineOf(addr);
    const std::uint64_t last = lineOf(addr + (n ? n - 1 : 0));
    for (std::uint64_t line = first; line <= last; ++line) {
        TraceOp op;
        op.type = OpType::Store;
        op.isPm = true;
        op.addr = line * lineBytes;
        op.value = nextToken(t);
        push(t, op);
    }
}

void
TraceRecorder::loadBytes(unsigned t, std::uint64_t addr, void *dst,
                         std::size_t n)
{
    if (dst)
        pm.readBytes(addr, dst, n);
    const std::uint64_t first = lineOf(addr);
    const std::uint64_t last = lineOf(addr + (n ? n - 1 : 0));
    for (std::uint64_t line = first; line <= last; ++line) {
        TraceOp op;
        op.type = OpType::Load;
        op.isPm = true;
        op.addr = line * lineBytes;
        push(t, op);
    }
}

std::uint64_t
TraceRecorder::vload64(unsigned t, std::uint64_t addr)
{
    TraceOp op;
    op.type = OpType::Load;
    op.isPm = false;
    op.addr = addr;
    push(t, op);
    return 0; // volatile space has no functional backing store
}

void
TraceRecorder::vstore64(unsigned t, std::uint64_t addr, std::uint64_t)
{
    TraceOp op;
    op.type = OpType::Store;
    op.isPm = false;
    op.addr = addr;
    push(t, op);
}

void
TraceRecorder::compute(unsigned t, std::uint32_t cycles)
{
    if (cycles == 0)
        return;
    // Merge adjacent compute gaps to keep traces compact.
    auto &ops = traces.threads[t];
    if (!ops.empty() && ops.back().type == OpType::Compute) {
        ops.back().cycles += cycles;
        return;
    }
    TraceOp op;
    op.type = OpType::Compute;
    op.cycles = cycles;
    push(t, op);
}

void
TraceRecorder::ofence(unsigned t)
{
    TraceOp op;
    op.type = OpType::OFence;
    push(t, op);
}

void
TraceRecorder::dfence(unsigned t)
{
    TraceOp op;
    op.type = OpType::DFence;
    push(t, op);
}

void
TraceRecorder::lockAcquire(unsigned t, PmLock &lock)
{
    panic_if(lock.holder >= 0, "generation-time deadlock: lock held by ",
             lock.holder, " while thread ", t, " acquires");
    lock.holder = static_cast<std::int32_t>(t);
    TraceOp op;
    op.type = OpType::Acquire;
    op.addr = lock.addr;
    op.srcThread = lock.lastReleaser;
    op.srcRelease = lock.lastReleaseOrdinal;
    push(t, op);
}

void
TraceRecorder::lockRelease(unsigned t, PmLock &lock)
{
    panic_if(lock.holder != static_cast<std::int32_t>(t),
             "thread ", t, " releasing a lock it does not hold");
    lock.holder = -1;
    lock.lastReleaser = static_cast<std::int32_t>(t);
    lock.lastReleaseOrdinal = ++releaseCount[t];
    TraceOp op;
    op.type = OpType::Release;
    op.addr = lock.addr;
    push(t, op);
}

TraceSet
TraceRecorder::finish()
{
    panic_if(finished, "finish() called twice");
    finished = true;
    for (unsigned t = 0; t < nThreads; ++t) {
        TraceOp end;
        end.type = OpType::End;
        traces.threads[t].push_back(end);
    }
    return std::move(traces);
}

} // namespace asap
