/**
 * @file
 * Crash-state permuter (CrashMonkey-style, over the persist path).
 *
 * The crash campaign checks ONE post-crash NVM state per tick: the
 * canonical ADR drain (WPQ to media, then undo rewind). But at any
 * crash instant many states are legally reachable, because the commit
 * protocol is distributed: when an epoch's commit messages are in
 * flight, each memory controller applies its share of the commit
 * (erase the epoch's undo records, release its delay records) in its
 * own event — a power failure can land between any subset of those
 * per-controller applications. This module enumerates exactly that
 * space.
 *
 * Atom model. One *atom* = "controller M processed commit(T, E)" for
 * each commit-in-flight epoch (T, E) and each controller holding at
 * least one of its records. Within one controller the application is
 * a single event (receiveCommit runs the policy's onCommit
 * synchronously), so no finer interleaving is reachable. The state
 * space is 2^atoms subsets.
 *
 * Per-line final value, given an applied-atom subset: a line whose
 * delay record's atom is applied ends at the delay value (released
 * directly, or absorbed into a surviving undo that then rewinds to
 * it — both orders converge); a line whose undo record's atom is
 * applied ends at the speculative durable value (the undo is erased,
 * so the rewind never happens); otherwise the line keeps its
 * canonical post-crash value. This rule is order-independent: the one
 * shape that would be order-dependent (an undo and a same-line delay
 * from two *different* in-flight epochs) cannot arise, because a
 * write collision creates a conflict dependency and a dependent epoch
 * only becomes safe after its source epoch fully committed. The
 * enumerator still counts such shapes (orderCollisions) defensively.
 *
 * WPQ drain orders need no enumeration: media contents update at WPQ
 * issue time and the ADR drain is loss-free, so every bank-legal
 * drain order converges to the same per-line values (coalescing keeps
 * one entry per line). The snapshot records WPQ occupancy for the
 * taxonomy stats only.
 *
 * Fault injection (test-only): FaultMode::DropUndo additionally makes
 * every undo record an independently droppable atom, modelling a
 * recovery policy that loses records before the rewind. Dropping an
 * undo of an *unsafe* epoch lets a speculative value survive while
 * ancestor-epoch writes still in volatile persist buffers are lost —
 * a prefix-closure violation the checker must flag.
 *
 * Engines. Two check loops produce bit-identical reports:
 *
 *  - Naive: the original loop. Per state, rebuild every line's final
 *    value, hash the full image, and on a distinct image mutate the
 *    shared NvmContents, run the one-shot checker (which re-indexes
 *    the run log), and revert. O(effects) per state + O(log) per
 *    distinct image. Kept unchanged as the benchmark baseline.
 *  - Incremental (default): enumerate the exhaustive space in
 *    reflected Gray-code order so consecutive states differ in one
 *    atom; a per-atom inverted index updates only the lines that atom
 *    can touch, and an incrementally maintained XOR fingerprint
 *    replaces the full-image hash. States are checked through a
 *    copy-on-write overlay (NvmView) against a build-once
 *    CheckerIndex, so nothing mutates shared state — which also makes
 *    the loop parallel: the mask space splits into contiguous Gray
 *    segments checked on a ThreadPool and merged deterministically
 *    (counts summed, distinct fingerprints unioned, first-bad = the
 *    numerically lowest bad mask).
 *
 * First-bad is the lowest bad mask under every engine: exhaustive
 * enumeration is (or covers) ascending order, and sampled mask sets
 * are sorted before checking, so the report cannot depend on engine,
 * thread count or draw order.
 */

#ifndef ASAP_PERMUTE_PERMUTE_HH
#define ASAP_PERMUTE_PERMUTE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/nvm_contents.hh"
#include "mem/recovery_policy.hh"
#include "recovery/checker.hh"
#include "recovery/run_log.hh"

namespace asap
{
namespace permute
{

/** Persist-path state of one memory controller at the crash instant. */
struct McSnapshot
{
    unsigned mc = 0;
    std::vector<UndoRecordView> undos;   //!< sorted by line
    std::vector<DelayRecordView> delays; //!< RT release order
    std::size_t wpqLines = 0;            //!< occupancy (taxonomy stats)
};

/** Everything the enumerator needs, harvested at the crash instant. */
struct PermuteSnapshot
{
    std::vector<McSnapshot> mcs; //!< ascending controller id

    /** Commit-in-flight epochs (commit messages sent, ACKs pending). */
    std::vector<std::pair<std::uint16_t, std::uint64_t>> inFlight;

    /**
     * Durable value at the crash instant for every line holding a
     * record (WPQ-pending value if any, else media). Because media
     * contents update at WPQ issue time and the ADR drain is
     * loss-free, this is exactly the value the canonical drain leaves
     * on the line before the undo rewind.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> durableAtCrash;
};

/** Test-only fault injection into the enumerated action space. */
enum class FaultMode
{
    None,     //!< reachable states only
    DropUndo, //!< each undo record may independently be lost
};

/** Parse a fault-mode name; returns false on an unknown name. */
bool parsePermuteFault(const std::string &name, FaultMode &out);
const char *toString(FaultMode mode);
/** Comma-separated valid fault-mode names (error messages, --help). */
const char *permuteFaultNames();

/** Which check loop enumerates the states (reports are identical). */
enum class Engine
{
    Naive,       //!< original rebuild-hash-mutate-revert loop
    Incremental, //!< Gray-code + inverted index + overlay checks
};

/** Parse an engine name ("" and "incremental" -> Incremental,
 *  "naive" -> Naive); returns false on an unknown name. */
bool parsePermuteEngine(const std::string &name, Engine &out);
const char *toString(Engine engine);
/** Comma-separated valid engine names (error messages, --help). */
const char *permuteEngineNames();

/** i-th reflected Gray code: consecutive values differ in exactly
 *  one bit and i = 0..2^n-1 covers every n-bit value once. */
constexpr std::uint64_t
grayCode(std::uint64_t i)
{
    return i ^ (i >> 1);
}

/**
 * Toggle the stderr progress meter (states checked, states/sec, ETA)
 * for subsequent permuteAndCheck calls. Host-side observability only:
 * rate-limited statusLine output, never touches the report. Process-
 * wide because the permuter runs deep under the experiment engine.
 */
void setPermuteProgress(bool on);

/** One orderable crash-time action. */
struct Atom
{
    enum class Kind : std::uint8_t
    {
        CommitApply, //!< controller mc processes commit(thread, epoch)
        DropUndo,    //!< fault: controller mc loses the undo for line
    };

    Kind kind = Kind::CommitApply;
    unsigned mc = 0;
    std::uint16_t thread = 0;
    std::uint64_t epoch = 0;
    std::uint64_t line = 0; //!< DropUndo only
};

/**
 * Derive the atom list for a snapshot, in the canonical order that
 * defines state-mask bit positions (sorted by kind, mc, thread,
 * epoch, line — stable across runs, hosts and shards).
 */
std::vector<Atom> deriveAtoms(const PermuteSnapshot &snap,
                              FaultMode fault);

/** Enumeration limits and repro hooks. */
struct PermuteOptions
{
    /**
     * Maximum states to check per crash tick. Exhaustive when
     * 2^atoms <= bound; otherwise seeded sampling that always
     * includes the canonical (empty) and all-applied states.
     */
    std::uint64_t bound = 4096;
    std::uint64_t sampleSeed = 1; //!< sampling PRNG seed
    FaultMode fault = FaultMode::None;
    bool haveOnlyMask = false; //!< --repro: check a single state
    std::uint64_t onlyMask = 0;

    /** Check loop (reports are engine-independent by construction). */
    Engine engine = Engine::Incremental;
    /**
     * Worker threads for the incremental engine's segment checks:
     * 1 = inline (no pool), 0 = one per hardware thread. Ignored by
     * the naive engine, which shares mutable state across checks.
     */
    unsigned threads = 1;
};

/** Enumeration + checking outcome for one crash tick. */
struct PermuteReport
{
    unsigned atoms = 0;
    /** True when > kMaxAtoms atoms were found and the tail dropped. */
    bool atomsTruncated = false;
    std::uint64_t statesReachable = 0; //!< 2^atoms (saturating)
    std::uint64_t statesChecked = 0;   //!< masks evaluated
    std::uint64_t distinctStates = 0;  //!< unique NVM images seen
    bool truncated = false;            //!< sampled, not exhaustive
    std::uint64_t orderCollisions = 0; //!< see file comment; expect 0
    std::uint64_t inconsistentStates = 0;
    bool haveFirstBad = false;
    std::uint64_t firstBadMask = 0;
    std::string firstBadMessage;
};

/** Masks are stored in a u64; beyond this the atom list truncates. */
constexpr unsigned kMaxAtoms = 63;

/**
 * Enumerate the reachable states and run the recovery checker on
 * each. @p nvm must hold the canonical post-crash state. The naive
 * engine mutates it per state and restores it before returning; the
 * incremental engine only reads it (states are checked through a
 * copy-on-write overlay). Either way @p nvm is bit-identical to its
 * input when the call returns. Duplicate NVM images (different masks,
 * same bytes) are checked once and counted per mask.
 */
PermuteReport
permuteAndCheck(const PermuteSnapshot &snap, const PermuteOptions &opt,
                NvmContents &nvm, const RunLog &log,
                const std::vector<std::uint64_t> &committed_up_to);

/** Format / parse a state mask as the --repro hex token (no 0x). */
std::string maskToHex(std::uint64_t mask);
bool maskFromHex(const std::string &hex, std::uint64_t &out);

} // namespace permute
} // namespace asap

#endif // ASAP_PERMUTE_PERMUTE_HH
