#include "permute/permute.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "sim/log.hh"
#include "sim/pool.hh"

namespace asap
{
namespace permute
{

namespace
{

/** splitmix64: small, seedable, host-independent mask sampler. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

/** splitmix64 finalizer: host-independent 64-bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Zobrist-style term for one (line, value) pair. The image
 * fingerprint is the XOR of one term per effect line, so flipping a
 * single line's value updates it in O(1): xor the old term out, the
 * new term in. Double mixing binds line and value nonlinearly so
 * cross-line value swaps cannot cancel.
 */
std::uint64_t
imageMix(std::uint64_t line, std::uint64_t value)
{
    return mix64(mix64(line + 0x9e3779b97f4a7c15ULL) ^ value);
}

/** Precomputed per-line effect table (see permuteAndCheck). */
struct LineEffect
{
    std::uint64_t line = 0;
    std::uint64_t canonical = 0; //!< post-canonical-crash value
    std::uint64_t durable = 0;   //!< pre-rewind (speculative) value
    bool hasUndo = false;
    /** Atom indices erasing the undo (commit of its epoch at this MC,
     *  or a fault drop); the line reverts to @c durable when any of
     *  these is in the applied set. */
    std::uint64_t undoEraseMask = 0;
    /** (atom bit, value) per delay on this line, in release order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> delayBits;
};

/** Final value of a line under an applied-atom mask. */
std::uint64_t
finalValue(const LineEffect &e, std::uint64_t mask)
{
    std::uint64_t v =
        e.hasUndo
            ? ((e.undoEraseMask & mask) ? e.durable : e.canonical)
            : e.canonical;
    for (const auto &[bits, value] : e.delayBits)
        if (bits & mask)
            v = value; // release order: last applied delay wins
    return v;
}

/**
 * Build the per-line effect table. Lines are partitioned across
 * controllers by the address map, so (mc, line) pairs never alias a
 * line twice. Order-dependent undo/delay collisions (see the file
 * comment in permute.hh) are counted into @p rep.
 */
std::vector<LineEffect>
buildEffects(const PermuteSnapshot &snap,
             const std::vector<Atom> &atoms, PermuteReport &rep)
{
    const unsigned n = static_cast<unsigned>(atoms.size());

    // Atom lookup: bit mask for "commit(thread, epoch) applied at mc"
    // and "undo on (mc, line) dropped".
    auto commitBits = [&](unsigned mc, std::uint16_t thread,
                          std::uint64_t epoch) {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Atom &a = atoms[i];
            if (a.kind == Atom::Kind::CommitApply && a.mc == mc &&
                a.thread == thread && a.epoch == epoch)
                bits |= 1ULL << i;
        }
        return bits;
    };
    auto dropBits = [&](unsigned mc, std::uint64_t line) {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Atom &a = atoms[i];
            if (a.kind == Atom::Kind::DropUndo && a.mc == mc &&
                a.line == line)
                bits |= 1ULL << i;
        }
        return bits;
    };

    std::vector<LineEffect> effects;
    for (const McSnapshot &m : snap.mcs) {
        std::unordered_map<std::uint64_t, std::size_t> index;
        for (const UndoRecordView &u : m.undos) {
            LineEffect e;
            e.line = u.line;
            e.hasUndo = true;
            e.canonical = u.value; // rewind wrote the safe value
            auto dit = snap.durableAtCrash.find(u.line);
            e.durable =
                dit == snap.durableAtCrash.end() ? u.value : dit->second;
            e.undoEraseMask = commitBits(m.mc, u.thread, u.epoch) |
                              dropBits(m.mc, u.line);
            index[u.line] = effects.size();
            effects.push_back(std::move(e));
        }
        for (const DelayRecordView &d : m.delays) {
            auto iit = index.find(d.line);
            if (iit == index.end()) {
                LineEffect e;
                e.line = d.line;
                auto dit = snap.durableAtCrash.find(d.line);
                // No undo: the canonical crash leaves the durable
                // value (delay records are simply discarded).
                e.durable = dit == snap.durableAtCrash.end()
                                ? 0
                                : dit->second;
                e.canonical = e.durable;
                index[d.line] = effects.size();
                effects.push_back(std::move(e));
                iit = index.find(d.line);
            }
            LineEffect &e = effects[iit->second];
            const std::uint64_t bits =
                commitBits(m.mc, d.thread, d.epoch);
            if (bits != 0)
                e.delayBits.emplace_back(bits, d.value);
            // Defensive: a released delay racing a *different*
            // in-flight epoch's undo on the same line would make the
            // final value order-dependent. Conflict-dependency
            // ordering makes this unreachable; count it loudly.
            if (e.hasUndo && e.undoEraseMask != 0 && bits != 0 &&
                (e.undoEraseMask & bits) == 0)
                ++rep.orderCollisions;
        }
    }
    if (rep.orderCollisions != 0)
        warn("permute: ", rep.orderCollisions,
             " order-dependent undo/delay collisions; final values "
             "follow release-last semantics");
    return effects;
}

/**
 * The set of state masks to check. Exhaustive spaces are enumerated
 * implicitly (the i-th mask is i for the naive engine, grayCode(i)
 * for the incremental one — the same set either way); sampled and
 * single-state plans carry an explicit ascending mask list.
 */
struct MaskPlan
{
    bool exhaustive = false;
    std::uint64_t count = 0;
    std::vector<std::uint64_t> masks; //!< sorted; empty if exhaustive
};

MaskPlan
planMasks(const PermuteOptions &opt, PermuteReport &rep)
{
    MaskPlan plan;
    if (opt.haveOnlyMask) {
        plan.masks.push_back(opt.onlyMask & (rep.statesReachable - 1));
        plan.count = 1;
    } else if (rep.statesReachable <= opt.bound) {
        plan.exhaustive = true;
        plan.count = rep.statesReachable;
    } else {
        rep.truncated = true;
        std::unordered_set<std::uint64_t> chosen;
        auto add = [&](std::uint64_t m) {
            if (chosen.insert(m).second)
                plan.masks.push_back(m);
        };
        // Corners first: canonical and all-applied.
        add(0);
        add(rep.statesReachable - 1);
        std::uint64_t prng = opt.sampleSeed;
        // Cap the draw loop so a tiny space cannot spin; saturate the
        // multiply so a huge --bound cannot wrap it to a small cap.
        const std::uint64_t drawCap =
            opt.bound > ~0ULL / 64 ? ~0ULL : opt.bound * 64;
        std::uint64_t draws = 0;
        while (plan.masks.size() < opt.bound && draws < drawCap) {
            add(splitmix64(prng) & (rep.statesReachable - 1));
            ++draws;
        }
        // Check in ascending mask order so first-bad is the lowest
        // bad mask under every engine and thread count.
        std::sort(plan.masks.begin(), plan.masks.end());
        plan.count = plan.masks.size();
    }
    return plan;
}

// --- progress meter ------------------------------------------------------

std::atomic<bool> gProgress{false};

/** Rate-limited stderr meter shared by every segment worker. */
class StateMeter
{
  public:
    StateMeter(std::uint64_t total) : total(total) {}

    /** Called every kTickGranularity states (and at segment ends). */
    void
    tick(std::uint64_t states)
    {
        const std::uint64_t done =
            checked.fetch_add(states, std::memory_order_relaxed) +
            states;
        const auto now = std::chrono::steady_clock::now();
        const std::int64_t nowMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - start)
                .count();
        std::int64_t last = lastPrintMs.load(std::memory_order_relaxed);
        if (nowMs - last < 500 && done < total)
            return;
        if (!lastPrintMs.compare_exchange_strong(last, nowMs))
            return; // another worker is printing
        const double secs = static_cast<double>(nowMs) / 1e3;
        const double rate =
            secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
        const double eta =
            rate > 0.0
                ? static_cast<double>(total - done) / rate
                : 0.0;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "permute: %llu/%llu states (%.0f%%), "
                      "%.0f states/s, eta %.0fs",
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total),
                      100.0 * static_cast<double>(done) /
                          static_cast<double>(total ? total : 1),
                      rate, eta);
        statusLine(buf);
    }

    static constexpr std::uint64_t kTickGranularity = 1024;

  private:
    const std::uint64_t total;
    const std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> checked{0};
    std::atomic<std::int64_t> lastPrintMs{-1000};
};

// --- naive engine --------------------------------------------------------

/** The original check loop, kept as the benchmark baseline: full
 *  image hash per state, mutate-check-revert plus a one-shot
 *  (re-indexing) checkCrashConsistency per distinct image. */
void
runNaive(const MaskPlan &plan, const std::vector<LineEffect> &effects,
         NvmContents &nvm, const RunLog &log,
         const std::vector<std::uint64_t> &committed_up_to,
         PermuteReport &rep, StateMeter *meter)
{
    std::unordered_map<std::uint64_t, std::pair<bool, std::string>>
        verdictByKey;
    std::uint64_t sinceTick = 0;
    for (std::uint64_t i = 0; i < plan.count; ++i) {
        const std::uint64_t mask =
            plan.exhaustive ? i : plan.masks[i];
        ++rep.statesChecked;

        std::uint64_t key = kFnvOffset;
        for (const LineEffect &e : effects) {
            fnvMix(key, e.line);
            fnvMix(key, finalValue(e, mask));
        }

        auto vit = verdictByKey.find(key);
        bool ok;
        std::string message;
        if (vit != verdictByKey.end()) {
            ok = vit->second.first;
            message = vit->second.second;
        } else {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> saved;
            for (const LineEffect &e : effects) {
                const std::uint64_t want = finalValue(e, mask);
                const std::uint64_t have = nvm.read(e.line);
                if (want != have) {
                    saved.emplace_back(e.line, have);
                    nvm.write(e.line, want);
                }
            }
            const CheckResult cr =
                checkCrashConsistency(log, nvm, committed_up_to);
            for (const auto &[line, value] : saved)
                nvm.write(line, value);
            ok = cr.ok;
            message = cr.message;
            verdictByKey.emplace(key, std::make_pair(ok, message));
        }

        if (!ok) {
            ++rep.inconsistentStates;
            if (!rep.haveFirstBad) {
                rep.haveFirstBad = true;
                rep.firstBadMask = mask;
                rep.firstBadMessage = message;
            }
        }
        if (meter && ++sinceTick == StateMeter::kTickGranularity) {
            meter->tick(sinceTick);
            sinceTick = 0;
        }
    }
    if (meter && sinceTick)
        meter->tick(sinceTick);
    rep.distinctStates = verdictByKey.size();
}

// --- incremental engine --------------------------------------------------

/**
 * Insert-only open-addressing map: image fingerprint -> slot index.
 * The state loop does one lookup per state, so this sits on the
 * hottest path in the engine; a linear-probed flat table beats
 * unordered_map by avoiding per-node allocation and pointer chasing.
 */
class FpMemo
{
  public:
    FpMemo() { rehash(kInitialCap); }

    /** Slot of @p fp, or -1 when absent. */
    std::int64_t
    find(std::uint64_t fp) const
    {
        std::size_t i = mix64(fp) & mask;
        while (vals[i] >= 0) {
            if (keys[i] == fp)
                return vals[i];
            i = (i + 1) & mask;
        }
        return -1;
    }

    /** Insert an absent fingerprint (find() returned -1). */
    void
    insert(std::uint64_t fp, std::int32_t slot)
    {
        if ((size + 1) * 4 > keys.size() * 3)
            grow();
        std::size_t i = mix64(fp) & mask;
        while (vals[i] >= 0)
            i = (i + 1) & mask;
        keys[i] = fp;
        vals[i] = slot;
        ++size;
    }

  private:
    static constexpr std::size_t kInitialCap = 1024;

    void
    rehash(std::size_t cap)
    {
        keys.assign(cap, 0);
        vals.assign(cap, -1);
        mask = cap - 1;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> oldKeys = std::move(keys);
        std::vector<std::int32_t> oldVals = std::move(vals);
        rehash(oldKeys.size() * 2);
        for (std::size_t i = 0; i < oldKeys.size(); ++i) {
            if (oldVals[i] < 0)
                continue;
            std::size_t j = mix64(oldKeys[i]) & mask;
            while (vals[j] >= 0)
                j = (j + 1) & mask;
            keys[j] = oldKeys[i];
            vals[j] = oldVals[i];
        }
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::int32_t> vals; //!< -1 = empty
    std::size_t mask = 0;
    std::size_t size = 0;
};

/** One contiguous chunk of the plan, checked independently. */
struct SegmentResult
{
    std::uint64_t checked = 0;
    std::uint64_t bad = 0;
    bool haveBad = false;
    std::uint64_t minBadMask = 0;
    std::string minBadMessage;
    /** Distinct image fingerprints, in first-seen order, with their
     *  verdicts (parallel vectors; memo maps fp -> index). */
    std::vector<std::uint64_t> fps;
    std::vector<std::pair<bool, std::string>> verdicts;
    FpMemo memo;
};

/**
 * Check plan indices [lo, hi). The walk materializes the first
 * state's line values, overlay and fingerprint in O(effects), then
 * advances state-to-state touching only the effects of the flipped
 * atoms (one atom per step in Gray order; a handful for sampled
 * plans) — the inverted index maps atom bit -> effect indices.
 */
void
runSegment(const MaskPlan &plan, std::uint64_t lo, std::uint64_t hi,
           const std::vector<LineEffect> &effects,
           const std::vector<std::vector<std::uint32_t>> &inv,
           const CheckerIndex &index, const CheckScope &scope,
           const NvmContents &nvm,
           const std::vector<std::uint64_t> &committed_up_to,
           SegmentResult &out, StateMeter *meter)
{
    auto maskAt = [&](std::uint64_t i) {
        return plan.exhaustive ? grayCode(i) : plan.masks[i];
    };

    const std::size_t ne = effects.size();
    std::vector<std::uint64_t> cur(ne);
    std::unordered_map<std::uint64_t, std::uint64_t> overlay;
    overlay.reserve(ne);
    std::uint64_t fp = 0;

    std::uint64_t mask = maskAt(lo);
    for (std::size_t i = 0; i < ne; ++i) {
        cur[i] = finalValue(effects[i], mask);
        overlay[effects[i].line] = cur[i];
        fp ^= imageMix(effects[i].line, cur[i]);
    }
    const NvmView view(nvm, overlay);

    // Scratch for deduplicating touched effects across a multi-bit
    // delta (sampled plans); single-bit Gray steps skip it.
    std::vector<std::uint32_t> stamp(ne, 0);
    std::uint32_t curStamp = 0;
    std::vector<std::uint32_t> touched;

    CheckScope::Scratch scopeScratch;
    auto evaluate = [&](std::uint64_t m) {
        ++out.checked;
        std::int64_t slot = out.memo.find(fp);
        if (slot < 0) {
            // Distinct-image miss. The scope proves most consistent
            // states in O(effects); anything it cannot prove (or any
            // failure, for the canonical message) goes to the full
            // check — the overlay is only read there, so patch it to
            // match cur[] on that path alone.
            bool ok = scope.usable() &&
                      scope.consistent(cur, scopeScratch);
            std::string message;
            if (!ok) {
                for (std::size_t i = 0; i < ne; ++i)
                    overlay[effects[i].line] = cur[i];
                const CheckResult cr =
                    index.check(view, committed_up_to);
                ok = cr.ok;
                message = cr.message;
            }
            slot = static_cast<std::int64_t>(out.fps.size());
            out.fps.push_back(fp);
            out.verdicts.emplace_back(ok, std::move(message));
            out.memo.insert(fp, static_cast<std::int32_t>(slot));
        }
        const std::pair<bool, std::string> &verdict =
            out.verdicts[static_cast<std::size_t>(slot)];
        if (!verdict.first) {
            ++out.bad;
            if (!out.haveBad || m < out.minBadMask) {
                out.haveBad = true;
                out.minBadMask = m;
                out.minBadMessage = verdict.second;
            }
        }
    };

    auto applyEffect = [&](std::uint32_t ei, std::uint64_t m) {
        const std::uint64_t v = finalValue(effects[ei], m);
        if (v != cur[ei]) {
            const std::uint64_t line = effects[ei].line;
            fp ^= imageMix(line, cur[ei]) ^ imageMix(line, v);
            cur[ei] = v;
        }
    };

    std::uint64_t sinceTick = 0;
    evaluate(mask);
    for (std::uint64_t idx = lo + 1; idx < hi; ++idx) {
        const std::uint64_t next = maskAt(idx);
        std::uint64_t delta = mask ^ next;
        if (std::has_single_bit(delta)) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(delta));
            for (std::uint32_t ei : inv[b])
                applyEffect(ei, next);
        } else {
            ++curStamp;
            touched.clear();
            while (delta) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(delta));
                delta &= delta - 1;
                for (std::uint32_t ei : inv[b]) {
                    if (stamp[ei] != curStamp) {
                        stamp[ei] = curStamp;
                        touched.push_back(ei);
                    }
                }
            }
            for (std::uint32_t ei : touched)
                applyEffect(ei, next);
        }
        mask = next;
        evaluate(mask);
        if (meter && ++sinceTick == StateMeter::kTickGranularity) {
            meter->tick(sinceTick);
            sinceTick = 0;
        }
    }
    if (meter && sinceTick)
        meter->tick(sinceTick);
}

void
runIncremental(const MaskPlan &plan,
               const std::vector<LineEffect> &effects, unsigned threads,
               const NvmContents &nvm, const RunLog &log,
               const std::vector<std::uint64_t> &committed_up_to,
               PermuteReport &rep, StateMeter *meter)
{
    // Inverted index: atom bit -> effects whose value that bit can
    // change (the bit erases the line's undo or releases a delay).
    const unsigned n = rep.atoms;
    std::vector<std::vector<std::uint32_t>> inv(n);
    for (std::size_t i = 0; i < effects.size(); ++i) {
        std::uint64_t affect = effects[i].undoEraseMask;
        for (const auto &[bits, value] : effects[i].delayBits) {
            (void)value;
            affect |= bits;
        }
        affect &= n >= 64 ? ~0ULL : (1ULL << n) - 1;
        while (affect) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(affect));
            affect &= affect - 1;
            inv[b].push_back(static_cast<std::uint32_t>(i));
        }
    }

    // Index the run log once; every state check shares it (and any
    // crash job probing the same tick shares the memoised build).
    const std::shared_ptr<const CheckerIndex> index =
        sharedCheckerIndex(log);

    // Delta-check scope: resolves everything the checker derives from
    // lines outside the effect table once, so each distinct image
    // costs O(effects) instead of a full log-sized check pass.
    std::vector<std::uint64_t> varLines;
    varLines.reserve(effects.size());
    for (const LineEffect &e : effects)
        varLines.push_back(e.line);
    const CheckScope scope(index, nvm, committed_up_to, varLines);

    unsigned T = threads == 0 ? ThreadPool::defaultThreads() : threads;
    if (static_cast<std::uint64_t>(T) > plan.count)
        T = static_cast<unsigned>(plan.count);
    if (T == 0)
        T = 1;

    std::vector<SegmentResult> segs(T);
    if (T == 1) {
        runSegment(plan, 0, plan.count, effects, inv, *index, scope, nvm,
                   committed_up_to, segs[0], meter);
    } else {
        ThreadPool pool(T);
        const std::uint64_t base = plan.count / T;
        const std::uint64_t rem = plan.count % T;
        std::uint64_t lo = 0;
        for (unsigned t = 0; t < T; ++t) {
            const std::uint64_t hi = lo + base + (t < rem ? 1 : 0);
            SegmentResult *out = &segs[t];
            pool.submit([&plan, lo, hi, &effects, &inv, &index, &scope, &nvm,
                         &committed_up_to, out, meter]() {
                runSegment(plan, lo, hi, effects, inv, *index, scope, nvm,
                           committed_up_to, *out, meter);
            });
            lo = hi;
        }
        pool.wait();
    }

    // Deterministic merge: counts sum, distinct fingerprints union,
    // first-bad is the lowest bad mask (ties impossible — segments
    // partition the mask set).
    std::unordered_set<std::uint64_t> distinct;
    bool haveBad = false;
    std::uint64_t minBad = 0;
    const std::string *minBadMessage = nullptr;
    for (const SegmentResult &s : segs) {
        rep.statesChecked += s.checked;
        rep.inconsistentStates += s.bad;
        for (std::uint64_t key : s.fps)
            distinct.insert(key);
        if (s.haveBad && (!haveBad || s.minBadMask < minBad)) {
            haveBad = true;
            minBad = s.minBadMask;
            minBadMessage = &s.minBadMessage;
        }
    }
    rep.distinctStates = distinct.size();
    if (haveBad) {
        rep.haveFirstBad = true;
        rep.firstBadMask = minBad;
        rep.firstBadMessage = *minBadMessage;
    }
}

} // namespace

bool
parsePermuteFault(const std::string &name, FaultMode &out)
{
    if (name.empty() || name == "none") {
        out = FaultMode::None;
        return true;
    }
    if (name == "drop-undo") {
        out = FaultMode::DropUndo;
        return true;
    }
    return false;
}

const char *
toString(FaultMode mode)
{
    return mode == FaultMode::DropUndo ? "drop-undo" : "none";
}

const char *
permuteFaultNames()
{
    return "none, drop-undo";
}

bool
parsePermuteEngine(const std::string &name, Engine &out)
{
    if (name.empty() || name == "incremental") {
        out = Engine::Incremental;
        return true;
    }
    if (name == "naive") {
        out = Engine::Naive;
        return true;
    }
    return false;
}

const char *
toString(Engine engine)
{
    return engine == Engine::Naive ? "naive" : "incremental";
}

const char *
permuteEngineNames()
{
    return "naive, incremental";
}

void
setPermuteProgress(bool on)
{
    gProgress.store(on, std::memory_order_relaxed);
}

std::vector<Atom>
deriveAtoms(const PermuteSnapshot &snap, FaultMode fault)
{
    std::vector<Atom> atoms;

    // One CommitApply atom per (controller, in-flight epoch) pair
    // with at least one record to act on.
    for (const McSnapshot &m : snap.mcs) {
        for (const auto &[thread, epoch] : snap.inFlight) {
            bool has = false;
            for (const UndoRecordView &u : m.undos) {
                if (u.thread == thread && u.epoch == epoch) {
                    has = true;
                    break;
                }
            }
            if (!has) {
                for (const DelayRecordView &d : m.delays) {
                    if (d.thread == thread && d.epoch == epoch) {
                        has = true;
                        break;
                    }
                }
            }
            if (has)
                atoms.push_back({Atom::Kind::CommitApply, m.mc, thread,
                                 epoch, 0});
        }
    }

    if (fault == FaultMode::DropUndo) {
        for (const McSnapshot &m : snap.mcs)
            for (const UndoRecordView &u : m.undos)
                atoms.push_back({Atom::Kind::DropUndo, m.mc, u.thread,
                                 u.epoch, u.line});
    }

    // Canonical bit order: stable across runs, hosts and shards.
    std::sort(atoms.begin(), atoms.end(),
              [](const Atom &a, const Atom &b) {
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.mc != b.mc)
                      return a.mc < b.mc;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  if (a.epoch != b.epoch)
                      return a.epoch < b.epoch;
                  return a.line < b.line;
              });
    return atoms;
}

PermuteReport
permuteAndCheck(const PermuteSnapshot &snap, const PermuteOptions &opt,
                NvmContents &nvm, const RunLog &log,
                const std::vector<std::uint64_t> &committed_up_to)
{
    PermuteReport rep;

    std::vector<Atom> atoms = deriveAtoms(snap, opt.fault);
    if (atoms.size() > kMaxAtoms) {
        warn("permute: ", atoms.size(), " atoms exceed the ", kMaxAtoms,
             "-bit mask; dropping the tail (coverage will be partial)");
        atoms.resize(kMaxAtoms);
        rep.atomsTruncated = true;
    }
    const unsigned n = static_cast<unsigned>(atoms.size());
    rep.atoms = n;
    rep.statesReachable = 1ULL << n;

    const std::vector<LineEffect> effects =
        buildEffects(snap, atoms, rep);
    const MaskPlan plan = planMasks(opt, rep);

    StateMeter meter(plan.count);
    StateMeter *meterPtr =
        gProgress.load(std::memory_order_relaxed) ? &meter : nullptr;

    if (opt.engine == Engine::Naive)
        runNaive(plan, effects, nvm, log, committed_up_to, rep,
                 meterPtr);
    else
        runIncremental(plan, effects, opt.threads, nvm, log,
                       committed_up_to, rep, meterPtr);
    return rep;
}

std::string
maskToHex(std::uint64_t mask)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(mask));
    return buf;
}

bool
maskFromHex(const std::string &hex, std::uint64_t &out)
{
    if (hex.empty() || hex.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

} // namespace permute
} // namespace asap
