#include "permute/permute.hh"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "sim/log.hh"

namespace asap
{
namespace permute
{

namespace
{

/** splitmix64: small, seedable, host-independent mask sampler. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

/** Precomputed per-line effect table (see permuteAndCheck). */
struct LineEffect
{
    std::uint64_t line = 0;
    std::uint64_t canonical = 0; //!< post-canonical-crash value
    std::uint64_t durable = 0;   //!< pre-rewind (speculative) value
    bool hasUndo = false;
    /** Atom indices erasing the undo (commit of its epoch at this MC,
     *  or a fault drop); the line reverts to @c durable when any of
     *  these is in the applied set. */
    std::uint64_t undoEraseMask = 0;
    /** (atom bit, value) per delay on this line, in release order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> delayBits;
};

} // namespace

bool
parsePermuteFault(const std::string &name, FaultMode &out)
{
    if (name.empty() || name == "none") {
        out = FaultMode::None;
        return true;
    }
    if (name == "drop-undo") {
        out = FaultMode::DropUndo;
        return true;
    }
    return false;
}

const char *
toString(FaultMode mode)
{
    return mode == FaultMode::DropUndo ? "drop-undo" : "none";
}

const char *
permuteFaultNames()
{
    return "none, drop-undo";
}

std::vector<Atom>
deriveAtoms(const PermuteSnapshot &snap, FaultMode fault)
{
    std::vector<Atom> atoms;

    // One CommitApply atom per (controller, in-flight epoch) pair
    // with at least one record to act on.
    for (const McSnapshot &m : snap.mcs) {
        for (const auto &[thread, epoch] : snap.inFlight) {
            bool has = false;
            for (const UndoRecordView &u : m.undos) {
                if (u.thread == thread && u.epoch == epoch) {
                    has = true;
                    break;
                }
            }
            if (!has) {
                for (const DelayRecordView &d : m.delays) {
                    if (d.thread == thread && d.epoch == epoch) {
                        has = true;
                        break;
                    }
                }
            }
            if (has)
                atoms.push_back({Atom::Kind::CommitApply, m.mc, thread,
                                 epoch, 0});
        }
    }

    if (fault == FaultMode::DropUndo) {
        for (const McSnapshot &m : snap.mcs)
            for (const UndoRecordView &u : m.undos)
                atoms.push_back({Atom::Kind::DropUndo, m.mc, u.thread,
                                 u.epoch, u.line});
    }

    // Canonical bit order: stable across runs, hosts and shards.
    std::sort(atoms.begin(), atoms.end(),
              [](const Atom &a, const Atom &b) {
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.mc != b.mc)
                      return a.mc < b.mc;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  if (a.epoch != b.epoch)
                      return a.epoch < b.epoch;
                  return a.line < b.line;
              });
    return atoms;
}

PermuteReport
permuteAndCheck(const PermuteSnapshot &snap, const PermuteOptions &opt,
                NvmContents &nvm, const RunLog &log,
                const std::vector<std::uint64_t> &committed_up_to)
{
    PermuteReport rep;

    std::vector<Atom> atoms = deriveAtoms(snap, opt.fault);
    if (atoms.size() > kMaxAtoms) {
        warn("permute: ", atoms.size(), " atoms exceed the ", kMaxAtoms,
             "-bit mask; dropping the tail (coverage will be partial)");
        atoms.resize(kMaxAtoms);
        rep.atomsTruncated = true;
    }
    const unsigned n = static_cast<unsigned>(atoms.size());
    rep.atoms = n;
    rep.statesReachable = 1ULL << n;

    // Atom lookup: bit mask for "commit(thread, epoch) applied at mc"
    // and "undo on (mc, line) dropped".
    auto commitBits = [&](unsigned mc, std::uint16_t thread,
                          std::uint64_t epoch) {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Atom &a = atoms[i];
            if (a.kind == Atom::Kind::CommitApply && a.mc == mc &&
                a.thread == thread && a.epoch == epoch)
                bits |= 1ULL << i;
        }
        return bits;
    };
    auto dropBits = [&](unsigned mc, std::uint64_t line) {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Atom &a = atoms[i];
            if (a.kind == Atom::Kind::DropUndo && a.mc == mc &&
                a.line == line)
                bits |= 1ULL << i;
        }
        return bits;
    };

    // Build the per-line effect table. Lines are partitioned across
    // controllers by the address map, so (mc, line) pairs never alias
    // a line twice.
    std::vector<LineEffect> effects;
    for (const McSnapshot &m : snap.mcs) {
        std::unordered_map<std::uint64_t, std::size_t> index;
        for (const UndoRecordView &u : m.undos) {
            LineEffect e;
            e.line = u.line;
            e.hasUndo = true;
            e.canonical = u.value; // rewind wrote the safe value
            auto dit = snap.durableAtCrash.find(u.line);
            e.durable =
                dit == snap.durableAtCrash.end() ? u.value : dit->second;
            e.undoEraseMask = commitBits(m.mc, u.thread, u.epoch) |
                              dropBits(m.mc, u.line);
            index[u.line] = effects.size();
            effects.push_back(std::move(e));
        }
        for (const DelayRecordView &d : m.delays) {
            auto iit = index.find(d.line);
            if (iit == index.end()) {
                LineEffect e;
                e.line = d.line;
                auto dit = snap.durableAtCrash.find(d.line);
                // No undo: the canonical crash leaves the durable
                // value (delay records are simply discarded).
                e.durable = dit == snap.durableAtCrash.end()
                                ? 0
                                : dit->second;
                e.canonical = e.durable;
                index[d.line] = effects.size();
                effects.push_back(std::move(e));
                iit = index.find(d.line);
            }
            LineEffect &e = effects[iit->second];
            const std::uint64_t bits =
                commitBits(m.mc, d.thread, d.epoch);
            if (bits != 0)
                e.delayBits.emplace_back(bits, d.value);
            // Defensive: a released delay racing a *different*
            // in-flight epoch's undo on the same line would make the
            // final value order-dependent. Conflict-dependency
            // ordering makes this unreachable; count it loudly.
            if (e.hasUndo && e.undoEraseMask != 0 && bits != 0 &&
                (e.undoEraseMask & bits) == 0)
                ++rep.orderCollisions;
        }
    }
    if (rep.orderCollisions != 0)
        warn("permute: ", rep.orderCollisions,
             " order-dependent undo/delay collisions; final values "
             "follow release-last semantics");

    // Final value of a line under an applied-atom mask.
    auto finalValue = [](const LineEffect &e, std::uint64_t mask) {
        std::uint64_t v =
            e.hasUndo ? ((e.undoEraseMask & mask) ? e.durable
                                                  : e.canonical)
                      : e.canonical;
        for (const auto &[bits, value] : e.delayBits)
            if (bits & mask)
                v = value; // release order: last applied delay wins
        return v;
    };

    // --- enumerate masks -------------------------------------------------
    std::vector<std::uint64_t> masks;
    if (opt.haveOnlyMask) {
        masks.push_back(opt.onlyMask & (rep.statesReachable - 1));
    } else if (rep.statesReachable <= opt.bound) {
        masks.reserve(rep.statesReachable);
        for (std::uint64_t m = 0; m < rep.statesReachable; ++m)
            masks.push_back(m);
    } else {
        rep.truncated = true;
        std::unordered_set<std::uint64_t> chosen;
        auto add = [&](std::uint64_t m) {
            if (chosen.insert(m).second)
                masks.push_back(m);
        };
        // Corners first: canonical and all-applied.
        add(0);
        add(rep.statesReachable - 1);
        std::uint64_t prng = opt.sampleSeed;
        // n > some bits: plenty of distinct masks; cap the draw loop
        // anyway so a tiny space cannot spin.
        std::uint64_t draws = 0;
        while (masks.size() < opt.bound && draws < opt.bound * 64) {
            add(splitmix64(prng) & (rep.statesReachable - 1));
            ++draws;
        }
    }

    // --- check each state (mutate, check, revert) ------------------------
    // Distinct-image cache: different masks frequently produce the
    // same bytes (e.g. a drop atom subsumed by its epoch's commit).
    std::unordered_map<std::uint64_t, std::pair<bool, std::string>>
        verdictByKey;
    for (std::uint64_t mask : masks) {
        ++rep.statesChecked;

        std::uint64_t key = kFnvOffset;
        for (const LineEffect &e : effects) {
            fnvMix(key, e.line);
            fnvMix(key, finalValue(e, mask));
        }

        auto vit = verdictByKey.find(key);
        bool ok;
        std::string message;
        if (vit != verdictByKey.end()) {
            ok = vit->second.first;
            message = vit->second.second;
        } else {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> saved;
            for (const LineEffect &e : effects) {
                const std::uint64_t want = finalValue(e, mask);
                const std::uint64_t have = nvm.read(e.line);
                if (want != have) {
                    saved.emplace_back(e.line, have);
                    nvm.write(e.line, want);
                }
            }
            const CheckResult cr =
                checkCrashConsistency(log, nvm, committed_up_to);
            for (const auto &[line, value] : saved)
                nvm.write(line, value);
            ok = cr.ok;
            message = cr.message;
            verdictByKey.emplace(key,
                                 std::make_pair(ok, message));
        }

        if (!ok) {
            ++rep.inconsistentStates;
            if (!rep.haveFirstBad) {
                rep.haveFirstBad = true;
                rep.firstBadMask = mask;
                rep.firstBadMessage = message;
            }
        }
    }
    rep.distinctStates = verdictByKey.size();
    return rep;
}

std::string
maskToHex(std::uint64_t mask)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(mask));
    return buf;
}

bool
maskFromHex(const std::string &hex, std::uint64_t &out)
{
    if (hex.empty() || hex.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

} // namespace permute
} // namespace asap
