#include "dist/executor.hh"

#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "dist/lease.hh"
#include "exp/cache.hh"
#include "sim/log.hh"

namespace asap
{

namespace
{

/** The lease domain lives next to the cache entries it guards. */
std::string
leaseDir(const ResultCache &cache)
{
    return cache.diskDir() + "/leases";
}

ResultCache &
requireSharedCache(const DistOptions &opt, const char *who)
{
    ResultCache &cache = opt.cache ? *opt.cache : processCache();
    if (cache.diskDir().empty()) {
        fatal(who, " needs a shared result cache: set ASAP_CACHE_DIR "
                   "to a directory visible to every shard");
    }
    return cache;
}

LeaseConfig
leaseConfig(const DistOptions &opt, const ResultCache &cache)
{
    LeaseConfig lc;
    lc.dir = leaseDir(cache);
    lc.ttlSeconds = opt.leaseTtlSeconds;
    lc.heartbeatSeconds = opt.heartbeatSeconds;
    return lc;
}

RunOptions
engineOptions(const DistOptions &opt, ResultCache &cache)
{
    RunOptions ro;
    ro.jobs = opt.jobs;
    ro.cache = &cache;
    ro.progress = opt.progress;
    return ro;
}

} // namespace

ShardManifest
runJobsSharded(const std::vector<ExperimentJob> &jobs,
               const DistOptions &opt)
{
    const auto t0 = std::chrono::steady_clock::now();
    ResultCache &cache = requireSharedCache(opt, "--shard");
    const CacheStats cacheBefore = cache.stats();
    // A ^C'd shard must not strand its leases for a full TTL.
    installLeaseSignalHandler();

    ShardManifest m;
    m.shard = opt.shard;
    m.sweep = sweepId(jobs);

    // Same leader election as the engine: duplicates within the sweep
    // follow their leader, so sharding happens over distinct keys and
    // every shard agrees who leads (the list is identical everywhere).
    std::vector<std::string> keys(jobs.size());
    std::unordered_map<std::string, std::size_t> leaderOf;
    std::vector<std::size_t> leaders;
    m.jobs.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        keys[i] = jobKey(jobs[i]);
        m.jobs.push_back(toManifestJob(jobs[i], keys[i]));
        if (leaderOf.emplace(keys[i], i).second)
            leaders.push_back(i);
        else
            m.jobs[i].status = ShardJobStatus::Dup;
    }

    LeaseManager leases(leaseConfig(opt, cache));
    std::vector<std::size_t> acquired;
    for (std::size_t i : leaders) {
        const bool mine = shardOf(keys[i], opt.shard) == opt.shard.index;
        if (mine)
            ++m.owned;
        CachedResult hit;
        if (cache.lookup(keys[i], hit)) {
            m.jobs[i].status = ShardJobStatus::Cached;
            ++m.cachedHits;
            continue;
        }
        if (!mine && !opt.claim) {
            m.jobs[i].status = ShardJobStatus::Other;
            ++m.otherSkipped;
            continue;
        }
        if (leases.tryAcquire(keys[i]) == LeaseManager::Acquire::Busy) {
            // A live shard is simulating it right now (for our own
            // jobs that means a claimer reclaimed us after a stall —
            // losing the race is fine, the result will appear).
            m.jobs[i].status = ShardJobStatus::Leased;
            ++m.leasedSkipped;
            continue;
        }
        // Re-check under the lease: the previous holder may have
        // finished (insert, then release) between our lookup and the
        // acquire. With the lease held and the cache still empty, no
        // cooperating shard can be running this job — so the statuses
        // below are exact simulation claims, which is what lets the
        // merge driver prove at-most-once execution from manifests.
        if (cache.lookup(keys[i], hit)) {
            leases.release(keys[i]);
            m.jobs[i].status = ShardJobStatus::Cached;
            ++m.cachedHits;
            continue;
        }
        m.jobs[i].status = mine ? ShardJobStatus::Done
                                : ShardJobStatus::Claimed;
        if (!mine)
            ++m.claimed;
        acquired.push_back(i);
    }

    std::vector<ExperimentJob> batch;
    batch.reserve(acquired.size());
    for (std::size_t i : acquired)
        batch.push_back(jobs[i]);
    const SweepResult sub = runJobs(std::move(batch),
                                    engineOptions(opt, cache));
    // Release only after runJobs returns: every result is in the
    // cache by then, so observers see held -> done, never a gap.
    for (std::size_t i : acquired)
        leases.release(keys[i]);

    m.simulated = sub.uniqueRuns;
    m.traceHits = sub.traceHits;
    m.diskHits = cache.stats().diskHits - cacheBefore.diskHits;
    m.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const std::string dir =
        opt.manifestDir.empty() ? cache.diskDir() : opt.manifestDir;
    m.path = manifestPath(dir, m.sweep, m.shard);
    writeManifest(m.path, m);
    return m;
}

SweepResult
ensureJobs(const std::vector<ExperimentJob> &jobs,
           const DistOptions &opt)
{
    ResultCache &cache = requireSharedCache(opt, "ensureJobs");
    installLeaseSignalHandler();

    std::vector<std::string> keys(jobs.size());
    std::unordered_map<std::string, std::size_t> leaderOf;
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        keys[i] = jobKey(jobs[i]);
        if (leaderOf.emplace(keys[i], i).second)
            leaders.push_back(i);
    }

    LeaseManager leases(leaseConfig(opt, cache));
    std::vector<bool> done(jobs.size(), false);
    for (;;) {
        std::vector<ExperimentJob> batch;
        std::vector<std::string> batchKeys;
        bool waiting = false;
        for (std::size_t i : leaders) {
            if (done[i])
                continue;
            CachedResult hit;
            if (cache.lookup(keys[i], hit)) {
                done[i] = true;
                continue;
            }
            if (leases.tryAcquire(keys[i]) ==
                LeaseManager::Acquire::Busy) {
                waiting = true; // a live holder will produce it
                continue;
            }
            if (cache.lookup(keys[i], hit)) {
                leases.release(keys[i]);
                done[i] = true;
                continue;
            }
            batch.push_back(jobs[i]);
            batchKeys.push_back(keys[i]);
        }
        if (!batch.empty()) {
            runJobs(std::move(batch), engineOptions(opt, cache));
            for (const std::string &key : batchKeys)
                leases.release(key);
            continue; // re-scan: those leaders now cache-hit
        }
        if (!waiting)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opt.pollSeconds));
    }

    // Everything is cached now; this assembles the ordered result
    // without simulating (and fills duplicates from their leaders).
    return runJobs(jobs, engineOptions(opt, cache));
}

} // namespace asap
