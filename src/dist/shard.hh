/**
 * @file
 * Deterministic sweep sharding: how several hosts split one job list.
 *
 * A shard owns the dedup-leader keys whose stable hash lands on its
 * index. Assignment depends only on (job key, shard count, salt) —
 * never on host state or timing — so every shard of a sweep computes
 * the identical partition independently, with provable disjointness
 * (a hash has one residue) and coverage (every residue is some
 * shard). Duplicate jobs follow their leader: a configuration
 * repeated across a sweep belongs to exactly one shard, not one per
 * copy.
 */

#ifndef ASAP_DIST_SHARD_HH
#define ASAP_DIST_SHARD_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/sweep.hh"

namespace asap
{

/** Which slice of a sweep this process executes. */
struct ShardSpec
{
    unsigned index = 0; //!< this shard, in [0, count)
    unsigned count = 1; //!< total shards splitting the sweep
    /** Mixed into the assignment hash: bump to re-deal jobs across
     *  shards (e.g. after adding hosts) without touching job keys. */
    std::string salt;
};

/** Parse "i/n" (e.g. "0/3"); fatal on malformed input or i >= n. */
ShardSpec parseShardSpec(const std::string &text);

/** Printable "i/n" form. */
std::string toString(const ShardSpec &spec);

/** The shard index [0, spec.count) that owns @p job_key. */
unsigned shardOf(const std::string &job_key, const ShardSpec &spec);

/**
 * Stable identity of a job list: hash over the ordered job keys.
 * Shards of one sweep agree on it (same bench, same arguments ⇒ same
 * expansion), so manifests can refuse to merge across different
 * sweeps. @return 16 lowercase hex digits
 */
std::string sweepId(const std::vector<ExperimentJob> &jobs);

} // namespace asap

#endif // ASAP_DIST_SHARD_HH
