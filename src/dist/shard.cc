#include "dist/shard.hh"

#include <cstdio>
#include <cstdlib>

#include "exp/cache.hh"
#include "sim/log.hh"

namespace asap
{

ShardSpec
parseShardSpec(const std::string &text)
{
    ShardSpec spec;
    const std::size_t slash = text.find('/');
    char *end = nullptr;
    if (slash != std::string::npos && slash > 0 &&
        slash + 1 < text.size()) {
        spec.index = static_cast<unsigned>(
            std::strtoul(text.c_str(), &end, 10));
        if (end == text.c_str() + slash) {
            spec.count = static_cast<unsigned>(
                std::strtoul(text.c_str() + slash + 1, &end, 10));
            if (end == text.c_str() + text.size() && spec.count > 0 &&
                spec.index < spec.count) {
                return spec;
            }
        }
    }
    fatal("bad shard spec '", text, "' (want i/n with 0 <= i < n)");
    return spec; // unreachable
}

std::string
toString(const ShardSpec &spec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u/%u", spec.index, spec.count);
    return buf;
}

unsigned
shardOf(const std::string &job_key, const ShardSpec &spec)
{
    if (spec.count <= 1)
        return 0;
    // Salted so a cluster can re-deal a pathological partition; the
    // '|' separator keeps ("key", "salt") renderings unambiguous.
    return static_cast<unsigned>(
        stableHash64(job_key + "|" + spec.salt) % spec.count);
}

std::string
sweepId(const std::vector<ExperimentJob> &jobs)
{
    std::string text;
    for (const ExperimentJob &job : jobs) {
        text += jobKey(job);
        text += '\n';
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(stableHash64(text)));
    return buf;
}

} // namespace asap
