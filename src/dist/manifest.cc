#include "dist/manifest.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/config.hh"
#include "sim/log.hh"

namespace asap
{

namespace
{

/** Bump when the manifest wire format changes incompatibly.
 *  v2: job lines carry the media profile (between workload and
 *  model), so merged media sweeps reproduce their media columns. */
// v3 added the four permute columns to every job line (older readers
// reject v3 manifests cleanly; manifests are transient per-sweep
// artifacts, so there is no legacy-data concern).
constexpr int kManifestVersion = 3;

} // namespace

std::string
toString(ShardJobStatus status)
{
    switch (status) {
      case ShardJobStatus::Done: return "done";
      case ShardJobStatus::Claimed: return "claimed";
      case ShardJobStatus::Cached: return "cached";
      case ShardJobStatus::Leased: return "leased";
      case ShardJobStatus::Other: return "other";
      case ShardJobStatus::Dup: return "dup";
    }
    return "?";
}

bool
parseShardJobStatus(const std::string &text, ShardJobStatus &out)
{
    if (text == "done") out = ShardJobStatus::Done;
    else if (text == "claimed") out = ShardJobStatus::Claimed;
    else if (text == "cached") out = ShardJobStatus::Cached;
    else if (text == "leased") out = ShardJobStatus::Leased;
    else if (text == "other") out = ShardJobStatus::Other;
    else if (text == "dup") out = ShardJobStatus::Dup;
    else return false;
    return true;
}

std::string
serializeManifest(const ShardManifest &m)
{
    std::ostringstream os;
    os << "manifest " << kManifestVersion << '\n'
       << "shard " << m.shard.index << ' ' << m.shard.count << '\n';
    // Salt is rest-of-line so any user string round-trips; a lone '-'
    // marks the (common) empty salt.
    os << "salt " << (m.shard.salt.empty() ? "-" : m.shard.salt)
       << '\n'
       << "sweep " << m.sweep << '\n'
       << "jobs " << m.jobs.size() << '\n'
       << "owned " << m.owned << '\n'
       << "simulated " << m.simulated << '\n'
       << "claimed " << m.claimed << '\n'
       << "cachedHits " << m.cachedHits << '\n'
       << "leasedSkipped " << m.leasedSkipped << '\n'
       << "otherSkipped " << m.otherSkipped << '\n'
       << "diskHits " << m.diskHits << '\n'
       << "traceHits " << m.traceHits << '\n'
       << "wallSeconds " << m.wallSeconds << '\n';
    for (std::size_t i = 0; i < m.jobs.size(); ++i) {
        const ManifestJob &j = m.jobs[i];
        os << "job " << i << ' ' << j.key << ' ' << toString(j.kind)
           << ' ' << j.workload << ' ' << j.media << ' '
           << toString(j.model) << ' ' << toString(j.pm) << ' '
           << j.cores << ' ' << j.seed << ' ' << j.ops << ' '
           << j.crashTick << ' ' << j.permuteBound << ' '
           << j.permuteSeed << ' '
           << (j.permuteFault.empty() ? "-" : j.permuteFault) << ' '
           << (j.permuteState.empty() ? "-" : j.permuteState) << ' '
           << toString(j.status) << '\n';
    }
    os << "end 1\n";
    return os.str();
}

bool
deserializeManifest(const std::string &text, ShardManifest &out,
                    std::string *why)
{
    const auto reject = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    std::istringstream is(text);
    std::string field;
    ShardManifest m;
    std::size_t jobCount = 0;
    bool complete = false;
    while (is >> field) {
        if (field == "manifest") {
            int version = 0;
            is >> version;
            if (version != kManifestVersion) {
                return reject("unsupported manifest version " +
                              std::to_string(version));
            }
        }
        else if (field == "shard")
            is >> m.shard.index >> m.shard.count;
        else if (field == "salt") {
            is >> std::ws;
            std::getline(is, m.shard.salt);
            if (m.shard.salt == "-")
                m.shard.salt.clear();
        }
        else if (field == "sweep") is >> m.sweep;
        else if (field == "jobs") is >> jobCount;
        else if (field == "owned") is >> m.owned;
        else if (field == "simulated") is >> m.simulated;
        else if (field == "claimed") is >> m.claimed;
        else if (field == "cachedHits") is >> m.cachedHits;
        else if (field == "leasedSkipped") is >> m.leasedSkipped;
        else if (field == "otherSkipped") is >> m.otherSkipped;
        else if (field == "diskHits") is >> m.diskHits;
        else if (field == "traceHits") is >> m.traceHits;
        else if (field == "wallSeconds") is >> m.wallSeconds;
        else if (field == "job") {
            std::size_t idx = 0;
            std::string kind, model, pm, status;
            ManifestJob j;
            is >> idx >> j.key >> kind >> j.workload >> j.media >>
                model >> pm >> j.cores >> j.seed >> j.ops >>
                j.crashTick >> j.permuteBound >> j.permuteSeed >>
                j.permuteFault >> j.permuteState >> status;
            if (!is)
                return reject("malformed job line");
            if (idx != m.jobs.size())
                return reject("job lines out of order");
            if (j.permuteFault == "-")
                j.permuteFault.clear();
            if (j.permuteState == "-")
                j.permuteState.clear();
            if (kind == "run") j.kind = JobKind::Run;
            else if (kind == "crash") j.kind = JobKind::Crash;
            else if (kind == "permute") j.kind = JobKind::Permute;
            else return reject("unknown job kind '" + kind + "'");
            j.model = parseModelKind(model);
            j.pm = parsePersistencyModel(pm);
            if (!parseShardJobStatus(status, j.status))
                return reject("unknown job status '" + status + "'");
            m.jobs.push_back(std::move(j));
        }
        else if (field == "end") {
            complete = true;
            break;
        } else {
            return reject("unknown field '" + field + "'");
        }
        if (!is)
            return reject("malformed value for field '" + field + "'");
    }
    if (!complete)
        return reject("truncated manifest (no end marker)");
    if (m.jobs.size() != jobCount)
        return reject("job count mismatch (header says " +
                      std::to_string(jobCount) + ", found " +
                      std::to_string(m.jobs.size()) + ")");
    if (m.shard.count == 0 || m.shard.index >= m.shard.count)
        return reject("bad shard spec " + toString(m.shard));
    out = std::move(m);
    return true;
}

bool
writeManifest(const std::string &path, const ShardManifest &m)
{
    const std::string text = serializeManifest(m);
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmpName.str();
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (!out) {
        warn("cannot write shard manifest to ", path);
        return false;
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
        std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
    std::fclose(out);
    std::error_code ec;
    if (!wrote) {
        std::filesystem::remove(tmp, ec);
        warn("cannot write shard manifest to ", path);
        return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        warn("cannot move shard manifest into place at ", path);
        return false;
    }
    return true;
}

bool
loadManifest(const std::string &path, ShardManifest &out)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot read shard manifest ", path);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string why;
    if (!deserializeManifest(text.str(), out, &why)) {
        warn("rejecting shard manifest ", path, ": ", why);
        return false;
    }
    out.path = path;
    return true;
}

std::string
manifestPath(const std::string &dir, const std::string &sweep,
             const ShardSpec &shard)
{
    std::ostringstream os;
    os << dir << "/sweep-" << sweep << "-shard" << shard.index << "of"
       << shard.count << ".manifest";
    return os.str();
}

ExperimentJob
toExperimentJob(const ManifestJob &mj)
{
    // Only the emit/repro-facing fields are recorded; the remaining
    // SimConfig knobs stay at their defaults. The recorded key — not
    // a re-hash of this partial job — is what merge looks up, so a
    // bench's non-default knobs are honoured even though they are not
    // reproduced here.
    ExperimentJob job;
    job.workload = mj.workload;
    job.cfg.mediaProfile = mj.media;
    job.cfg.model = mj.model;
    job.cfg.persistency = mj.pm;
    job.cfg.numCores = mj.cores;
    job.cfg.seed = mj.seed;
    job.params.opsPerThread = mj.ops;
    job.params.seed = mj.seed;
    job.kind = mj.kind;
    job.crashTick = mj.crashTick;
    job.permuteBound = mj.permuteBound;
    job.permuteSeed = mj.permuteSeed;
    job.permuteFault = mj.permuteFault;
    job.permuteState = mj.permuteState;
    return job;
}

ManifestJob
toManifestJob(const ExperimentJob &job, const std::string &key)
{
    ManifestJob mj;
    mj.key = key;
    mj.kind = job.kind;
    mj.workload = job.workload;
    mj.media = job.cfg.mediaProfile;
    mj.model = job.cfg.model;
    mj.pm = job.cfg.persistency;
    mj.cores = job.cfg.numCores;
    mj.seed = job.params.seed;
    mj.ops = job.params.opsPerThread;
    mj.crashTick = job.crashTick;
    mj.permuteBound = job.permuteBound;
    mj.permuteSeed = job.permuteSeed;
    mj.permuteFault = job.permuteFault;
    mj.permuteState = job.permuteState;
    return mj;
}

} // namespace asap
