/**
 * @file
 * Per-shard manifest artifacts.
 *
 * A manifest is what a shard leaves behind besides cache entries: the
 * full job list of the sweep (so the merge driver needs no bench
 * binary), what this shard did with each job, and its execution
 * counters. Manifests are plain `field value` text like cache
 * entries, written temp-then-rename, and carry the sweep identity so
 * shards of different sweeps can never be merged by accident.
 */

#ifndef ASAP_DIST_MANIFEST_HH
#define ASAP_DIST_MANIFEST_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/shard.hh"
#include "exp/sweep.hh"

namespace asap
{

/** What a shard did with one job of the sweep. */
enum class ShardJobStatus
{
    Done,    //!< owned by this shard and simulated by it
    Claimed, //!< another shard's job, simulated here via lease claim
    Cached,  //!< result already in the shared cache; nothing to do
    Leased,  //!< a live shard holds its lease; left to that shard
    Other,   //!< another shard's job, not claimed (claim mode off)
    Dup,     //!< duplicate of an earlier job (follows its leader)
};

/** Printable status ("done", "claimed", ...). */
std::string toString(ShardJobStatus status);

/** Parse toString(ShardJobStatus) output. @return false if unknown */
bool parseShardJobStatus(const std::string &text, ShardJobStatus &out);

/** One sweep job as recorded in a manifest: enough to rebuild the
 *  emit-facing part of the ExperimentJob and its repro line, plus the
 *  authoritative cache key. */
struct ManifestJob
{
    std::string key;     //!< result-cache key (authoritative)
    JobKind kind = JobKind::Run;
    std::string workload;
    std::string media = kDefaultMediaProfile; //!< media profile
    ModelKind model = ModelKind::Baseline;
    PersistencyModel pm = PersistencyModel::Release;
    unsigned cores = 0;
    std::uint64_t seed = 0; //!< params/config seed
    unsigned ops = 0;       //!< params.opsPerThread
    Tick crashTick = 0;     //!< Crash/Permute jobs only
    std::uint64_t permuteBound = 4096; //!< Permute jobs only
    std::uint64_t permuteSeed = 1;     //!< Permute jobs only
    std::string permuteFault;          //!< Permute jobs only
    std::string permuteState;          //!< Permute jobs only
    ShardJobStatus status = ShardJobStatus::Other;
};

/** A shard's account of one sweep execution. */
struct ShardManifest
{
    ShardSpec shard;
    std::string sweep;  //!< sweepId() of the job list
    std::vector<ManifestJob> jobs; //!< every sweep job, in order

    std::size_t owned = 0;        //!< leader jobs assigned to this shard
    std::size_t simulated = 0;    //!< simulations this shard executed
    std::size_t claimed = 0;      //!< simulated on another shard's behalf
    std::size_t cachedHits = 0;   //!< leaders served by the shared cache
    std::size_t leasedSkipped = 0; //!< left to a live lease holder
    std::size_t otherSkipped = 0;  //!< left to their owning shard
    std::uint64_t diskHits = 0;   //!< cache disk-tier hits while running
    std::uint64_t traceHits = 0;  //!< memoised-trace reuses
    double wallSeconds = 0.0;

    /** Where writeManifest()/the executor stored it (not serialized). */
    std::string path;
};

/** Render @p m as canonical manifest text. */
std::string serializeManifest(const ShardManifest &m);

/**
 * Parse serializeManifest() output.
 * @param why when non-null, receives the rejection reason on failure
 * @return false if truncated, malformed, or a future version
 */
bool deserializeManifest(const std::string &text, ShardManifest &out,
                         std::string *why = nullptr);

/** Write @p m to @p path (temp + fsync + atomic rename).
 *  @return false if the file cannot be written */
bool writeManifest(const std::string &path, const ShardManifest &m);

/** Load a manifest from @p path (warns and returns false on reject). */
bool loadManifest(const std::string &path, ShardManifest &out);

/** Canonical manifest location for one shard of one sweep:
 *  `<dir>/sweep-<sweep>-shard<i>of<n>.manifest`. A re-run of the same
 *  shard overwrites its previous manifest — the newer one subsumes
 *  it. */
std::string manifestPath(const std::string &dir,
                         const std::string &sweep,
                         const ShardSpec &shard);

/** Rebuild the emit-facing ExperimentJob a manifest row describes. */
ExperimentJob toExperimentJob(const ManifestJob &mj);

/** Build the manifest row (sans status) for @p job. */
ManifestJob toManifestJob(const ExperimentJob &job,
                          const std::string &key);

} // namespace asap

#endif // ASAP_DIST_MANIFEST_HH
