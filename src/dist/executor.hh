/**
 * @file
 * Shard-side sweep execution.
 *
 * runJobsSharded() is what a bench runs under `--shard i/n`: it takes
 * the full expanded job list (every shard expands the same list — the
 * sweep is defined by the bench arguments, not by who runs it),
 * simulates the slice this shard owns, and leaves behind cache
 * entries plus a ShardManifest. With `--claim` it additionally picks
 * up jobs whose owning shard died, using stale-lease reclaim.
 *
 * ensureJobs() is the blocking variant for prerequisite phases (e.g.
 * crash-campaign probes, which every shard needs in full): it returns
 * only once *all* leader results exist in the shared cache, simulating
 * whatever it can win leases for and polling for the rest.
 *
 * Both require a cache with a disk tier (ASAP_CACHE_DIR) — the shared
 * directory is the only coordination channel shards have.
 */

#ifndef ASAP_DIST_EXECUTOR_HH
#define ASAP_DIST_EXECUTOR_HH

#include <string>
#include <vector>

#include "dist/manifest.hh"
#include "dist/shard.hh"
#include "exp/engine.hh"

namespace asap
{

/** Knobs for one sharded sweep execution. */
struct DistOptions
{
    ShardSpec shard;           //!< which slice of the sweep is ours
    bool claim = false;        //!< reclaim dead shards' jobs
    unsigned jobs = 0;         //!< worker threads (0 = default)
    bool progress = false;     //!< RunOptions::progress passthrough
    ResultCache *cache = nullptr; //!< nullptr = processCache()

    double leaseTtlSeconds = 60.0; //!< LeaseConfig::ttlSeconds
    double heartbeatSeconds = 10.0; //!< LeaseConfig::heartbeatSeconds
    double pollSeconds = 0.05;  //!< ensureJobs() wait-for-holder period

    /** Where to write the manifest; empty = the cache disk dir. */
    std::string manifestDir;
};

/**
 * Run this shard's slice of @p jobs (plus stale claims when
 * opt.claim). Results go to the shared cache only — per-job results
 * are not returned, because no single shard holds them all; merge
 * with mergeShards()/bench/sweep_merge. The manifest is also written
 * to disk (see ShardManifest::path).
 *
 * Fatals if the cache has no disk tier.
 */
ShardManifest runJobsSharded(const std::vector<ExperimentJob> &jobs,
                             const DistOptions &opt);

/**
 * Block until every distinct job in @p jobs has a result in the
 * shared cache — simulating the ones this process wins leases for,
 * waiting out live holders — then return the assembled SweepResult
 * (all cache hits by construction). Cluster-wide each job simulates
 * at most once.
 *
 * Fatals if the cache has no disk tier.
 */
SweepResult ensureJobs(const std::vector<ExperimentJob> &jobs,
                       const DistOptions &opt);

} // namespace asap

#endif // ASAP_DIST_EXECUTOR_HH
