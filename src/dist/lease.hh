/**
 * @file
 * Cooperative job leases over a shared directory.
 *
 * The claim protocol that lets shards on different hosts agree who
 * simulates a job, using nothing but the shared cache filesystem:
 *
 *  - acquire: create `<key>.lease` with O_CREAT|O_EXCL — the POSIX
 *    primitive that is atomic even on NFS-style shared mounts; exactly
 *    one contender succeeds.
 *  - heartbeat: a background thread refreshes the mtime of every held
 *    lease, so liveness is observable from any host.
 *  - reclaim: a lease whose mtime is older than the TTL belongs to a
 *    crashed shard. Stealing is two steps — atomically rename the
 *    stale file away (one winner), then re-acquire with O_EXCL — so
 *    two reclaimers can never both think they own the job.
 *  - release: remove the file (after the result is in the cache, so
 *    observers transition held → done, never held → missing → done).
 *
 * Losing a race is never an error: the job is simply someone else's,
 * and its result will appear in the shared ResultCache.
 */

#ifndef ASAP_DIST_LEASE_HH
#define ASAP_DIST_LEASE_HH

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <condition_variable>

namespace asap
{

/** Tuning for one lease domain (normally one cache directory). */
struct LeaseConfig
{
    std::string dir;              //!< shared directory for lease files
    double ttlSeconds = 60.0;     //!< staleness threshold for reclaim
    double heartbeatSeconds = 10.0; //!< held-lease mtime refresh period
};

/** Acquire/heartbeat/release over one lease directory. */
class LeaseManager
{
  public:
    explicit LeaseManager(LeaseConfig cfg);

    /** Stops the heartbeat and releases every still-held lease. */
    ~LeaseManager();

    LeaseManager(const LeaseManager &) = delete;
    LeaseManager &operator=(const LeaseManager &) = delete;

    enum class Acquire
    {
        Acquired, //!< we own the job; run it, then release()
        Busy,     //!< a live shard owns it; its result will appear
    };

    /** Try to take the lease for @p key (stealing it if stale). */
    Acquire tryAcquire(const std::string &key);

    /** Drop the lease for @p key (call after the cache insert). */
    void release(const std::string &key);

    /** Leases currently held by this manager. */
    std::size_t heldCount() const;

    /** Unlink every lease file registered in the emergency slot
     *  table. Async-signal-safe (unlink + atomics only); this is the
     *  body of the SIGINT/SIGTERM handler, exposed so tests and
     *  embedders can invoke it directly. Returns the number of lease
     *  files released. */
    static std::size_t emergencyReleaseAll();

    /** Lease files currently registered for emergency release. */
    static std::size_t emergencyRegisteredCount();

    /** The lease file path for @p key. */
    std::string leasePath(const std::string &key) const;

    /** True if the lease file at @p path is younger than the TTL. */
    bool isFresh(const std::string &path) const;

  private:
    void heartbeatLoop();

    LeaseConfig cfg;
    mutable std::mutex mu;
    std::condition_variable stopCv;
    std::set<std::string> held; //!< lease paths to heartbeat
    bool stopping = false;
    std::thread heartbeat;
};

/**
 * Install a SIGINT/SIGTERM handler that unlinks every lease file this
 * process currently holds (via LeaseManager::emergencyReleaseAll),
 * restores the default disposition, and re-raises — so an interrupted
 * batch bench dies with the right signal status but never strands
 * leases that would stall other shards for a full TTL. Idempotent;
 * call from single-threaded startup. Long-running embedders that
 * manage signals themselves (asapd) skip this and rely on graceful
 * LeaseManager teardown instead.
 */
void installLeaseSignalHandler();

} // namespace asap

#endif // ASAP_DIST_LEASE_HH
