#include "dist/merge.hh"

#include <unordered_map>
#include <utility>

#include "exp/cache.hh"

namespace asap
{

MergeReport
mergeShards(const std::vector<ShardManifest> &manifests,
            ResultCache &cache)
{
    MergeReport report;
    if (manifests.empty()) {
        report.error = "no shard manifests to merge";
        return report;
    }

    const ShardManifest &first = manifests[0];
    report.sweep = first.sweep;
    for (const ShardManifest &m : manifests) {
        if (m.sweep != report.sweep) {
            report.error = "manifest " + m.path + " is for sweep " +
                           m.sweep + ", not " + report.sweep +
                           " — refusing to mix sweeps";
            return report;
        }
        if (m.jobs.size() != first.jobs.size()) {
            report.error = "manifest " + m.path + " lists " +
                           std::to_string(m.jobs.size()) +
                           " jobs, expected " +
                           std::to_string(first.jobs.size());
            return report;
        }
        report.shardsSeen.push_back(m.shard);
        report.simulatedTotal += m.simulated;
    }

    // At-most-once audit: Done/Claimed are exact simulation claims
    // (shards only record them with the lease held and the cache
    // checked empty), so a key claimed twice was simulated twice.
    std::unordered_map<std::string, std::size_t> simulatedBy;
    for (const ShardManifest &m : manifests) {
        for (const ManifestJob &j : m.jobs) {
            if (j.status == ShardJobStatus::Done ||
                j.status == ShardJobStatus::Claimed) {
                ++simulatedBy[j.key];
            }
        }
    }
    for (const auto &[key, count] : simulatedBy) {
        if (count > 1)
            report.duplicateSims += count - 1;
    }

    SweepResult &sr = report.result;
    sr.jobs.reserve(first.jobs.size());
    sr.results.resize(first.jobs.size());
    sr.verdicts.resize(first.jobs.size());
    for (std::size_t i = 0; i < first.jobs.size(); ++i) {
        const ManifestJob &mj = first.jobs[i];
        sr.jobs.push_back(toExperimentJob(mj));
        CachedResult hit;
        if (cache.lookup(mj.key, hit)) {
            sr.results[i] = std::move(hit.run);
            sr.verdicts[i] = std::move(hit.verdict);
            ++sr.cacheHits;
        } else {
            report.missing.push_back(i);
        }
    }
    return report;
}

} // namespace asap
