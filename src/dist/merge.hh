/**
 * @file
 * Merge driver: combine shard manifests + the shared cache back into
 * one SweepResult, as if a single host had run the whole sweep.
 *
 * Manifests carry the full ordered job list, so the merge needs no
 * bench binary and no re-expansion — it looks every recorded key up
 * in the cache and reports holes (jobs no surviving shard completed)
 * instead of guessing. Because manifests also record which shard
 * *simulated* each job, the merge can prove the cluster-wide
 * at-most-once property: any key simulated by two shards is a
 * duplicate, and a healthy claim protocol produces zero.
 */

#ifndef ASAP_DIST_MERGE_HH
#define ASAP_DIST_MERGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dist/manifest.hh"
#include "exp/engine.hh"

namespace asap
{

/** The outcome of merging one sweep's shard manifests. */
struct MergeReport
{
    std::string sweep;               //!< merged sweep identity
    std::vector<ShardSpec> shardsSeen; //!< one per accepted manifest

    /**
     * The reassembled sweep, results served from the cache in the
     * manifests' job order. Rows listed in `missing` hold
     * default-constructed results — check before trusting them.
     */
    SweepResult result;

    std::vector<std::size_t> missing; //!< job indices with no result

    std::size_t simulatedTotal = 0; //!< sum of shard `simulated`
    std::size_t duplicateSims = 0;  //!< keys simulated by >1 shard

    /** Non-empty if the manifests cannot be merged at all (different
     *  sweeps, inconsistent job lists, no manifests). */
    std::string error;

    bool ok() const { return error.empty(); }
    bool complete() const { return ok() && missing.empty(); }
};

/**
 * Merge @p manifests over @p cache. Manifests must all describe the
 * same sweep; shard coverage gaps are reported via `missing`, not
 * errors (a partial merge is still useful for progress monitoring).
 */
MergeReport mergeShards(const std::vector<ShardManifest> &manifests,
                        ResultCache &cache);

} // namespace asap

#endif // ASAP_DIST_MERGE_HH
