#include "dist/lease.hh"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "sim/log.hh"

namespace asap
{

namespace
{

namespace fs = std::filesystem;

/**
 * Emergency release slot table.
 *
 * A signal handler may only touch async-signal-safe state, so the set
 * of held lease paths is mirrored into a fixed table of atomic slots:
 * acquire claims a free slot (CAS Free -> Claiming, copy the path,
 * publish as Armed), release disarms it, and the SIGINT/SIGTERM
 * handler walks Armed slots calling unlink(). Slot exhaustion or an
 * oversized path just means that lease falls back to TTL reclaim if
 * the process dies — never an error.
 */
constexpr std::size_t kEmergencySlots = 256;
constexpr std::size_t kEmergencyPathMax = 512;

enum SlotState : int { SlotFree = 0, SlotClaiming = 1, SlotArmed = 2 };

struct EmergencySlot
{
    std::atomic<int> state{SlotFree};
    char path[kEmergencyPathMax];
};

EmergencySlot gEmergencySlots[kEmergencySlots];

void
armEmergencySlot(const std::string &path)
{
    if (path.size() + 1 > kEmergencyPathMax)
        return;
    for (std::size_t i = 0; i < kEmergencySlots; ++i) {
        int expect = SlotFree;
        if (!gEmergencySlots[i].state.compare_exchange_strong(
                expect, SlotClaiming, std::memory_order_acq_rel))
            continue;
        std::memcpy(gEmergencySlots[i].path, path.c_str(),
                    path.size() + 1);
        gEmergencySlots[i].state.store(SlotArmed,
                                       std::memory_order_release);
        return;
    }
}

void
disarmEmergencySlot(const std::string &path)
{
    for (std::size_t i = 0; i < kEmergencySlots; ++i) {
        if (gEmergencySlots[i].state.load(std::memory_order_acquire) !=
            SlotArmed)
            continue;
        if (std::strcmp(gEmergencySlots[i].path, path.c_str()) != 0)
            continue;
        gEmergencySlots[i].state.store(SlotFree,
                                       std::memory_order_release);
        return;
    }
}

extern "C" void
leaseEmergencyHandler(int signo)
{
    // unlink(2), sigaction, and raise are async-signal-safe; nothing
    // here allocates or locks.
    LeaseManager::emergencyReleaseAll();
    ::signal(signo, SIG_DFL);
    ::raise(signo);
}

/** Process-unique suffix for steal-rename temp names. */
std::string
uniqueSuffix()
{
    static std::atomic<unsigned> seq{0};
    std::ostringstream os;
    os << ::getpid() << '.' << std::this_thread::get_id() << '.'
       << seq.fetch_add(1);
    return os.str();
}

/** O_EXCL-create @p path holding one line identifying the owner. */
bool
createLeaseFile(const std::string &path)
{
    const int fd = ::open(path.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    char host[256] = "?";
    (void)::gethostname(host, sizeof(host) - 1);
    char line[320];
    const int n = std::snprintf(line, sizeof(line), "owner %s pid %d\n",
                                host, static_cast<int>(::getpid()));
    if (n > 0)
        (void)!::write(fd, line, static_cast<std::size_t>(n));
    ::close(fd);
    return true;
}

} // namespace

LeaseManager::LeaseManager(LeaseConfig config) : cfg(std::move(config))
{
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) {
        fatal("cannot create lease dir ", cfg.dir, ": ", ec.message());
    }
    heartbeat = std::thread([this] { heartbeatLoop(); });
}

LeaseManager::~LeaseManager()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    stopCv.notify_all();
    heartbeat.join();
    // Abandoning leases would stall claimers for a full TTL; release
    // explicitly. Results are already in the cache by the time a
    // caller lets go of its manager.
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string &path : held) {
        disarmEmergencySlot(path);
        std::error_code ec;
        fs::remove(path, ec);
    }
    held.clear();
}

std::size_t
LeaseManager::emergencyReleaseAll()
{
    std::size_t released = 0;
    for (std::size_t i = 0; i < kEmergencySlots; ++i) {
        int expect = SlotArmed;
        if (!gEmergencySlots[i].state.compare_exchange_strong(
                expect, SlotClaiming, std::memory_order_acq_rel))
            continue;
        if (::unlink(gEmergencySlots[i].path) == 0)
            ++released;
        gEmergencySlots[i].state.store(SlotFree,
                                       std::memory_order_release);
    }
    return released;
}

std::size_t
LeaseManager::emergencyRegisteredCount()
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < kEmergencySlots; ++i) {
        if (gEmergencySlots[i].state.load(std::memory_order_acquire) ==
            SlotArmed)
            ++n;
    }
    return n;
}

void
installLeaseSignalHandler()
{
    static std::atomic<bool> installed{false};
    if (installed.exchange(true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = leaseEmergencyHandler;
    sigemptyset(&sa.sa_mask);
    for (int signo : {SIGINT, SIGTERM}) {
        struct sigaction old;
        if (::sigaction(signo, nullptr, &old) == 0 &&
            old.sa_handler == SIG_IGN)
            continue; // respect an inherited "ignore" (nohup-style)
        (void)::sigaction(signo, &sa, nullptr);
    }
}

std::string
LeaseManager::leasePath(const std::string &key) const
{
    return cfg.dir + "/" + key + ".lease";
}

bool
LeaseManager::isFresh(const std::string &path) const
{
    std::error_code ec;
    const auto written = fs::last_write_time(path, ec);
    if (ec)
        return false; // vanished: owner released (or reclaimed away)
    const auto age = fs::file_time_type::clock::now() - written;
    return std::chrono::duration<double>(age).count() < cfg.ttlSeconds;
}

LeaseManager::Acquire
LeaseManager::tryAcquire(const std::string &key)
{
    const std::string path = leasePath(key);
    // Two rounds: a failed first create may be due to a stale lease,
    // which we steal and then re-try once. A second failure means a
    // live contender beat us to it — that's Busy, not an error.
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (createLeaseFile(path)) {
            {
                std::lock_guard<std::mutex> lock(mu);
                held.insert(path);
            }
            armEmergencySlot(path);
            return Acquire::Acquired;
        }
        if (errno != EEXIST)
            return Acquire::Busy; // unexpected FS error: be cautious
        if (isFresh(path))
            return Acquire::Busy;
        // Stale: rename it away. Exactly one reclaimer wins the
        // rename; losers see ENOENT (the winner took it) and loop to
        // contend on the O_EXCL create above.
        const std::string steal = path + ".steal." + uniqueSuffix();
        std::error_code ec;
        fs::rename(path, steal, ec);
        if (!ec)
            fs::remove(steal, ec);
    }
    return Acquire::Busy;
}

void
LeaseManager::release(const std::string &key)
{
    const std::string path = leasePath(key);
    {
        std::lock_guard<std::mutex> lock(mu);
        held.erase(path);
    }
    disarmEmergencySlot(path);
    std::error_code ec;
    fs::remove(path, ec);
}

std::size_t
LeaseManager::heldCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return held.size();
}

void
LeaseManager::heartbeatLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        stopCv.wait_for(lock, std::chrono::duration<double>(
                                  cfg.heartbeatSeconds),
                        [this] { return stopping; });
        if (stopping)
            return;
        for (const std::string &path : held) {
            std::error_code ec;
            fs::last_write_time(path, fs::file_time_type::clock::now(),
                                ec);
        }
    }
}

} // namespace asap
