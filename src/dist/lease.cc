#include "dist/lease.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "sim/log.hh"

namespace asap
{

namespace
{

namespace fs = std::filesystem;

/** Process-unique suffix for steal-rename temp names. */
std::string
uniqueSuffix()
{
    static std::atomic<unsigned> seq{0};
    std::ostringstream os;
    os << ::getpid() << '.' << std::this_thread::get_id() << '.'
       << seq.fetch_add(1);
    return os.str();
}

/** O_EXCL-create @p path holding one line identifying the owner. */
bool
createLeaseFile(const std::string &path)
{
    const int fd = ::open(path.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    char host[256] = "?";
    (void)::gethostname(host, sizeof(host) - 1);
    char line[320];
    const int n = std::snprintf(line, sizeof(line), "owner %s pid %d\n",
                                host, static_cast<int>(::getpid()));
    if (n > 0)
        (void)!::write(fd, line, static_cast<std::size_t>(n));
    ::close(fd);
    return true;
}

} // namespace

LeaseManager::LeaseManager(LeaseConfig config) : cfg(std::move(config))
{
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) {
        fatal("cannot create lease dir ", cfg.dir, ": ", ec.message());
    }
    heartbeat = std::thread([this] { heartbeatLoop(); });
}

LeaseManager::~LeaseManager()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    stopCv.notify_all();
    heartbeat.join();
    // Abandoning leases would stall claimers for a full TTL; release
    // explicitly. Results are already in the cache by the time a
    // caller lets go of its manager.
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string &path : held) {
        std::error_code ec;
        fs::remove(path, ec);
    }
    held.clear();
}

std::string
LeaseManager::leasePath(const std::string &key) const
{
    return cfg.dir + "/" + key + ".lease";
}

bool
LeaseManager::isFresh(const std::string &path) const
{
    std::error_code ec;
    const auto written = fs::last_write_time(path, ec);
    if (ec)
        return false; // vanished: owner released (or reclaimed away)
    const auto age = fs::file_time_type::clock::now() - written;
    return std::chrono::duration<double>(age).count() < cfg.ttlSeconds;
}

LeaseManager::Acquire
LeaseManager::tryAcquire(const std::string &key)
{
    const std::string path = leasePath(key);
    // Two rounds: a failed first create may be due to a stale lease,
    // which we steal and then re-try once. A second failure means a
    // live contender beat us to it — that's Busy, not an error.
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (createLeaseFile(path)) {
            std::lock_guard<std::mutex> lock(mu);
            held.insert(path);
            return Acquire::Acquired;
        }
        if (errno != EEXIST)
            return Acquire::Busy; // unexpected FS error: be cautious
        if (isFresh(path))
            return Acquire::Busy;
        // Stale: rename it away. Exactly one reclaimer wins the
        // rename; losers see ENOENT (the winner took it) and loop to
        // contend on the O_EXCL create above.
        const std::string steal = path + ".steal." + uniqueSuffix();
        std::error_code ec;
        fs::rename(path, steal, ec);
        if (!ec)
            fs::remove(steal, ec);
    }
    return Acquire::Busy;
}

void
LeaseManager::release(const std::string &key)
{
    const std::string path = leasePath(key);
    {
        std::lock_guard<std::mutex> lock(mu);
        held.erase(path);
    }
    std::error_code ec;
    fs::remove(path, ec);
}

std::size_t
LeaseManager::heldCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return held.size();
}

void
LeaseManager::heartbeatLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        stopCv.wait_for(lock, std::chrono::duration<double>(
                                  cfg.heartbeatSeconds),
                        [this] { return stopping; });
        if (stopping)
            return;
        for (const std::string &path : held) {
            std::error_code ec;
            fs::last_write_time(path, fs::file_time_type::clock::now(),
                                ec);
        }
    }
}

} // namespace asap
