/**
 * @file
 * Pull-based operation sources.
 *
 * The timing cores used to replay a fully materialized TraceSet — one
 * vector of ops per thread, generated up front. That caps a run's size
 * at whatever fits in host memory. OpSource inverts the coupling: a
 * core *pulls* its next TraceOp when the previous one retires, so a
 * generator can synthesize the stream incrementally in constant
 * memory (src/serve/), while the classic materialized path survives
 * as the trivial MaterializedSource implementation below — every
 * pre-streaming output stays byte-identical.
 *
 * Contract:
 *  - next(t) is called from the simulation host thread only (event
 *    callbacks are serialized per core), and must return synchronously
 *    — a source may never block on another thread's progress, or the
 *    single-threaded event loop deadlocks;
 *  - each thread's stream must be terminated by an End op, after
 *    which the core stops pulling;
 *  - streams must be a pure function of the source's construction
 *    parameters (seed included), never of simulated time — that is
 *    what makes results identical across --jobs, shards and
 *    --par-domains.
 */

#ifndef ASAP_CPU_OP_SOURCE_HH
#define ASAP_CPU_OP_SOURCE_HH

#include <cstddef>
#include <utility>

#include "cpu/op.hh"
#include "sim/log.hh"

namespace asap
{

/** Supplies one thread's next replayable operation on demand. */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** The next operation of thread @p t (must end with End). */
    virtual TraceOp next(unsigned t) = 0;

    /** Number of per-thread streams this source carries. */
    virtual unsigned numThreads() const = 0;
};

/**
 * The materialized path as an OpSource: wraps a recorded TraceSet and
 * deals it out per-thread. This is byte-for-byte the pre-streaming
 * replay (same ops, same order); the only change is who holds the
 * cursor.
 */
class MaterializedSource : public OpSource
{
  public:
    explicit MaterializedSource(TraceSet traces)
        : traces_(std::move(traces)), cursors_(traces_.threads.size(), 0)
    {
    }

    TraceOp
    next(unsigned t) override
    {
        auto &ops = traces_.threads[t];
        panic_if(cursors_[t] >= ops.size(),
                 "core ", t, " ran off its trace");
        return ops[cursors_[t]++];
    }

    unsigned
    numThreads() const override
    {
        return static_cast<unsigned>(traces_.threads.size());
    }

    const TraceSet &traces() const { return traces_; }

  private:
    TraceSet traces_;
    std::vector<std::size_t> cursors_;
};

} // namespace asap

#endif // ASAP_CPU_OP_SOURCE_HH
