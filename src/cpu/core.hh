/**
 * @file
 * Timing core: replays one thread's trace.
 *
 * A simple in-order timing core (the role gem5's TimingSimpleCPU plays
 * in the artifact's warmup phases): loads block for their cache
 * latency, stores retire in a cycle into the caches and the persist
 * path, fences invoke the persistence model and stall as long as the
 * model defers completion, and acquires block on the release board
 * until the matching release has executed in simulated time.
 *
 * Under epoch persistency the core turns directory conflicts into
 * cross-thread epoch dependencies (conflictSource / conflictDependent
 * on the models); under release persistency only acquire/release
 * create dependencies and conflicts are ignored (race-free code,
 * Section IV-E).
 */

#ifndef ASAP_CPU_CORE_HH
#define ASAP_CPU_CORE_HH

#include <cstdint>
#include <vector>

#include "coherence/cache_hierarchy.hh"
#include "cpu/op.hh"
#include "cpu/op_source.hh"
#include "cpu/release_board.hh"
#include "persist/model.hh"
#include "recovery/run_log.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

/** One replaying core. */
class Core
{
  public:
    Core(std::uint16_t thread, const SimConfig &cfg, EventQueue &eq,
         StatSet &stats, CacheHierarchy &caches, ReleaseBoard &board,
         std::vector<PersistModel *> &models, RunLog *log,
         OpSource &src);

    /** Schedule the first operation. */
    void start();

    bool finished() const { return done; }
    Tick finishTick() const { return doneTick; }

    /** Stop processing (crash injection). */
    void halt() { halted = true; }

    /** Operations retired so far. */
    std::uint64_t retired() const { return pc; }

  private:
    void next();
    void scheduleNext(Tick delay);

    /** Handle a directory conflict under epoch persistency. */
    void handleConflict(const CacheAccess &acc);

    PersistModel &model() { return *models[thread]; }

    std::uint16_t thread;
    const SimConfig &cfg;
    EventQueue &eq;
    StatSet &stats;
    CacheHierarchy &caches;
    ReleaseBoard &board;
    std::vector<PersistModel *> &models;
    RunLog *log;
    OpSource &src;

    bool epConflicts; //!< EP mode with dependency-tracking hardware

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stOpsRetired;
    std::uint64_t *stPmStores;
    std::uint64_t *stOfences;
    std::uint64_t *stDfences;
    std::uint64_t *stReleases;
    std::uint64_t *stAcquires;
    LogHistogram *stPersistLat; //!< dfence issue→complete tick deltas

    std::size_t pc = 0;
    bool done = false;
    bool halted = false;
    Tick doneTick = 0;
};

} // namespace asap

#endif // ASAP_CPU_CORE_HH
