/**
 * @file
 * Trace operation format.
 *
 * Workloads execute functionally at trace-generation time and record
 * one TraceOp stream per thread. The timing cores replay the streams;
 * cross-thread synchronisation is expressed as acquire edges that
 * reference a release ordinal on another thread, so lock handoff
 * happens in simulated time.
 */

#ifndef ASAP_CPU_OP_HH
#define ASAP_CPU_OP_HH

#include <cstdint>
#include <vector>

namespace asap
{

/** Kinds of replayable operations. */
enum class OpType : std::uint8_t
{
    Load,       //!< read of a line (PM or volatile)
    Store,      //!< write of a line (PM stores enter the persist path)
    Compute,    //!< CPU-only work: consumes cycles
    OFence,     //!< intra-thread ordering barrier
    DFence,     //!< durability barrier
    Acquire,    //!< lock acquire (may carry a cross-thread sync edge)
    Release,    //!< lock release (publishes a sync point)
    End,        //!< end of the thread's trace
};

/** One replayable operation. */
struct TraceOp
{
    OpType type = OpType::End;
    bool isPm = false;          //!< address maps to persistent memory
    std::uint32_t cycles = 0;   //!< Compute duration
    std::uint64_t addr = 0;     //!< byte address (memory ops, locks)
    std::uint64_t value = 0;    //!< unique token (PM stores)
    std::int32_t srcThread = -1; //!< Acquire: releasing thread
    std::uint64_t srcRelease = 0; //!< Acquire: release ordinal (1-based)
};

/** Whole-program trace: one op stream per thread. */
struct TraceSet
{
    std::vector<std::vector<TraceOp>> threads;

    explicit TraceSet(unsigned num_threads = 0) : threads(num_threads) {}

    /** Total operations across all threads. */
    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &t : threads)
            n += t.size();
        return n;
    }
};

} // namespace asap

#endif // ASAP_CPU_OP_HH
