#include "cpu/core.hh"

#include <algorithm>

#include "mem/packets.hh"
#include "sim/log.hh"

namespace asap
{

Core::Core(std::uint16_t thread, const SimConfig &cfg, EventQueue &eq,
           StatSet &stats, CacheHierarchy &caches, ReleaseBoard &board,
           std::vector<PersistModel *> &models, RunLog *log,
           OpSource &src)
    : thread(thread), cfg(cfg), eq(eq), stats(stats), caches(caches),
      board(board), models(models), log(log), src(src),
      epConflicts(cfg.persistency == PersistencyModel::Epoch &&
                  (cfg.model == ModelKind::Hops ||
                   cfg.model == ModelKind::Asap)),
      stOpsRetired(&stats.counter("core.opsRetired")),
      stPmStores(&stats.counter("core.pmStores")),
      stOfences(&stats.counter("core.ofences")),
      stDfences(&stats.counter("core.dfences")),
      stReleases(&stats.counter("core.releases")),
      stAcquires(&stats.counter("core.acquires")),
      stPersistLat(&stats.logHist("core.persistLatency"))
{
}

void
Core::start()
{
    eq.scheduleAfter(0, [this]() { next(); });
}

void
Core::scheduleNext(Tick delay)
{
    eq.scheduleAfter(std::max<Tick>(delay, 1), [this]() { next(); });
}

void
Core::handleConflict(const CacheAccess &acc)
{
    if (!epConflicts || !acc.conflict)
        return;
    // MESI forwarded the request to the modifying core: it replies
    // with its current epoch and both sides split epochs.
    const std::uint64_t src_epoch =
        models[acc.srcThread]->conflictSource(thread);
    if (src_epoch == 0)
        return;
    model().conflictDependent(acc.srcThread, src_epoch);
    if (log) {
        log->recordEdge(thread, model().currentEpoch(), acc.srcThread,
                        src_epoch);
    }
}

void
Core::next()
{
    if (halted || done)
        return;
    const TraceOp op = src.next(thread);
    ++pc;
    ++*stOpsRetired;

    switch (op.type) {
      case OpType::Compute:
        scheduleNext(op.cycles);
        return;

      case OpType::Load: {
        CacheAccess acc =
            caches.access(thread, lineOf(op.addr), false, op.isPm);
        handleConflict(acc);
        scheduleNext(acc.latency);
        return;
      }

      case OpType::Store: {
        CacheAccess acc =
            caches.access(thread, lineOf(op.addr), true, op.isPm);
        handleConflict(acc);
        if (!op.isPm) {
            scheduleNext(1);
            return;
        }
        ++*stPmStores;
        if (log) {
            log->recordStore(thread, model().currentEpoch(),
                             lineOf(op.addr), op.value);
        }
        model().pmStore(lineOf(op.addr), op.value,
                        [this]() { scheduleNext(1); });
        return;
      }

      case OpType::OFence:
        ++*stOfences;
        model().ofence([this]() { scheduleNext(1); });
        return;

      case OpType::DFence: {
        ++*stDfences;
        // Persist latency: how long this thread waited for durability.
        // Completion runs in the core's own domain, so sampling here is
        // identical under the sequential and parallel kernels.
        const Tick issued = eq.now();
        model().dfence([this, issued]() {
            stPersistLat->sample(eq.now() - issued);
            scheduleNext(1);
        });
        return;
      }

      case OpType::Release: {
        ++*stReleases;
        // Capture the epoch being published before the 1-sided
        // barrier closes it.
        const std::uint64_t rel_epoch = model().currentEpoch();
        const std::uint64_t lock_line = lineOf(op.addr);
        model().release([this, rel_epoch, lock_line]() {
            // The release writes the lock word; under EP an acquiring
            // thread's access to it raises the dependency.
            CacheAccess acc =
                caches.access(thread, lock_line, true, false);
            (void)acc; // the releaser itself never self-conflicts
            board.publish(thread, rel_epoch);
            scheduleNext(1);
        });
        return;
      }

      case OpType::Acquire: {
        ++*stAcquires;
        const TraceOp &aop = op;
        auto proceed = [this, aop]() {
            CacheAccess acc =
                caches.access(thread, lineOf(aop.addr), true, false);
            if (epConflicts) {
                // EP: the lock-word conflict raises the dependency.
                handleConflict(acc);
                scheduleNext(std::max<Tick>(acc.latency, 1));
                return;
            }
            if (aop.srcThread >= 0 &&
                static_cast<std::uint16_t>(aop.srcThread) != thread &&
                cfg.persistency == PersistencyModel::Release) {
                const auto src =
                    static_cast<std::uint16_t>(aop.srcThread);
                const std::uint64_t src_epoch =
                    board.epochAt(src, aop.srcRelease);
                const Tick lat = std::max<Tick>(acc.latency, 1);
                model().acquire(src, src_epoch, [this, src, src_epoch,
                                                 lat]() {
                    if (log && src_epoch != 0) {
                        log->recordEdge(thread, model().currentEpoch(),
                                        src, src_epoch);
                    }
                    scheduleNext(lat);
                });
                return;
            }
            scheduleNext(std::max<Tick>(acc.latency, 1));
        };
        if (aop.srcThread >= 0) {
            board.wait(static_cast<std::uint16_t>(aop.srcThread),
                       aop.srcRelease, [this, proceed]() {
                // Lock handoff: the released line travels
                // cache-to-cache before the spinner proceeds.
                eq.scheduleAfter(cfg.cacheToCacheLatency, proceed);
            });
        } else {
            proceed();
        }
        return;
      }

      case OpType::End:
        // Threads drain their persistence state before exiting.
        model().dfence([this]() {
            done = true;
            doneTick = eq.now();
            stats.inc("core.threadsFinished");
        });
        return;
    }
    panic("unhandled op type");
}

} // namespace asap
