/**
 * @file
 * Release board: simulated-time lock handoff.
 *
 * Release operations publish (thread, ordinal, epoch-at-release);
 * acquire operations that reference a (thread, ordinal) pair block
 * until that release has executed in simulated time. This replays the
 * synchronisation schedule captured at trace-generation time while
 * letting contention and handoff latency emerge from the simulation.
 */

#ifndef ASAP_CPU_RELEASE_BOARD_HH
#define ASAP_CPU_RELEASE_BOARD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/log.hh"

namespace asap
{

/** Tracks executed releases and wakes blocked acquires. */
class ReleaseBoard
{
  public:
    using Callback = std::function<void()>;

    explicit ReleaseBoard(unsigned num_threads)
        : perThread(num_threads)
    {
    }

    /**
     * Thread @p thread executed its next release while in persistency
     * epoch @p epoch.
     * @return the release's 1-based ordinal
     */
    std::uint64_t
    publish(std::uint16_t thread, std::uint64_t epoch)
    {
        PerThread &pt = perThread.at(thread);
        pt.epochs.push_back(epoch);
        const std::uint64_t ordinal = pt.epochs.size();
        // Wake acquires waiting on this ordinal.
        auto &ws = pt.waiters;
        for (std::size_t i = 0; i < ws.size();) {
            if (ws[i].ordinal <= ordinal) {
                Callback cb = std::move(ws[i].cb);
                ws[i] = std::move(ws.back());
                ws.pop_back();
                cb();
            } else {
                ++i;
            }
        }
        return ordinal;
    }

    /**
     * Run @p cb once release @p ordinal of @p thread has executed
     * (immediately if it already has).
     */
    void
    wait(std::uint16_t thread, std::uint64_t ordinal, Callback cb)
    {
        PerThread &pt = perThread.at(thread);
        if (pt.epochs.size() >= ordinal) {
            cb();
            return;
        }
        pt.waiters.push_back(Waiter{ordinal, std::move(cb)});
    }

    /** Epoch the releasing thread was in at release @p ordinal. */
    std::uint64_t
    epochAt(std::uint16_t thread, std::uint64_t ordinal) const
    {
        const PerThread &pt = perThread.at(thread);
        panic_if(ordinal == 0 || ordinal > pt.epochs.size(),
                 "epochAt for unexecuted release");
        return pt.epochs[ordinal - 1];
    }

    /** Number of releases thread has executed. */
    std::uint64_t
    count(std::uint16_t thread) const
    {
        return perThread.at(thread).epochs.size();
    }

  private:
    struct Waiter
    {
        std::uint64_t ordinal;
        Callback cb;
    };

    struct PerThread
    {
        std::vector<std::uint64_t> epochs;
        std::vector<Waiter> waiters;
    };

    std::vector<PerThread> perThread;
};

} // namespace asap

#endif // ASAP_CPU_RELEASE_BOARD_HH
