/**
 * @file
 * Serving-scenario registry.
 *
 * A serving scenario is a named datacenter-style request mix that the
 * streaming generator (op_stream.hh) synthesizes incrementally: the
 * request shapes are the WHISPER-derived ones from
 * src/workloads/whisper.cc (memcached SET/GET, nstore WAL
 * transactions, vacation undo-log transactions), and the scenario
 * picks the key-popularity distribution, the arrival process and the
 * tenant mix layered on top.
 *
 * Scenario workload names carry the "serve:" prefix (e.g.
 * "serve:kv-zipf") so the exp engine, caches, sweeps and the daemon
 * can tell streaming jobs from materialized ones by name alone.
 */

#ifndef ASAP_SERVE_SCENARIO_HH
#define ASAP_SERVE_SCENARIO_HH

#include <string>
#include <vector>

namespace asap
{

/** Workload-name prefix that marks a streaming serving scenario. */
inline constexpr const char *kServePrefix = "serve:";

/** Per-thread request classes a scenario can assign. */
enum class ServeClass
{
    KvCache,    //!< memcached-style SET/GET against a shared table
    Oltp,       //!< nstore-style WAL append + in-place tuple updates
    Txn,        //!< vacation-style undo-logged multi-row transactions
};

/** One named serving scenario. */
struct ServeScenario
{
    std::string name;         //!< bare name (no "serve:" prefix)
    std::string description;
    /** Zipfian skew of key popularity; 0 = uniform. */
    double zipfTheta = 0.0;
    /** Open-loop bursty arrivals (ON/OFF think-time gaps) instead of
     *  the closed-loop back-to-back default. */
    bool bursty = false;
    /** Tenant classes assigned round-robin to threads. Size 1 =
     *  homogeneous; each tenant owns a disjoint PM region. */
    std::vector<ServeClass> tenantClasses;

    /** Full workload name ("serve:" + name). */
    std::string workloadName() const { return kServePrefix + name; }
};

/** True if @p workload names a streaming serving scenario. */
bool isServeWorkload(const std::string &workload);

/** All registered scenarios, in presentation order. */
const std::vector<ServeScenario> &allServeScenarios();

/**
 * Find a scenario by workload name ("serve:x") or bare name ("x");
 * nullptr if unknown. For callers (like the daemon wire layer) that
 * must report bad names instead of dying on them.
 */
const ServeScenario *tryFindServeScenario(const std::string &workload);

/**
 * Find a scenario by workload name ("serve:x") or bare name ("x").
 * Fatal if unknown.
 */
const ServeScenario &findServeScenario(const std::string &workload);

} // namespace asap

#endif // ASAP_SERVE_SCENARIO_HH
