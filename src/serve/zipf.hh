/**
 * @file
 * Zipfian key sampler for serving scenarios.
 *
 * YCSB-style generator (Gray et al.'s rejection-free formula): ranks
 * are drawn with probability P(rank k) ~ 1/k^theta, then scrambled
 * through the workload hash so that the popular keys are spread across
 * the keyspace instead of clustering at the low addresses. theta=0.99
 * is the YCSB default ("zipfian"); theta->0 degenerates to uniform.
 *
 * The zeta(n, theta) normalization constant is an O(n) sum, so it is
 * memoised process-wide per (items, theta): every thread of every
 * serving job over the same keyspace shares one computation.
 */

#ifndef ASAP_SERVE_ZIPF_HH
#define ASAP_SERVE_ZIPF_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "sim/log.hh"
#include "sim/rng.hh"
#include "workloads/kv_util.hh"

namespace asap
{

/** Draws Zipf-distributed ranks in [0, items) from a caller's Rng. */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t items, double theta)
        : n_(items), theta_(theta)
    {
        fatal_if(items == 0, "zipf sampler over an empty keyspace");
        fatal_if(theta <= 0.0 || theta >= 1.0,
                 "zipf theta must be in (0, 1), got ", theta);
        zetan_ = zeta(n_, theta_);
        const double zeta2 = zeta(2, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
    }

    /** Next rank in [0, items): rank 0 is the most popular. */
    std::uint64_t
    nextRank(Rng &rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        const auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= n_ ? n_ - 1 : rank;
    }

    /** Next key index: the rank scrambled across the keyspace. */
    std::uint64_t
    nextKeyIndex(Rng &rng) const
    {
        return hash64(nextRank(rng)) % n_;
    }

    std::uint64_t items() const { return n_; }
    double theta() const { return theta_; }

  private:
    /** Memoised zeta(n, theta) = sum_{i=1..n} 1/i^theta. */
    static double
    zeta(std::uint64_t n, double theta)
    {
        static std::mutex mu;
        static std::map<std::pair<std::uint64_t, double>, double> cache;
        const auto key = std::make_pair(n, theta);
        {
            std::lock_guard<std::mutex> lock(mu);
            auto it = cache.find(key);
            if (it != cache.end())
                return it->second;
        }
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        std::lock_guard<std::mutex> lock(mu);
        cache.emplace(key, sum);
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

} // namespace asap

#endif // ASAP_SERVE_ZIPF_HH
