#include "serve/scenario.hh"

#include <cstring>

#include "sim/log.hh"

namespace asap
{

namespace
{

const std::vector<ServeScenario> &
registry()
{
    static const std::vector<ServeScenario> scenarios = {
        {"kv-zipf",
         "KV cache serving, Zipfian key popularity (YCSB theta=0.99)",
         0.99, false, {ServeClass::KvCache}},
        {"kv-uniform",
         "KV cache serving, uniform key popularity",
         0.0, false, {ServeClass::KvCache}},
        {"kv-bursty",
         "KV cache serving, Zipfian keys, open-loop ON/OFF bursts",
         0.99, true, {ServeClass::KvCache}},
        {"tenant-mix",
         "multi-tenant: KV cache + OLTP WAL + undo-txn tenants, "
         "Zipfian keys",
         0.99, false,
         {ServeClass::KvCache, ServeClass::Oltp, ServeClass::Txn}},
    };
    return scenarios;
}

} // namespace

bool
isServeWorkload(const std::string &workload)
{
    return workload.rfind(kServePrefix, 0) == 0;
}

const std::vector<ServeScenario> &
allServeScenarios()
{
    return registry();
}

const ServeScenario *
tryFindServeScenario(const std::string &workload)
{
    std::string bare = workload;
    if (isServeWorkload(workload))
        bare = workload.substr(std::strlen(kServePrefix));
    for (const ServeScenario &sc : registry()) {
        if (sc.name == bare)
            return &sc;
    }
    return nullptr;
}

const ServeScenario &
findServeScenario(const std::string &workload)
{
    if (const ServeScenario *sc = tryFindServeScenario(workload))
        return *sc;
    std::string known;
    for (const ServeScenario &sc : registry())
        known += (known.empty() ? "" : "|") + sc.workloadName();
    fatal("unknown serving scenario '", workload, "' (want ", known,
          ")");
    return registry().front(); // unreachable
}

} // namespace asap
