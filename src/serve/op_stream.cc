#include "serve/op_stream.hh"

#include <algorithm>

#include "mem/packets.hh"
#include "sim/log.hh"
#include "workloads/kv_util.hh"

namespace asap
{

namespace
{

/**
 * Fabricated address layout. Regions sit in high address space,
 * disjoint per tenant and per purpose, far above anything a
 * PmSpace-backed recorder workload allocates. RSS of a run is bounded
 * by the *distinct lines written* (keyspace + wrapped logs), never by
 * the op count — the logs wrap, the tables are keyspace-sized.
 */
constexpr std::uint64_t kWalBytes = 1u << 20;  //!< per-thread log, wraps
constexpr unsigned kLockWords = 128;           //!< lock lines per tenant

std::uint64_t
tableBase(unsigned tenant)
{
    return (static_cast<std::uint64_t>(tenant) + 1) << 40;
}

std::uint64_t
slabBase(unsigned tenant)
{
    return tableBase(tenant) + (std::uint64_t(1) << 36);
}

std::uint64_t
walBase(unsigned tenant, unsigned t)
{
    return tableBase(tenant) + (std::uint64_t(2) << 36) +
           static_cast<std::uint64_t>(t) * (std::uint64_t(1) << 26);
}

std::uint64_t
lockBase(unsigned tenant)
{
    return (std::uint64_t(0x7f) << 40) +
           static_cast<std::uint64_t>(tenant) * (std::uint64_t(1) << 20);
}

/** Per-(seed, thread) RNG seed: distinct streams, stable forever. */
std::uint64_t
threadSeed(std::uint64_t seed, unsigned t)
{
    return hash64(seed * 0x9e3779b97f4a7c15ULL + t + 1);
}

/** Ops to buffer ahead per thread: enough to amortize refill, small
 *  enough that a ring is trivially cache-resident. */
constexpr std::size_t kChunkOps = 256;

} // namespace

ServeStream::ServeStream(const ServeScenario &sc, unsigned threads,
                         const WorkloadParams &p)
    : scenario(sc), params(p),
      itemLines(std::max(1u, (p.valueBytes + lineBytes - 1) / lineBytes))
{
    fatal_if(threads == 0, "serve stream needs at least one thread");
    fatal_if(p.keySpace == 0, "serve stream over an empty keyspace");
    fatal_if(scenario.tenantClasses.empty(), "scenario '",
             scenario.name, "' has no tenant classes");
    if (scenario.zipfTheta > 0.0)
        zipf = std::make_unique<ZipfSampler>(p.keySpace,
                                             scenario.zipfTheta);
    state.resize(threads);
    for (unsigned t = 0; t < threads; ++t) {
        ThreadState &ts = state[t];
        ts.rng.reseed(threadSeed(p.seed, t));
        const auto n =
            static_cast<unsigned>(scenario.tenantClasses.size());
        ts.tenant = t % n;
        ts.klass = scenario.tenantClasses[ts.tenant];
        ts.buf.reserve(kChunkOps + 64);
    }
}

TraceOp
ServeStream::next(unsigned t)
{
    panic_if(t >= state.size(), "serve stream pull on unknown thread ",
             t);
    ThreadState &ts = state[t];
    if (ts.head >= ts.buf.size()) {
        panic_if(ts.ended, "core ", t, " pulled past its End op");
        refill(t, ts);
    }
    return ts.buf[ts.head++];
}

std::uint64_t
ServeStream::requestsGenerated() const
{
    std::uint64_t n = 0;
    for (const ThreadState &ts : state)
        n += ts.requestsDone;
    return n;
}

void
ServeStream::refill(unsigned t, ThreadState &ts)
{
    ts.buf.clear();
    ts.head = 0;
    while (ts.buf.size() < kChunkOps &&
           ts.requestsDone < params.opsPerThread) {
        genArrivalGap(ts);
        switch (ts.klass) {
          case ServeClass::KvCache: genKvRequest(t, ts); break;
          case ServeClass::Oltp: genOltpRequest(t, ts); break;
          case ServeClass::Txn: genTxnRequest(t, ts); break;
        }
        ++ts.requestsDone;
    }
    if (ts.requestsDone >= params.opsPerThread) {
        TraceOp end;
        end.type = OpType::End;
        ts.buf.push_back(end);
        ts.ended = true;
    }
    peakBuffered = std::max(peakBuffered, ts.buf.size());
}

void
ServeStream::genArrivalGap(ThreadState &ts)
{
    if (!scenario.bursty)
        return; // closed loop: requests arrive back to back
    // Open-loop ON/OFF arrivals: a burst of closely spaced requests,
    // then an idle gap — all drawn from the thread's own Rng so the
    // schedule is part of the pure per-thread stream.
    if (ts.burstLeft == 0) {
        pushCompute(ts, static_cast<std::uint32_t>(
                            2000 + ts.rng.below(6000)));
        ts.burstLeft = static_cast<unsigned>(8 + ts.rng.below(56));
    } else {
        pushCompute(ts, static_cast<std::uint32_t>(
                            10 + ts.rng.below(40)));
        --ts.burstLeft;
    }
}

void
ServeStream::genKvRequest(unsigned t, ThreadState &ts)
{
    // memcached-style SET/GET (genMemcached shapes): parse, hash,
    // then either publish an item (slab lines + bucket slot, each side
    // ordered by an ofence, durable before the reply) or read one.
    const std::uint64_t idx = zipf ? zipf->nextKeyIndex(ts.rng)
                                   : ts.rng.below(params.keySpace);
    const std::uint64_t key = makeKey(idx);
    const std::uint64_t h = hash64(key);
    const std::uint64_t slot = tableBase(ts.tenant) + idx * lineBytes;
    const std::uint64_t item =
        slabBase(ts.tenant) + idx * itemLines * lineBytes;
    pushCompute(ts, 150); // request parsing
    if (ts.rng.percent(params.updatePct)) {
        // SET under the bucket lock word (volatile line shared by all
        // threads of the tenant: EP directory conflicts happen here).
        const std::uint64_t lock_line =
            lockBase(ts.tenant) + (h % kLockWords) * lineBytes;
        pushStore(t, ts, lock_line, false);
        for (unsigned l = 0; l < itemLines; ++l)
            pushStore(t, ts, item + l * lineBytes, true);
        pushOFence(ts);
        pushStore(t, ts, slot, true);
        pushStore(t, ts, slot + 8, true);
        pushOFence(ts);
        pushStore(t, ts, lock_line, false);
        pushDFence(ts); // durable before acking the client
    } else {
        // GET: bucket probe + item read, volatile LRU bookkeeping.
        pushLoad(ts, slot, true);
        for (unsigned l = 0; l < itemLines; ++l)
            pushLoad(ts, item + l * lineBytes, true);
        pushCompute(ts, 30);
    }
}

void
ServeStream::genOltpRequest(unsigned t, ThreadState &ts)
{
    // nstore-style transaction (genNstore shapes): WAL append, ofence,
    // in-place tuple updates under a shared latch line, commit dfence.
    pushCompute(ts, 150); // SQL parse/plan
    const unsigned log_lines =
        static_cast<unsigned>(3 + ts.rng.below(3));
    const std::uint64_t wal = walBase(ts.tenant, t);
    for (unsigned l = 0; l < log_lines; ++l) {
        const std::uint64_t a = wal + (ts.walPos % (kWalBytes - lineBytes));
        pushStore(t, ts, a, true);
        pushStore(t, ts, a + 32, true);
        ts.walPos += lineBytes;
    }
    pushOFence(ts); // log before data
    const std::uint64_t latch_line =
        lockBase(ts.tenant) + (ts.rng.below(kLockWords)) * lineBytes;
    pushStore(t, ts, latch_line, false);
    const unsigned touches = static_cast<unsigned>(1 + ts.rng.below(3));
    for (unsigned u = 0; u < touches; ++u) {
        const std::uint64_t idx = zipf ? zipf->nextKeyIndex(ts.rng)
                                       : ts.rng.below(params.keySpace);
        const std::uint64_t tuple =
            tableBase(ts.tenant) + idx * lineBytes;
        pushLoad(ts, tuple, true);
        pushStore(t, ts, tuple, true);
        pushStore(t, ts, tuple + 8, true);
    }
    pushStore(t, ts, latch_line, false);
    pushDFence(ts); // transaction commit
}

void
ServeStream::genTxnRequest(unsigned t, ThreadState &ts)
{
    // vacation-style PMDK transaction (genVacation shapes): per-row
    // undo-log entry, ofence, data write; commit dfence; volatile
    // bookkeeping tail.
    pushCompute(ts, 120); // query planning / tree lookups
    const std::uint64_t manager_line = lockBase(ts.tenant);
    pushStore(t, ts, manager_line, false);
    const std::uint64_t undo = walBase(ts.tenant, t);
    const unsigned touches = static_cast<unsigned>(3 + ts.rng.below(3));
    for (unsigned u = 0; u < touches; ++u) {
        const std::uint64_t idx = zipf ? zipf->nextKeyIndex(ts.rng)
                                       : ts.rng.below(params.keySpace);
        const std::uint64_t row = tableBase(ts.tenant) + idx * lineBytes;
        pushLoad(ts, row, true);
        const std::uint64_t ua = undo + (ts.walPos % (kWalBytes - 16));
        ts.walPos += 16;
        pushStore(t, ts, ua, true);
        pushStore(t, ts, ua + 8, true);
        pushOFence(ts);
        pushStore(t, ts, row, true);
    }
    pushDFence(ts); // transaction commit
    pushCompute(ts, 900);
    pushStore(t, ts, manager_line, false);
}

void
ServeStream::pushCompute(ThreadState &ts, std::uint32_t cycles)
{
    if (cycles == 0)
        return;
    // Merge adjacent compute gaps (same compaction the recorder does).
    if (!ts.buf.empty() && ts.buf.back().type == OpType::Compute) {
        ts.buf.back().cycles += cycles;
        return;
    }
    TraceOp op;
    op.type = OpType::Compute;
    op.cycles = cycles;
    ts.buf.push_back(op);
}

void
ServeStream::pushLoad(ThreadState &ts, std::uint64_t addr, bool is_pm)
{
    TraceOp op;
    op.type = OpType::Load;
    op.isPm = is_pm;
    op.addr = addr;
    ts.buf.push_back(op);
}

void
ServeStream::pushStore(unsigned t, ThreadState &ts, std::uint64_t addr,
                       bool is_pm)
{
    TraceOp op;
    op.type = OpType::Store;
    op.isPm = is_pm;
    op.addr = addr;
    if (is_pm) {
        // Same unique-token convention as TraceRecorder::nextToken,
        // but the sequence is per thread so streams stay independent.
        op.value = (static_cast<std::uint64_t>(t + 1) << 44) |
                   ts.tokenSeq++;
    }
    ts.buf.push_back(op);
}

void
ServeStream::pushOFence(ThreadState &ts)
{
    TraceOp op;
    op.type = OpType::OFence;
    ts.buf.push_back(op);
}

void
ServeStream::pushDFence(ThreadState &ts)
{
    TraceOp op;
    op.type = OpType::DFence;
    ts.buf.push_back(op);
}

TraceSet
materializeStream(OpSource &src, std::uint64_t op_cap)
{
    TraceSet out(src.numThreads());
    std::uint64_t total = 0;
    for (unsigned t = 0; t < src.numThreads(); ++t) {
        for (;;) {
            const TraceOp op = src.next(t);
            fatal_if(op_cap != 0 && ++total > op_cap,
                     "materializing this stream exceeds the ", op_cap,
                     "-op cap; run it streaming (serve_bench / "
                     "loadStream) or raise ASAP_MAX_TRACE_OPS");
            out.threads[t].push_back(op);
            if (op.type == OpType::End)
                break;
        }
    }
    return out;
}

} // namespace asap
