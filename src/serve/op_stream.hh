/**
 * @file
 * Streaming op generator for serving scenarios.
 *
 * ServeStream synthesizes each thread's TraceOp stream one request at
 * a time, directly into a small per-thread ring, so a 10⁸-op run costs
 * the same resident memory as a 10³-op run: RSS is bounded by the
 * keyspace footprint (lines actually written in NvmContents), never by
 * the op count. This is the constant-memory counterpart of
 * TraceRecorder + MaterializedSource.
 *
 * Determinism: every thread owns an independent Rng seeded from
 * (params.seed, thread), and no generated op depends on any other
 * thread's progress or on simulated time. The stream is therefore a
 * pure function of (scenario, numThreads, params) — byte-identical
 * whatever order the engine interleaves pulls in, which is what makes
 * results stable across --jobs, --shard and --par-domains.
 *
 * Contention is deliberately NOT expressed with generation-time lock
 * edges (that would need cross-thread coordination and break purity).
 * Instead, threads of one tenant share volatile lock-word lines and
 * the tenant's table/slab lines: under epoch persistency the directory
 * conflicts on those lines raise inter-thread epoch dependencies at
 * replay time, and under release persistency the shared persist-path
 * traffic contends at the memory controllers — which is exactly where
 * tail persist latency comes from in a serving system.
 */

#ifndef ASAP_SERVE_OP_STREAM_HH
#define ASAP_SERVE_OP_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/op_source.hh"
#include "serve/scenario.hh"
#include "serve/zipf.hh"
#include "sim/rng.hh"
#include "workloads/params.hh"

namespace asap
{

/** Streaming OpSource implementing the serving scenarios. */
class ServeStream : public OpSource
{
  public:
    /**
     * @param sc scenario (distribution, arrivals, tenant mix)
     * @param threads serving threads (= simulated cores)
     * @param p workload knobs: opsPerThread is *requests* per thread,
     *          keySpace/valueBytes/updatePct shape them, seed drives
     *          every random draw
     */
    ServeStream(const ServeScenario &sc, unsigned threads,
                const WorkloadParams &p);

    TraceOp next(unsigned t) override;
    unsigned numThreads() const override
    {
        return static_cast<unsigned>(state.size());
    }

    /** Requests generated so far, across all threads. */
    std::uint64_t requestsGenerated() const;

    /** High-water mark of any thread's op ring (constant-memory
     *  witness: independent of opsPerThread). */
    std::size_t peakBufferedOps() const { return peakBuffered; }

  private:
    struct ThreadState
    {
        Rng rng{0};
        ServeClass klass = ServeClass::KvCache;
        unsigned tenant = 0;        //!< index into disjoint PM regions
        std::vector<TraceOp> buf;   //!< ops of the requests in flight
        std::size_t head = 0;       //!< next op to hand out
        std::uint64_t requestsDone = 0;
        std::uint64_t tokenSeq = 1; //!< per-thread store-token counter
        std::uint64_t walPos = 0;   //!< log/undo append cursor
        unsigned burstLeft = 0;     //!< requests left in the ON phase
        bool ended = false;         //!< End op emitted
    };

    void refill(unsigned t, ThreadState &ts);
    void genArrivalGap(ThreadState &ts);
    void genKvRequest(unsigned t, ThreadState &ts);
    void genOltpRequest(unsigned t, ThreadState &ts);
    void genTxnRequest(unsigned t, ThreadState &ts);

    // Emit helpers (append to ts.buf).
    void pushCompute(ThreadState &ts, std::uint32_t cycles);
    void pushLoad(ThreadState &ts, std::uint64_t addr, bool is_pm);
    void pushStore(unsigned t, ThreadState &ts, std::uint64_t addr,
                   bool is_pm);
    void pushOFence(ThreadState &ts);
    void pushDFence(ThreadState &ts);

    const ServeScenario scenario;
    const WorkloadParams params;
    const unsigned itemLines;     //!< value payload size in lines
    std::unique_ptr<ZipfSampler> zipf; //!< null = uniform keys
    std::vector<ThreadState> state;
    std::size_t peakBuffered = 0;
};

/**
 * Drain a fresh stream into a TraceSet (thread 0 fully first, then
 * thread 1, ...). Purity makes the pull order irrelevant; this is the
 * bridge to every materialized-path consumer — record/replay, crash
 * experiments, tests. @p op_cap is the same guardrail as
 * TraceRecorder::traceOpCap(): materializing more than op_cap total
 * ops fails loudly (0 = unlimited) instead of exhausting memory.
 */
TraceSet materializeStream(OpSource &src, std::uint64_t op_cap = 0);

} // namespace asap

#endif // ASAP_SERVE_OP_STREAM_HH
