#include "persist/persist_buffer.hh"

#include <utility>

#include "sim/log.hh"

namespace asap
{

PersistBuffer::PersistBuffer(std::uint16_t thread, const SimConfig &cfg,
                             EventQueue &eq, StatSet &stats,
                             AddressMap &amap,
                             std::vector<MemoryController *> &mcs)
    : thread(thread), cfg(cfg), eq(eq), stats(stats), amap(amap),
      mcs(mcs), statPrefix("pb" + std::to_string(thread) + ".")
{
}

void
PersistBuffer::configure(ClassifyFn classify_fn, AckFn on_ack,
                         NackFn on_nack)
{
    classify = std::move(classify_fn);
    onAck = std::move(on_ack);
    onNack = std::move(on_nack);
}

void
PersistBuffer::accountOccupancy()
{
    const Tick now = eq.now();
    if (now > lastOccChange) {
        stats.dist("pb.occupancy", cfg.pbEntries)
            .sample(occupancy(), now - lastOccChange);
    }
    lastOccChange = now;
}

void
PersistBuffer::accountBlocked()
{
    const Tick now = eq.now();
    if (wasBlocked && now > lastBlockedCheck) {
        stats.inc("pb.cyclesBlocked", now - lastBlockedCheck);
        stats.inc(statPrefix + "cyclesBlocked", now - lastBlockedCheck);
    }
    lastBlockedCheck = now;
    bool any_flushable = false;
    for (const PbEntry &e : queued) {
        FlushMode m = classify(e.epoch);
        if (m == FlushMode::Safe || (m == FlushMode::Early && !e.nacked)) {
            any_flushable = true;
            break;
        }
    }
    wasBlocked = !queued.empty() && !any_flushable;
}

void
PersistBuffer::enqueue(std::uint64_t line, std::uint64_t value,
                       std::uint64_t epoch, Callback accepted)
{
    if (crashed)
        return;
    // Coalesce with a queued (not yet dispatched) write of the same
    // line in the same epoch. The surviving entry produces a single
    // MC acknowledgement, so the swallowed store is acknowledged to
    // the epoch table immediately.
    for (auto it = queued.rbegin(); it != queued.rend(); ++it) {
        if (it->line == line && it->epoch == epoch) {
            it->value = value;
            stats.inc("pb.coalesced");
            accepted();
            onAck(epoch, line, /*early=*/false);
            return;
        }
    }
    if (occupancy() >= cfg.pbEntries) {
        stats.inc("pb.fullEvents");
        stalledStores.push_back(
            StalledStore{PbEntry{line, value, epoch, false},
                         std::move(accepted), eq.now()});
        return;
    }
    accountOccupancy();
    queued.push_back(PbEntry{line, value, epoch, false});
    ++totalEnqueued;
    stats.inc("pb.entriesInserted");
    accepted();
    tryFlush();
}

void
PersistBuffer::tryFlush()
{
    if (crashed)
        return;
    accountBlocked();
    while (numInflight < cfg.pbMaxInflight) {
        // Oldest flushable entry first; same-line flushes stay in
        // order (a line with an earlier queued or in-flight entry is
        // held back) so the recovery table sees same-line values in
        // write order.
        std::size_t idx = queued.size();
        std::unordered_set<std::uint64_t> earlier_lines;
        for (std::size_t i = 0; i < queued.size(); ++i) {
            const PbEntry &e = queued[i];
            const bool line_blocked =
                earlier_lines.count(e.line) != 0 ||
                inflightLines.count(e.line) != 0;
            earlier_lines.insert(e.line);
            if (line_blocked)
                continue;
            FlushMode m = classify(e.epoch);
            if (m == FlushMode::Safe ||
                (m == FlushMode::Early && !e.nacked)) {
                idx = i;
                break;
            }
        }
        if (idx == queued.size())
            break;
        dispatch(idx);
    }
    accountBlocked();
}

void
PersistBuffer::dispatch(std::size_t idx)
{
    PbEntry entry = queued[idx];
    const FlushMode mode = classify(entry.epoch);
    const bool early = (mode == FlushMode::Early);
    queued.erase(queued.begin() + static_cast<std::ptrdiff_t>(idx));
    ++numInflight;
    inflightLines.insert(entry.line);
    accountOccupancy();

    FlushPacket pkt{entry.line, entry.value, thread, entry.epoch, early};
    const unsigned mc = amap.mcFor(entry.line);
    if (early) {
        stats.inc("pb.totSpecWrites");
    }

    // Forward link latency, then controller processing, then the
    // reply (the controller schedules the reply-side latency).
    eq.scheduleAfter(cfg.pbFlushLatency, [this, pkt, mc, entry]() {
        if (crashed)
            return;
        mcs[mc]->receiveFlush(pkt, [this, pkt, mc, entry]
                              (FlushReply reply) {
            if (crashed)
                return;
            --numInflight;
            auto lit = inflightLines.find(pkt.line);
            if (lit != inflightLines.end())
                inflightLines.erase(lit);
            accountOccupancy();
            if (reply == FlushReply::Ack) {
                ++totalAcked;
                onAck(pkt.epoch, pkt.line, pkt.early);
            } else {
                // NACK: requeue; the entry must wait until its epoch
                // is safe and then retry as a safe flush.
                stats.inc("pb.nacksReceived");
                PbEntry back = entry;
                back.nacked = true;
                queued.push_front(back);
                accountOccupancy();
                onNack(pkt.epoch, pkt.line);
            }
            // Freed a slot: admit a stalled store.
            while (!stalledStores.empty() &&
                   occupancy() < cfg.pbEntries) {
                StalledStore s = std::move(stalledStores.front());
                stalledStores.pop_front();
                stats.inc("pb.cyclesStalled", eq.now() - s.since);
                accountOccupancy();
                queued.push_back(s.entry);
                ++totalEnqueued;
                stats.inc("pb.entriesInserted");
                s.accepted();
            }
            tryFlush();
        });
    });
}

void
PersistBuffer::crash()
{
    crashed = true;
    queued.clear();
    stalledStores.clear();
    inflightLines.clear();
    numInflight = 0;
}

} // namespace asap
