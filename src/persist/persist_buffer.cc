#include "persist/persist_buffer.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"

namespace asap
{

PersistBuffer::PersistBuffer(std::uint16_t thread, const SimConfig &cfg,
                             EventQueue &eq, StatSet &stats,
                             AddressMap &amap,
                             std::vector<MemoryController *> &mcs)
    : thread(thread), cfg(cfg), eq(eq), stats(stats), amap(amap),
      mcs(mcs), statPrefix("pb" + std::to_string(thread) + "."),
      occDist(&stats.dist("pb.occupancy", cfg.pbEntries)),
      stCyclesBlocked(&stats.counter(statPrefix + "cyclesBlocked")),
      stCyclesBlockedAgg(&stats.counter("pb.cyclesBlocked")),
      stCoalesced(&stats.counter("pb.coalesced")),
      stFullEvents(&stats.counter("pb.fullEvents")),
      stEntriesInserted(&stats.counter("pb.entriesInserted")),
      stTotSpecWrites(&stats.counter("pb.totSpecWrites")),
      stNacksReceived(&stats.counter("pb.nacksReceived")),
      stCyclesStalled(&stats.counter("pb.cyclesStalled"))
{
    inflightLines.reserve(cfg.pbMaxInflight);
    earlierLines.reserve(cfg.pbEntries);
}

void
PersistBuffer::configure(ClassifyFn classify_fn, AckFn on_ack,
                         NackFn on_nack)
{
    classify = std::move(classify_fn);
    onAck = std::move(on_ack);
    onNack = std::move(on_nack);
}

void
PersistBuffer::accountOccupancy()
{
    const Tick now = eq.now();
    if (now > lastOccChange)
        occDist->sample(occupancy(), now - lastOccChange);
    lastOccChange = now;
}

void
PersistBuffer::accountBlocked()
{
    const Tick now = eq.now();
    if (wasBlocked && now > lastBlockedCheck) {
        *stCyclesBlockedAgg += now - lastBlockedCheck;
        *stCyclesBlocked += now - lastBlockedCheck;
    }
    lastBlockedCheck = now;
    bool any_flushable = false;
    for (const PbEntry &e : queued) {
        FlushMode m = classify(e.epoch);
        if (m == FlushMode::Safe || (m == FlushMode::Early && !e.nacked)) {
            any_flushable = true;
            break;
        }
    }
    wasBlocked = !queued.empty() && !any_flushable;
}

void
PersistBuffer::enqueue(std::uint64_t line, std::uint64_t value,
                       std::uint64_t epoch, Callback accepted)
{
    if (crashed)
        return;
    // Coalesce with a queued (not yet dispatched) write of the same
    // line in the same epoch. The surviving entry produces a single
    // MC acknowledgement, so the swallowed store is acknowledged to
    // the epoch table immediately.
    for (auto it = queued.rbegin(); it != queued.rend(); ++it) {
        if (it->line == line && it->epoch == epoch) {
            it->value = value;
            ++*stCoalesced;
            accepted();
            onAck(epoch, line, /*early=*/false);
            return;
        }
    }
    if (occupancy() >= cfg.pbEntries) {
        ++*stFullEvents;
        stalledStores.push_back(
            StalledStore{PbEntry{line, value, epoch, false},
                         std::move(accepted), eq.now()});
        return;
    }
    accountOccupancy();
    queued.push_back(PbEntry{line, value, epoch, false});
    ++totalEnqueued;
    ++*stEntriesInserted;
    accepted();
    tryFlush();
}

void
PersistBuffer::tryFlush()
{
    if (crashed)
        return;
    accountBlocked();
    while (numInflight < cfg.pbMaxInflight) {
        // Oldest flushable entry first; same-line flushes stay in
        // order (a line with an earlier queued or in-flight entry is
        // held back) so the recovery table sees same-line values in
        // write order.
        std::size_t idx = queued.size();
        earlierLines.clear();
        for (std::size_t i = 0; i < queued.size(); ++i) {
            const PbEntry &e = queued[i];
            const bool line_blocked =
                std::find(earlierLines.begin(), earlierLines.end(),
                          e.line) != earlierLines.end() ||
                std::find(inflightLines.begin(), inflightLines.end(),
                          e.line) != inflightLines.end();
            earlierLines.push_back(e.line);
            if (line_blocked)
                continue;
            FlushMode m = classify(e.epoch);
            if (m == FlushMode::Safe ||
                (m == FlushMode::Early && !e.nacked)) {
                idx = i;
                break;
            }
        }
        if (idx == queued.size())
            break;
        dispatch(idx);
    }
    accountBlocked();
}

void
PersistBuffer::dispatch(std::size_t idx)
{
    PbEntry entry = queued[idx];
    const FlushMode mode = classify(entry.epoch);
    const bool early = (mode == FlushMode::Early);
    queued.erase(queued.begin() + static_cast<std::ptrdiff_t>(idx));
    ++numInflight;
    inflightLines.push_back(entry.line);
    accountOccupancy();

    FlushPacket pkt{entry.line, entry.value, thread, entry.epoch, early};
    const unsigned mc = amap.mcFor(entry.line);
    if (early) {
        ++*stTotSpecWrites;
    }

    // Forward link latency, then controller processing, then the
    // reply (the controller schedules the reply-side latency). The
    // arrival executes in the target controller's event domain; the
    // reply callback comes back via a core-domain ACK event.
    eq.scheduleAfterIn(EventQueue::mcDomain(mc), cfg.pbFlushLatency,
                       [this, pkt, mc, entry]() {
        if (crashed)
            return;
        mcs[mc]->receiveFlush(pkt, [this, pkt, mc, entry]
                              (FlushReply reply) {
            if (crashed)
                return;
            --numInflight;
            auto lit = std::find(inflightLines.begin(),
                                 inflightLines.end(), pkt.line);
            if (lit != inflightLines.end())
                inflightLines.erase(lit);
            accountOccupancy();
            if (reply == FlushReply::Ack) {
                ++totalAcked;
                onAck(pkt.epoch, pkt.line, pkt.early);
            } else {
                // NACK: requeue; the entry must wait until its epoch
                // is safe and then retry as a safe flush.
                ++*stNacksReceived;
                PbEntry back = entry;
                back.nacked = true;
                queued.push_front(back);
                accountOccupancy();
                onNack(pkt.epoch, pkt.line);
            }
            // Freed a slot: admit a stalled store.
            while (!stalledStores.empty() &&
                   occupancy() < cfg.pbEntries) {
                StalledStore s = std::move(stalledStores.front());
                stalledStores.pop_front();
                *stCyclesStalled += eq.now() - s.since;
                accountOccupancy();
                queued.push_back(s.entry);
                ++totalEnqueued;
                ++*stEntriesInserted;
                s.accepted();
            }
            tryFlush();
        });
    });
}

void
PersistBuffer::crash()
{
    crashed = true;
    queued.clear();
    stalledStores.clear();
    inflightLines.clear();
    numInflight = 0;
}

} // namespace asap
