/**
 * @file
 * Persistence model interface.
 *
 * One instance per core. The replay core calls these hooks when the
 * corresponding trace operations retire; the model implements the
 * hardware persistency semantics (Baseline, HOPS, ASAP, eADR). All
 * hooks are asynchronous: completion callbacks decouple persist-path
 * latency from the core.
 */

#ifndef ASAP_PERSIST_MODEL_HH
#define ASAP_PERSIST_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

class PersistModel;

/** Everything a model needs to reach the rest of the system. */
struct ModelContext
{
    const SimConfig &cfg;
    EventQueue &eq;
    StatSet &stats;
    AddressMap &amap;
    std::vector<MemoryController *> &mcs;
    /** Functional media (eADR's crash drain writes it directly). */
    NvmContents *media = nullptr;
    /** eADR's battery-protected dirty data: one *coherent* map shared
     *  by every core (the cache hierarchy holds a single copy of each
     *  line), so the crash drain preserves cross-core write order. */
    std::shared_ptr<std::unordered_map<std::uint64_t, std::uint64_t>>
        eadrDirty;
    /** Peer models by thread id; populated after construction. */
    std::vector<PersistModel *> peers;
};

/** Per-core persistency hardware. */
class PersistModel
{
  public:
    using Callback = std::function<void()>;

    PersistModel(std::uint16_t thread, ModelContext &ctx)
        : thread(thread), ctx(ctx)
    {
    }

    virtual ~PersistModel() = default;

    /**
     * A PM store retires. @p done fires when the store is accepted by
     * the persist path (deferred when a persist buffer is full).
     */
    virtual void pmStore(std::uint64_t line, std::uint64_t value,
                         Callback done) = 0;

    /** Intra-thread ordering barrier (2-sided). */
    virtual void ofence(Callback done) = 0;

    /** Durability barrier: @p done once all prior writes persisted. */
    virtual void dfence(Callback done) = 0;

    /**
     * Release-side 1-sided barrier (release persistency): closes the
     * current epoch so a later acquire can depend on it.
     */
    virtual void release(Callback done) = 0;

    /**
     * Acquire-side 1-sided barrier: the new epoch depends on
     * (@p src_thread, @p src_epoch) — the epoch current at the
     * matching release. Pass src_thread == thread (self) or
     * src_epoch == 0 for an unsynchronised acquire (no dependency).
     */
    virtual void acquire(std::uint16_t src_thread,
                         std::uint64_t src_epoch, Callback done) = 0;

    /**
     * This core received a coherence forward for a line it modified
     * (epoch persistency conflict). Closes the current epoch and
     * returns the epoch the requester must depend on.
     */
    virtual std::uint64_t conflictSource(std::uint16_t requester) = 0;

    /**
     * This core issued a conflicting access to a line modified by
     * @p src_thread in @p src_epoch: start a dependent epoch.
     */
    virtual void conflictDependent(std::uint16_t src_thread,
                                   std::uint64_t src_epoch) = 0;

    /**
     * Register @p dep_thread for commit notification of @p epoch.
     * @return true if the epoch has already committed
     */
    virtual bool registerDependent(std::uint16_t dep_thread,
                                   std::uint64_t epoch) = 0;

    /** A commit notification (CDR or poll) arrived at this core. */
    virtual void dependencyResolved(std::uint16_t src_thread,
                                    std::uint64_t src_epoch) = 0;

    /** Epoch timestamp new writes would join right now. */
    virtual std::uint64_t currentEpoch() const = 0;

    /** Newest epoch guaranteed durable right now (0 = none). */
    virtual std::uint64_t lastCommittedEpoch() const { return 0; }

    /** Power failure: drop volatile persist-path state. */
    virtual void crash() = 0;

    /**
     * Epochs whose commit protocol is in flight at this instant
     * (commit messages sent, not all ACKs received). The crash-state
     * permuter treats each (MC, in-flight epoch) commit application
     * as an independently orderable atom. Models without a commit
     * message exchange report none.
     */
    virtual std::vector<std::uint64_t>
    commitInFlightEpochs() const
    {
        return {};
    }

    std::uint16_t threadId() const { return thread; }

  protected:
    std::uint16_t thread;
    ModelContext &ctx;
};

} // namespace asap

#endif // ASAP_PERSIST_MODEL_HH
