/**
 * @file
 * Persist Buffer (PB).
 *
 * Per-core circular buffer that queues NVM writes next to the private
 * caches (Section V-A). Writes coalesce per line within an epoch; a
 * background flush engine drains entries to the memory controllers.
 * The owning model decides, per entry, whether it may flush and
 * whether the flush is safe or early (HOPS: conservative, only safe
 * flushes; ASAP: eager, early flushes allowed). The PB tracks the two
 * stall statistics of the paper: cycles the core is stalled on a full
 * buffer (cyclesStalled) and cycles the buffer holds writes it is not
 * allowed to flush (cyclesBlocked, Figure 3).
 */

#ifndef ASAP_PERSIST_PERSIST_BUFFER_HH
#define ASAP_PERSIST_PERSIST_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/packets.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

/** How the owning model classifies a queued entry for flushing. */
enum class FlushMode
{
    Hold,   //!< not allowed to flush yet
    Safe,   //!< flush as a normal (safe) write
    Early,  //!< flush speculatively, marked early
};

/** Per-core buffer of writes on their way to persistence. */
class PersistBuffer
{
  public:
    using Callback = std::function<void()>;
    /** Model policy: may this entry flush, and how? */
    using ClassifyFn = std::function<FlushMode(std::uint64_t epoch)>;
    /** Model hook: a flush of (epoch, line) was NACKed. */
    using NackFn = std::function<void(std::uint64_t epoch,
                                      std::uint64_t line)>;
    /** Model hook: a flush of epoch was ACKed (ET bookkeeping). */
    using AckFn = std::function<void(std::uint64_t epoch,
                                     std::uint64_t line, bool early)>;

    PersistBuffer(std::uint16_t thread, const SimConfig &cfg,
                  EventQueue &eq, StatSet &stats, AddressMap &amap,
                  std::vector<MemoryController *> &mcs);

    /** Install model policies (must happen before the first store). */
    void configure(ClassifyFn classify, AckFn on_ack, NackFn on_nack);

    /**
     * Enqueue a PM store of the active epoch. @p accepted fires when
     * the entry is in the buffer — immediately on space or coalesce,
     * later when the buffer is full (back-pressure into the core).
     */
    void enqueue(std::uint64_t line, std::uint64_t value,
                 std::uint64_t epoch, Callback accepted);

    /** Re-examine queued entries (epoch state changed). */
    void kick() { tryFlush(); }

    /** Entries currently queued or in flight. */
    std::size_t occupancy() const { return queued.size() + numInflight; }

    /** True once every entry has been flushed and ACKed. */
    bool empty() const { return occupancy() == 0; }

    /** Cumulative count of entries ever enqueued. */
    std::uint64_t enqueued() const { return totalEnqueued; }

    /** Cumulative count of entries flushed past (ACKed). */
    std::uint64_t flushedIndex() const { return totalAcked; }

    /** Drop all state (crash). */
    void crash();

  private:
    struct PbEntry
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint64_t epoch;
        bool nacked = false; //!< was rejected once; retries as safe
    };

    void tryFlush();
    void dispatch(std::size_t idx);
    void accountOccupancy();
    void accountBlocked();

    std::uint16_t thread;
    const SimConfig &cfg;
    EventQueue &eq;
    StatSet &stats;
    AddressMap &amap;
    std::vector<MemoryController *> &mcs;

    ClassifyFn classify;
    AckFn onAck;
    NackFn onNack;

    struct StalledStore
    {
        PbEntry entry;
        Callback accepted;
        Tick since;
    };

    std::deque<PbEntry> queued;
    unsigned numInflight = 0;
    /** Lines with an in-flight flush: later writes to the same line
     *  must wait so same-line flushes arrive at the MC in order.
     *  Multiset semantics over a linear-scanned vector — occupancy is
     *  bounded by pbMaxInflight, far below hash-map break-even. */
    std::vector<std::uint64_t> inflightLines;
    std::deque<StalledStore> stalledStores;
    /** Reused earlier-lines scratch for tryFlush (the per-call
     *  unordered_set it replaces dominated the flush-scan profile). */
    std::vector<std::uint64_t> earlierLines;
    std::uint64_t totalEnqueued = 0;
    std::uint64_t totalAcked = 0;

    // Time-weighted occupancy and blocked-cycle accounting.
    Tick lastOccChange = 0;
    Tick lastBlockedCheck = 0;
    bool wasBlocked = false;
    bool crashed = false;

    std::string statPrefix;

    // Hot counters resolved once at construction (see StatSet::counter).
    Distribution *occDist;
    std::uint64_t *stCyclesBlocked;
    std::uint64_t *stCyclesBlockedAgg;
    std::uint64_t *stCoalesced;
    std::uint64_t *stFullEvents;
    std::uint64_t *stEntriesInserted;
    std::uint64_t *stTotSpecWrites;
    std::uint64_t *stNacksReceived;
    std::uint64_t *stCyclesStalled;
};

} // namespace asap

#endif // ASAP_PERSIST_PERSIST_BUFFER_HH
