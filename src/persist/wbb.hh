/**
 * @file
 * Write-Back Buffer (WBB).
 *
 * Section V-F "Handling private cache evictions": when a cache line is
 * evicted while older writes to it still sit in the persist buffer,
 * the eviction is parked in the WBB, tagged with the persist buffer's
 * tail index at eviction time; the line is released once the persist
 * buffer has flushed past that index (StrandWeaver's mechanism, which
 * ASAP reuses).
 */

#ifndef ASAP_PERSIST_WBB_HH
#define ASAP_PERSIST_WBB_HH

#include <cstdint>
#include <deque>

namespace asap
{

/** Holds evicted lines until the persist buffer catches up. */
class WriteBackBuffer
{
  public:
    explicit WriteBackBuffer(unsigned capacity = 8) : cap(capacity) {}

    /**
     * Park an evicted line.
     *
     * @param line the evicted line address
     * @param pb_tail_index persist-buffer cumulative enqueue index at
     *        the time of eviction
     * @return false if the WBB is full (the eviction must stall)
     */
    bool
    park(std::uint64_t line, std::uint64_t pb_tail_index)
    {
        if (entries.size() >= cap)
            return false;
        entries.push_back(Entry{line, pb_tail_index});
        return true;
    }

    /**
     * The persist buffer has flushed everything up to cumulative index
     * @p flushed_index; release entries that were waiting for it.
     *
     * @return number of released lines
     */
    unsigned
    releaseUpTo(std::uint64_t flushed_index)
    {
        unsigned released = 0;
        while (!entries.empty() && entries.front().tail <= flushed_index) {
            entries.pop_front();
            ++released;
        }
        return released;
    }

    /** True if @p line is currently parked. */
    bool
    holds(std::uint64_t line) const
    {
        for (const Entry &e : entries) {
            if (e.line == line)
                return true;
        }
        return false;
    }

    std::size_t size() const { return entries.size(); }
    bool full() const { return entries.size() >= cap; }

  private:
    struct Entry
    {
        std::uint64_t line;
        std::uint64_t tail;
    };

    unsigned cap;
    std::deque<Entry> entries;
};

} // namespace asap

#endif // ASAP_PERSIST_WBB_HH
