/**
 * @file
 * Epoch Table (ET).
 *
 * A per-core CAM tracking in-flight epochs (Section V-A): outstanding
 * write counts, cross-thread dependency state, which controllers saw
 * early flushes, and the dependents to notify with CDR messages.
 * Epochs commit strictly in per-thread order; the table calls a
 * model-provided hook when the oldest epoch becomes committable and
 * the model completes the commit (ASAP first exchanges commit/ACK
 * messages with the memory controllers, HOPS publishes to the global
 * timestamp register).
 */

#ifndef ASAP_PERSIST_EPOCH_TABLE_HH
#define ASAP_PERSIST_EPOCH_TABLE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/stats.hh"

namespace asap
{

/** Per-core table of in-flight epochs. */
class EpochTable
{
  public:
    using Callback = std::function<void()>;
    /** Invoked when epoch @p ts is safe and complete (may commit). */
    using CommittableHook = std::function<void(std::uint64_t ts)>;

    /** State of one in-flight epoch. */
    struct Entry
    {
        std::uint64_t ts = 0;       //!< epoch timestamp (per-thread)
        std::uint64_t pending = 0;  //!< writes not yet ACKed by an MC
        bool closed = false;        //!< a barrier ended this epoch
        bool hasDep = false;        //!< has an incoming cross-thread dep
        std::uint16_t depSrc = 0;   //!< source thread of the dep
        std::uint64_t depSrcEpoch = 0; //!< source epoch of the dep
        bool depResolved = true;    //!< CDR received (or no dep)
        bool commitInProgress = false;
        std::uint32_t earlyMcMask = 0; //!< MCs that saw early flushes
        /** Threads whose epochs depend on this one (CDR targets). */
        std::vector<std::uint16_t> dependents;
    };

    /**
     * @param thread owning core (stat labels)
     * @param capacity number of table entries (Table II: 32)
     * @param stats shared stats registry
     */
    EpochTable(std::uint16_t thread, unsigned capacity, StatSet &stats);

    /** Hook the model uses to run its commit protocol. */
    void setCommittableHook(CommittableHook hook);

    /** Timestamp of the open (active) epoch. */
    std::uint64_t currentEpoch() const { return entries.back().ts; }

    /** Timestamp of the newest epoch that has committed (0 = none). */
    std::uint64_t lastCommitted() const { return lastCommitted_; }

    /**
     * Close the active epoch and open a new one (ofence, release, or
     * a conflict-triggered split). If the table is at capacity the
     * closure is deferred and @p done fires once space frees up;
     * conflict-triggered splits may overflow the capacity instead of
     * stalling (to keep coherence responses non-blocking).
     *
     * @param allow_overflow conflict splits pass true
     * @param done fires when the new epoch is open
     */
    void closeEpoch(bool allow_overflow, Callback done);

    /**
     * Open a new active epoch carrying a cross-thread dependency on
     * (@p src_thread, @p src_epoch). Overflow is always allowed here
     * (the acquire already closed the previous epoch).
     */
    void openDependentEpoch(std::uint16_t src_thread,
                            std::uint64_t src_epoch);

    /** A write joined epoch @p ts (persist-buffer enqueue). */
    void addWrite(std::uint64_t ts);

    /** A write of epoch @p ts was ACKed by a memory controller. */
    void ackWrite(std::uint64_t ts);

    /** An early flush of epoch @p ts went to controller @p mc. */
    void markEarlyMc(std::uint64_t ts, unsigned mc);

    /** CDR (or poll success) for dependency on (src, src_epoch). */
    void resolveDependency(std::uint16_t src_thread,
                           std::uint64_t src_epoch);

    /**
     * Epoch @p ts is safe: it is the oldest in-flight epoch and its
     * dependency (if any) is resolved. Only safe-epoch flushes may be
     * sent as non-early.
     */
    bool isSafe(std::uint64_t ts) const;

    /**
     * The model finished the commit protocol for epoch @p ts (which
     * must be the oldest entry). Removes the entry, wakes ofence and
     * dfence waiters and returns the dependent threads to CDR.
     */
    std::vector<std::uint16_t> markCommitted(std::uint64_t ts);

    /**
     * Register @p dep_thread as dependent on epoch @p ts.
     * @return true if @p ts has already committed (dependent should
     *         resolve immediately)
     */
    bool registerDependent(std::uint16_t dep_thread, std::uint64_t ts);

    /**
     * dfence: fires @p done once every epoch older than the active one
     * has committed. The caller must closeEpoch() first.
     */
    void waitAllCommitted(Callback done);

    /** Entries currently in flight (committed ones are removed). */
    std::size_t size() const { return entries.size(); }

    /** Access an in-flight entry (nullptr if absent/committed). */
    const Entry *find(std::uint64_t ts) const;

    /** All in-flight entries, oldest first (crash-state permuter). */
    const std::deque<Entry> &inFlightEntries() const { return entries; }

  private:
    Entry *findMut(std::uint64_t ts);

    /** Re-check whether the oldest epoch became committable. */
    void evaluate();

    std::uint16_t thread;
    unsigned capacity;
    StatSet &stats;
    CommittableHook committableHook;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stFullStalls;
    std::uint64_t *stOverflowSplits;
    std::uint64_t *stEpochsOpened;
    std::uint64_t *stInterTEpochConflict;
    std::uint64_t *stEpochsCommitted;

    std::deque<Entry> entries; //!< ordered by ts; front commits first
    std::uint64_t nextTs = 2;  //!< entries.back() starts at ts 1
    std::uint64_t lastCommitted_ = 0;
    std::deque<Callback> openWaiters;   //!< stalled ofences (table full)
    std::vector<Callback> dfenceWaiters;
};

} // namespace asap

#endif // ASAP_PERSIST_EPOCH_TABLE_HH
