/**
 * @file
 * Counting Bloom filter.
 *
 * ASAP places one at each memory controller to remember the addresses
 * of NACKed early flushes (Section V-F "Handling early LLC cache-line
 * evictions"): an LLC eviction that hits in the filter is delayed
 * because the line's latest value still sits in a persist buffer. The
 * counting variant supports removal when the flush is retried.
 */

#ifndef ASAP_PERSIST_BLOOM_FILTER_HH
#define ASAP_PERSIST_BLOOM_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/log.hh"

namespace asap
{

/** Counting Bloom filter over line addresses. */
class CountingBloom
{
  public:
    /**
     * @param counters number of 8-bit counters (rounded up to a power
     *                 of two)
     * @param hashes number of hash functions
     */
    explicit CountingBloom(unsigned counters = 1024, unsigned hashes = 3)
        : numHashes(hashes)
    {
        unsigned size = 1;
        while (size < counters)
            size <<= 1;
        table.assign(size, 0);
        mask = size - 1;
    }

    /** Record an address. */
    void
    insert(std::uint64_t line)
    {
        for (unsigned i = 0; i < numHashes; ++i) {
            std::uint8_t &c = table[slot(line, i)];
            if (c != 0xff) // saturating: never wrap
                ++c;
        }
        ++population_;
    }

    /**
     * Remove a previously inserted address.
     * @pre the address was inserted and not yet removed
     */
    void
    remove(std::uint64_t line)
    {
        panic_if(population_ == 0, "removing from an empty Bloom filter");
        for (unsigned i = 0; i < numHashes; ++i) {
            std::uint8_t &c = table[slot(line, i)];
            if (c != 0 && c != 0xff)
                --c;
        }
        --population_;
    }

    /** Membership test: false negatives never occur. */
    bool
    test(std::uint64_t line) const
    {
        for (unsigned i = 0; i < numHashes; ++i) {
            if (table[slot(line, i)] == 0)
                return false;
        }
        return true;
    }

    /** Number of inserted-but-not-removed addresses. */
    std::size_t population() const { return population_; }

  private:
    std::size_t
    slot(std::uint64_t line, unsigned i) const
    {
        // Double hashing from one 64-bit mix.
        std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 29;
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 32;
        std::uint64_t h1 = h & 0xffffffffu;
        std::uint64_t h2 = (h >> 32) | 1;
        return static_cast<std::size_t>((h1 + i * h2) & mask);
    }

    unsigned numHashes;
    std::uint64_t mask = 0;
    std::vector<std::uint8_t> table;
    std::size_t population_ = 0;
};

} // namespace asap

#endif // ASAP_PERSIST_BLOOM_FILTER_HH
