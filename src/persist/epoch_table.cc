#include "persist/epoch_table.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"

namespace asap
{

EpochTable::EpochTable(std::uint16_t thread, unsigned capacity,
                       StatSet &stats)
    : thread(thread), capacity(capacity), stats(stats),
      stFullStalls(&stats.counter("et.fullStalls")),
      stOverflowSplits(&stats.counter("et.overflowSplits")),
      stEpochsOpened(&stats.counter("et.epochsOpened")),
      stInterTEpochConflict(&stats.counter("et.interTEpochConflict")),
      stEpochsCommitted(&stats.counter("et.epochsCommitted"))
{
    fatal_if(capacity < 2, "epoch table needs at least 2 entries");
    Entry first;
    first.ts = 1;
    entries.push_back(first);
}

void
EpochTable::setCommittableHook(CommittableHook hook)
{
    committableHook = std::move(hook);
}

EpochTable::Entry *
EpochTable::findMut(std::uint64_t ts)
{
    for (Entry &e : entries) {
        if (e.ts == ts)
            return &e;
    }
    return nullptr;
}

const EpochTable::Entry *
EpochTable::find(std::uint64_t ts) const
{
    return const_cast<EpochTable *>(this)->findMut(ts);
}

void
EpochTable::closeEpoch(bool allow_overflow, Callback done)
{
    if (entries.size() >= capacity && !allow_overflow) {
        ++*stFullStalls;
        openWaiters.push_back([this, done = std::move(done)]() mutable {
            closeEpoch(false, std::move(done));
        });
        return;
    }
    if (entries.size() >= capacity)
        ++*stOverflowSplits;
    entries.back().closed = true;
    Entry next;
    next.ts = nextTs++;
    entries.push_back(next);
    ++*stEpochsOpened;
    evaluate();
    done();
}

void
EpochTable::openDependentEpoch(std::uint16_t src_thread,
                               std::uint64_t src_epoch)
{
    Entry &active = entries.back();
    panic_if(active.pending != 0 || active.closed,
             "dependent epoch must be opened right after a close");
    active.hasDep = true;
    active.depSrc = src_thread;
    active.depSrcEpoch = src_epoch;
    active.depResolved = false;
    ++*stInterTEpochConflict;
}

void
EpochTable::addWrite(std::uint64_t ts)
{
    Entry *e = findMut(ts);
    panic_if(!e, "write issued to unknown epoch ", ts);
    ++e->pending;
}

void
EpochTable::ackWrite(std::uint64_t ts)
{
    Entry *e = findMut(ts);
    panic_if(!e, "write ACK for unknown epoch ", ts);
    panic_if(e->pending == 0, "write ACK underflow for epoch ", ts);
    --e->pending;
    evaluate();
}

void
EpochTable::markEarlyMc(std::uint64_t ts, unsigned mc)
{
    Entry *e = findMut(ts);
    panic_if(!e, "early mark for unknown epoch ", ts);
    e->earlyMcMask |= (1u << mc);
}

void
EpochTable::resolveDependency(std::uint16_t src_thread,
                              std::uint64_t src_epoch)
{
    for (Entry &e : entries) {
        if (e.hasDep && !e.depResolved && e.depSrc == src_thread &&
            e.depSrcEpoch == src_epoch) {
            e.depResolved = true;
        }
    }
    evaluate();
}

bool
EpochTable::isSafe(std::uint64_t ts) const
{
    // Only the oldest in-flight epoch can be safe: all older epochs
    // have committed (they are removed on commit), and its incoming
    // dependency must be resolved.
    if (entries.empty() || entries.front().ts != ts)
        return ts <= lastCommitted_;
    return entries.front().depResolved;
}

void
EpochTable::evaluate()
{
    if (entries.empty() || !committableHook)
        return;
    Entry &front = entries.front();
    if (front.commitInProgress || !front.closed || front.pending != 0)
        return;
    if (!front.depResolved)
        return;
    front.commitInProgress = true;
    committableHook(front.ts);
}

std::vector<std::uint16_t>
EpochTable::markCommitted(std::uint64_t ts)
{
    panic_if(entries.empty() || entries.front().ts != ts,
             "out-of-order epoch commit: ", ts);
    std::vector<std::uint16_t> dependents =
        std::move(entries.front().dependents);
    lastCommitted_ = ts;
    entries.pop_front();
    ++*stEpochsCommitted;

    // Freed a slot: admit one stalled barrier.
    if (!openWaiters.empty() && entries.size() < capacity) {
        Callback w = std::move(openWaiters.front());
        openWaiters.pop_front();
        w();
    }

    // dfence waiters proceed once only the open epoch remains.
    if (entries.size() == 1 && !dfenceWaiters.empty()) {
        std::vector<Callback> ws = std::move(dfenceWaiters);
        dfenceWaiters.clear();
        for (Callback &w : ws)
            w();
    }

    evaluate();
    return dependents;
}

bool
EpochTable::registerDependent(std::uint16_t dep_thread, std::uint64_t ts)
{
    if (ts <= lastCommitted_)
        return true;
    Entry *e = findMut(ts);
    panic_if(!e, "dependent registered on unknown epoch ", ts);
    e->dependents.push_back(dep_thread);
    return false;
}

void
EpochTable::waitAllCommitted(Callback done)
{
    if (entries.size() == 1) {
        done();
        return;
    }
    dfenceWaiters.push_back(std::move(done));
}

} // namespace asap
