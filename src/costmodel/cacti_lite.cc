#include "costmodel/cacti_lite.hh"

#include <cmath>

namespace asap
{

namespace
{
// Coefficients calibrated against CACTI 7 @22 nm (paper Table V).
// CAM structures (tag-searched): area/energy grow super-linearly in
// total bits (match lines + priority encoders); RAM arrays scale
// more gently per bit but carry larger peripheral overheads.
constexpr double camAreaCoeff = 1.62e-6;  // mm^2 per bits^1.12
constexpr double camAreaExp = 1.12;
constexpr double camLatBase = 0.0925;     // ns
constexpr double camLatCoeff = 0.00236;   // ns per sqrt(bit)
constexpr double camEnergyCoeff = 1.30e-6; // pJ per bits^1.73
constexpr double camEnergyExp = 1.73;

constexpr double ramAreaCoeff = 2.69e-6;  // mm^2 per bit
constexpr double ramLatBase = 0.40;       // ns
constexpr double ramLatCoeff = 0.0019;    // ns per sqrt(bit)
constexpr double ramEnergyCoeff = 1.163e-3; // pJ per bit
} // namespace

CostEstimate
estimateCost(const StructureSpec &spec)
{
    const double bits =
        static_cast<double>(spec.entries) * spec.bitsPerEntry;
    CostEstimate est;
    if (spec.cam) {
        est.areaMm2 = camAreaCoeff * std::pow(bits, camAreaExp);
        est.accessNs = camLatBase + camLatCoeff * std::sqrt(bits);
        est.writePj = camEnergyCoeff * std::pow(bits, camEnergyExp);
    } else {
        est.areaMm2 = ramAreaCoeff * bits;
        est.accessNs = ramLatBase + ramLatCoeff * std::sqrt(bits);
        est.writePj = ramEnergyCoeff * bits;
    }
    est.readPj = est.writePj * spec.readFactor;
    return est;
}

namespace
{
/** Physical line-address width for a 46-bit address space. */
constexpr unsigned lineAddrBits = 40;
constexpr unsigned dataBits = 8 * 64; // one cache line
constexpr unsigned epochBits = 16;
constexpr unsigned threadBits = 6;
} // namespace

StructureSpec
persistBufferSpec(const SimConfig &cfg)
{
    // Entry: line address + data + epoch timestamp + state bits.
    return StructureSpec{"Persist Buffer", cfg.pbEntries,
                         lineAddrBits + dataBits + epochBits + 6,
                         /*cam=*/true, /*readFactor=*/0.963};
}

StructureSpec
epochTableSpec(const SimConfig &cfg)
{
    // Entry: timestamp, pending count, dependency (thread+epoch),
    // dependent list head, flags. No addresses, no data.
    return StructureSpec{"Epoch Table", cfg.etEntries,
                         epochBits + 8 + threadBits + epochBits + 2,
                         /*cam=*/true, /*readFactor=*/0.215};
}

StructureSpec
recoveryTableSpec(const SimConfig &cfg)
{
    // Entry: line address + data + creator thread + epoch.
    return StructureSpec{"Recovery Table", cfg.rtEntries,
                         lineAddrBits + dataBits + threadBits +
                             epochBits,
                         /*cam=*/true, /*readFactor=*/1.0};
}

StructureSpec
l1CacheSpec(const SimConfig &cfg)
{
    // 32 kB data + tags.
    const unsigned lines = cfg.l1Sets * cfg.l1Ways;
    const unsigned tagBits = 28;
    return StructureSpec{"32KB L1 cache", lines, dataBits + tagBits,
                         /*cam=*/false, /*readFactor=*/1.0};
}

double
adrDrainBytes(const SimConfig &cfg)
{
    // Each undo record drains its line of data; the WPQ drain is
    // pre-existing ADR behaviour and is not counted against ASAP.
    return 64.0 * cfg.rtEntries * cfg.numMCs;
}

double
bbbDrainBytes(const SimConfig &cfg, unsigned cores)
{
    return 64.0 * cfg.pbEntries * cores;
}

double
eadrDrainBytes(const SimConfig &cfg, unsigned cores,
               double dirty_fraction)
{
    const double l1 = cfg.l1Sets * cfg.l1Ways * 64.0;
    const double l2 = cfg.l2Sets * cfg.l2Ways * 64.0;
    const double llc = cfg.llcSets * cfg.llcWays * 64.0;
    return dirty_fraction * (cores * (l1 + l2) + llc);
}

} // namespace asap
