/**
 * @file
 * CACTI-lite: analytical area/latency/energy model for ASAP's
 * hardware structures (Table V).
 *
 * The paper sizes the persist buffer, epoch table and recovery table
 * with CACTI 7 at 22 nm. CACTI is not available offline, so this is
 * an analytical surrogate — power-law scaling in total bits with
 * separate coefficients for CAM-style structures (PB/ET/RT are
 * content-addressable) and RAM arrays (the L1 reference point),
 * calibrated against the CACTI 7 values published in the paper's
 * Table V. Scaling structure sizes through SimConfig changes the
 * estimates along physically sensible curves.
 */

#ifndef ASAP_COSTMODEL_CACTI_LITE_HH
#define ASAP_COSTMODEL_CACTI_LITE_HH

#include <string>

#include "sim/config.hh"

namespace asap
{

/** Geometry of one hardware structure. */
struct StructureSpec
{
    std::string name;
    unsigned entries = 0;
    unsigned bitsPerEntry = 0;
    bool cam = false;          //!< content-addressable (tag search)
    double readFactor = 1.0;   //!< read energy / write energy
};

/** CACTI-style outputs. */
struct CostEstimate
{
    double areaMm2 = 0.0;
    double accessNs = 0.0;
    double writePj = 0.0;
    double readPj = 0.0;
};

/** Evaluate the analytical model for one structure. */
CostEstimate estimateCost(const StructureSpec &spec);

/** The paper's structures, sized from a SimConfig. */
StructureSpec persistBufferSpec(const SimConfig &cfg);
StructureSpec epochTableSpec(const SimConfig &cfg);
StructureSpec recoveryTableSpec(const SimConfig &cfg);
StructureSpec l1CacheSpec(const SimConfig &cfg);

/**
 * Bytes the ADR domain must drain on power failure (Section VII-D):
 * recovery-table data across all controllers. The paper reports
 * < 4 kB for ASAP versus ~64 kB for BBB and ~42 MB for eADR on a
 * 32-core server.
 */
double adrDrainBytes(const SimConfig &cfg);

/** BBB's battery-backed persist-buffer drain size for comparison. */
double bbbDrainBytes(const SimConfig &cfg, unsigned cores);

/** eADR's dirty-cache drain size for a server with @p cores cores. */
double eadrDrainBytes(const SimConfig &cfg, unsigned cores,
                      double dirty_fraction = 0.5);

} // namespace asap

#endif // ASAP_COSTMODEL_CACTI_LITE_HH
