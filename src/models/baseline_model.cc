#include "models/baseline_model.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace asap
{

void
BaselineModel::flushAndFence(Callback done)
{
    if (writeSet.empty()) {
        // sfence with nothing outstanding retires immediately.
        done();
        return;
    }
    // clwb instructions occupy line-fill buffers: at most
    // clwbMaxInflight flushes overlap; the sfence stalls the core
    // until the last ACK returns.
    auto st = std::make_shared<FenceState>();
    st->lines.assign(writeSet.begin(), writeSet.end());
    st->remaining = st->lines.size();
    st->ts = epoch++;
    st->start = ctx.eq.now();
    st->done = std::move(done);
    writeSet.clear();

    const std::size_t burst = std::min<std::size_t>(
        ctx.cfg.clwbMaxInflight, st->lines.size());
    for (std::size_t i = 0; i < burst; ++i)
        issueNextClwb(st);
}

void
BaselineModel::issueNextClwb(const std::shared_ptr<FenceState> &st)
{
    if (crashed || st->nextIssue >= st->lines.size())
        return;
    const auto [line, value] = st->lines[st->nextIssue++];
    FlushPacket pkt{line, value, thread, st->ts, /*early=*/false};
    const unsigned mc = ctx.amap.mcFor(line);
    ++*stClwbs;
    ctx.eq.scheduleAfterIn(EventQueue::mcDomain(mc),
                           ctx.cfg.pbFlushLatency, [this, pkt, mc,
                                                    st]() {
        if (crashed)
            return;
        ctx.mcs[mc]->receiveFlush(pkt, [this, st](FlushReply) {
            if (crashed)
                return;
            if (--st->remaining == 0) {
                *stSfenceStalled += ctx.eq.now() - st->start;
                st->done();
                return;
            }
            issueNextClwb(st);
        });
    });
}

} // namespace asap
