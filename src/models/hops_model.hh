/**
 * @file
 * HOPS model (Nalli et al., ASPLOS'17), the paper's main comparison.
 *
 * Buffered persistency with per-core persist buffers and epoch tables
 * like ASAP, but with *conservative flushing*: only writes of the
 * oldest, safe epoch may flush; later epochs wait for every ACK of the
 * current epoch from all memory controllers (Figure 1a/1b). Cross-
 * thread dependencies resolve by polling a global timestamp register;
 * following Section VII we poll every 500 cycles with a 50-cycle
 * access cost instead of the original unrealistic 1-cycle poll.
 */

#ifndef ASAP_MODELS_HOPS_MODEL_HH
#define ASAP_MODELS_HOPS_MODEL_HH

#include <cstdint>

#include "persist/epoch_table.hh"
#include "persist/model.hh"
#include "persist/persist_buffer.hh"

namespace asap
{

/** HOPS per-core persistence hardware. */
class HopsModel : public PersistModel
{
  public:
    HopsModel(std::uint16_t thread, ModelContext &ctx);

    void pmStore(std::uint64_t line, std::uint64_t value,
                 Callback done) override;
    void ofence(Callback done) override;
    void dfence(Callback done) override;
    void release(Callback done) override;
    void acquire(std::uint16_t src_thread, std::uint64_t src_epoch,
                 Callback done) override;
    std::uint64_t conflictSource(std::uint16_t requester) override;
    void conflictDependent(std::uint16_t src_thread,
                           std::uint64_t src_epoch) override;
    bool registerDependent(std::uint16_t dep_thread,
                           std::uint64_t epoch) override;
    void dependencyResolved(std::uint16_t src_thread,
                            std::uint64_t src_epoch) override;
    std::uint64_t currentEpoch() const override;
    std::uint64_t lastCommittedEpoch() const override
    {
        return et.lastCommitted();
    }
    void crash() override;

    /** Has this core's epoch @p ts committed (global TS lookup)? */
    bool epochCommitted(std::uint64_t ts) const;

    /** Test support. */
    EpochTable &epochTable() { return et; }
    PersistBuffer &persistBuffer() { return pb; }

  private:
    /** Poll the source thread's commit state via the global register. */
    void schedulePoll(std::uint16_t src_thread, std::uint64_t src_epoch);

    EpochTable et;
    PersistBuffer pb;
    bool crashed = false;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stTsUpdates;
    std::uint64_t *stPolls;
    std::uint64_t *stDfenceStalled;
};

} // namespace asap

#endif // ASAP_MODELS_HOPS_MODEL_HH
