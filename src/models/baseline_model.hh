/**
 * @file
 * Baseline model: Intel-style synchronous ordering.
 *
 * Replicates current Intel machines (Section VII "Baseline"): stores
 * write the caches; each persist barrier issues clwb for every line
 * written since the previous barrier and then an sfence that stalls
 * the core until every flush is acknowledged by its memory
 * controller. Lock releases flush-and-fence too, as recoverable PM
 * code must make its updates durable before publishing them.
 */

#ifndef ASAP_MODELS_BASELINE_MODEL_HH
#define ASAP_MODELS_BASELINE_MODEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "persist/model.hh"

namespace asap
{

/** Synchronous clwb + sfence persistence. */
class BaselineModel : public PersistModel
{
  public:
    BaselineModel(std::uint16_t thread, ModelContext &ctx)
        : PersistModel(thread, ctx),
          stClwbs(&ctx.stats.counter("baseline.clwbs")),
          stSfenceStalled(&ctx.stats.counter("core.sfenceStalled"))
    {
    }

    void
    pmStore(std::uint64_t line, std::uint64_t value, Callback done) override
    {
        writeSet[line] = value;
        done();
    }

    void ofence(Callback done) override { flushAndFence(std::move(done)); }
    void dfence(Callback done) override { flushAndFence(std::move(done)); }
    void release(Callback done) override { flushAndFence(std::move(done)); }

    void
    acquire(std::uint16_t, std::uint64_t, Callback done) override
    {
        done();
    }

    std::uint64_t
    conflictSource(std::uint16_t) override
    {
        return 0; // no epoch hardware
    }

    void conflictDependent(std::uint16_t, std::uint64_t) override {}

    bool
    registerDependent(std::uint16_t, std::uint64_t) override
    {
        return true; // synchronous: everything published is durable
    }

    void dependencyResolved(std::uint16_t, std::uint64_t) override {}

    std::uint64_t currentEpoch() const override { return epoch; }

    void
    crash() override
    {
        crashed = true;
        writeSet.clear(); // unflushed cached writes are lost
    }

  private:
    /** In-flight fence bookkeeping (shared by the clwb callbacks). */
    struct FenceState
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> lines;
        std::size_t nextIssue = 0;
        std::size_t remaining = 0;
        std::uint64_t ts = 0;
        Tick start = 0;
        Callback done;
    };

    /** Issue clwb for the write set, then stall until all ACKs. */
    void flushAndFence(Callback done);

    /** Issue the next clwb of @p st (bounded by clwbMaxInflight). */
    void issueNextClwb(const std::shared_ptr<FenceState> &st);

    std::unordered_map<std::uint64_t, std::uint64_t> writeSet;
    std::uint64_t epoch = 1;
    bool crashed = false;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stClwbs;
    std::uint64_t *stSfenceStalled;
};

} // namespace asap

#endif // ASAP_MODELS_BASELINE_MODEL_HH
