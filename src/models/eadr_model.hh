/**
 * @file
 * eADR / BBB ideal model.
 *
 * With enhanced ADR the persistence domain covers the entire cache
 * hierarchy (Section II-C): stores are durable the moment they retire,
 * no flush or ordering instruction stalls, and on power failure a
 * battery drains all dirty data to NVM. BBB's battery-backed persist
 * buffers perform within a hair of eADR (the paper plots them as one
 * curve), so a single model stands for both.
 */

#ifndef ASAP_MODELS_EADR_MODEL_HH
#define ASAP_MODELS_EADR_MODEL_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "persist/model.hh"

namespace asap
{

/** Battery-backed ideal: persistence for free. */
class EadrModel : public PersistModel
{
  public:
    EadrModel(std::uint16_t thread, ModelContext &ctx)
        : PersistModel(thread, ctx)
    {
    }

    void
    pmStore(std::uint64_t line, std::uint64_t value, Callback done) override
    {
        // One coherent copy per line across the whole hierarchy.
        (*ctx.eadrDirty)[line] = value;
        // The write is already durable (battery), but it still drains
        // to the media in the background and consumes NVM bandwidth.
        drainQueue.push_back({line, value});
        tryDrain();
        done();
    }

    void ofence(Callback done) override { done(); }

    void
    dfence(Callback done) override
    {
        // Residual pipeline cost of the (now trivial) fence.
        ctx.eq.scheduleAfter(ctx.cfg.eadrDfenceCost, std::move(done));
    }

    void release(Callback done) override { done(); }

    void
    acquire(std::uint16_t, std::uint64_t, Callback done) override
    {
        done();
    }

    std::uint64_t conflictSource(std::uint16_t) override { return 0; }
    void conflictDependent(std::uint16_t, std::uint64_t) override {}

    bool
    registerDependent(std::uint16_t, std::uint64_t) override
    {
        return true;
    }

    void dependencyResolved(std::uint16_t, std::uint64_t) override {}
    std::uint64_t currentEpoch() const override { return 1; }

    std::uint64_t
    lastCommittedEpoch() const override
    {
        return ~std::uint64_t(0); // everything written is durable
    }

    void
    crash() override
    {
        // The battery drains every cached dirty line to the media.
        // The map is shared; the first model to crash drains it.
        if (ctx.media && ctx.eadrDirty) {
            ctx.stats.inc("eadr.batteryDrainWrites",
                          ctx.eadrDirty->size());
            for (const auto &[line, value] : *ctx.eadrDirty)
                ctx.media->write(line, value);
            ctx.eadrDirty->clear();
        }
    }

  private:
    /** Background write-back of battery-protected dirty data. */
    void
    tryDrain()
    {
        while (drainInflight < ctx.cfg.pbMaxInflight &&
               !drainQueue.empty()) {
            auto [line, value] = drainQueue.front();
            drainQueue.pop_front();
            ++drainInflight;
            FlushPacket pkt{line, value, thread, 1, /*early=*/false};
            const unsigned mc = ctx.amap.mcFor(line);
            ctx.eq.scheduleAfterIn(EventQueue::mcDomain(mc),
                                   ctx.cfg.pbFlushLatency,
                                   [this, pkt, mc]() {
                ctx.mcs[mc]->receiveFlush(pkt, [this](FlushReply) {
                    --drainInflight;
                    tryDrain();
                });
            });
        }
    }

    std::deque<std::pair<std::uint64_t, std::uint64_t>> drainQueue;
    unsigned drainInflight = 0;
};

} // namespace asap

#endif // ASAP_MODELS_EADR_MODEL_HH
