#include "models/hops_model.hh"

#include <utility>

#include "sim/log.hh"

namespace asap
{

HopsModel::HopsModel(std::uint16_t thread, ModelContext &ctx)
    : PersistModel(thread, ctx),
      et(thread, ctx.cfg.etEntries, ctx.stats),
      pb(thread, ctx.cfg, ctx.eq, ctx.stats, ctx.amap, ctx.mcs),
      stTsUpdates(&ctx.stats.counter("hops.tsUpdates")),
      stPolls(&ctx.stats.counter("hops.polls")),
      stDfenceStalled(&ctx.stats.counter("core.dfenceStalled"))
{
    et.setCommittableHook([this](std::uint64_t ts) {
        // No controller-side protocol: safe + complete commits
        // immediately; the commit is published by updating the global
        // timestamp register that dependents poll.
        ++*stTsUpdates;
        std::vector<std::uint16_t> deps = et.markCommitted(ts);
        // Dependents discover the commit by polling; nothing to send.
        (void)deps;
        pb.kick();
    });
    pb.configure(
        [this](std::uint64_t epoch) {
            // Conservative flushing: only the safe (oldest) epoch.
            return et.isSafe(epoch) ? FlushMode::Safe : FlushMode::Hold;
        },
        [this](std::uint64_t epoch, std::uint64_t, bool) {
            et.ackWrite(epoch);
        },
        [](std::uint64_t, std::uint64_t) {
            panic("HOPS received a NACK: safe flushes are never NACKed");
        });
}

bool
HopsModel::epochCommitted(std::uint64_t ts) const
{
    return ts <= et.lastCommitted();
}

void
HopsModel::pmStore(std::uint64_t line, std::uint64_t value, Callback done)
{
    const std::uint64_t ts = et.currentEpoch();
    et.addWrite(ts);
    pb.enqueue(line, value, ts, std::move(done));
}

void
HopsModel::ofence(Callback done)
{
    et.closeEpoch(false, [this, done = std::move(done)]() {
        pb.kick();
        done();
    });
}

void
HopsModel::dfence(Callback done)
{
    const Tick start = ctx.eq.now();
    et.closeEpoch(false, [this, start, done = std::move(done)]() {
        pb.kick();
        et.waitAllCommitted([this, start, done]() {
            *stDfenceStalled += ctx.eq.now() - start;
            done();
        });
    });
}

void
HopsModel::release(Callback done)
{
    ofence(std::move(done));
}

void
HopsModel::acquire(std::uint16_t src_thread, std::uint64_t src_epoch,
                   Callback done)
{
    if (src_epoch == 0 || src_thread == thread) {
        done();
        return;
    }
    et.closeEpoch(false, [this, src_thread, src_epoch,
                          done = std::move(done)]() {
        et.openDependentEpoch(src_thread, src_epoch);
        schedulePoll(src_thread, src_epoch);
        pb.kick();
        done();
    });
}

std::uint64_t
HopsModel::conflictSource(std::uint16_t requester)
{
    (void)requester;
    const std::uint64_t cur = et.currentEpoch();
    et.closeEpoch(true, []() {});
    pb.kick();
    return cur;
}

void
HopsModel::conflictDependent(std::uint16_t src_thread,
                             std::uint64_t src_epoch)
{
    et.closeEpoch(true, [this, src_thread, src_epoch]() {
        et.openDependentEpoch(src_thread, src_epoch);
        schedulePoll(src_thread, src_epoch);
        pb.kick();
    });
}

void
HopsModel::schedulePoll(std::uint16_t src_thread, std::uint64_t src_epoch)
{
    // Poll the global timestamp register every hopsPollPeriod cycles;
    // each access takes hopsPollCost cycles (Section VII's corrected
    // polling implementation).
    auto *peer = static_cast<HopsModel *>(ctx.peers[src_thread]);
    if (peer->epochCommitted(src_epoch)) {
        // Committed before we even started waiting: resolve after a
        // single register read.
        ++*stPolls;
        ctx.eq.scheduleAfter(ctx.cfg.hopsPollCost,
                             [this, src_thread, src_epoch]() {
            if (crashed)
                return;
            dependencyResolved(src_thread, src_epoch);
        });
        return;
    }
    ctx.eq.scheduleAfter(ctx.cfg.hopsPollPeriod,
                         [this, src_thread, src_epoch]() {
        if (crashed)
            return;
        ++*stPolls;
        auto *p = static_cast<HopsModel *>(ctx.peers[src_thread]);
        if (p->epochCommitted(src_epoch)) {
            ctx.eq.scheduleAfter(ctx.cfg.hopsPollCost,
                                 [this, src_thread, src_epoch]() {
                if (crashed)
                    return;
                dependencyResolved(src_thread, src_epoch);
            });
        } else {
            schedulePoll(src_thread, src_epoch);
        }
    });
}

bool
HopsModel::registerDependent(std::uint16_t, std::uint64_t epoch)
{
    // HOPS dependents poll; report only whether it already committed.
    return epochCommitted(epoch);
}

void
HopsModel::dependencyResolved(std::uint16_t src_thread,
                              std::uint64_t src_epoch)
{
    et.resolveDependency(src_thread, src_epoch);
    pb.kick();
}

std::uint64_t
HopsModel::currentEpoch() const
{
    return et.currentEpoch();
}

void
HopsModel::crash()
{
    crashed = true;
    pb.crash();
}

} // namespace asap
