#include "harness/system.hh"

#include <algorithm>

#include "core/asap_model.hh"
#include "models/baseline_model.hh"
#include "models/eadr_model.hh"
#include "models/hops_model.hh"
#include "sim/log.hh"

namespace asap
{

System::System(const SimConfig &cfg_in, bool keep_run_log)
    : cfg(cfg_in), amap(cfg.numMCs, cfg.interleaveBytes),
      keepRunLog(keep_run_log)
{
    fatal_if(cfg.numCores == 0, "need at least one core");
    fatal_if(cfg.numMCs > 32, "earlyMcMask supports at most 32 MCs");

    for (unsigned i = 0; i < cfg.numMCs; ++i) {
        mcOwners.push_back(std::make_unique<MemoryController>(
            i, cfg, eq, media, stats_));
        mcs.push_back(mcOwners.back().get());
    }

    if (cfg.model == ModelKind::Asap) {
        for (unsigned i = 0; i < cfg.numMCs; ++i) {
            rts.push_back(std::make_unique<RecoveryTable>(
                i, cfg.rtEntries, stats_));
            mcs[i]->setPolicy(rts.back().get());
        }
    }

    caches = std::make_unique<CacheHierarchy>(cfg, stats_);
    if (!rts.empty()) {
        // LLC evictions of lines with NACK-pending flushes are delayed
        // (Section V-F): probe every controller's Bloom filter.
        caches->setEvictFilter([this](std::uint64_t line) {
            const unsigned mc = amap.mcFor(line);
            return rts[mc]->nackPending(line);
        });
    }

    board = std::make_unique<ReleaseBoard>(cfg.numCores);
    ctx = std::make_unique<ModelContext>(
        ModelContext{cfg, eq, stats_, amap, mcs, &media, nullptr, {}});
    if (cfg.model == ModelKind::Eadr) {
        ctx->eadrDirty = std::make_shared<
            std::unordered_map<std::uint64_t, std::uint64_t>>();
    }

    for (unsigned t = 0; t < cfg.numCores; ++t) {
        std::unique_ptr<PersistModel> m;
        switch (cfg.model) {
          case ModelKind::Baseline:
            m = std::make_unique<BaselineModel>(t, *ctx);
            break;
          case ModelKind::Hops:
            m = std::make_unique<HopsModel>(t, *ctx);
            break;
          case ModelKind::Asap:
            m = std::make_unique<AsapModel>(t, *ctx);
            break;
          case ModelKind::Eadr:
            m = std::make_unique<EadrModel>(t, *ctx);
            break;
        }
        models.push_back(m.get());
        modelOwners.push_back(std::move(m));
    }
    ctx->peers = models;
}

System::~System() = default;

void
System::loadTrace(TraceSet traces)
{
    fatal_if(traces.threads.size() != cfg.numCores,
             "trace has ", traces.threads.size(), " threads but the "
             "system has ", cfg.numCores, " cores");
    traces_ = std::move(traces);
    for (unsigned t = 0; t < cfg.numCores; ++t) {
        fatal_if(traces_.threads[t].empty() ||
                 traces_.threads[t].back().type != OpType::End,
                 "thread ", t, " trace must end with an End op");
        cores.push_back(std::make_unique<Core>(
            t, cfg, eq, stats_, *caches, *board, models,
            keepRunLog ? &log : nullptr, traces_.threads[t]));
    }
}

bool
System::run()
{
    panic_if(cores.empty(), "run() before loadTrace()");
    for (auto &c : cores)
        c->start();
    const bool drained = eq.run(cfg.maxRunTicks);
    bool all_done = true;
    Tick last = 0;
    for (auto &c : cores) {
        all_done = all_done && c->finished();
        last = std::max(last, c->finishTick());
    }
    runTicks_ = all_done ? last : eq.now();
    stats_.set("sim.runTicks", runTicks_);
    stats_.set("sim.eventsExecuted", eq.executed());
    if (!drained || !all_done) {
        warn("run stopped before all cores finished (possible "
             "deadlock or maxRunTicks too low)");
        return false;
    }
    return true;
}

void
System::crashAt(Tick tick)
{
    panic_if(cores.empty(), "crashAt() before loadTrace()");
    if (!crashed) {
        for (auto &c : cores)
            c->start();
    }
    eq.run(tick);
    crashed = true;
    for (auto &c : cores)
        c->halt();
    for (PersistModel *m : models)
        m->crash();
    for (MemoryController *mc : mcs)
        mc->crash();
    // The in-flight schedule dies with the power: drop it in one sweep
    // and record how much was pending (crash diagnostics).
    stats_.set("sim.eventsDropped", eq.clear());
    runTicks_ = eq.now();
    stats_.set("sim.runTicks", runTicks_);
    stats_.set("sim.eventsExecuted", eq.executed());
    stats_.inc("sim.crashes");
}

std::vector<std::uint64_t>
System::committedUpTo() const
{
    std::vector<std::uint64_t> out;
    out.reserve(models.size());
    for (const PersistModel *m : models)
        out.push_back(m->lastCommittedEpoch());
    return out;
}

} // namespace asap
