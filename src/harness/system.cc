#include "harness/system.hh"

#include <algorithm>

#include "core/asap_model.hh"
#include "models/baseline_model.hh"
#include "models/eadr_model.hh"
#include "models/hops_model.hh"
#include "sim/log.hh"

namespace asap
{

System::System(const SimConfig &cfg_in, bool keep_run_log)
    : cfg(cfg_in), amap(cfg.numMCs, cfg.interleaveBytes),
      keepRunLog(keep_run_log)
{
    fatal_if(cfg.numCores == 0, "need at least one core");
    fatal_if(cfg.numMCs > 32, "earlyMcMask supports at most 32 MCs");

    if (cfg.parDomains > 1) {
        // Cross-domain latency floors for the conservative lookahead
        // (src/sim/README.md): every core→MC send pays at least the
        // persist-buffer flush link — except ASAP's commit messages,
        // which ride the shorter mcMessageLatency hop. Every MC→core
        // reply (ACK/NACK/commit-ACK) pays at least mcMessageLatency.
        const Tick coreToMc =
            cfg.model == ModelKind::Asap
                ? std::min(cfg.pbFlushLatency, cfg.mcMessageLatency)
                : cfg.pbFlushLatency;
        const Tick mcToCore = cfg.mcMessageLatency;
        if (coreToMc > 0 && mcToCore > 0) {
            eq.configureParallel(
                cfg.numMCs, std::min(cfg.parDomains, cfg.numMCs + 1),
                coreToMc, mcToCore, cfg.parSpecWindow);
            // Per-MC event windows write disjoint media shards.
            media.configureShards(
                cfg.numMCs, [map = &amap](std::uint64_t line) {
                    return map->mcFor(line);
                });
        }
    }

    for (unsigned i = 0; i < cfg.numMCs; ++i) {
        mcOwners.push_back(std::make_unique<MemoryController>(
            i, cfg, eq, media, stats_));
        mcs.push_back(mcOwners.back().get());
    }

    if (cfg.model == ModelKind::Asap) {
        for (unsigned i = 0; i < cfg.numMCs; ++i) {
            rts.push_back(std::make_unique<RecoveryTable>(
                i, cfg.rtEntries, stats_));
            rts.back()->attachKernel(&eq, !eq.parallel());
            mcs[i]->setPolicy(rts.back().get());
        }
    }

    if (eq.parallel()) {
        // MC domains may speculate past their conservative bound only
        // when their state can roll back; register the checkpoints.
        for (unsigned i = 0; i < cfg.numMCs; ++i) {
            MemoryController *mc = mcs[i];
            eq.setCheckpointHooks(
                EventQueue::mcDomain(i), [mc]() { mc->specSave(); },
                [mc]() { mc->specRestore(); },
                [mc]() { mc->specDiscard(); });
        }
        // Two hazards force exact serial order between rounds: a
        // non-empty NACK filter (the core-side eviction filter probes
        // MC-domain state synchronously) and a commit-release write
        // parked in an overflow queue (its ACK countdown spans
        // domains, see MemoryController::receiveCommit).
        eq.setSerialPredicate([this]() {
            for (auto &rt : rts) {
                if (rt->nackCountRelaxed() != 0)
                    return true;
            }
            for (MemoryController *mc : mcs) {
                if (mc->commitReleasePending() != 0)
                    return true;
            }
            return false;
        });
    }

    caches = std::make_unique<CacheHierarchy>(cfg, stats_);
    if (!rts.empty()) {
        // LLC evictions of lines with NACK-pending flushes are delayed
        // (Section V-F): probe every controller's Bloom filter. Under
        // the parallel engine the probe reads MC-domain state from the
        // core domain; the published NACK count makes the empty case
        // (by far the common one) safely answerable from any thread,
        // and the serial predicate above keeps execution serial
        // whenever a filter is non-empty. A non-zero count observed
        // mid-round can only mean the round raced an insertion, so it
        // taints the run (discard + sequential rerun).
        caches->setEvictFilter([this](std::uint64_t line) {
            const unsigned mc = amap.mcFor(line);
            RecoveryTable *rt = rts[mc].get();
            if (!eq.parallel())
                return rt->nackPending(line);
            eq.noteCrossProbe();
            if (rt->nackCountRelaxed() == 0)
                return false;
            if (eq.inParallelRound()) {
                eq.taint("evict probe of a non-empty NACK filter in a "
                         "parallel round");
                return false;
            }
            return rt->nackPending(line);
        });
    }

    board = std::make_unique<ReleaseBoard>(cfg.numCores);
    ctx = std::make_unique<ModelContext>(
        ModelContext{cfg, eq, stats_, amap, mcs, &media, nullptr, {}});
    if (cfg.model == ModelKind::Eadr) {
        ctx->eadrDirty = std::make_shared<
            std::unordered_map<std::uint64_t, std::uint64_t>>();
    }

    for (unsigned t = 0; t < cfg.numCores; ++t) {
        std::unique_ptr<PersistModel> m;
        switch (cfg.model) {
          case ModelKind::Baseline:
            m = std::make_unique<BaselineModel>(t, *ctx);
            break;
          case ModelKind::Hops:
            m = std::make_unique<HopsModel>(t, *ctx);
            break;
          case ModelKind::Asap:
            m = std::make_unique<AsapModel>(t, *ctx);
            break;
          case ModelKind::Eadr:
            m = std::make_unique<EadrModel>(t, *ctx);
            break;
        }
        models.push_back(m.get());
        modelOwners.push_back(std::move(m));
    }
    ctx->peers = models;
}

System::~System() = default;

void
System::loadTrace(TraceSet traces)
{
    fatal_if(traces.threads.size() != cfg.numCores,
             "trace has ", traces.threads.size(), " threads but the "
             "system has ", cfg.numCores, " cores");
    for (unsigned t = 0; t < cfg.numCores; ++t) {
        fatal_if(traces.threads[t].empty() ||
                 traces.threads[t].back().type != OpType::End,
                 "thread ", t, " trace must end with an End op");
    }
    ownedSource = std::make_unique<MaterializedSource>(std::move(traces));
    loadStream(*ownedSource);
}

void
System::loadStream(OpSource &src)
{
    fatal_if(src.numThreads() != cfg.numCores,
             "op source has ", src.numThreads(), " threads but the "
             "system has ", cfg.numCores, " cores");
    panic_if(!cores.empty(), "loadStream() called twice");
    for (unsigned t = 0; t < cfg.numCores; ++t) {
        cores.push_back(std::make_unique<Core>(
            t, cfg, eq, stats_, *caches, *board, models,
            keepRunLog ? &log : nullptr, src));
    }
}

bool
System::run()
{
    panic_if(cores.empty(), "run() before loadTrace()");
    for (auto &c : cores)
        c->start();
    const bool drained = eq.run(cfg.maxRunTicks);
    bool all_done = true;
    Tick last = 0;
    for (auto &c : cores) {
        all_done = all_done && c->finished();
        last = std::max(last, c->finishTick());
    }
    runTicks_ = all_done ? last : eq.now();
    sealStats();
    stats_.set("sim.runTicks", runTicks_);
    stats_.set("sim.eventsExecuted", eq.executed());
    if (eq.tainted()) {
        // Every observable result is garbage; the runner discards the
        // system and reruns with the sequential engine.
        return false;
    }
    if (!drained || !all_done) {
        warn("run stopped before all cores finished (possible "
             "deadlock or maxRunTicks too low)");
        return false;
    }
    return true;
}

void
System::crashAt(Tick tick, const std::function<void()> &at_crash)
{
    panic_if(cores.empty(), "crashAt() before loadTrace()");
    if (!crashed) {
        for (auto &c : cores)
            c->start();
    }
    eq.run(tick);
    crashed = true;
    for (auto &c : cores)
        c->halt();
    if (at_crash)
        at_crash();
    for (PersistModel *m : models)
        m->crash();
    for (MemoryController *mc : mcs)
        mc->crash();
    sealStats();
    // The in-flight schedule dies with the power: drop it in one sweep
    // and record how much was pending (crash diagnostics).
    stats_.set("sim.eventsDropped", eq.clear());
    runTicks_ = eq.now();
    stats_.set("sim.runTicks", runTicks_);
    stats_.set("sim.eventsExecuted", eq.executed());
    stats_.inc("sim.crashes");
}

void
System::sealStats()
{
    if (!eq.parallel())
        return;
    if (!mcs.empty())
        mcs[0]->zeroAggStats();
    for (MemoryController *mc : mcs)
        mc->addAggStats();
    if (!rts.empty())
        rts[0]->zeroAggStats();
    for (auto &rt : rts)
        rt->addAggStats();
}

std::vector<std::uint64_t>
System::committedUpTo() const
{
    std::vector<std::uint64_t> out;
    out.reserve(models.size());
    for (const PersistModel *m : models)
        out.push_back(m->lastCommittedEpoch());
    return out;
}

} // namespace asap
