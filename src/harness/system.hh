/**
 * @file
 * Simulated system: wires cores, caches, persistence models, memory
 * controllers and recovery tables together, replays a trace set and
 * exports gem5-style stats (Table VI).
 */

#ifndef ASAP_HARNESS_SYSTEM_HH
#define ASAP_HARNESS_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coherence/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/op.hh"
#include "cpu/op_source.hh"
#include "cpu/release_board.hh"
#include "core/recovery_table.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/nvm_contents.hh"
#include "persist/model.hh"
#include "recovery/run_log.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asap
{

/** A complete simulated machine. */
class System
{
  public:
    /**
     * Build the machine described by @p cfg.
     *
     * @param cfg configuration (model kind, sizes, latencies)
     * @param keep_run_log record stores/edges for the recovery checker
     */
    explicit System(const SimConfig &cfg, bool keep_run_log = false);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Install the traces (one stream per core) and create the cores.
     *  The system takes ownership of the trace set (wrapped in a
     *  MaterializedSource — byte-identical to the classic replay). */
    void loadTrace(TraceSet traces);

    /**
     * Install a streaming op source (one stream per core) and create
     * the cores. The source is NOT owned; it must outlive run(). This
     * is the constant-memory path used by src/serve/ scenarios.
     */
    void loadStream(OpSource &src);

    /**
     * Run to completion.
     * @return true if every core finished (false: hit maxRunTicks —
     *         treated as a deadlock and reported)
     */
    bool run();

    /**
     * Run until @p tick, then inject a power failure: cores halt,
     * models drop volatile state (eADR drains its battery), memory
     * controllers flush their ADR domain and rewind speculation.
     *
     * @p at_crash, if set, runs at the instant of failure — after the
     * cores halt but before any model or controller processes the
     * crash. The crash-state permuter uses it to snapshot the live
     * persist-path state (WPQ contents, recovery-policy records,
     * commit-in-flight epochs) that the canonical drain consumes.
     */
    void crashAt(Tick tick,
                 const std::function<void()> &at_crash = {});

    /** Wall-clock of the run: last core completion (or crash) time. */
    Tick runTicks() const { return runTicks_; }

    /** Per-thread newest epoch guaranteed durable at this moment. */
    std::vector<std::uint64_t> committedUpTo() const;

    StatSet &stats() { return stats_; }
    NvmContents &nvm() { return media; }
    RunLog &runLog() { return log; }
    EventQueue &eventQueue() { return eq; }
    PersistModel &model(std::uint16_t thread) { return *models[thread]; }
    MemoryController &mc(unsigned i) { return *mcs[i]; }
    const SimConfig &config() const { return cfg; }

  private:
    /**
     * Recompute the shared "mc.*"/"rt.*" aggregate counters from the
     * per-component counters (parallel runs don't bump aggregates on
     * the hot path — that would race across domains and make their
     * values order-dependent). Idempotent; no-op under the
     * sequential engine.
     */
    void sealStats();

    SimConfig cfg;
    EventQueue eq;
    StatSet stats_;
    NvmContents media;
    AddressMap amap;
    RunLog log;
    bool keepRunLog;

    std::vector<std::unique_ptr<MemoryController>> mcOwners;
    std::vector<MemoryController *> mcs;
    std::vector<std::unique_ptr<RecoveryTable>> rts;
    std::unique_ptr<CacheHierarchy> caches;
    std::unique_ptr<ReleaseBoard> board;
    std::unique_ptr<ModelContext> ctx;
    std::vector<std::unique_ptr<PersistModel>> modelOwners;
    std::vector<PersistModel *> models;
    std::unique_ptr<MaterializedSource> ownedSource; //!< loadTrace path
    std::vector<std::unique_ptr<Core>> cores;

    Tick runTicks_ = 0;
    bool crashed = false;
};

} // namespace asap

#endif // ASAP_HARNESS_SYSTEM_HH
