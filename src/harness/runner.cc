#include "harness/runner.hh"

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "harness/system.hh"
#include "recovery/checker.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace asap
{

namespace
{

/** Record the trace a job replays (microbenches are not registry
 *  workloads, so they are special-cased here). */
TraceSet
buildJobTrace(const std::string &workload, const SimConfig &cfg,
              const WorkloadParams &p)
{
    if (workload == "bandwidth") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genBandwidthMicrobench(rec, p.opsPerThread);
        return rec.finish();
    }
    if (workload == "handoff") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genHandoffMicrobench(rec, p.opsPerThread);
        return rec.finish();
    }
    return buildTrace(workload, cfg.numCores, p);
}

/**
 * Trace memoisation. Generation depends only on (workload, cores,
 * WorkloadParams) — a strict subset of the result-cache key — so the
 * five model variants of a figure column and the hundreds of crash
 * ticks of a campaign config all replay one recorded trace. Entries
 * carry their own mutex: the first thread to want a trace generates
 * it while later threads block on that entry only, not the map.
 */
struct TraceCacheEntry
{
    std::mutex mu;
    bool ready = false;
    TraceSet trace;
};

std::mutex traceMapMu;
std::unordered_map<std::string, std::shared_ptr<TraceCacheEntry>>
    traceMap;
std::atomic<std::uint64_t> traceHits{0};
std::atomic<std::uint64_t> traceMisses{0};

std::string
traceKey(const std::string &workload, unsigned cores,
         const WorkloadParams &p)
{
    std::ostringstream os;
    os << workload << '|' << cores << '|' << p.opsPerThread << '|'
       << p.keySpace << '|' << p.valueBytes << '|' << p.updatePct
       << '|' << p.seed;
    return os.str();
}

TraceSet
obtainJobTrace(const std::string &workload, const SimConfig &cfg,
               const WorkloadParams &p)
{
    std::shared_ptr<TraceCacheEntry> entry;
    {
        std::lock_guard<std::mutex> lock(traceMapMu);
        auto &slot = traceMap[traceKey(workload, cfg.numCores, p)];
        if (!slot)
            slot = std::make_shared<TraceCacheEntry>();
        entry = slot;
    }
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->ready) {
        entry->trace = buildJobTrace(workload, cfg, p);
        entry->ready = true;
        traceMisses.fetch_add(1, std::memory_order_relaxed);
    } else {
        traceHits.fetch_add(1, std::memory_order_relaxed);
    }
    return entry->trace;
}

/** Extract the Table VI stat bundle from a finished (or crashed)
 *  system. */
RunResult
extractResult(System &sys, const std::string &workload,
              const SimConfig &cfg)
{
    StatSet &s = sys.stats();
    RunResult r;
    r.workload = workload;
    r.model = cfg.model;
    r.persistency = cfg.persistency;
    r.cores = cfg.numCores;
    r.media = cfg.mediaProfile;
    r.runTicks = sys.runTicks();
    r.pmWrites = s.get("mc.pmWrites");
    r.pmReads = s.get("mc.pmReads");
    r.cyclesBlocked = s.get("pb.cyclesBlocked");
    r.cyclesStalled = s.get("pb.cyclesStalled");
    r.dfenceStalled = s.get("core.dfenceStalled");
    r.sfenceStalled = s.get("core.sfenceStalled");
    r.entriesInserted = s.get("pb.entriesInserted");
    r.epochs = s.get("et.epochsOpened");
    r.crossDeps = s.get("et.interTEpochConflict");
    r.totSpecWrites = s.get("pb.totSpecWrites");
    r.totalUndo = s.get("rt.totalUndo");
    r.totalDelay = s.get("rt.totalDelay");
    r.nacks = s.get("rt.nacks");
    r.rtMaxOccupancy = s.get("rt.maxOccupancy");
    r.wpqCoalesced = s.get("mc.wpqCoalesced");
    r.suppressedWrites = s.get("mc.suppressedWrites");
    r.xpHits = s.get("mc.xpHits");
    r.xpMisses = s.get("mc.xpMisses");
    r.mediaBytesWritten = s.get("mc.bytesWritten");
    r.mediaQueueDelayTicks = s.get("mc.bwQueueDelayTicks");
    r.mediaBankBusyTicks = s.get("mc.bankBusyTicks");
    if (s.hasDist("pb.occupancy")) {
        r.pbOccMean = s.dist("pb.occupancy").mean();
        r.pbOccP99 = s.dist("pb.occupancy").percentile(99.0);
    }
    return r;
}

} // namespace

TraceCacheStats
traceCacheStats()
{
    TraceCacheStats s;
    s.hits = traceHits.load(std::memory_order_relaxed);
    s.misses = traceMisses.load(std::memory_order_relaxed);
    return s;
}

void
clearTraceCache()
{
    std::lock_guard<std::mutex> lock(traceMapMu);
    traceMap.clear();
    traceHits.store(0, std::memory_order_relaxed);
    traceMisses.store(0, std::memory_order_relaxed);
}

RunResult
runExperiment(const std::string &workload, const SimConfig &cfg,
              const WorkloadParams &p)
{
    System sys(cfg);
    sys.loadTrace(obtainJobTrace(workload, cfg, p));
    if (!sys.run())
        warn("experiment ", workload, " did not finish");
    return extractResult(sys, workload, cfg);
}

RunResult
runExperiment(const std::string &workload, ModelKind model,
              PersistencyModel pm, unsigned cores,
              const WorkloadParams &p)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.persistency = pm;
    cfg.numCores = cores;
    cfg.seed = p.seed;
    return runExperiment(workload, cfg, p);
}

CrashRunResult
runCrashExperiment(const std::string &workload, const SimConfig &cfg,
                   const WorkloadParams &p, Tick crash_tick)
{
    System sys(cfg, /*keep_run_log=*/true);
    sys.loadTrace(obtainJobTrace(workload, cfg, p));
    sys.crashAt(crash_tick);

    CrashRunResult out;
    out.run = extractResult(sys, workload, cfg);

    CrashVerdict &v = out.verdict;
    v.crashTick = crash_tick;
    v.actualTick = sys.runTicks();
    v.committedUpTo = sys.committedUpTo();
    v.storesLogged = sys.runLog().allStores().size();
    for (const auto &[line, value] : sys.nvm().all()) {
        (void)line;
        if (value != 0)
            ++v.linesSurvived;
    }
    v.undoReplayed = sys.stats().get("mc.undoRewindWrites");
    v.adrDrainWrites = sys.stats().get("mc.adrDrainWrites");

    const CheckResult check = checkCrashConsistency(
        sys.runLog(), sys.nvm(), v.committedUpTo);
    v.consistent = check.ok;
    v.message = check.message;
    return out;
}

} // namespace asap
