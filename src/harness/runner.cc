#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "harness/system.hh"
#include "permute/permute.hh"
#include "pm/trace_io.hh"
#include "recovery/checker.hh"
#include "serve/op_stream.hh"
#include "sim/hash.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace asap
{

namespace
{

/** Monotonic nanoseconds (host profiling). */
std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<std::uint64_t> profTraceGenNs{0};
std::atomic<std::uint64_t> profTraceLoadNs{0};
std::atomic<std::uint64_t> profSimulateNs{0};
std::atomic<std::uint64_t> profCheckNs{0};
std::atomic<std::uint64_t> profSimRuns{0};
std::atomic<std::uint64_t> profParRounds{0};
std::atomic<std::uint64_t> profSerialRounds{0};
std::atomic<std::uint64_t> profMisspeculations{0};
std::atomic<std::uint64_t> profRollbacks{0};
std::atomic<std::uint64_t> profTaintRestarts{0};

/** Fold one finished system's kernel telemetry into the process-wide
 *  profile counters. */
void
accountKernel(const EventQueue &eq)
{
    profParRounds.fetch_add(eq.parallelRounds(),
                            std::memory_order_relaxed);
    profSerialRounds.fetch_add(eq.serialRounds(),
                               std::memory_order_relaxed);
    profMisspeculations.fetch_add(eq.misspeculations(),
                                  std::memory_order_relaxed);
    profRollbacks.fetch_add(eq.rollbacks(), std::memory_order_relaxed);
}

/** Record the trace a job replays (microbenches are not registry
 *  workloads, so they are special-cased here). */
TraceSet
buildJobTrace(const std::string &workload, const SimConfig &cfg,
              const WorkloadParams &p)
{
    if (workload == "bandwidth") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genBandwidthMicrobench(rec, p.opsPerThread);
        return rec.finish();
    }
    if (workload == "handoff") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genHandoffMicrobench(rec, p.opsPerThread);
        return rec.finish();
    }
    if (isServeWorkload(workload)) {
        // Serving scenarios exist for streaming, but materializing
        // them keeps record/replay and crash experiments working on
        // small request counts. Purity guarantees the materialized
        // trace replays byte-identically to the stream.
        const ServeScenario &sc = findServeScenario(workload);
        ServeStream stream(sc, cfg.numCores, p);
        return materializeStream(stream, TraceRecorder::traceOpCap());
    }
    return buildTrace(workload, cfg.numCores, p);
}

/**
 * Trace memoisation. Generation depends only on (workload, cores,
 * WorkloadParams) — a strict subset of the result-cache key — so the
 * five model variants of a figure column and the hundreds of crash
 * ticks of a campaign config all replay one recorded trace. Entries
 * carry their own mutex: the first thread to want a trace generates
 * it while later threads block on that entry only, not the map.
 */
struct TraceCacheEntry
{
    std::mutex mu;
    bool ready = false;
    TraceSet trace;
};

std::mutex traceMapMu;
std::unordered_map<std::string, std::shared_ptr<TraceCacheEntry>>
    traceMap;
std::atomic<std::uint64_t> traceHits{0};
std::atomic<std::uint64_t> traceMisses{0};
std::atomic<std::uint64_t> traceDiskHits{0};

std::mutex traceDirMu;
std::string traceDir;
bool traceDirSet = false;

void
prepareTraceDir(const std::string &dir)
{
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        warn("trace cache: cannot create '", dir, "': ", ec.message());
}

/** File the disk tier stores a given generation key under. The name
 *  is only a rendezvous — the key embedded in the file is what
 *  actually authenticates it on load. */
std::string
traceDiskPath(const std::string &dir, const std::string &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(stableHash64(key)));
    return dir + "/trace-" + hex + ".bin";
}

std::string
traceKey(const std::string &workload, unsigned cores,
         const WorkloadParams &p)
{
    std::ostringstream os;
    os << workload << '|' << cores << '|' << p.opsPerThread << '|'
       << p.keySpace << '|' << p.valueBytes << '|' << p.updatePct
       << '|' << p.seed;
    return os.str();
}

TraceSet
obtainJobTrace(const std::string &workload, const SimConfig &cfg,
               const WorkloadParams &p)
{
    const std::string key = traceKey(workload, cfg.numCores, p);
    std::shared_ptr<TraceCacheEntry> entry;
    {
        std::lock_guard<std::mutex> lock(traceMapMu);
        auto &slot = traceMap[key];
        if (!slot)
            slot = std::make_shared<TraceCacheEntry>();
        entry = slot;
    }
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->ready) {
        traceHits.fetch_add(1, std::memory_order_relaxed);
        return entry->trace;
    }

    // Disk tier: another process (or an earlier run) may have left
    // the trace under ASAP_TRACE_DIR. A file that fails verification
    // is not an error — log why and fall through to regeneration,
    // which overwrites it with a good copy.
    const std::string dir = traceDirectory();
    std::string path;
    if (!dir.empty()) {
        path = traceDiskPath(dir, key);
        std::string why;
        const std::uint64_t t0 = hostNowNs();
        if (tryLoadTraceForKey(path, key, entry->trace, &why)) {
            profTraceLoadNs.fetch_add(hostNowNs() - t0,
                                      std::memory_order_relaxed);
            entry->ready = true;
            traceDiskHits.fetch_add(1, std::memory_order_relaxed);
            return entry->trace;
        }
        if (why != "cannot read file")
            warn("trace cache: regenerating '", path, "': ", why);
    }

    const std::uint64_t t0 = hostNowNs();
    entry->trace = buildJobTrace(workload, cfg, p);
    profTraceGenNs.fetch_add(hostNowNs() - t0,
                             std::memory_order_relaxed);
    entry->ready = true;
    traceMisses.fetch_add(1, std::memory_order_relaxed);
    if (!path.empty())
        saveTraceAtomic(entry->trace, path, key);
    return entry->trace;
}

/** Extract the Table VI stat bundle from a finished (or crashed)
 *  system. */
RunResult
extractResult(System &sys, const std::string &workload,
              const SimConfig &cfg)
{
    StatSet &s = sys.stats();
    RunResult r;
    r.workload = workload;
    r.model = cfg.model;
    r.persistency = cfg.persistency;
    r.cores = cfg.numCores;
    r.media = cfg.mediaProfile;
    if (!cfg.mediaPerMc.empty()) {
        // Heterogeneous runs label the whole list. '+' instead of ','
        // keeps the label one whitespace-free, comma-free token (cache
        // entries are whitespace-delimited, CSV is comma-delimited).
        r.media = cfg.mediaPerMc;
        for (char &c : r.media) {
            if (c == ',')
                c = '+';
        }
    }
    r.runTicks = sys.runTicks();
    r.pmWrites = s.get("mc.pmWrites");
    r.pmReads = s.get("mc.pmReads");
    r.cyclesBlocked = s.get("pb.cyclesBlocked");
    r.cyclesStalled = s.get("pb.cyclesStalled");
    r.dfenceStalled = s.get("core.dfenceStalled");
    r.sfenceStalled = s.get("core.sfenceStalled");
    r.entriesInserted = s.get("pb.entriesInserted");
    r.epochs = s.get("et.epochsOpened");
    r.crossDeps = s.get("et.interTEpochConflict");
    r.totSpecWrites = s.get("pb.totSpecWrites");
    r.totalUndo = s.get("rt.totalUndo");
    r.totalDelay = s.get("rt.totalDelay");
    r.nacks = s.get("rt.nacks");
    r.rtMaxOccupancy = s.get("rt.maxOccupancy");
    r.wpqCoalesced = s.get("mc.wpqCoalesced");
    r.suppressedWrites = s.get("mc.suppressedWrites");
    r.xpHits = s.get("mc.xpHits");
    r.xpMisses = s.get("mc.xpMisses");
    r.mediaBytesWritten = s.get("mc.bytesWritten");
    r.mediaQueueDelayTicks = s.get("mc.bwQueueDelayTicks");
    r.mediaBankBusyTicks = s.get("mc.bankBusyTicks");
    if (s.hasDist("pb.occupancy")) {
        r.pbOccMean = s.dist("pb.occupancy").mean();
        r.pbOccP99 = s.dist("pb.occupancy").percentile(99.0);
    }
    {
        auto it = s.allLogHists().find("core.persistLatency");
        if (it != s.allLogHists().end()) {
            const LogHistogram &h = it->second;
            r.persistSamples = h.count();
            r.persistP50 = h.percentile(50.0);
            r.persistP99 = h.percentile(99.0);
            r.persistP999 = h.percentile(99.9);
            r.persistMax = h.max();
        }
    }
    r.eventsExecuted = s.get("sim.eventsExecuted");
    return r;
}

} // namespace

TraceCacheStats
traceCacheStats()
{
    TraceCacheStats s;
    s.hits = traceHits.load(std::memory_order_relaxed);
    s.misses = traceMisses.load(std::memory_order_relaxed);
    s.diskHits = traceDiskHits.load(std::memory_order_relaxed);
    return s;
}

void
clearTraceCache()
{
    std::lock_guard<std::mutex> lock(traceMapMu);
    traceMap.clear();
    traceHits.store(0, std::memory_order_relaxed);
    traceMisses.store(0, std::memory_order_relaxed);
    traceDiskHits.store(0, std::memory_order_relaxed);
}

void
setTraceDirectory(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(traceDirMu);
    traceDir = dir;
    traceDirSet = true;
    prepareTraceDir(traceDir);
}

std::string
traceDirectory()
{
    std::lock_guard<std::mutex> lock(traceDirMu);
    if (!traceDirSet) {
        const char *env = std::getenv("ASAP_TRACE_DIR");
        traceDir = env ? env : "";
        traceDirSet = true;
        prepareTraceDir(traceDir);
    }
    return traceDir;
}

HostProfile
hostProfile()
{
    HostProfile hp;
    hp.traceGenNs = profTraceGenNs.load(std::memory_order_relaxed);
    hp.traceLoadNs = profTraceLoadNs.load(std::memory_order_relaxed);
    hp.simulateNs = profSimulateNs.load(std::memory_order_relaxed);
    hp.checkNs = profCheckNs.load(std::memory_order_relaxed);
    hp.simRuns = profSimRuns.load(std::memory_order_relaxed);
    hp.parRounds = profParRounds.load(std::memory_order_relaxed);
    hp.serialRounds = profSerialRounds.load(std::memory_order_relaxed);
    hp.misspeculations =
        profMisspeculations.load(std::memory_order_relaxed);
    hp.rollbacks = profRollbacks.load(std::memory_order_relaxed);
    hp.taintRestarts = profTaintRestarts.load(std::memory_order_relaxed);
    return hp;
}

RunResult
runExperiment(const std::string &workload, const SimConfig &cfg,
              const WorkloadParams &p)
{
    SimConfig runCfg = cfg;
    unsigned restarts = 0;
    const bool serve = isServeWorkload(workload);
    for (;;) {
        System sys(runCfg);
        // Streaming scenarios never materialize: cores pull ops out of
        // the generator as they retire, so RSS is bounded by the
        // keyspace footprint however many requests the run serves.
        std::unique_ptr<ServeStream> stream;
        if (serve) {
            stream = std::make_unique<ServeStream>(
                findServeScenario(workload), runCfg.numCores, p);
            sys.loadStream(*stream);
        } else {
            sys.loadTrace(obtainJobTrace(workload, runCfg, p));
        }
        const std::uint64_t t0 = hostNowNs();
        const bool finished = sys.run();
        const std::uint64_t simNs = hostNowNs() - t0;
        const EventQueue &eq = sys.eventQueue();
        if (eq.tainted() && runCfg.parDomains > 1) {
            // A synchronous cross-domain access raced the parallel
            // round; every observable result is suspect. Discard the
            // whole system and rerun with the sequential engine —
            // correctness never depends on the race not happening.
            warn("parallel run tainted (", eq.taintReason(),
                 "); rerunning sequentially");
            profTaintRestarts.fetch_add(1, std::memory_order_relaxed);
            ++restarts;
            runCfg.parDomains = 1;
            continue;
        }
        if (!finished)
            warn("experiment ", workload, " did not finish");
        profSimulateNs.fetch_add(simNs, std::memory_order_relaxed);
        profSimRuns.fetch_add(1, std::memory_order_relaxed);
        accountKernel(eq);
        RunResult r = extractResult(sys, workload, cfg);
        if (stream)
            r.serveRequests = stream->requestsGenerated();
        r.hostNs = simNs;
        r.parDomains = eq.parallel() ? runCfg.parDomains : 1;
        r.parRounds = eq.parallelRounds();
        r.specMisspeculations = eq.misspeculations();
        r.specRollbacks = eq.rollbacks();
        r.parRestarts = restarts;
        return r;
    }
}

RunResult
runExperiment(const std::string &workload, ModelKind model,
              PersistencyModel pm, unsigned cores,
              const WorkloadParams &p)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.persistency = pm;
    cfg.numCores = cores;
    cfg.seed = p.seed;
    return runExperiment(workload, cfg, p);
}

CrashRunResult
runCrashExperiment(const std::string &workload, const SimConfig &cfg,
                   const WorkloadParams &p, Tick crash_tick)
{
    SimConfig runCfg = cfg;
    unsigned restarts = 0;
    std::unique_ptr<System> sysPtr;
    std::uint64_t simNs = 0;
    for (;;) {
        sysPtr = std::make_unique<System>(runCfg, /*keep_run_log=*/true);
        sysPtr->loadTrace(obtainJobTrace(workload, runCfg, p));
        const std::uint64_t t0 = hostNowNs();
        sysPtr->crashAt(crash_tick);
        simNs = hostNowNs() - t0;
        if (sysPtr->eventQueue().tainted() && runCfg.parDomains > 1) {
            warn("parallel crash run tainted (",
                 sysPtr->eventQueue().taintReason(),
                 "); rerunning sequentially");
            profTaintRestarts.fetch_add(1, std::memory_order_relaxed);
            ++restarts;
            runCfg.parDomains = 1;
            continue;
        }
        break;
    }
    System &sys = *sysPtr;
    profSimulateNs.fetch_add(simNs, std::memory_order_relaxed);
    profSimRuns.fetch_add(1, std::memory_order_relaxed);
    accountKernel(sys.eventQueue());

    CrashRunResult out;
    out.run = extractResult(sys, workload, cfg);
    out.run.hostNs = simNs;
    out.run.parDomains =
        sys.eventQueue().parallel() ? runCfg.parDomains : 1;
    out.run.parRounds = sys.eventQueue().parallelRounds();
    out.run.specMisspeculations = sys.eventQueue().misspeculations();
    out.run.specRollbacks = sys.eventQueue().rollbacks();
    out.run.parRestarts = restarts;

    CrashVerdict &v = out.verdict;
    v.crashTick = crash_tick;
    v.actualTick = sys.runTicks();
    v.committedUpTo = sys.committedUpTo();
    v.storesLogged = sys.runLog().allStores().size();
    for (const auto &[line, value] : sys.nvm().all()) {
        (void)line;
        if (value != 0)
            ++v.linesSurvived;
    }
    v.undoReplayed = sys.stats().get("mc.undoRewindWrites");
    v.adrDrainWrites = sys.stats().get("mc.adrDrainWrites");

    // Check through the shared index: a permute job probing the same
    // tick (same log) reuses this build instead of re-indexing.
    const std::uint64_t c0 = hostNowNs();
    const std::shared_ptr<const CheckerIndex> index =
        sharedCheckerIndex(sys.runLog());
    const CheckResult check =
        index->check(NvmView(sys.nvm()), v.committedUpTo);
    profCheckNs.fetch_add(hostNowNs() - c0, std::memory_order_relaxed);
    v.consistent = check.ok;
    v.message = check.message;
    return out;
}

CrashRunResult
runPermuteExperiment(const std::string &workload, const SimConfig &cfg,
                     const WorkloadParams &p, Tick crash_tick,
                     const PermuteSpec &spec)
{
    permute::PermuteOptions opt;
    opt.bound = spec.bound == 0 ? 1 : spec.bound;
    opt.sampleSeed = spec.sampleSeed;
    fatal_if(!permute::parsePermuteFault(spec.fault, opt.fault),
             "unknown permute fault '", spec.fault, "' (valid: ",
             permute::permuteFaultNames(), ")");
    if (!spec.onlyState.empty()) {
        opt.haveOnlyMask = true;
        fatal_if(!permute::maskFromHex(spec.onlyState, opt.onlyMask),
                 "bad permute state mask '", spec.onlyState,
                 "' (expect hex, e.g. from a --repro line)");
    }
    fatal_if(!permute::parsePermuteEngine(spec.engine, opt.engine),
             "unknown permute engine '", spec.engine, "' (valid: ",
             permute::permuteEngineNames(), ")");
    opt.threads = spec.threads;

    SimConfig runCfg = cfg;
    unsigned restarts = 0;
    std::unique_ptr<System> sysPtr;
    std::uint64_t simNs = 0;
    permute::PermuteSnapshot snap;
    for (;;) {
        sysPtr = std::make_unique<System>(runCfg, /*keep_run_log=*/true);
        sysPtr->loadTrace(obtainJobTrace(workload, runCfg, p));
        snap = permute::PermuteSnapshot{};
        // Harvest the live persist-path state at the instant of
        // failure: record views and durable line values are consumed
        // (erased, drained, rewound) by the canonical crash path that
        // runs right after this hook.
        System *rawSys = sysPtr.get();
        SimConfig *rawCfg = &runCfg;
        const std::uint64_t t0 = hostNowNs();
        sysPtr->crashAt(crash_tick, [&snap, rawSys, rawCfg]() {
            for (unsigned i = 0; i < rawCfg->numMCs; ++i) {
                MemoryController &mc = rawSys->mc(i);
                permute::McSnapshot ms;
                ms.mc = i;
                if (const RecoveryPolicy *pol = mc.policy())
                    pol->exportRecords(ms.undos, ms.delays);
                ms.wpqLines = mc.wpqSnapshot().size();
                for (const UndoRecordView &u : ms.undos)
                    snap.durableAtCrash[u.line] = mc.durableValue(u.line);
                for (const DelayRecordView &d : ms.delays)
                    snap.durableAtCrash.emplace(d.line,
                                                mc.durableValue(d.line));
                snap.mcs.push_back(std::move(ms));
            }
            for (std::uint16_t t = 0; t < rawCfg->numCores; ++t)
                for (std::uint64_t e :
                     rawSys->model(t).commitInFlightEpochs())
                    snap.inFlight.emplace_back(t, e);
        });
        simNs = hostNowNs() - t0;
        if (sysPtr->eventQueue().tainted() && runCfg.parDomains > 1) {
            warn("parallel permute run tainted (",
                 sysPtr->eventQueue().taintReason(),
                 "); rerunning sequentially");
            profTaintRestarts.fetch_add(1, std::memory_order_relaxed);
            ++restarts;
            runCfg.parDomains = 1;
            continue;
        }
        break;
    }
    System &sys = *sysPtr;
    profSimulateNs.fetch_add(simNs, std::memory_order_relaxed);
    profSimRuns.fetch_add(1, std::memory_order_relaxed);
    accountKernel(sys.eventQueue());

    CrashRunResult out;
    out.run = extractResult(sys, workload, cfg);
    out.run.hostNs = simNs;
    out.run.parDomains =
        sys.eventQueue().parallel() ? runCfg.parDomains : 1;
    out.run.parRounds = sys.eventQueue().parallelRounds();
    out.run.specMisspeculations = sys.eventQueue().misspeculations();
    out.run.specRollbacks = sys.eventQueue().rollbacks();
    out.run.parRestarts = restarts;

    CrashVerdict &v = out.verdict;
    v.crashTick = crash_tick;
    v.actualTick = sys.runTicks();
    v.committedUpTo = sys.committedUpTo();
    v.storesLogged = sys.runLog().allStores().size();
    for (const auto &[line, value] : sys.nvm().all()) {
        (void)line;
        if (value != 0)
            ++v.linesSurvived;
    }
    v.undoReplayed = sys.stats().get("mc.undoRewindWrites");
    v.adrDrainWrites = sys.stats().get("mc.adrDrainWrites");

    const std::uint64_t c0 = hostNowNs();
    const permute::PermuteReport rep = permute::permuteAndCheck(
        snap, opt, sys.nvm(), sys.runLog(), v.committedUpTo);
    const std::uint64_t checkNs = hostNowNs() - c0;
    profCheckNs.fetch_add(checkNs, std::memory_order_relaxed);
    v.permuteNs = checkNs;

    v.statesChecked = rep.statesChecked;
    v.statesReachable = rep.statesReachable;
    v.distinctStates = rep.distinctStates;
    v.permuteAtoms = rep.atoms;
    v.truncated = rep.truncated || rep.atomsTruncated;
    v.inconsistentStates = rep.inconsistentStates;
    v.consistent = rep.inconsistentStates == 0;
    if (rep.haveFirstBad) {
        v.firstBadState = permute::maskToHex(rep.firstBadMask);
        v.message = "state " + v.firstBadState + ": " +
                    rep.firstBadMessage;
    }
    return out;
}

} // namespace asap
