#include "harness/runner.hh"

#include <utility>

#include "harness/system.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace asap
{

RunResult
runExperiment(const std::string &workload, const SimConfig &cfg,
              const WorkloadParams &p)
{
    TraceSet traces;
    if (workload == "bandwidth") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genBandwidthMicrobench(rec, p.opsPerThread);
        traces = rec.finish();
    } else if (workload == "handoff") {
        TraceRecorder rec(cfg.numCores, p.seed);
        genHandoffMicrobench(rec, p.opsPerThread);
        traces = rec.finish();
    } else {
        traces = buildTrace(workload, cfg.numCores, p);
    }

    System sys(cfg);
    sys.loadTrace(std::move(traces));
    const bool finished = sys.run();
    if (!finished)
        warn("experiment ", workload, " did not finish");

    StatSet &s = sys.stats();
    RunResult r;
    r.workload = workload;
    r.model = cfg.model;
    r.persistency = cfg.persistency;
    r.cores = cfg.numCores;
    r.runTicks = sys.runTicks();
    r.pmWrites = s.get("mc.pmWrites");
    r.pmReads = s.get("mc.pmReads");
    r.cyclesBlocked = s.get("pb.cyclesBlocked");
    r.cyclesStalled = s.get("pb.cyclesStalled");
    r.dfenceStalled = s.get("core.dfenceStalled");
    r.sfenceStalled = s.get("core.sfenceStalled");
    r.entriesInserted = s.get("pb.entriesInserted");
    r.epochs = s.get("et.epochsOpened");
    r.crossDeps = s.get("et.interTEpochConflict");
    r.totSpecWrites = s.get("pb.totSpecWrites");
    r.totalUndo = s.get("rt.totalUndo");
    r.totalDelay = s.get("rt.totalDelay");
    r.nacks = s.get("rt.nacks");
    r.rtMaxOccupancy = s.get("rt.maxOccupancy");
    r.wpqCoalesced = s.get("mc.wpqCoalesced");
    r.suppressedWrites = s.get("mc.suppressedWrites");
    if (s.hasDist("pb.occupancy")) {
        r.pbOccMean = s.dist("pb.occupancy").mean();
        r.pbOccP99 = s.dist("pb.occupancy").percentile(99.0);
    }
    return r;
}

RunResult
runExperiment(const std::string &workload, ModelKind model,
              PersistencyModel pm, unsigned cores,
              const WorkloadParams &p)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.persistency = pm;
    cfg.numCores = cores;
    cfg.seed = p.seed;
    return runExperiment(workload, cfg, p);
}

} // namespace asap
