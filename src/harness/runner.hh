/**
 * @file
 * Experiment runner: one call = one gem5-style simulation.
 *
 * Wraps trace generation + system construction + replay and returns
 * the stats the paper's figures are built from (Table VI names).
 */

#ifndef ASAP_HARNESS_RUNNER_HH
#define ASAP_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "workloads/params.hh"

namespace asap
{

/** Everything a figure needs from one simulation. */
struct RunResult
{
    std::string workload;
    ModelKind model;
    PersistencyModel persistency;
    unsigned cores = 0;

    std::uint64_t runTicks = 0;      //!< execution time (cycles)
    std::uint64_t pmWrites = 0;      //!< media writes (Figure 9)
    std::uint64_t pmReads = 0;       //!< media reads (undo misses)
    std::uint64_t cyclesBlocked = 0; //!< PB blocked cycles (Figure 3)
    std::uint64_t cyclesStalled = 0; //!< core stalls on full PB
    std::uint64_t dfenceStalled = 0; //!< dfence stall cycles
    std::uint64_t sfenceStalled = 0; //!< baseline sfence stall cycles
    std::uint64_t entriesInserted = 0; //!< PB enqueues
    std::uint64_t epochs = 0;          //!< epochs opened (Figure 2)
    std::uint64_t crossDeps = 0;       //!< interTEpochConflict (Fig. 2)
    std::uint64_t totSpecWrites = 0;   //!< early flushes
    std::uint64_t totalUndo = 0;       //!< undo records created
    std::uint64_t totalDelay = 0;      //!< delay records created
    std::uint64_t nacks = 0;           //!< RT NACKs
    std::uint64_t rtMaxOccupancy = 0;  //!< Figure 12
    double pbOccMean = 0.0;            //!< Figure 11
    std::uint64_t pbOccP99 = 0;        //!< Figure 11
    std::uint64_t wpqCoalesced = 0;
    std::uint64_t suppressedWrites = 0;

    /** Per-core cycles, for normalising blocked/stall percentages. */
    std::uint64_t totalCoreCycles() const { return runTicks * cores; }
};

/** Run one workload under one configuration. */
RunResult runExperiment(const std::string &workload,
                        const SimConfig &cfg, const WorkloadParams &p);

/** Convenience wrapper building the SimConfig from parts. */
RunResult runExperiment(const std::string &workload, ModelKind model,
                        PersistencyModel pm, unsigned cores,
                        const WorkloadParams &p);

} // namespace asap

#endif // ASAP_HARNESS_RUNNER_HH
