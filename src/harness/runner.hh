/**
 * @file
 * Experiment runner: one call = one gem5-style simulation.
 *
 * Wraps trace generation + system construction + replay and returns
 * the stats the paper's figures are built from (Table VI names).
 */

#ifndef ASAP_HARNESS_RUNNER_HH
#define ASAP_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "workloads/params.hh"

namespace asap
{

/** Everything a figure needs from one simulation. */
struct RunResult
{
    std::string workload;
    ModelKind model;
    PersistencyModel persistency;
    unsigned cores = 0;
    std::string media;               //!< media profile the run used

    std::uint64_t runTicks = 0;      //!< execution time (cycles)
    std::uint64_t pmWrites = 0;      //!< media writes (Figure 9)
    std::uint64_t pmReads = 0;       //!< media reads (undo misses)
    std::uint64_t cyclesBlocked = 0; //!< PB blocked cycles (Figure 3)
    std::uint64_t cyclesStalled = 0; //!< core stalls on full PB
    std::uint64_t dfenceStalled = 0; //!< dfence stall cycles
    std::uint64_t sfenceStalled = 0; //!< baseline sfence stall cycles
    std::uint64_t entriesInserted = 0; //!< PB enqueues
    std::uint64_t epochs = 0;          //!< epochs opened (Figure 2)
    std::uint64_t crossDeps = 0;       //!< interTEpochConflict (Fig. 2)
    std::uint64_t totSpecWrites = 0;   //!< early flushes
    std::uint64_t totalUndo = 0;       //!< undo records created
    std::uint64_t totalDelay = 0;      //!< delay records created
    std::uint64_t nacks = 0;           //!< RT NACKs
    std::uint64_t rtMaxOccupancy = 0;  //!< Figure 12
    double pbOccMean = 0.0;            //!< Figure 11
    std::uint64_t pbOccP99 = 0;        //!< Figure 11
    std::uint64_t wpqCoalesced = 0;
    std::uint64_t suppressedWrites = 0;
    std::uint64_t xpHits = 0;          //!< XPBuffer undo-read hits
    std::uint64_t xpMisses = 0;        //!< XPBuffer undo-read misses
    std::uint64_t mediaBytesWritten = 0;      //!< timed media writes
    std::uint64_t mediaQueueDelayTicks = 0;   //!< bandwidth-cap queueing
    std::uint64_t mediaBankBusyTicks = 0;     //!< summed bank occupancy

    /**
     * Persist-latency tail (serving observability): per-dfence
     * issue→completion tick deltas sampled into a log-bucketed
     * histogram by every core. Deterministic — pure functions of the
     * configuration — so they are cached and emitted like any other
     * stat (emitters surface them for serve:* jobs).
     */
    std::uint64_t persistSamples = 0; //!< dfences sampled
    std::uint64_t persistP50 = 0;     //!< median persist latency (ticks)
    std::uint64_t persistP99 = 0;     //!< p99 persist latency (ticks)
    std::uint64_t persistP999 = 0;    //!< p999 persist latency (ticks)
    std::uint64_t persistMax = 0;     //!< worst persist latency (ticks)
    /** Requests a streaming serve:* run generated (0 for materialized
     *  workloads); throughput = serveRequests / runTicks seconds. */
    std::uint64_t serveRequests = 0;

    /** Kernel events the run executed. Deterministic (a pure function
     *  of the configuration), so it is cached and emitted like any
     *  other stat. */
    std::uint64_t eventsExecuted = 0;

    /** Host wall-clock nanoseconds the simulation took. Host-side
     *  only and non-deterministic: never serialized into caches and
     *  never emitted into artifacts (zero on cache-served results). */
    std::uint64_t hostNs = 0;

    /**
     * Parallel-kernel execution telemetry. Host-side like hostNs:
     * which engine executed a run (and how often it speculated) does
     * not change any simulated result — outputs are bit-identical by
     * construction — so none of these fields enter caches or
     * artifacts (zero on cache-served results).
     */
    unsigned parDomains = 1;  //!< domains the returned run executed with
    std::uint64_t parRounds = 0; //!< parallel rounds committed
    std::uint64_t specMisspeculations = 0; //!< failed spec windows
    std::uint64_t specRollbacks = 0;       //!< domain rollbacks
    unsigned parRestarts = 0; //!< tainted parallel runs discarded

    /** Host throughput in events per second (0 when not measured). */
    double
    eventsPerSec() const
    {
        return hostNs == 0 ? 0.0
                           : static_cast<double>(eventsExecuted) *
                                 1e9 / static_cast<double>(hostNs);
    }

    /** Per-core cycles, for normalising blocked/stall percentages. */
    std::uint64_t totalCoreCycles() const { return runTicks * cores; }
};

/**
 * Hit/miss counters of the in-process trace memoisation: trace
 * generation is deterministic in (workload, cores, params), so jobs
 * sharing a configuration — every crash campaign, every multi-model
 * figure column — reuse one generated TraceSet instead of
 * regenerating it per simulation.
 */
struct TraceCacheStats
{
    std::uint64_t hits = 0;     //!< runs served a memoised trace
    std::uint64_t misses = 0;   //!< runs that generated the trace
    std::uint64_t diskHits = 0; //!< traces replayed from ASAP_TRACE_DIR
};

/** Snapshot of the process-wide trace-memoisation counters. */
TraceCacheStats traceCacheStats();

/** Drop memoised traces and zero the counters (tests). The disk-tier
 *  directory is left configured. */
void clearTraceCache();

/**
 * Point the on-disk trace tier at @p dir (created if missing; empty
 * disables the tier). Overrides the ASAP_TRACE_DIR environment
 * variable, which is read once on first use. The directory may be
 * shared by concurrent processes and shards: files are written via
 * temp + rename and verified (version, embedded parameter key,
 * checksum) on load, so a corrupt or stale file costs a regeneration,
 * never a wrong trace.
 */
void setTraceDirectory(const std::string &dir);

/** The active trace-tier directory (empty when disabled). */
std::string traceDirectory();

/**
 * Accumulated host-side wall time per runner phase, process-wide.
 * Benches print the breakdown under --profile; values only ever grow,
 * so a delta of two snapshots profiles a region.
 */
struct HostProfile
{
    std::uint64_t traceGenNs = 0;  //!< generating TraceSets
    std::uint64_t traceLoadNs = 0; //!< loading TraceSets from disk
    std::uint64_t simulateNs = 0;  //!< System::run / crashAt
    std::uint64_t checkNs = 0;     //!< recovery-consistency checking
    std::uint64_t simRuns = 0;     //!< simulations measured

    // Parallel event kernel (zero unless --par-domains > 1 ran).
    std::uint64_t parRounds = 0;       //!< parallel rounds committed
    std::uint64_t serialRounds = 0;    //!< serial fallback rounds
    std::uint64_t misspeculations = 0; //!< failed speculative windows
    std::uint64_t rollbacks = 0;       //!< domain rollbacks performed
    std::uint64_t taintRestarts = 0;   //!< runs redone sequentially
};

/** Snapshot of the process-wide phase timers. */
HostProfile hostProfile();

/** Run one workload under one configuration. */
RunResult runExperiment(const std::string &workload,
                        const SimConfig &cfg, const WorkloadParams &p);

/** Convenience wrapper building the SimConfig from parts. */
RunResult runExperiment(const std::string &workload, ModelKind model,
                        PersistencyModel pm, unsigned cores,
                        const WorkloadParams &p);

/**
 * Outcome of one crash-injection experiment: did the post-crash NVM
 * state satisfy the Section VI consistency predicate, and against
 * which committed-epoch frontier was it checked.
 */
struct CrashVerdict
{
    bool consistent = true;
    std::string message;  //!< first violation found (empty when ok)

    Tick crashTick = 0;   //!< requested power-failure tick
    Tick actualTick = 0;  //!< tick the system actually stopped at

    /** Per-thread newest epoch the hardware had committed at the
     *  crash (the dependency-closed frontier the checker verified). */
    std::vector<std::uint64_t> committedUpTo;

    std::uint64_t storesLogged = 0;     //!< PM stores the run retired
    std::uint64_t linesSurvived = 0;    //!< NVM lines holding a token
    std::uint64_t undoReplayed = 0;     //!< undo records rewound at crash
    std::uint64_t adrDrainWrites = 0;   //!< WPQ entries ADR drained

    /**
     * Crash-state permuter coverage (JobKind::Permute only; all zero
     * for plain crash jobs). statesChecked == statesReachable means
     * the tick was covered exhaustively; truncated flags sampling.
     */
    std::uint64_t statesChecked = 0;
    std::uint64_t statesReachable = 0;
    std::uint64_t distinctStates = 0;   //!< unique NVM images
    std::uint64_t permuteAtoms = 0;     //!< orderable crash-time actions
    bool truncated = false;             //!< sampled, not exhaustive
    std::uint64_t inconsistentStates = 0;
    /** Hex mask of the first inconsistent state (empty when none);
     *  feed back via --state for a single-state repro. */
    std::string firstBadState;

    /** Host wall-clock nanoseconds the permute check loop took.
     *  Host-side like RunResult::hostNs: never serialized into caches
     *  and never emitted into deterministic artifacts (zero on
     *  cache-served results). statesChecked / permuteNs seconds is
     *  the engine's states/sec. */
    std::uint64_t permuteNs = 0;

    explicit operator bool() const { return consistent; }
};

/** A crashed run: stats up to the failure, plus the checker verdict. */
struct CrashRunResult
{
    RunResult run;
    CrashVerdict verdict;
};

/**
 * Run @p workload under @p cfg, inject a power failure at
 * @p crash_tick, drain the ADR domain, rewind speculation and check
 * the surviving NVM contents against the run log.
 */
CrashRunResult runCrashExperiment(const std::string &workload,
                                  const SimConfig &cfg,
                                  const WorkloadParams &p,
                                  Tick crash_tick);

/** Knobs for one crash-state permutation experiment. */
struct PermuteSpec
{
    /** Max states to check (exhaustive when 2^atoms fits). */
    std::uint64_t bound = 4096;
    std::uint64_t sampleSeed = 1; //!< sampling PRNG seed above bound
    /** Fault-injection mode name ("", "none", "drop-undo"). */
    std::string fault;
    /** Non-empty: hex mask of the single state to check (--repro). */
    std::string onlyState;

    /** Check-loop engine name ("", "incremental", "naive"). Purely an
     *  execution knob: every engine produces bit-identical verdicts,
     *  so it never enters job keys or caches. */
    std::string engine;
    /** Worker threads for the incremental engine (1 = inline, 0 = one
     *  per hardware thread). Execution knob like engine. */
    unsigned threads = 1;
};

/**
 * Like runCrashExperiment, but instead of checking only the canonical
 * post-crash state, snapshot the persist-path state at the crash
 * instant and run the checker over every reachable post-crash NVM
 * state (src/permute). The verdict's consistency covers all checked
 * states; coverage lands in the statesChecked/statesReachable fields.
 */
CrashRunResult runPermuteExperiment(const std::string &workload,
                                    const SimConfig &cfg,
                                    const WorkloadParams &p,
                                    Tick crash_tick,
                                    const PermuteSpec &spec);

} // namespace asap

#endif // ASAP_HARNESS_RUNNER_HH
