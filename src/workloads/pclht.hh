/**
 * @file
 * P-CLHT: the persistent cache-line hash table from RECIPE (Lee et
 * al., SOSP'19) — the "hash table" entry of the paper's RECIPE row.
 *
 * Buckets are single cache lines holding three key/value pairs and a
 * next pointer for overflow chaining. Writers lock the bucket chain;
 * an insert publishes the value then the key with an ofence between,
 * so recovery never observes a key without its value.
 */

#ifndef ASAP_WORKLOADS_PCLHT_HH
#define ASAP_WORKLOADS_PCLHT_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Persistent cache-line hash table. */
class Pclht
{
  public:
    static constexpr unsigned slotsPerBucket = 3;

    /**
     * @param rec recorder
     * @param num_buckets power-of-two bucket count
     */
    Pclht(TraceRecorder &rec, unsigned num_buckets = 1024);

    /** Insert or update. */
    void insert(unsigned t, std::uint64_t key, std::uint64_t value);

    /** Lookup; 0 when absent. */
    std::uint64_t search(unsigned t, std::uint64_t key);

    /**
     * Delete a key: the slot's key word is zeroed (the CLHT tombstone
     * convention), making the slot reusable by later inserts.
     * @return true if the key was present
     */
    bool remove(unsigned t, std::uint64_t key);

    unsigned chains() const { return overflowAllocs; }

  private:
    /** Bucket line: 3 x (key,value) pairs + header/next in last 16 B. */
    std::uint64_t bucketAddr(std::uint64_t h) const;

    TraceRecorder &rec;
    unsigned nBuckets;
    std::uint64_t table;
    std::vector<PmLock> locks; //!< one lock per bucket group
    unsigned overflowAllocs = 0;
};

/** Driver: update-intensive insert/search mix. */
void genPclht(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_PCLHT_HH
