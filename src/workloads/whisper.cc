#include "workloads/whisper.hh"

#include <vector>

#include "workloads/kv_util.hh"

namespace asap
{

void
genNstore(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    Rng rng(p.seed * 0x0571 + 2);

    // Per-thread WAL region + a shared table of tuples.
    std::vector<std::uint64_t> wal, walPos;
    for (unsigned t = 0; t < threads; ++t) {
        wal.push_back(rec.space().alloc(2u << 20, lineBytes));
        walPos.push_back(0);
    }
    const unsigned tuples = p.keySpace;
    const std::uint64_t table =
        rec.space().alloc(std::uint64_t(tuples) * lineBytes, lineBytes);
    PmLock tableLock = rec.makeLock(); // coarse table latch

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 150); // SQL parse/plan

            // Append a 4-line log record (sequential WAL traffic).
            const unsigned logLines = 3 + rng.below(3);
            for (unsigned l = 0; l < logLines; ++l) {
                const std::uint64_t a =
                    wal[t] + (walPos[t] % ((2u << 20) - lineBytes));
                rec.store64(t, a, rng.next());
                rec.store64(t, a + 32, rng.next());
                walPos[t] += lineBytes;
            }
            rec.ofence(t); // log before data

            // Update 1-3 tuples in place.
            const unsigned nt = 1 + rng.below(3);
            rec.lockAcquire(t, tableLock);
            for (unsigned u = 0; u < nt; ++u) {
                const std::uint64_t tuple =
                    table + rng.below(tuples) * lineBytes;
                rec.load64(t, tuple);
                rec.store64(t, tuple, rng.next());
                rec.store64(t, tuple + 8, rng.next());
            }
            rec.lockRelease(t, tableLock);
            // Transaction commit: durability point.
            rec.dfence(t);
        }
    }
}

void
genEcho(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    Rng rng(p.seed * 0xec40 + 13);

    std::vector<std::uint64_t> logs, logPos;
    for (unsigned t = 0; t < threads; ++t) {
        logs.push_back(rec.space().alloc(1u << 20, lineBytes));
        logPos.push_back(0);
    }
    const unsigned buckets = 4096;
    const std::uint64_t index =
        rec.space().alloc(std::uint64_t(buckets) * lineBytes, lineBytes);
    std::vector<PmLock> bucketLocks;
    for (unsigned i = 0; i < 64; ++i)
        bucketLocks.push_back(rec.makeLock());

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 90);
            // Stage the update in the worker's local log (1-2 lines).
            const unsigned lines = 1 + rng.below(2);
            for (unsigned l = 0; l < lines; ++l) {
                const std::uint64_t a =
                    logs[t] + (logPos[t] % ((1u << 20) - lineBytes));
                rec.store64(t, a, rng.next());
                logPos[t] += lineBytes;
            }
            rec.ofence(t);
            // Commit into the shared index under a short bucket lock.
            const std::uint64_t h = rng.next();
            PmLock &lock = bucketLocks[h % bucketLocks.size()];
            rec.lockAcquire(t, lock);
            const std::uint64_t slot =
                index + (h % buckets) * lineBytes;
            rec.load64(t, slot);
            rec.store64(t, slot, h | 1);
            rec.store64(t, slot + 8, rng.next());
            rec.ofence(t);
            rec.lockRelease(t, lock);
            if ((op + 1) % 32 == 0)
                rec.dfence(t);
        }
    }
}

void
genVacation(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    Rng rng(p.seed * 0xaca7 + 19);

    // Reservation tables (cars/flights/rooms/customers).
    const unsigned rows = p.keySpace;
    std::uint64_t tables[4];
    for (auto &tb : tables)
        tb = rec.space().alloc(std::uint64_t(rows) * lineBytes,
                               lineBytes);
    // Per-thread PMDK-style undo log.
    std::vector<std::uint64_t> undo;
    for (unsigned t = 0; t < threads; ++t)
        undo.push_back(rec.space().alloc(1u << 18, lineBytes));
    PmLock managerLock = rec.makeLock(); // the coarse-grained lock

    std::vector<std::uint64_t> undoPos(threads, 0);
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 120); // query planning / tree lookups
            rec.lockAcquire(t, managerLock);

            // PMDK transaction: undo-log entry, fence, data write,
            // for each of 3-5 touched rows.
            const unsigned touches = 3 + rng.below(3);
            for (unsigned u = 0; u < touches; ++u) {
                const std::uint64_t row =
                    tables[rng.below(4)] + rng.below(rows) * lineBytes;
                const std::uint64_t old = rec.load64(t, row);
                const std::uint64_t ua =
                    undo[t] + (undoPos[t] % ((1u << 18) - 16));
                undoPos[t] += 16;
                rec.store64(t, ua, row);
                rec.store64(t, ua + 8, old);
                rec.ofence(t);
                rec.store64(t, row, old + 1);
            }
            rec.dfence(t); // transaction commit

            // Volatile bookkeeping before the lock is released: by
            // the time another thread acquires the manager lock the
            // writes have already drained (Section VII-A).
            rec.compute(t, 900);
            rec.lockRelease(t, managerLock);
        }
    }
}

void
genMemcached(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    Rng rng(p.seed * 0x3e3c + 23);

    const unsigned buckets = 8192;
    const std::uint64_t table =
        rec.space().alloc(std::uint64_t(buckets) * lineBytes, lineBytes);
    // Slab area for item payloads.
    const unsigned slabItems = 4096;
    const unsigned itemBytes =
        (p.valueBytes + lineBytes - 1) / lineBytes * lineBytes;
    const std::uint64_t slabs = rec.space().alloc(
        std::uint64_t(slabItems) * itemBytes, lineBytes);
    std::vector<PmLock> bucketLocks;
    for (unsigned i = 0; i < 128; ++i)
        bucketLocks.push_back(rec.makeLock());
    std::vector<std::uint8_t> payload(itemBytes, 0xab);

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(rng.below(p.keySpace));
            const std::uint64_t h = hash64(key);
            rec.compute(t, 150); // request parsing
            if (rng.percent(p.updatePct)) {
                // SET: write the item into a slab, then publish in
                // the bucket. Both under the bucket lock: the slab
                // slot is shared by keys that hash together.
                const std::uint64_t item =
                    slabs + (h % slabItems) * itemBytes;
                PmLock &lock =
                    bucketLocks[h % bucketLocks.size()];
                rec.lockAcquire(t, lock);
                rec.storeBytes(t, item, payload.data(), itemBytes);
                rec.ofence(t);
                const std::uint64_t slot =
                    table + (h % buckets) * lineBytes;
                rec.store64(t, slot, key);
                rec.store64(t, slot + 8, item);
                rec.ofence(t);
                rec.lockRelease(t, lock);
            } else {
                // GET.
                const std::uint64_t slot =
                    table + (h % buckets) * lineBytes;
                if (rec.load64(t, slot) == key) {
                    const std::uint64_t item =
                        rec.load64(t, slot + 8);
                    rec.loadBytes(t, item, nullptr, itemBytes);
                }
            }
            // LRU maintenance is volatile.
            rec.compute(t, 30);
            if ((op + 1) % 64 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
