/**
 * @file
 * ATLAS-style hand-written persistent data structures (Chakrabarti et
 * al., OOPSLA'14): heap, queue and skip list, as in the paper's
 * Table III ("Insert/delete elements").
 *
 * Atlas makes lock-based code durable: every store inside a critical
 * section is preceded by an undo-log record (log entry persisted and
 * ordered before the data store), and log entries are appended to a
 * per-thread persistent log. This produces the characteristic
 * "log write, ofence, data write" pattern plus lock-induced
 * cross-thread dependencies.
 */

#ifndef ASAP_WORKLOADS_ATLAS_HH
#define ASAP_WORKLOADS_ATLAS_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Per-thread Atlas undo log. */
class AtlasLog
{
  public:
    AtlasLog(TraceRecorder &rec, unsigned num_threads);

    /**
     * Persist an undo record for @p addr (old value read + log entry
     * write + ofence), Atlas's store instrumentation.
     */
    void loggedStore(unsigned t, std::uint64_t addr,
                     std::uint64_t value);

    /** Critical-section end: make the log prefix durable. */
    void commitSection(unsigned t);

  private:
    TraceRecorder &rec;
    std::vector<std::uint64_t> logBase;
    std::vector<std::uint64_t> logPos;
    static constexpr std::uint64_t logBytes = 1u << 20;
};

void genAtlasHeap(TraceRecorder &rec, const WorkloadParams &p);
void genAtlasQueue(TraceRecorder &rec, const WorkloadParams &p);
void genAtlasSkiplist(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_ATLAS_HH
