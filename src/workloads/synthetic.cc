#include "workloads/synthetic.hh"

#include <vector>

namespace asap
{

void
genSyntheticWorkload(TraceRecorder &rec, const SyntheticParams &p)
{
    const unsigned threads = rec.numThreads();
    Rng &rng = rec.rng();

    // Shared region split into lock-protected groups plus a private
    // region per thread.
    const std::uint64_t shared =
        rec.space().alloc(p.regionLines * lineBytes, lineBytes);
    std::vector<std::uint64_t> priv;
    for (unsigned t = 0; t < threads; ++t)
        priv.push_back(rec.space().alloc(p.regionLines * lineBytes,
                                         lineBytes));
    std::vector<PmLock> locks;
    for (unsigned l = 0; l < p.lockCount; ++l)
        locks.push_back(rec.makeLock());

    // Interleave whole steps round-robin across threads; the replay
    // cores run them concurrently subject to the recorded lock edges.
    std::vector<unsigned> step(threads, 0);
    for (unsigned s = 0; s < p.opsPerThread; ++s) {
        for (unsigned t = 0; t < threads; ++t) {
            const bool is_shared = rng.percent(p.sharedPct);
            if (is_shared) {
                const unsigned li =
                    static_cast<unsigned>(rng.below(p.lockCount));
                PmLock &lock = locks[li];
                // Each lock owns an interleaved slice of the region.
                rec.lockAcquire(t, lock);
                for (unsigned w = 0; w < p.storesPerStep; ++w) {
                    const std::uint64_t line =
                        li + p.lockCount * rng.below(
                            p.regionLines / p.lockCount);
                    rec.store64(t, shared + line * lineBytes,
                                rng.next());
                }
                rec.ofence(t);
                rec.lockRelease(t, lock);
            } else {
                for (unsigned w = 0; w < p.storesPerStep; ++w) {
                    const std::uint64_t line = rng.below(p.regionLines);
                    rec.store64(t, priv[t] + line * lineBytes,
                                rng.next());
                }
                if (p.ofenceEvery && step[t] % p.ofenceEvery == 0)
                    rec.ofence(t);
            }
            if (p.dfenceEvery && step[t] > 0 &&
                step[t] % p.dfenceEvery == 0) {
                rec.dfence(t);
            }
            rec.compute(t, 1 + static_cast<std::uint32_t>(
                               rng.below(p.computeCycles)));
            ++step[t];
        }
    }
}

void
genHandoffMicrobench(TraceRecorder &rec, unsigned handoffs)
{
    const unsigned threads = rec.numThreads();
    PmLock lock = rec.makeLock();
    const std::uint64_t region =
        rec.space().alloc(16 * lineBytes, lineBytes);
    Rng &rng = rec.rng();

    for (unsigned h = 0; h < handoffs; ++h) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.lockAcquire(t, lock);
            rec.store64(t, region + (h % 16) * lineBytes, rng.next());
            rec.store64(t, region + ((h + 7) % 16) * lineBytes,
                        rng.next());
            rec.ofence(t);
            rec.lockRelease(t, lock);
            rec.compute(t, 30);
        }
    }
}

void
genBandwidthMicrobench(TraceRecorder &rec, unsigned bursts)
{
    const unsigned threads = rec.numThreads();
    // 256 B = 4 lines; consecutive bursts land on alternating MCs
    // because the interleave grain is 256 B.
    const std::uint64_t burstBytes = 256;
    std::vector<std::uint64_t> region;
    for (unsigned t = 0; t < threads; ++t)
        region.push_back(rec.space().alloc(bursts * burstBytes, 256));

    for (unsigned b = 0; b < bursts; ++b) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t base = region[t] + b * burstBytes;
            for (unsigned l = 0; l < burstBytes / lineBytes; ++l)
                rec.store64(t, base + l * lineBytes, rec.rng().next());
            rec.ofence(t);
            rec.compute(t, 4);
        }
    }
}

} // namespace asap
