/**
 * @file
 * P-Masstree (RECIPE's persistent Masstree, simplified to 8-byte
 * keys, i.e. a single trie layer of B+-nodes).
 *
 * Masstree leaves store records unsorted and publish them through a
 * permutation word: an insert writes the record into a free slot,
 * fences, then atomically updates the permutation word — no shifting
 * (contrast with FAST & FAIR). Interior nodes are sorted.
 */

#ifndef ASAP_WORKLOADS_PMASSTREE_HH
#define ASAP_WORKLOADS_PMASSTREE_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Simplified persistent Masstree. */
class PMasstree
{
  public:
    static constexpr unsigned capacity = 14;

    explicit PMasstree(TraceRecorder &rec);

    void insert(unsigned t, std::uint64_t key, std::uint64_t value);
    std::uint64_t search(unsigned t, std::uint64_t key);
    unsigned splits() const { return numSplits; }

  private:
    // Node layout:
    //   0: header (leaf flag | count << 8)
    //   8: permutation word (leaves) / leftmost child (inners)
    //  16: sibling (leaves)
    //  32 + i*16: record i (key, value/child)
    static constexpr unsigned nodeBytes = 32 + capacity * 16;

    std::uint64_t allocNode(unsigned t, bool leaf);
    std::uint64_t recAddr(std::uint64_t node, unsigned i) const;
    unsigned count(unsigned t, std::uint64_t node);
    bool isLeaf(unsigned t, std::uint64_t node);

    std::uint64_t descend(unsigned t, std::uint64_t key,
                          std::vector<std::uint64_t> &path);
    void insertInner(unsigned t, std::uint64_t node, std::uint64_t key,
                     std::uint64_t child);
    std::pair<std::uint64_t, std::uint64_t> splitLeaf(
        unsigned t, std::uint64_t node);
    void insertUp(unsigned t, std::uint64_t key, std::uint64_t child,
                  std::vector<std::uint64_t> &path, std::size_t level);

    PmLock &lockFor(std::uint64_t node);

    TraceRecorder &rec;
    std::uint64_t root;
    std::vector<PmLock> lockTable;
    PmLock treeLock;
    PmLock *pendingSibLock = nullptr; //!< sibling lock from splitLeaf
    unsigned numSplits = 0;
};

void genPMasstree(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_PMASSTREE_HH
