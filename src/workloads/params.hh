/**
 * @file
 * Common workload parameters (Table III / Section VII methodology:
 * update-intensive configurations, key and value sizes 16B-128B).
 */

#ifndef ASAP_WORKLOADS_PARAMS_HH
#define ASAP_WORKLOADS_PARAMS_HH

#include <cstdint>

namespace asap
{

/** Knobs shared by every workload generator. */
struct WorkloadParams
{
    unsigned opsPerThread = 400;  //!< high-level operations per thread
    unsigned keySpace = 1u << 14; //!< distinct keys
    unsigned valueBytes = 64;     //!< value payload size (16-128 B)
    unsigned updatePct = 90;      //!< % operations that write
    std::uint64_t seed = 1;       //!< key-stream seed (mixed with rec's)
};

} // namespace asap

#endif // ASAP_WORKLOADS_PARAMS_HH
