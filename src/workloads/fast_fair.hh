/**
 * @file
 * FAST & FAIR persistent B+-tree (Hwang et al., FAST'18).
 *
 * Failure-Atomic ShifT: inserting into a sorted node shifts records
 * one by one, flushing per cache line, so readers and recovery always
 * see either the old or the new record at every position (transient
 * duplicates are tolerated). Failure-Atomic In-place Rebalance links
 * split siblings through the leaf chain before the parent pointer is
 * published. Nodes are 256 B (4 lines) holding up to 14 records.
 */

#ifndef ASAP_WORKLOADS_FAST_FAIR_HH
#define ASAP_WORKLOADS_FAST_FAIR_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Persistent B+-tree with failure-atomic shifts. */
class FastFair
{
  public:
    static constexpr unsigned nodeBytes = 256;
    static constexpr unsigned capacity = 14; //!< records per node

    explicit FastFair(TraceRecorder &rec);

    /** Insert a key/value pair (updates overwrite in place). */
    void insert(unsigned t, std::uint64_t key, std::uint64_t value);

    /** Point lookup; 0 when absent. */
    std::uint64_t search(unsigned t, std::uint64_t key);

    /**
     * Delete a key (FAIR shift-left in the leaf; underfull leaves are
     * left in place, as FAST & FAIR tolerates transient slack).
     * @return true if the key was present
     */
    bool remove(unsigned t, std::uint64_t key);

    /**
     * Range scan: walk the leaf chain from @p key collecting up to
     * @p limit values (uses the FAIR sibling pointers).
     */
    unsigned scan(unsigned t, std::uint64_t key, unsigned limit,
                  std::vector<std::uint64_t> &out);

    /** Tree height (test visibility). */
    unsigned height() const { return height_; }
    unsigned splits() const { return numSplits; }

  private:
    // Node layout (offsets in bytes):
    //   0: flags (bit0 = leaf) | count << 8
    //   8: sibling pointer (leaves) / leftmost child (inners)
    //  16 + i*16: record i key
    //  24 + i*16: record i value/child
    std::uint64_t allocNode(unsigned t, bool leaf);
    unsigned count(unsigned t, std::uint64_t node);
    bool isLeaf(unsigned t, std::uint64_t node);
    void setHeader(unsigned t, std::uint64_t node, bool leaf,
                   unsigned count);
    std::uint64_t recAddr(std::uint64_t node, unsigned i) const;

    /** Descend to the leaf for @p key, collecting the ancestor path. */
    std::uint64_t descend(unsigned t, std::uint64_t key,
                          std::vector<std::uint64_t> &path);

    /** FAST insertion into a non-full sorted node. */
    void insertSorted(unsigned t, std::uint64_t node, std::uint64_t key,
                      std::uint64_t value);

    /** Split @p node, returning {separator, sibling address}. */
    std::pair<std::uint64_t, std::uint64_t> split(unsigned t,
                                                  std::uint64_t node);

    void insertRecursive(unsigned t, std::uint64_t key,
                         std::uint64_t value,
                         std::vector<std::uint64_t> &path,
                         std::size_t level);

    PmLock &lockFor(std::uint64_t node);

    TraceRecorder &rec;
    std::uint64_t root;
    unsigned height_ = 1;
    unsigned numSplits = 0;
    std::vector<PmLock> lockTable;
    PmLock treeLock; //!< structure-modification lock (splits)
    PmLock *pendingSibLock = nullptr; //!< sibling lock held by split()
};

/** Driver: update-intensive insert/search/delete-free mix. */
void genFastFair(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_FAST_FAIR_HH
