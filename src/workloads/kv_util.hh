/**
 * @file
 * Small helpers shared by the key-value workloads.
 */

#ifndef ASAP_WORKLOADS_KV_UTIL_HH
#define ASAP_WORKLOADS_KV_UTIL_HH

#include <cstdint>

namespace asap
{

/** 64-bit finalizer (splitmix64 tail) used as the workload hash. */
constexpr std::uint64_t
hash64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Non-zero key derived from an index (0 is the empty-slot marker). */
constexpr std::uint64_t
makeKey(std::uint64_t index)
{
    return hash64(index) | 1;
}

} // namespace asap

#endif // ASAP_WORKLOADS_KV_UTIL_HH
