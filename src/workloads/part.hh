/**
 * @file
 * P-ART: the persistent Adaptive Radix Tree from RECIPE (derived from
 * ART, Leis et al.). Keys are processed one byte at a time through
 * Node16 (sorted, up to 16 children) and Node256 (direct-indexed)
 * nodes; leaves store the value. Node16 overflow grows the node into
 * a Node256 (a burst of PM writes). Child-pointer installation is the
 * single 8-byte commit point, ofence-ordered after the child's
 * initialisation — the RECIPE conversion rule.
 */

#ifndef ASAP_WORKLOADS_PART_HH
#define ASAP_WORKLOADS_PART_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Persistent adaptive radix tree over 8-byte keys. */
class Part
{
  public:
    explicit Part(TraceRecorder &rec);

    void insert(unsigned t, std::uint64_t key, std::uint64_t value);
    std::uint64_t search(unsigned t, std::uint64_t key);
    unsigned grows() const { return numGrows; }

  private:
    // Node16 layout: [0] header (type=16 | count<<8),
    //   [8..23] key bytes, [24 + i*8] child pointers.
    // Node256 layout: [0] header (type=256), [8 + b*8] children.
    // Leaf: [0] header (type=1), [8] key, [16] value.
    static constexpr unsigned node16Bytes = 24 + 16 * 8;
    static constexpr unsigned node256Bytes = 8 + 256 * 8;

    std::uint64_t allocNode16(unsigned t);
    std::uint64_t allocNode256(unsigned t);
    std::uint64_t allocLeaf(unsigned t, std::uint64_t key,
                            std::uint64_t value);

    /** Find (and load) the child slot address for byte @p b, or 0. */
    std::uint64_t childSlot(unsigned t, std::uint64_t node,
                            std::uint8_t b, bool allocate);

    /** Move a full Node16's children into @p big (a fresh Node256)
     *  and publish it in @p parent_slot; returns @p big. */
    std::uint64_t growInto(unsigned t, std::uint64_t node,
                           std::uint64_t big,
                           std::uint64_t parent_slot);

    PmLock &lockFor(std::uint64_t node);

    TraceRecorder &rec;
    std::uint64_t root;
    std::vector<PmLock> lockTable;
    unsigned numGrows = 0;
};

void genPart(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_PART_HH
