#include "workloads/pclht.hh"

#include "workloads/kv_util.hh"

namespace asap
{

namespace
{
/** Byte offset of the next-pointer word inside a bucket line. */
constexpr unsigned nextOffset = 48;
/** Locks are shared by groups of buckets to bound lock count. */
constexpr unsigned bucketsPerLock = 16;
} // namespace

Pclht::Pclht(TraceRecorder &rec, unsigned num_buckets)
    : rec(rec), nBuckets(num_buckets)
{
    table = rec.space().alloc(std::uint64_t(nBuckets) * lineBytes,
                              lineBytes);
    for (unsigned i = 0; i < nBuckets / bucketsPerLock + 1; ++i)
        locks.push_back(rec.makeLock());
}

std::uint64_t
Pclht::bucketAddr(std::uint64_t h) const
{
    return table + (h % nBuckets) * lineBytes;
}

void
Pclht::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t h = hash64(key);
    PmLock &lock = locks[(h % nBuckets) / bucketsPerLock];
    rec.lockAcquire(t, lock);
    rec.compute(t, 25);

    std::uint64_t bucket = bucketAddr(h);
    while (true) {
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = bucket + s * 16;
            const std::uint64_t cur = rec.load64(t, kaddr);
            if (cur == key) {
                // In-place value update.
                rec.store64(t, kaddr + 8, value);
                rec.ofence(t);
                rec.lockRelease(t, lock);
                return;
            }
            if (cur == 0) {
                // Value first, ofence, then the publishing key write.
                rec.store64(t, kaddr + 8, value);
                rec.ofence(t);
                rec.store64(t, kaddr, key);
                rec.ofence(t);
                rec.lockRelease(t, lock);
                return;
            }
        }
        const std::uint64_t next = rec.load64(t, bucket + nextOffset);
        if (next != 0) {
            bucket = next;
            continue;
        }
        // Allocate an overflow bucket and link it (pointer write is
        // the commit point, ordered after the zeroed bucket).
        const std::uint64_t fresh =
            rec.space().alloc(lineBytes, lineBytes);
        ++overflowAllocs;
        rec.storeBytes(t, fresh, nullptr, lineBytes);
        rec.ofence(t);
        rec.store64(t, bucket + nextOffset, fresh);
        rec.ofence(t);
        bucket = fresh;
    }
}

bool
Pclht::remove(unsigned t, std::uint64_t key)
{
    const std::uint64_t h = hash64(key);
    PmLock &lock = locks[(h % nBuckets) / bucketsPerLock];
    rec.lockAcquire(t, lock);
    rec.compute(t, 20);
    std::uint64_t bucket = bucketAddr(h);
    while (bucket != 0) {
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = bucket + s * 16;
            if (rec.load64(t, kaddr) == key) {
                // Zeroing the key word unpublishes the pair
                // atomically; the stale value word needs no write.
                rec.store64(t, kaddr, 0);
                rec.ofence(t);
                rec.lockRelease(t, lock);
                return true;
            }
        }
        bucket = rec.load64(t, bucket + nextOffset);
    }
    rec.lockRelease(t, lock);
    return false;
}

std::uint64_t
Pclht::search(unsigned t, std::uint64_t key)
{
    const std::uint64_t h = hash64(key);
    rec.compute(t, 20);
    std::uint64_t bucket = bucketAddr(h);
    while (bucket != 0) {
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = bucket + s * 16;
            if (rec.load64(t, kaddr) == key)
                return rec.load64(t, kaddr + 8);
        }
        bucket = rec.load64(t, bucket + nextOffset);
    }
    return 0;
}

void
genPclht(TraceRecorder &rec, const WorkloadParams &p)
{
    Pclht table(rec, 1024);
    Rng keys(p.seed * 0x51ed + 3);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 120);
            const unsigned dice =
                static_cast<unsigned>(keys.below(100));
            if (dice < p.updatePct - 10) {
                table.insert(t, key, hash64(key + 7));
            } else if (dice < p.updatePct) {
                table.remove(t, key);
            } else {
                table.search(t, key);
            }
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
