#include "workloads/part.hh"

#include "workloads/kv_util.hh"

namespace asap
{

namespace
{
constexpr unsigned lockCount = 64;
constexpr std::uint64_t typeLeaf = 1;
constexpr std::uint64_t typeNode16 = 16;
constexpr std::uint64_t typeNode256 = 256;

std::uint8_t
keyByte(std::uint64_t key, unsigned depth)
{
    return static_cast<std::uint8_t>(key >> (56 - 8 * depth));
}
} // namespace

Part::Part(TraceRecorder &rec) : rec(rec)
{
    for (unsigned i = 0; i < lockCount; ++i)
        lockTable.push_back(rec.makeLock());
    // A Node256 root avoids root-growth special cases.
    root = rec.space().alloc(node256Bytes, lineBytes);
    rec.space().write64(root, typeNode256);
}

PmLock &
Part::lockFor(std::uint64_t node)
{
    return lockTable[(node / lineBytes) % lockCount];
}

std::uint64_t
Part::allocNode16(unsigned t)
{
    const std::uint64_t n = rec.space().alloc(node16Bytes, lineBytes);
    rec.storeBytes(t, n, nullptr, node16Bytes);
    rec.space().write64(n, typeNode16);
    return n;
}

std::uint64_t
Part::allocNode256(unsigned t)
{
    const std::uint64_t n = rec.space().alloc(node256Bytes, lineBytes);
    // Only the header is eagerly persisted; child slots persist as
    // they are installed (RECIPE relies on zeroed allocation).
    rec.store64(t, n, typeNode256);
    rec.space().write64(n, typeNode256);
    return n;
}

std::uint64_t
Part::allocLeaf(unsigned t, std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t n = rec.space().alloc(24, lineBytes);
    rec.store64(t, n + 16, value);
    rec.store64(t, n + 8, key);
    rec.store64(t, n, typeLeaf);
    return n;
}

std::uint64_t
Part::childSlot(unsigned t, std::uint64_t node, std::uint8_t b,
                bool allocate)
{
    const std::uint64_t header = rec.load64(t, node);
    const std::uint64_t type = header & 0xff0;

    if ((header & 0xfff) == typeNode256 || type == typeNode256) {
        return node + 8 + std::uint64_t(b) * 8;
    }

    // Node16: scan the key-byte array (two 8-byte words).
    const unsigned count =
        static_cast<unsigned>((header >> 16) & 0xff);
    std::uint8_t bytes[16];
    const std::uint64_t w0 = rec.load64(t, node + 8);
    const std::uint64_t w1 = rec.load64(t, node + 16);
    for (unsigned i = 0; i < 8; ++i) {
        bytes[i] = static_cast<std::uint8_t>(w0 >> (8 * i));
        bytes[8 + i] = static_cast<std::uint8_t>(w1 >> (8 * i));
    }
    for (unsigned i = 0; i < count; ++i) {
        if (bytes[i] == b)
            return node + 24 + std::uint64_t(i) * 8;
    }
    if (!allocate || count >= 16)
        return 0;

    // Append the byte; the child-pointer slot is returned for the
    // caller to publish after the child is initialised.
    const unsigned i = count;
    if (i < 8) {
        const std::uint64_t nw0 =
            (w0 & ~(0xffULL << (8 * i))) |
            (std::uint64_t(b) << (8 * i));
        rec.store64(t, node + 8, nw0);
    } else {
        const std::uint64_t nw1 =
            (w1 & ~(0xffULL << (8 * (i - 8)))) |
            (std::uint64_t(b) << (8 * (i - 8)));
        rec.store64(t, node + 16, nw1);
    }
    rec.store64(t, node,
                typeNode16 | (std::uint64_t(count + 1) << 16));
    return node + 24 + std::uint64_t(i) * 8;
}

std::uint64_t
Part::growInto(unsigned t, std::uint64_t node, std::uint64_t big,
               std::uint64_t parent_slot)
{
    ++numGrows;
    const std::uint64_t w0 = rec.load64(t, node + 8);
    const std::uint64_t w1 = rec.load64(t, node + 16);
    for (unsigned i = 0; i < 16; ++i) {
        const std::uint8_t b = static_cast<std::uint8_t>(
            i < 8 ? (w0 >> (8 * i)) : (w1 >> (8 * (i - 8))));
        const std::uint64_t child =
            rec.load64(t, node + 24 + std::uint64_t(i) * 8);
        rec.store64(t, big + 8 + std::uint64_t(b) * 8, child);
        if (i % 4 == 3)
            rec.ofence(t);
    }
    rec.ofence(t);
    // Publish the grown node.
    rec.store64(t, parent_slot, big);
    rec.ofence(t);
    return big;
}

void
Part::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    std::uint64_t cur = root;
    std::uint64_t cur_slot = 0; //!< parent slot pointing at cur
    for (unsigned depth = 0; depth < 8; ++depth) {
        const std::uint8_t b = keyByte(key, depth);
        PmLock &lock = lockFor(cur);
        std::uint64_t slot = childSlot(t, cur, b, false);
        std::uint64_t child = slot ? rec.load64(t, slot) : 0;

        if (child == 0) {
            rec.lockAcquire(t, lock);
            rec.compute(t, 15);
            // Re-find under the lock, then build-then-publish.
            slot = childSlot(t, cur, b, true);
            PmLock *grown_lock = nullptr;
            if (slot == 0) {
                // Node16 full: grow to Node256 first. Hold the grown
                // node's own lock while writing it so later writers
                // (locking it by address) synchronise with us.
                const std::uint64_t big = allocNode256(t);
                PmLock &bl = lockFor(big);
                if (&bl != &lock &&
                    bl.holder != static_cast<std::int32_t>(t)) {
                    rec.lockAcquire(t, bl);
                    grown_lock = &bl;
                }
                cur = growInto(t, cur, big, cur_slot);
                slot = childSlot(t, cur, b, true);
            }
            const std::uint64_t leaf = allocLeaf(t, key, value);
            rec.ofence(t);
            rec.store64(t, slot, leaf);
            rec.ofence(t);
            if (grown_lock)
                rec.lockRelease(t, *grown_lock);
            rec.lockRelease(t, lock);
            return;
        }

        const std::uint64_t chdr = rec.load64(t, child);
        if ((chdr & 0xf) == typeLeaf) {
            const std::uint64_t lkey = rec.load64(t, child + 8);
            rec.lockAcquire(t, lock);
            rec.compute(t, 15);
            if (lkey == key) {
                rec.store64(t, child + 16, value);
                rec.ofence(t);
                rec.lockRelease(t, lock);
                return;
            }
            // Path split: push the existing leaf one level down. The
            // new node is written under its own lock so later writers
            // synchronise with its creation.
            const std::uint64_t mid = allocNode16(t);
            PmLock &ml = lockFor(mid);
            const bool lock_mid =
                &ml != &lock &&
                ml.holder != static_cast<std::int32_t>(t);
            if (lock_mid)
                rec.lockAcquire(t, ml);
            const std::uint64_t lslot =
                childSlot(t, mid, keyByte(lkey, depth + 1), true);
            rec.store64(t, lslot, child);
            rec.ofence(t);
            rec.store64(t, slot, mid);
            rec.ofence(t);
            if (lock_mid)
                rec.lockRelease(t, ml);
            rec.lockRelease(t, lock);
            cur_slot = slot;
            cur = mid;
            continue;
        }
        cur_slot = slot;
        cur = child;
    }
    panic("P-ART: identical 8-byte keys diverged nowhere");
}

std::uint64_t
Part::search(unsigned t, std::uint64_t key)
{
    std::uint64_t cur = root;
    rec.compute(t, 10);
    for (unsigned depth = 0; depth < 8; ++depth) {
        const std::uint64_t slot =
            childSlot(t, cur, keyByte(key, depth), false);
        if (slot == 0)
            return 0;
        const std::uint64_t child = rec.load64(t, slot);
        if (child == 0)
            return 0;
        const std::uint64_t chdr = rec.load64(t, child);
        if ((chdr & 0xf) == typeLeaf) {
            if (rec.load64(t, child + 8) == key)
                return rec.load64(t, child + 16);
            return 0;
        }
        cur = child;
    }
    return 0;
}

void
genPart(TraceRecorder &rec, const WorkloadParams &p)
{
    Part tree(rec);
    Rng keys(p.seed * 0xa127 + 31);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 120);
            tree.insert(t, key, hash64(key + 17));
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
