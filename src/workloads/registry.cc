#include "workloads/registry.hh"

#include "sim/log.hh"
#include "workloads/atlas.hh"
#include "workloads/cceh.hh"
#include "workloads/dash.hh"
#include "workloads/fast_fair.hh"
#include "workloads/part.hh"
#include "workloads/pclht.hh"
#include "workloads/pmasstree.hh"
#include "workloads/whisper.hh"

namespace asap
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"nstore", "PM-native DBMS (WHISPER)", genNstore},
        {"echo", "scalable key-value store (WHISPER)", genEcho},
        {"vacation", "travel reservation system (WHISPER/PMDK)",
         genVacation},
        {"memcached", "in-memory key-value cache (WHISPER/PMDK)",
         genMemcached},
        {"heap", "ATLAS binary heap", genAtlasHeap},
        {"queue", "ATLAS FIFO queue", genAtlasQueue},
        {"skiplist", "ATLAS skip list", genAtlasSkiplist},
        {"cceh", "cacheline-conscious extendible hashing", genCceh},
        {"fast_fair", "FAST & FAIR B+-tree", genFastFair},
        {"dash-lh", "Dash level hashing", genDashLh},
        {"dash-eh", "Dash extendible hashing", genDashEh},
        {"p-art", "RECIPE persistent ART", genPart},
        {"p-clht", "RECIPE persistent CLHT hash table", genPclht},
        {"p-masstree", "RECIPE persistent Masstree", genPMasstree},
    };
    return registry;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '", name, "'");
    return allWorkloads().front(); // unreachable
}

TraceSet
buildTrace(const std::string &name, unsigned threads,
           const WorkloadParams &p)
{
    const WorkloadInfo &w = findWorkload(name);
    TraceRecorder rec(threads, p.seed);
    w.generate(rec, p);
    return rec.finish();
}

} // namespace asap
