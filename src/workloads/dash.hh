/**
 * @file
 * Dash: scalable hashing on persistent memory (Lu et al., VLDB'20).
 *
 * Two variants, as in the paper's Table III:
 *  - Dash-EH: extendible hashing with fingerprint metadata, bucket
 *    pairs (home + neighbour displacement) and per-segment stash
 *    buckets; full segments split.
 *  - Dash-LH: level hashing, a two-level bucket array where a key
 *    probes two top-level buckets and one bottom-level bucket; a full
 *    table rehashes the bottom level into a doubled top level.
 *
 * Both write a fingerprint metadata word plus the pair per insert and
 * take fine-grained bucket/segment locks, producing the frequent
 * small epochs and cross-thread dependencies the ASAP paper reports.
 */

#ifndef ASAP_WORKLOADS_DASH_HH
#define ASAP_WORKLOADS_DASH_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Dash extendible-hashing variant. */
class DashEh
{
  public:
    static constexpr unsigned slotsPerBucket = 4;
    static constexpr unsigned bucketsPerSegment = 56;
    static constexpr unsigned stashBuckets = 8; //!< per segment

    DashEh(TraceRecorder &rec, unsigned initial_depth = 2);

    bool insert(unsigned t, std::uint64_t key, std::uint64_t value);
    std::uint64_t search(unsigned t, std::uint64_t key);
    unsigned splits() const { return numSplits; }

  private:
    struct Segment
    {
        std::uint64_t base;     //!< 64 buckets incl. stash
        unsigned localDepth;
        PmLock lock;
    };

    bool tryBucket(unsigned t, std::uint64_t bucket_addr,
                   std::uint64_t key, std::uint64_t value);
    void split(unsigned t, unsigned seg_idx);

    TraceRecorder &rec;
    unsigned depth;
    std::vector<unsigned> directory;
    std::vector<Segment> segments;
    unsigned numSplits = 0;
};

/** Dash level-hashing variant. */
class DashLh
{
  public:
    static constexpr unsigned slotsPerBucket = 4;

    DashLh(TraceRecorder &rec, unsigned top_buckets = 512);

    bool insert(unsigned t, std::uint64_t key, std::uint64_t value);
    std::uint64_t search(unsigned t, std::uint64_t key);
    unsigned rehashes() const { return numRehashes; }

  private:
    bool tryLevelBucket(unsigned t, std::uint64_t addr,
                        std::uint64_t key, std::uint64_t value);
    void rehash(unsigned t);
    std::uint64_t allocLevel(unsigned buckets);

    TraceRecorder &rec;
    unsigned topBuckets;
    std::uint64_t top;    //!< topBuckets buckets
    std::uint64_t bottom; //!< topBuckets / 2 buckets
    std::vector<PmLock> locks;
    unsigned numRehashes = 0;
};

void genDashEh(TraceRecorder &rec, const WorkloadParams &p);
void genDashLh(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_DASH_HH
