/**
 * @file
 * Workload registry: the paper's Table III benchmark suite by name.
 *
 * Order matches Figure 8's x-axis: WHISPER applications, ATLAS
 * structures, then the concurrent persistent indexes.
 */

#ifndef ASAP_WORKLOADS_REGISTRY_HH
#define ASAP_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** A named workload generator. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    std::function<void(TraceRecorder &, const WorkloadParams &)> generate;
};

/** All Table III workloads, in Figure 8 order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Find a workload by name (fatal if unknown). */
const WorkloadInfo &findWorkload(const std::string &name);

/**
 * Convenience: record a workload's trace.
 *
 * @param name registry name
 * @param threads logical threads
 * @param p generator parameters
 */
TraceSet buildTrace(const std::string &name, unsigned threads,
                    const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_REGISTRY_HH
