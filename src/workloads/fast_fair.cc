#include "workloads/fast_fair.hh"

#include "workloads/kv_util.hh"

namespace asap
{

namespace
{
constexpr unsigned lockCount = 64;
constexpr unsigned recordsPerLine = 4; //!< 16 B records in 64 B lines
} // namespace

FastFair::FastFair(TraceRecorder &rec)
    : rec(rec), treeLock(rec.makeLock())
{
    for (unsigned i = 0; i < lockCount; ++i)
        lockTable.push_back(rec.makeLock());
    root = rec.space().alloc(nodeBytes, lineBytes);
    rec.space().write64(root, 1); // leaf, count 0
}

PmLock &
FastFair::lockFor(std::uint64_t node)
{
    return lockTable[(node / nodeBytes) % lockCount];
}

std::uint64_t
FastFair::allocNode(unsigned t, bool leaf)
{
    const std::uint64_t n = rec.space().alloc(nodeBytes, lineBytes);
    rec.storeBytes(t, n, nullptr, nodeBytes); // zeroed allocation
    rec.space().write64(n, leaf ? 1 : 0);
    return n;
}

unsigned
FastFair::count(unsigned t, std::uint64_t node)
{
    return static_cast<unsigned>(rec.load64(t, node) >> 8);
}

bool
FastFair::isLeaf(unsigned t, std::uint64_t node)
{
    return (rec.load64(t, node) & 1) != 0;
}

void
FastFair::setHeader(unsigned t, std::uint64_t node, bool leaf,
                    unsigned cnt)
{
    rec.store64(t, node, (leaf ? 1u : 0u) |
                             (static_cast<std::uint64_t>(cnt) << 8));
}

std::uint64_t
FastFair::recAddr(std::uint64_t node, unsigned i) const
{
    return node + 16 + std::uint64_t(i) * 16;
}

std::uint64_t
FastFair::descend(unsigned t, std::uint64_t key,
                  std::vector<std::uint64_t> &path)
{
    std::uint64_t node = root;
    path.clear();
    while (!isLeaf(t, node)) {
        path.push_back(node);
        const unsigned n = count(t, node);
        std::uint64_t child = rec.load64(t, node + 8);
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t k = rec.load64(t, recAddr(node, i));
            if (key >= k)
                child = rec.load64(t, recAddr(node, i) + 8);
            else
                break;
        }
        node = child;
    }
    path.push_back(node);
    return node;
}

void
FastFair::insertSorted(unsigned t, std::uint64_t node, std::uint64_t key,
                       std::uint64_t value)
{
    const unsigned n = count(t, node);
    unsigned pos = 0;
    while (pos < n && rec.load64(t, recAddr(node, pos)) < key)
        ++pos;

    // In-place update when the key already exists (leaves).
    if (pos < n && rec.load64(t, recAddr(node, pos)) == key) {
        rec.store64(t, recAddr(node, pos) + 8, value);
        rec.ofence(t);
        return;
    }

    // FAST: shift records right one by one, fencing per cache line
    // so any crash leaves a prefix-consistent node.
    for (unsigned i = n; i > pos; --i) {
        const std::uint64_t src = recAddr(node, i - 1);
        const std::uint64_t dst = recAddr(node, i);
        rec.store64(t, dst, rec.load64(t, src));
        rec.store64(t, dst + 8, rec.load64(t, src + 8));
        if (i % recordsPerLine == 0)
            rec.ofence(t);
    }
    rec.store64(t, recAddr(node, pos) + 8, value);
    rec.store64(t, recAddr(node, pos), key);
    rec.ofence(t);
    setHeader(t, node, isLeaf(t, node), n + 1);
    rec.ofence(t);
}

std::pair<std::uint64_t, std::uint64_t>
FastFair::split(unsigned t, std::uint64_t node)
{
    ++numSplits;
    const bool leaf = isLeaf(t, node);
    const unsigned n = count(t, node);
    const unsigned half = n / 2;
    const std::uint64_t sib = allocNode(t, leaf);
    // Later writers reach the sibling through its own node lock;
    // holding it while populating the sibling records the ordering
    // edge they synchronise on (race-free RP requirement).
    PmLock &sl = lockFor(sib);
    const bool lock_sib =
        leaf && sl.holder != static_cast<std::int32_t>(t);
    if (lock_sib)
        rec.lockAcquire(t, sl);
    const std::uint64_t sep = rec.load64(t, recAddr(node, half));

    unsigned moved = 0;
    if (leaf) {
        for (unsigned i = half; i < n; ++i, ++moved) {
            rec.store64(t, recAddr(sib, moved),
                        rec.load64(t, recAddr(node, i)));
            rec.store64(t, recAddr(sib, moved) + 8,
                        rec.load64(t, recAddr(node, i) + 8));
            if (moved % recordsPerLine == recordsPerLine - 1)
                rec.ofence(t);
        }
        setHeader(t, sib, true, moved);
        // FAIR: link the sibling into the leaf chain before the
        // parent learns about it.
        rec.store64(t, sib + 8, rec.load64(t, node + 8));
        rec.ofence(t);
        rec.store64(t, node + 8, sib);
        rec.ofence(t);
    } else {
        // Inner: record[half] becomes the separator; its child is the
        // sibling's leftmost pointer.
        rec.store64(t, sib + 8, rec.load64(t, recAddr(node, half) + 8));
        for (unsigned i = half + 1; i < n; ++i, ++moved) {
            rec.store64(t, recAddr(sib, moved),
                        rec.load64(t, recAddr(node, i)));
            rec.store64(t, recAddr(sib, moved) + 8,
                        rec.load64(t, recAddr(node, i) + 8));
            if (moved % recordsPerLine == recordsPerLine - 1)
                rec.ofence(t);
        }
        setHeader(t, sib, false, moved);
        rec.ofence(t);
    }
    setHeader(t, node, leaf, half);
    rec.ofence(t);
    // The caller still inserts into one of the halves; it releases
    // the sibling lock once the sibling's writes are complete.
    pendingSibLock = lock_sib ? &sl : nullptr;
    return {sep, sib};
}

void
FastFair::insertRecursive(unsigned t, std::uint64_t key,
                          std::uint64_t value,
                          std::vector<std::uint64_t> &path,
                          std::size_t level)
{
    std::uint64_t node = path[level];
    if (count(t, node) < capacity) {
        insertSorted(t, node, key, value);
        return;
    }

    // Full: split, then place the record in the proper half and push
    // the separator into the parent (creating a new root if needed).
    auto [sep, sib] = split(t, node);
    insertSorted(t, key >= sep ? sib : node, key, value);
    if (pendingSibLock) {
        rec.lockRelease(t, *pendingSibLock);
        pendingSibLock = nullptr;
    }

    if (level == 0) {
        const std::uint64_t new_root = allocNode(t, false);
        rec.store64(t, new_root + 8, node);
        rec.store64(t, recAddr(new_root, 0), sep);
        rec.store64(t, recAddr(new_root, 0) + 8, sib);
        setHeader(t, new_root, false, 1);
        rec.ofence(t);
        root = new_root;
        ++height_;
        return;
    }
    insertRecursive(t, sep, sib, path, level - 1);
}

void
FastFair::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    std::vector<std::uint64_t> path;
    const std::uint64_t leaf = descend(t, key, path);
    PmLock &lock = lockFor(leaf);
    rec.lockAcquire(t, lock);
    rec.compute(t, 20);
    if (count(t, leaf) < capacity) {
        insertSorted(t, leaf, key, value);
        rec.lockRelease(t, lock);
        return;
    }
    // Splits serialize on the structure-modification lock.
    rec.lockAcquire(t, treeLock);
    insertRecursive(t, key, value, path, path.size() - 1);
    rec.lockRelease(t, treeLock);
    rec.lockRelease(t, lock);
}

bool
FastFair::remove(unsigned t, std::uint64_t key)
{
    std::vector<std::uint64_t> path;
    const std::uint64_t leaf = descend(t, key, path);
    PmLock &lock = lockFor(leaf);
    rec.lockAcquire(t, lock);
    rec.compute(t, 20);
    const unsigned n = count(t, leaf);
    unsigned pos = n;
    for (unsigned i = 0; i < n; ++i) {
        if (rec.load64(t, recAddr(leaf, i)) == key) {
            pos = i;
            break;
        }
    }
    if (pos == n) {
        rec.lockRelease(t, lock);
        return false;
    }
    // FAIR shift-left: close the gap record by record, fencing per
    // cache line so recovery sees either the old or new record at
    // every slot (transient duplicates are tolerated).
    for (unsigned i = pos; i + 1 < n; ++i) {
        const std::uint64_t src = recAddr(leaf, i + 1);
        const std::uint64_t dst = recAddr(leaf, i);
        rec.store64(t, dst, rec.load64(t, src));
        rec.store64(t, dst + 8, rec.load64(t, src + 8));
        if (i % recordsPerLine == recordsPerLine - 1)
            rec.ofence(t);
    }
    setHeader(t, leaf, true, n - 1);
    rec.ofence(t);
    rec.lockRelease(t, lock);
    return true;
}

unsigned
FastFair::scan(unsigned t, std::uint64_t key, unsigned limit,
               std::vector<std::uint64_t> &out)
{
    std::vector<std::uint64_t> path;
    std::uint64_t leaf = descend(t, key, path);
    unsigned collected = 0;
    while (leaf != 0 && collected < limit) {
        const unsigned n = count(t, leaf);
        for (unsigned i = 0; i < n && collected < limit; ++i) {
            if (rec.load64(t, recAddr(leaf, i)) >= key) {
                out.push_back(rec.load64(t, recAddr(leaf, i) + 8));
                ++collected;
            }
        }
        leaf = rec.load64(t, leaf + 8); // FAIR sibling pointer
    }
    return collected;
}

std::uint64_t
FastFair::search(unsigned t, std::uint64_t key)
{
    std::vector<std::uint64_t> path;
    const std::uint64_t leaf = descend(t, key, path);
    const unsigned n = count(t, leaf);
    for (unsigned i = 0; i < n; ++i) {
        if (rec.load64(t, recAddr(leaf, i)) == key)
            return rec.load64(t, recAddr(leaf, i) + 8);
    }
    return 0;
}

void
genFastFair(TraceRecorder &rec, const WorkloadParams &p)
{
    FastFair tree(rec);
    Rng keys(p.seed * 0xfa57 + 29);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 150);
            // Table III: insert/search/delete mix (plus range scans).
            const unsigned dice =
                static_cast<unsigned>(keys.below(100));
            if (dice < p.updatePct - 15) {
                tree.insert(t, key, hash64(key + 3));
            } else if (dice < p.updatePct) {
                tree.remove(t, key);
            } else if (dice < p.updatePct + 5) {
                std::vector<std::uint64_t> out;
                tree.scan(t, key, 16, out);
            } else {
                tree.search(t, key);
            }
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
