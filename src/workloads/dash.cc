#include "workloads/dash.hh"

#include "workloads/kv_util.hh"

namespace asap
{

namespace
{
/** Bucket layout: 3 pairs (48 B) + fingerprint/metadata word (8 B). */
constexpr unsigned pairsPerBucket = 3;
constexpr unsigned metaOffset = 48;
} // namespace

// --------------------------------------------------------------------
// Dash-EH
// --------------------------------------------------------------------

DashEh::DashEh(TraceRecorder &rec, unsigned initial_depth)
    : rec(rec), depth(initial_depth)
{
    const unsigned nsegs = 1u << depth;
    const std::uint64_t seg_bytes =
        std::uint64_t(bucketsPerSegment + stashBuckets) * lineBytes;
    for (unsigned i = 0; i < nsegs; ++i) {
        segments.push_back(Segment{
            rec.space().alloc(seg_bytes, lineBytes), depth,
            rec.makeLock()});
        directory.push_back(i);
    }
}

bool
DashEh::tryBucket(unsigned t, std::uint64_t bucket_addr,
                  std::uint64_t key, std::uint64_t value)
{
    // Read the fingerprint word first (one load), then probe pairs.
    rec.load64(t, bucket_addr + metaOffset);
    for (unsigned s = 0; s < pairsPerBucket; ++s) {
        const std::uint64_t kaddr = bucket_addr + s * 16;
        const std::uint64_t cur = rec.load64(t, kaddr);
        if (cur == 0 || cur == key) {
            rec.store64(t, kaddr + 8, value);
            rec.store64(t, kaddr, key);
            // Publish the fingerprint; Dash orders the pair before
            // the metadata word that makes it visible.
            rec.ofence(t);
            rec.store64(t, bucket_addr + metaOffset, hash64(key) >> 56);
            rec.ofence(t);
            return true;
        }
    }
    return false;
}

bool
DashEh::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    for (int attempt = 0; attempt < 4; ++attempt) {
        const std::uint64_t h = hash64(key);
        const unsigned seg_idx = directory[h >> (64 - depth)];
        Segment &seg = segments[seg_idx];
        rec.lockAcquire(t, seg.lock);
        rec.compute(t, 35); // hash + fingerprint filtering

        const std::uint64_t home =
            (h >> 8) % (bucketsPerSegment - 1);
        const std::uint64_t b0 = seg.base + home * lineBytes;
        const std::uint64_t b1 = seg.base + (home + 1) * lineBytes;
        if (tryBucket(t, b0, key, value) ||
            tryBucket(t, b1, key, value)) {
            rec.lockRelease(t, segments[seg_idx].lock);
            return true;
        }
        // Overflow into the stash buckets.
        for (unsigned sb = 0; sb < stashBuckets; ++sb) {
            const std::uint64_t sa =
                seg.base + (bucketsPerSegment + sb) * lineBytes;
            if (tryBucket(t, sa, key, value)) {
                rec.lockRelease(t, segments[seg_idx].lock);
                return true;
            }
        }
        split(t, seg_idx); // may reallocate the segment vector
        rec.lockRelease(t, segments[seg_idx].lock);
    }
    return false;
}

void
DashEh::split(unsigned t, unsigned seg_idx)
{
    ++numSplits;
    const unsigned new_depth = segments[seg_idx].localDepth + 1;
    if (new_depth > depth) {
        const unsigned old_size = 1u << depth;
        ++depth;
        std::vector<unsigned> bigger(2ull * old_size);
        for (unsigned i = 0; i < old_size; ++i) {
            bigger[2 * i] = directory[i];
            bigger[2 * i + 1] = directory[i];
        }
        directory = std::move(bigger);
    }

    const unsigned sib_idx = static_cast<unsigned>(segments.size());
    const std::uint64_t seg_bytes =
        std::uint64_t(bucketsPerSegment + stashBuckets) * lineBytes;
    segments.push_back(Segment{
        rec.space().alloc(seg_bytes, lineBytes), new_depth,
        rec.makeLock()});
    // Re-reference after the push_back: the vector may have moved.
    Segment &old = segments[seg_idx];
    old.localDepth = new_depth;
    Segment &sib = segments[sib_idx];
    // Later inserts into the sibling synchronise on its lock.
    rec.lockAcquire(t, sib.lock);

    // Rehash: move pairs whose new depth bit is set.
    for (unsigned b = 0; b < bucketsPerSegment + stashBuckets; ++b) {
        const std::uint64_t baddr = old.base + b * lineBytes;
        for (unsigned s = 0; s < pairsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            const std::uint64_t key = rec.load64(t, kaddr);
            if (key == 0)
                continue;
            const std::uint64_t h = hash64(key);
            if ((h >> (64 - new_depth)) & 1u) {
                const std::uint64_t value = rec.load64(t, kaddr + 8);
                rec.store64(t, kaddr, 0);
                // Place directly into the sibling's home bucket scan.
                const std::uint64_t home =
                    (h >> 8) % (bucketsPerSegment - 1);
                bool placed = false;
                for (unsigned pb = 0;
                     pb < bucketsPerSegment + stashBuckets && !placed;
                     ++pb) {
                    const std::uint64_t cand =
                        sib.base +
                        ((home + pb) % (bucketsPerSegment +
                                        stashBuckets)) * lineBytes;
                    for (unsigned cs = 0; cs < pairsPerBucket; ++cs) {
                        const std::uint64_t ck = cand + cs * 16;
                        if (rec.space().read64(ck) == 0) {
                            rec.store64(t, ck + 8, value);
                            rec.store64(t, ck, key);
                            placed = true;
                            break;
                        }
                    }
                }
            }
        }
        if (b % 8 == 7)
            rec.ofence(t);
    }
    rec.ofence(t);
    rec.lockRelease(t, segments[sib_idx].lock);

    const unsigned stride = 1u << (depth - new_depth);
    for (std::size_t i = 0; i < directory.size(); ++i) {
        if (directory[i] == seg_idx && (i & stride))
            directory[i] = sib_idx;
    }
}

std::uint64_t
DashEh::search(unsigned t, std::uint64_t key)
{
    const std::uint64_t h = hash64(key);
    const Segment &seg = segments[directory[h >> (64 - depth)]];
    const std::uint64_t home = (h >> 8) % (bucketsPerSegment - 1);
    rec.compute(t, 30);
    for (unsigned b = 0; b < 2 + stashBuckets; ++b) {
        const std::uint64_t baddr =
            b < 2 ? seg.base + (home + b) * lineBytes
                  : seg.base + (bucketsPerSegment + b - 2) * lineBytes;
        rec.load64(t, baddr + metaOffset);
        for (unsigned s = 0; s < pairsPerBucket; ++s) {
            if (rec.load64(t, baddr + s * 16) == key)
                return rec.load64(t, baddr + s * 16 + 8);
        }
    }
    return 0;
}

// --------------------------------------------------------------------
// Dash-LH
// --------------------------------------------------------------------

DashLh::DashLh(TraceRecorder &rec, unsigned top_buckets)
    : rec(rec), topBuckets(top_buckets)
{
    top = allocLevel(topBuckets);
    bottom = allocLevel(topBuckets / 2);
    for (unsigned i = 0; i < 64; ++i)
        locks.push_back(rec.makeLock());
}

std::uint64_t
DashLh::allocLevel(unsigned buckets)
{
    return rec.space().alloc(std::uint64_t(buckets) * lineBytes,
                             lineBytes);
}

bool
DashLh::tryLevelBucket(unsigned t, std::uint64_t addr, std::uint64_t key,
                       std::uint64_t value)
{
    for (unsigned s = 0; s < pairsPerBucket; ++s) {
        const std::uint64_t kaddr = addr + s * 16;
        const std::uint64_t cur = rec.load64(t, kaddr);
        if (cur == 0 || cur == key) {
            rec.store64(t, kaddr + 8, value);
            rec.store64(t, kaddr, key);
            rec.ofence(t);
            rec.store64(t, addr + metaOffset, hash64(key) >> 56);
            rec.ofence(t);
            return true;
        }
    }
    return false;
}

bool
DashLh::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint64_t h1 = hash64(key);
        const std::uint64_t h2 = hash64(key ^ 0xc0ffee);
        const std::uint64_t t1 = h1 % topBuckets;
        const std::uint64_t t2 = h2 % topBuckets;
        PmLock &lock = locks[t1 % locks.size()];
        rec.lockAcquire(t, lock);
        rec.compute(t, 35);
        const bool ok =
            tryLevelBucket(t, top + t1 * lineBytes, key, value) ||
            tryLevelBucket(t, top + t2 * lineBytes, key, value) ||
            tryLevelBucket(t, bottom + (h1 % (topBuckets / 2)) *
                                  lineBytes, key, value);
        rec.lockRelease(t, lock);
        if (ok)
            return true;
        rehash(t);
    }
    return false;
}

void
DashLh::rehash(unsigned t)
{
    ++numRehashes;
    // Stop-the-world resize: quiesce every bucket lock so the rehash
    // is ordered against all concurrent writers (and they against the
    // rehash when they reacquire).
    for (PmLock &l : locks)
        rec.lockAcquire(t, l);
    // The bottom level becomes unreachable: rehash its pairs into a
    // doubled top level; the old top becomes the new bottom.
    const unsigned new_top_buckets = topBuckets * 2;
    const std::uint64_t new_top = allocLevel(new_top_buckets);
    const unsigned old_bottom_buckets = topBuckets / 2;
    const std::uint64_t old_bottom = bottom;

    bottom = top;
    top = new_top;
    topBuckets = new_top_buckets;

    for (unsigned b = 0; b < old_bottom_buckets; ++b) {
        const std::uint64_t baddr = old_bottom + b * lineBytes;
        for (unsigned s = 0; s < pairsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            const std::uint64_t key = rec.load64(t, kaddr);
            if (key == 0)
                continue;
            const std::uint64_t value = rec.load64(t, kaddr + 8);
            const std::uint64_t h1 = hash64(key);
            // Directly place into the new top (functional fallback
            // scan keeps the rehash total).
            bool placed = false;
            for (unsigned probe = 0; probe < topBuckets && !placed;
                 ++probe) {
                const std::uint64_t cand =
                    top + ((h1 + probe) % topBuckets) * lineBytes;
                for (unsigned cs = 0; cs < pairsPerBucket; ++cs) {
                    if (rec.space().read64(cand + cs * 16) == 0) {
                        rec.store64(t, cand + cs * 16 + 8, value);
                        rec.store64(t, cand + cs * 16, key);
                        placed = true;
                        break;
                    }
                }
            }
        }
        if (b % 8 == 7)
            rec.ofence(t);
    }
    rec.ofence(t);
    for (PmLock &l : locks)
        rec.lockRelease(t, l);
}

std::uint64_t
DashLh::search(unsigned t, std::uint64_t key)
{
    const std::uint64_t h1 = hash64(key);
    const std::uint64_t h2 = hash64(key ^ 0xc0ffee);
    rec.compute(t, 30);
    const std::uint64_t cands[3] = {
        top + (h1 % topBuckets) * lineBytes,
        top + (h2 % topBuckets) * lineBytes,
        bottom + (h1 % (topBuckets / 2)) * lineBytes,
    };
    for (std::uint64_t baddr : cands) {
        for (unsigned s = 0; s < pairsPerBucket; ++s) {
            if (rec.load64(t, baddr + s * 16) == key)
                return rec.load64(t, baddr + s * 16 + 8);
        }
    }
    return 0;
}

// --------------------------------------------------------------------
// Drivers
// --------------------------------------------------------------------

void
genDashEh(TraceRecorder &rec, const WorkloadParams &p)
{
    DashEh table(rec, 2);
    Rng keys(p.seed * 0xda5e + 5);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 120);
            table.insert(t, key, hash64(key + 11));
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

void
genDashLh(TraceRecorder &rec, const WorkloadParams &p)
{
    DashLh table(rec, 512);
    Rng keys(p.seed * 0xda51 + 9);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 120);
            table.insert(t, key, hash64(key + 13));
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
