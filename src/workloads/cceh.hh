/**
 * @file
 * CCEH: Cacheline-Conscious Extendible Hashing (Nam et al., FAST'19).
 *
 * Persistent extendible hash table: a directory of segment pointers
 * indexed by the top global-depth bits of the key hash; each segment
 * is an array of cache-line buckets holding four key/value pairs.
 * Inserts probe the home bucket plus a linear-probe neighbourhood;
 * a full segment splits (lazy deletion: keys are rehashed into the
 * new segment and the directory doubles when local depth exceeds
 * global depth). Per-segment locks make concurrent inserts conflict
 * on splits and hot segments — the cross-thread-dependency-heavy
 * behaviour Figure 2 of the ASAP paper reports for CCEH.
 */

#ifndef ASAP_WORKLOADS_CCEH_HH
#define ASAP_WORKLOADS_CCEH_HH

#include <cstdint>
#include <vector>

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

/** Persistent extendible hash table recorded through a TraceRecorder. */
class Cceh
{
  public:
    /** Pairs per 64-byte bucket. */
    static constexpr unsigned slotsPerBucket = 4;
    /** Buckets per segment (4 KiB segments). */
    static constexpr unsigned bucketsPerSegment = 64;
    /** Linear probing distance in buckets. */
    static constexpr unsigned probeDistance = 4;

    /**
     * @param rec recorder every access goes through
     * @param initial_depth initial global depth (2^depth segments)
     */
    Cceh(TraceRecorder &rec, unsigned initial_depth = 2);

    /**
     * Insert (or update) a key.
     * @return false if the key could not be placed even after a split
     */
    bool insert(unsigned t, std::uint64_t key, std::uint64_t value);

    /** Lookup; returns 0 when absent. */
    std::uint64_t search(unsigned t, std::uint64_t key);

    /** Segment splits performed (test visibility). */
    unsigned splits() const { return numSplits; }

    /** Current global depth. */
    unsigned globalDepth() const { return depth; }

  private:
    struct Segment
    {
        std::uint64_t base;     //!< PM address of the bucket array
        unsigned localDepth;
        PmLock lock;
    };

    std::uint64_t segmentIndex(std::uint64_t h) const;
    std::uint64_t allocSegment();
    bool insertIntoSegment(unsigned t, unsigned seg_idx,
                           std::uint64_t key, std::uint64_t value,
                           bool record);
    void insertIntoSegmentRecorded(unsigned t, Segment &seg,
                                   std::uint64_t key,
                                   std::uint64_t value);
    void split(unsigned t, unsigned seg_idx);

    TraceRecorder &rec;
    unsigned depth;
    std::vector<unsigned> directory; //!< volatile copy of the directory
    std::vector<Segment> segments;
    std::uint64_t dirPm = 0;         //!< persistent directory array
    PmLock dirLock;                  //!< guards persistent dir writes
    unsigned numSplits = 0;
};

/** Driver: update-intensive insert/search mix across threads. */
void genCceh(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_CCEH_HH
