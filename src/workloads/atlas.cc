#include "workloads/atlas.hh"

#include <vector>

#include "workloads/kv_util.hh"

namespace asap
{

AtlasLog::AtlasLog(TraceRecorder &rec, unsigned num_threads) : rec(rec)
{
    for (unsigned t = 0; t < num_threads; ++t) {
        logBase.push_back(rec.space().alloc(logBytes, lineBytes));
        logPos.push_back(0);
    }
}

void
AtlasLog::loggedStore(unsigned t, std::uint64_t addr, std::uint64_t value)
{
    // Undo entry: (address, old value) appended to the thread log,
    // persisted and ordered before the data store.
    const std::uint64_t old = rec.load64(t, addr);
    const std::uint64_t entry =
        logBase[t] + (logPos[t] % (logBytes - 16));
    logPos[t] += 16;
    rec.store64(t, entry, addr);
    rec.store64(t, entry + 8, old);
    rec.ofence(t);
    rec.store64(t, addr, value);
}

void
AtlasLog::commitSection(unsigned t)
{
    rec.ofence(t);
}

// --------------------------------------------------------------------
// Heap: array-backed binary min-heap under a global lock.
// --------------------------------------------------------------------

void
genAtlasHeap(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    AtlasLog log(rec, threads);
    PmLock lock = rec.makeLock();
    const unsigned cap = 1u << 16;
    const std::uint64_t arr = rec.space().alloc(cap * 8ull, lineBytes);
    const std::uint64_t sizeCell = rec.space().alloc(64, lineBytes);
    Rng keys(p.seed * 0x4ea9 + 3);

    auto siftUp = [&](unsigned t, std::uint64_t idx) {
        while (idx > 0) {
            const std::uint64_t parent = (idx - 1) / 2;
            const std::uint64_t v = rec.load64(t, arr + idx * 8);
            const std::uint64_t pv = rec.load64(t, arr + parent * 8);
            if (pv <= v)
                break;
            log.loggedStore(t, arr + parent * 8, v);
            log.loggedStore(t, arr + idx * 8, pv);
            idx = parent;
        }
    };

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 160);
            rec.lockAcquire(t, lock);
            const std::uint64_t n = rec.load64(t, sizeCell);
            if (n + 1 >= cap || (n > 8 && keys.percent(40))) {
                // Extract-min: move the last element to the root and
                // sift down.
                const std::uint64_t last =
                    rec.load64(t, arr + (n - 1) * 8);
                log.loggedStore(t, arr, last);
                log.loggedStore(t, sizeCell, n - 1);
                std::uint64_t idx = 0;
                while (true) {
                    const std::uint64_t l = 2 * idx + 1;
                    const std::uint64_t r = 2 * idx + 2;
                    if (l >= n - 1)
                        break;
                    std::uint64_t m = l;
                    if (r < n - 1 &&
                        rec.load64(t, arr + r * 8) <
                            rec.load64(t, arr + l * 8)) {
                        m = r;
                    }
                    const std::uint64_t v = rec.load64(t, arr + idx * 8);
                    const std::uint64_t mv = rec.load64(t, arr + m * 8);
                    if (v <= mv)
                        break;
                    log.loggedStore(t, arr + idx * 8, mv);
                    log.loggedStore(t, arr + m * 8, v);
                    idx = m;
                }
            } else {
                // Insert.
                log.loggedStore(t, arr + n * 8, keys.next() >> 16);
                log.loggedStore(t, sizeCell, n + 1);
                siftUp(t, n);
            }
            log.commitSection(t);
            rec.lockRelease(t, lock);
            if ((op + 1) % 64 == 0)
                rec.dfence(t);
        }
    }
}

// --------------------------------------------------------------------
// Queue: singly-linked FIFO, head/tail cells, one lock per end.
// --------------------------------------------------------------------

void
genAtlasQueue(TraceRecorder &rec, const WorkloadParams &p)
{
    const unsigned threads = rec.numThreads();
    AtlasLog log(rec, threads);
    // One lock for both ends: the classic two-lock queue races on the
    // head node's next pointer when the queue drains, which violates
    // the race-free requirement of release persistency (Section IV-E).
    PmLock lock = rec.makeLock();
    const std::uint64_t headCell = rec.space().alloc(64, lineBytes);
    const std::uint64_t tailCell = rec.space().alloc(64, lineBytes);

    // Sentinel node.
    const std::uint64_t sentinel = rec.space().alloc(64, lineBytes);
    rec.space().write64(headCell, sentinel);
    rec.space().write64(tailCell, sentinel);
    Rng keys(p.seed * 0x9e3e + 7);

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            rec.compute(t, 140);
            if (keys.percent(60)) {
                // Enqueue: build the node, then link it at the tail.
                const std::uint64_t node =
                    rec.space().alloc(64, lineBytes);
                rec.lockAcquire(t, lock);
                rec.store64(t, node + 8, keys.next()); // payload
                rec.store64(t, node, 0);               // next
                rec.ofence(t);
                const std::uint64_t tail = rec.load64(t, tailCell);
                log.loggedStore(t, tail, node);     // tail->next
                log.loggedStore(t, tailCell, node); // tail cell
                log.commitSection(t);
                rec.lockRelease(t, lock);
            } else {
                // Dequeue.
                rec.lockAcquire(t, lock);
                const std::uint64_t head = rec.load64(t, headCell);
                const std::uint64_t next = rec.load64(t, head);
                if (next != 0) {
                    rec.load64(t, next + 8); // read payload
                    log.loggedStore(t, headCell, next);
                    log.commitSection(t);
                    rec.space().free(head, 64);
                }
                rec.lockRelease(t, lock);
            }
            if ((op + 1) % 64 == 0)
                rec.dfence(t);
        }
    }
}

// --------------------------------------------------------------------
// Skip list: multi-level list under a global lock.
// --------------------------------------------------------------------

void
genAtlasSkiplist(TraceRecorder &rec, const WorkloadParams &p)
{
    constexpr unsigned maxLevel = 8;
    const unsigned threads = rec.numThreads();
    AtlasLog log(rec, threads);
    PmLock lock = rec.makeLock();
    Rng keys(p.seed * 0x5717 + 11);

    // Node: [0..maxLevel-1] next pointers, then key at 8*maxLevel.
    const unsigned nodeBytes = 8 * (maxLevel + 1);
    auto allocNode = [&](unsigned t, std::uint64_t key,
                         unsigned level) {
        const std::uint64_t n =
            rec.space().alloc(nodeBytes, lineBytes);
        rec.storeBytes(t, n, nullptr, nodeBytes);
        rec.store64(t, n + 8ull * maxLevel, key);
        (void)level;
        return n;
    };
    const std::uint64_t head = allocNode(0, 0, maxLevel);

    auto nodeKey = [&](unsigned t, std::uint64_t n) {
        return rec.load64(t, n + 8ull * maxLevel);
    };

    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 150);
            rec.lockAcquire(t, lock);

            // Find predecessors at every level.
            std::uint64_t preds[maxLevel];
            std::uint64_t cur = head;
            for (int lvl = maxLevel - 1; lvl >= 0; --lvl) {
                while (true) {
                    const std::uint64_t next =
                        rec.load64(t, cur + 8ull * lvl);
                    if (next == 0 || nodeKey(t, next) >= key)
                        break;
                    cur = next;
                }
                preds[lvl] = cur;
            }
            const std::uint64_t at0 = rec.load64(t, preds[0]);
            const bool exists = at0 != 0 && nodeKey(t, at0) == key;

            if (!exists && keys.percent(70)) {
                // Insert with a geometric level.
                unsigned level = 1;
                while (level < maxLevel && keys.percent(50))
                    ++level;
                const std::uint64_t node = allocNode(t, key, level);
                for (unsigned lvl = 0; lvl < level; ++lvl) {
                    rec.store64(t, node + 8ull * lvl,
                                rec.load64(t, preds[lvl] + 8ull * lvl));
                }
                rec.ofence(t);
                for (unsigned lvl = 0; lvl < level; ++lvl)
                    log.loggedStore(t, preds[lvl] + 8ull * lvl, node);
                log.commitSection(t);
            } else if (exists && keys.percent(50)) {
                // Delete: unlink at every level where it appears.
                for (unsigned lvl = 0; lvl < maxLevel; ++lvl) {
                    const std::uint64_t nxt =
                        rec.load64(t, preds[lvl] + 8ull * lvl);
                    if (nxt == at0) {
                        log.loggedStore(t, preds[lvl] + 8ull * lvl,
                                        rec.load64(t, at0 + 8ull * lvl));
                    }
                }
                log.commitSection(t);
            }
            rec.lockRelease(t, lock);
            if ((op + 1) % 64 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
