#include "workloads/cceh.hh"

#include "workloads/kv_util.hh"

namespace asap
{

Cceh::Cceh(TraceRecorder &rec, unsigned initial_depth)
    : rec(rec), depth(initial_depth), dirLock(rec.makeLock())
{
    const unsigned nsegs = 1u << depth;
    for (unsigned i = 0; i < nsegs; ++i) {
        segments.push_back(Segment{allocSegment(), depth,
                                   rec.makeLock()});
        directory.push_back(i);
    }
    dirPm = rec.space().alloc(nsegs * 8, lineBytes);
    for (unsigned i = 0; i < nsegs; ++i)
        rec.space().write64(dirPm + 8ull * i, segments[i].base);
}

std::uint64_t
Cceh::allocSegment()
{
    return rec.space().alloc(bucketsPerSegment * lineBytes, lineBytes);
}

std::uint64_t
Cceh::segmentIndex(std::uint64_t h) const
{
    return h >> (64 - depth);
}

bool
Cceh::insertIntoSegment(unsigned t, unsigned seg_idx, std::uint64_t key,
                        std::uint64_t value, bool record)
{
    Segment &seg = segments[seg_idx];
    const std::uint64_t h = hash64(key);
    const std::uint64_t home = (h >> 8) % bucketsPerSegment;
    for (unsigned p = 0; p < probeDistance; ++p) {
        const std::uint64_t b = (home + p) % bucketsPerSegment;
        const std::uint64_t baddr = seg.base + b * lineBytes;
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            std::uint64_t cur;
            if (record) {
                cur = rec.load64(t, kaddr);
            } else {
                cur = rec.space().read64(kaddr);
            }
            if (cur == 0 || cur == key) {
                if (record) {
                    // Value first, then the key that publishes it
                    // (the key write is the commit point).
                    rec.store64(t, kaddr + 8, value);
                    rec.store64(t, kaddr, key);
                    rec.ofence(t);
                } else {
                    rec.space().write64(kaddr + 8, value);
                    rec.space().write64(kaddr, key);
                }
                return true;
            }
        }
    }
    return false;
}

void
Cceh::split(unsigned t, unsigned seg_idx)
{
    ++numSplits;
    const unsigned new_depth = segments[seg_idx].localDepth + 1;

    if (new_depth > depth) {
        // Directory doubling: the volatile mirror doubles and the
        // persistent directory is rewritten (under the directory
        // lock: concurrent splitters of other segments write
        // neighbouring directory entries).
        const unsigned old_size = 1u << depth;
        ++depth;
        std::vector<unsigned> bigger(2ull * old_size);
        for (unsigned i = 0; i < old_size; ++i) {
            bigger[2 * i] = directory[i];
            bigger[2 * i + 1] = directory[i];
        }
        directory = std::move(bigger);
        dirPm = rec.space().alloc(directory.size() * 8, lineBytes);
        rec.lockAcquire(t, dirLock);
        for (std::size_t i = 0; i < directory.size(); ++i) {
            rec.store64(t, dirPm + 8ull * i,
                        segments[directory[i]].base);
            if (i % 8 == 7)
                rec.ofence(t);
        }
        rec.ofence(t);
        rec.lockRelease(t, dirLock);
    }

    // Create the sibling segment and redistribute keys on the new
    // depth bit. CCEH rehashes the splitting segment's pairs; each
    // moved pair is a fresh bucket write.
    const unsigned sib_idx = static_cast<unsigned>(segments.size());
    segments.push_back(Segment{allocSegment(), new_depth,
                               rec.makeLock()});
    // Re-reference after the push_back: the vector may have moved.
    Segment &old = segments[seg_idx];
    old.localDepth = new_depth;
    Segment &sib = segments[sib_idx];
    // Hold the sibling's lock while populating it: later inserts into
    // the sibling synchronise on it.
    rec.lockAcquire(t, sib.lock);

    for (unsigned b = 0; b < bucketsPerSegment; ++b) {
        const std::uint64_t baddr = old.base + b * lineBytes;
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            const std::uint64_t key = rec.load64(t, kaddr);
            if (key == 0)
                continue;
            const std::uint64_t h = hash64(key);
            if ((h >> (64 - new_depth)) & 1u) {
                const std::uint64_t value = rec.load64(t, kaddr + 8);
                // Move into the sibling, clear the old slot.
                rec.store64(t, kaddr, 0);
                insertIntoSegmentRecorded(t, sib, key, value);
            }
        }
        if (b % 8 == 7)
            rec.ofence(t);
    }
    rec.ofence(t);

    rec.lockRelease(t, segments[sib_idx].lock);

    // Redirect the directory entries that now point at the sibling.
    const unsigned stride = 1u << (depth - new_depth);
    rec.lockAcquire(t, dirLock);
    for (std::size_t i = 0; i < directory.size(); ++i) {
        if (directory[i] == seg_idx && (i & stride)) {
            directory[i] = sib_idx;
            rec.store64(t, dirPm + 8ull * i,
                        segments[sib_idx].base);
        }
    }
    rec.ofence(t);
    rec.lockRelease(t, dirLock);
}

void
Cceh::insertIntoSegmentRecorded(unsigned t, Segment &seg,
                                std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t h = hash64(key);
    const std::uint64_t home = (h >> 8) % bucketsPerSegment;
    for (unsigned p = 0; p < probeDistance * 4; ++p) {
        const std::uint64_t b = (home + p) % bucketsPerSegment;
        const std::uint64_t kaddr =
            seg.base + b * lineBytes + (h % slotsPerBucket) * 16;
        if (rec.space().read64(kaddr) == 0) {
            rec.store64(t, kaddr + 8, value);
            rec.store64(t, kaddr, key);
            return;
        }
    }
    // Extremely unlikely with the split redistribution; drop the key
    // into the first free slot scan.
    for (unsigned b = 0; b < bucketsPerSegment; ++b) {
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr =
                seg.base + b * lineBytes + s * 16;
            if (rec.space().read64(kaddr) == 0) {
                rec.store64(t, kaddr + 8, value);
                rec.store64(t, kaddr, key);
                return;
            }
        }
    }
}

bool
Cceh::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    for (int attempt = 0; attempt < 4; ++attempt) {
        const std::uint64_t h = hash64(key);
        const unsigned seg_idx = directory[segmentIndex(h)];
        Segment &seg = segments[seg_idx];
        rec.lockAcquire(t, seg.lock);
        rec.compute(t, 30); // hash + fingerprint computation
        if (insertIntoSegment(t, seg_idx, key, value, true)) {
            rec.lockRelease(t, segments[seg_idx].lock);
            return true;
        }
        split(t, seg_idx); // may reallocate the segment vector
        rec.lockRelease(t, segments[seg_idx].lock);
    }
    return false;
}

std::uint64_t
Cceh::search(unsigned t, std::uint64_t key)
{
    const std::uint64_t h = hash64(key);
    const unsigned seg_idx = directory[segmentIndex(h)];
    const Segment &seg = segments[seg_idx];
    const std::uint64_t home = (h >> 8) % bucketsPerSegment;
    rec.compute(t, 25);
    for (unsigned p = 0; p < probeDistance; ++p) {
        const std::uint64_t b = (home + p) % bucketsPerSegment;
        const std::uint64_t baddr = seg.base + b * lineBytes;
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            if (rec.load64(t, kaddr) == key)
                return rec.load64(t, kaddr + 8);
        }
    }
    // Split relocation may displace a pair beyond the probe window;
    // fall back to a full segment scan (the slow path a real CCEH
    // avoids by re-splitting; rare here).
    for (unsigned b = 0; b < bucketsPerSegment; ++b) {
        const std::uint64_t baddr = seg.base + b * lineBytes;
        for (unsigned s = 0; s < slotsPerBucket; ++s) {
            const std::uint64_t kaddr = baddr + s * 16;
            if (rec.load64(t, kaddr) == key)
                return rec.load64(t, kaddr + 8);
        }
    }
    return 0;
}

void
genCceh(TraceRecorder &rec, const WorkloadParams &p)
{
    Cceh table(rec, 2);
    Rng keys(p.seed * 0x9e37 + 17);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 120); // key marshalling, app logic
            if (keys.percent(p.updatePct)) {
                table.insert(t, key, hash64(key + 1));
            } else {
                table.search(t, key);
            }
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
