/**
 * @file
 * Synthetic trace generators: random recoverable programs for
 * property/fuzz testing and the Figure 13 bandwidth microbenchmark.
 */

#ifndef ASAP_WORKLOADS_SYNTHETIC_HH
#define ASAP_WORKLOADS_SYNTHETIC_HH

#include <cstdint>

#include "pm/recorder.hh"

namespace asap
{

/** Shape knobs for the random program generator. */
struct SyntheticParams
{
    unsigned opsPerThread = 200;   //!< high-level steps per thread
    unsigned regionLines = 64;     //!< shared PM lines the threads hit
    unsigned lockCount = 4;        //!< locks protecting line groups
    unsigned storesPerStep = 3;    //!< PM stores inside a step
    unsigned ofenceEvery = 2;      //!< steps between ofences
    unsigned dfenceEvery = 16;     //!< steps between dfences
    unsigned computeCycles = 240;  //!< think time between steps
    unsigned sharedPct = 40;       //!< % of steps touching shared lines
};

/**
 * Generate a random, race-free recoverable program: each thread
 * performs steps that optionally take a lock, write a few PM lines
 * (lock-partitioned when shared), and fence periodically. Exercises
 * write collisions, cross-thread dependencies, eager flushing and
 * every Table I action.
 */
void genSyntheticWorkload(TraceRecorder &rec, const SyntheticParams &p);

/**
 * Figure 13's bandwidth microbenchmark: each thread issues 256-byte
 * writes alternating across the memory controllers, ordered with
 * ofence between bursts.
 *
 * @param bursts number of 256 B write bursts per thread
 */
void genBandwidthMicrobench(TraceRecorder &rec, unsigned bursts);

/**
 * Lock-handoff microbenchmark: all threads ping-pong one lock, each
 * critical section writing a couple of PM lines. Every handoff is a
 * cross-thread dependency, so total runtime is dominated by the
 * dependency-resolution mechanism — ASAP's direct CDR messages versus
 * HOPS's 500-cycle polling of the global timestamp register
 * (Section IV-E's third advantage).
 *
 * @param handoffs critical sections per thread
 */
void genHandoffMicrobench(TraceRecorder &rec, unsigned handoffs);

} // namespace asap

#endif // ASAP_WORKLOADS_SYNTHETIC_HH
