/**
 * @file
 * WHISPER-suite application generators (Nalli et al., ASPLOS'17).
 *
 * The paper evaluates four WHISPER applications: Nstore and Echo
 * (PM-native) plus Vacation and Memcached (PMDK-based). We reconstruct
 * each as a generator that reproduces its published persist-stream
 * profile — epoch sizes, log-vs-data mix, locking granularity and
 * cross-thread dependency frequency (rare for all four, per Figure 2):
 *
 *  - Nstore: WAL-based DBMS. Transactions append multi-line log
 *    records sequentially, then update table tuples in place; commit
 *    is a dfence. Large epochs, high write volume (the workload that
 *    fills ASAP's recovery table, Section VII-B).
 *  - Echo: scalable KV-store. Worker threads stage updates into
 *    per-thread persistent logs, then a lightweight commit publishes
 *    them into a shared hash index under short locks.
 *  - Vacation: travel-reservation system on a PMDK-style transaction:
 *    coarse-grained lock, undo-log entry before each data write, and
 *    volatile bookkeeping *before releasing the lock* — which is why
 *    eager flushing gains little here (Section VII-A).
 *  - Memcached: slab KV cache with a persistent hash table and
 *    per-bucket locks; small epochs, few conflicts.
 */

#ifndef ASAP_WORKLOADS_WHISPER_HH
#define ASAP_WORKLOADS_WHISPER_HH

#include "pm/recorder.hh"
#include "workloads/params.hh"

namespace asap
{

void genNstore(TraceRecorder &rec, const WorkloadParams &p);
void genEcho(TraceRecorder &rec, const WorkloadParams &p);
void genVacation(TraceRecorder &rec, const WorkloadParams &p);
void genMemcached(TraceRecorder &rec, const WorkloadParams &p);

} // namespace asap

#endif // ASAP_WORKLOADS_WHISPER_HH
