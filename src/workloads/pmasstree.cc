#include "workloads/pmasstree.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "workloads/kv_util.hh"

namespace asap
{

namespace
{
constexpr unsigned lockCount = 64;
} // namespace

PMasstree::PMasstree(TraceRecorder &rec)
    : rec(rec), treeLock(rec.makeLock())
{
    for (unsigned i = 0; i < lockCount; ++i)
        lockTable.push_back(rec.makeLock());
    root = rec.space().alloc(nodeBytes, lineBytes);
    rec.space().write64(root, 1); // leaf, count 0
}

PmLock &
PMasstree::lockFor(std::uint64_t node)
{
    return lockTable[(node / nodeBytes) % lockCount];
}

std::uint64_t
PMasstree::allocNode(unsigned t, bool leaf)
{
    const std::uint64_t n = rec.space().alloc(nodeBytes, lineBytes);
    rec.storeBytes(t, n, nullptr, nodeBytes);
    rec.space().write64(n, leaf ? 1 : 0);
    return n;
}

std::uint64_t
PMasstree::recAddr(std::uint64_t node, unsigned i) const
{
    return node + 32 + std::uint64_t(i) * 16;
}

unsigned
PMasstree::count(unsigned t, std::uint64_t node)
{
    return static_cast<unsigned>(rec.load64(t, node) >> 8);
}

bool
PMasstree::isLeaf(unsigned t, std::uint64_t node)
{
    return (rec.load64(t, node) & 1) != 0;
}

std::uint64_t
PMasstree::descend(unsigned t, std::uint64_t key,
                   std::vector<std::uint64_t> &path)
{
    std::uint64_t node = root;
    path.clear();
    while (!isLeaf(t, node)) {
        path.push_back(node);
        const unsigned n = count(t, node);
        std::uint64_t child = rec.load64(t, node + 8);
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t k = rec.load64(t, recAddr(node, i));
            if (key >= k)
                child = rec.load64(t, recAddr(node, i) + 8);
            else
                break;
        }
        node = child;
    }
    path.push_back(node);
    return node;
}

void
PMasstree::insertInner(unsigned t, std::uint64_t node, std::uint64_t key,
                       std::uint64_t child)
{
    // Inners are sorted (shift-based, as in Masstree's internodes).
    const unsigned n = count(t, node);
    unsigned pos = 0;
    while (pos < n && rec.load64(t, recAddr(node, pos)) < key)
        ++pos;
    for (unsigned i = n; i > pos; --i) {
        rec.store64(t, recAddr(node, i),
                    rec.load64(t, recAddr(node, i - 1)));
        rec.store64(t, recAddr(node, i) + 8,
                    rec.load64(t, recAddr(node, i - 1) + 8));
    }
    rec.store64(t, recAddr(node, pos), key);
    rec.store64(t, recAddr(node, pos) + 8, child);
    rec.store64(t, node, (std::uint64_t(n + 1) << 8));
    rec.ofence(t);
}

std::pair<std::uint64_t, std::uint64_t>
PMasstree::splitLeaf(unsigned t, std::uint64_t node)
{
    ++numSplits;
    // Collect records, sort by key (volatile work), move the upper
    // half to a fresh leaf.
    const unsigned n = count(t, node);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> recs;
    for (unsigned i = 0; i < n; ++i) {
        recs.emplace_back(rec.load64(t, recAddr(node, i)),
                          rec.load64(t, recAddr(node, i) + 8));
    }
    std::sort(recs.begin(), recs.end());
    rec.compute(t, 40); // sorting / permutation maintenance

    const unsigned half = n / 2;
    const std::uint64_t sep = recs[half].first;
    const std::uint64_t sib = allocNode(t, true);
    // Hold the sibling's node lock while populating it so later
    // writers (which lock the sibling by address) synchronise with
    // this split (race-free RP requirement).
    PmLock &sl = lockFor(sib);
    if (sl.holder != static_cast<std::int32_t>(t)) {
        rec.lockAcquire(t, sl);
        pendingSibLock = &sl;
    } else {
        pendingSibLock = nullptr;
    }
    for (unsigned i = half; i < n; ++i) {
        rec.store64(t, recAddr(sib, i - half), recs[i].first);
        rec.store64(t, recAddr(sib, i - half) + 8, recs[i].second);
        if ((i - half) % 4 == 3)
            rec.ofence(t);
    }
    rec.store64(t, sib, 1 | (std::uint64_t(n - half) << 8));
    rec.store64(t, sib + 16, rec.load64(t, node + 16)); // sibling link
    rec.ofence(t);
    rec.store64(t, node + 16, sib);
    rec.ofence(t);

    // Compact the lower half in place and republish the permutation.
    for (unsigned i = 0; i < half; ++i) {
        rec.store64(t, recAddr(node, i), recs[i].first);
        rec.store64(t, recAddr(node, i) + 8, recs[i].second);
        if (i % 4 == 3)
            rec.ofence(t);
    }
    rec.store64(t, node, 1 | (std::uint64_t(half) << 8));
    rec.store64(t, node + 8, hash64(half)); // new permutation word
    rec.ofence(t);
    return {sep, sib};
}

void
PMasstree::insertUp(unsigned t, std::uint64_t key, std::uint64_t child,
                    std::vector<std::uint64_t> &path, std::size_t level)
{
    std::uint64_t node = path[level];
    if (count(t, node) < capacity) {
        insertInner(t, node, key, child);
        return;
    }
    // Split the inner node (sorted halves).
    ++numSplits;
    const unsigned n = count(t, node);
    const unsigned half = n / 2;
    const std::uint64_t sib = allocNode(t, false);
    const std::uint64_t sep = rec.load64(t, recAddr(node, half));
    rec.store64(t, sib + 8, rec.load64(t, recAddr(node, half) + 8));
    for (unsigned i = half + 1; i < n; ++i) {
        rec.store64(t, recAddr(sib, i - half - 1),
                    rec.load64(t, recAddr(node, i)));
        rec.store64(t, recAddr(sib, i - half - 1) + 8,
                    rec.load64(t, recAddr(node, i) + 8));
    }
    rec.store64(t, sib, (std::uint64_t(n - half - 1) << 8));
    rec.store64(t, node, (std::uint64_t(half) << 8));
    rec.ofence(t);
    insertInner(t, key >= sep ? sib : node, key, child);

    if (level == 0) {
        const std::uint64_t new_root = allocNode(t, false);
        rec.store64(t, new_root + 8, node);
        rec.store64(t, recAddr(new_root, 0), sep);
        rec.store64(t, recAddr(new_root, 0) + 8, sib);
        rec.store64(t, new_root, (std::uint64_t(1) << 8));
        rec.ofence(t);
        root = new_root;
        return;
    }
    insertUp(t, sep, sib, path, level - 1);
}

void
PMasstree::insert(unsigned t, std::uint64_t key, std::uint64_t value)
{
    std::vector<std::uint64_t> path;
    const std::uint64_t leaf = descend(t, key, path);
    PmLock &lock = lockFor(leaf);
    rec.lockAcquire(t, lock);
    rec.compute(t, 25);

    // Unsorted leaf: look for the key among the live records.
    const unsigned n = count(t, leaf);
    for (unsigned i = 0; i < n; ++i) {
        if (rec.load64(t, recAddr(leaf, i)) == key) {
            rec.store64(t, recAddr(leaf, i) + 8, value);
            rec.ofence(t);
            rec.lockRelease(t, lock);
            return;
        }
    }
    if (n < capacity) {
        // Record first, fence, then the permutation word publishes it.
        rec.store64(t, recAddr(leaf, n), key);
        rec.store64(t, recAddr(leaf, n) + 8, value);
        rec.ofence(t);
        rec.store64(t, leaf, 1 | (std::uint64_t(n + 1) << 8));
        rec.store64(t, leaf + 8, hash64(n + 1)); // permutation word
        rec.ofence(t);
        rec.lockRelease(t, lock);
        return;
    }

    rec.lockAcquire(t, treeLock);
    auto [sep, sib] = splitLeaf(t, leaf);
    // Insert into the proper half (both are unsorted leaves).
    const std::uint64_t target = key >= sep ? sib : leaf;
    const unsigned m = count(t, target);
    rec.store64(t, recAddr(target, m), key);
    rec.store64(t, recAddr(target, m) + 8, value);
    rec.ofence(t);
    rec.store64(t, target, 1 | (std::uint64_t(m + 1) << 8));
    rec.ofence(t);
    if (pendingSibLock) {
        rec.lockRelease(t, *pendingSibLock);
        pendingSibLock = nullptr;
    }
    // Push the separator into the ancestors.
    if (path.size() >= 2) {
        insertUp(t, sep, sib, path, path.size() - 2);
    } else {
        const std::uint64_t new_root = allocNode(t, false);
        rec.store64(t, new_root + 8, leaf);
        rec.store64(t, recAddr(new_root, 0), sep);
        rec.store64(t, recAddr(new_root, 0) + 8, sib);
        rec.store64(t, new_root, (std::uint64_t(1) << 8));
        rec.ofence(t);
        root = new_root;
    }
    rec.lockRelease(t, treeLock);
    rec.lockRelease(t, lock);
}

std::uint64_t
PMasstree::search(unsigned t, std::uint64_t key)
{
    std::vector<std::uint64_t> path;
    const std::uint64_t leaf = descend(t, key, path);
    const unsigned n = count(t, leaf);
    for (unsigned i = 0; i < n; ++i) {
        if (rec.load64(t, recAddr(leaf, i)) == key)
            return rec.load64(t, recAddr(leaf, i) + 8);
    }
    return 0;
}

void
genPMasstree(TraceRecorder &rec, const WorkloadParams &p)
{
    PMasstree tree(rec);
    Rng keys(p.seed * 0x3a55 + 41);
    const unsigned threads = rec.numThreads();
    for (unsigned op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t key = makeKey(keys.below(p.keySpace));
            rec.compute(t, 150);
            tree.insert(t, key, hash64(key + 23));
            if ((op + 1) % 128 == 0)
                rec.dfence(t);
        }
    }
}

} // namespace asap
