/**
 * @file
 * Three-level cache hierarchy timing model with conflict detection.
 *
 * Models private L1D/L2 per core and a shared LLC (Table II sizes) as
 * tag arrays; returns access latencies and detects the cross-thread
 * conflicting accesses that MESI forwards to the last writer — the
 * events ASAP and HOPS turn into cross-thread epoch dependencies
 * (Section IV-E). PM lines evicted from the LLC are dropped, since
 * persistence travels through the persist-buffer path, not the cache
 * write-back path (Section V-A); an eviction hook lets the system
 * route those drops through the NACK Bloom filter (Section V-F).
 */

#ifndef ASAP_COHERENCE_CACHE_HIERARCHY_HH
#define ASAP_COHERENCE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/cache_array.hh"
#include "media/media.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace asap
{

/** Outcome of one load/store walking the hierarchy. */
struct CacheAccess
{
    Tick latency = 0;       //!< cycles until the access completes
    bool conflict = false;  //!< line was modified by another thread
    std::uint16_t srcThread = 0; //!< that thread (valid when conflict)
    bool llcPmEvict = false;     //!< a PM line was dropped from the LLC
    std::uint64_t evictedLine = 0; //!< the dropped line
};

/** Private L1/L2 per core plus a shared LLC and a writer directory. */
class CacheHierarchy
{
  public:
    /**
     * Hook consulted before dropping a PM line from the LLC; return
     * true to delay the eviction (NACK Bloom filter hit).
     */
    using EvictFilter = std::function<bool(std::uint64_t line)>;

    CacheHierarchy(const SimConfig &cfg, StatSet &stats);

    /**
     * Simulate one access by @p thread.
     *
     * @param thread accessing core
     * @param line line address
     * @param is_write true for stores
     * @param is_pm true if the line maps to persistent memory
     */
    CacheAccess access(std::uint16_t thread, std::uint64_t line,
                       bool is_write, bool is_pm);

    /** Install the LLC PM-eviction filter (Bloom-filter check). */
    void setEvictFilter(EvictFilter f) { evictFilter = std::move(f); }

    /** Clear a line's dirty state everywhere (clwb semantics). */
    void cleanLine(std::uint16_t thread, std::uint64_t line);

    /** Last thread to write @p line, or -1 if nobody has. */
    int lastWriter(std::uint64_t line) const;

  private:
    const SimConfig &cfg;
    StatSet &stats;
    /** Resolved media timing: miss fills draw the PM read / DRAM fill
     *  latency from the configured profile, not SimConfig constants. */
    MediaParams mediaParams_;

    struct PrivateCaches
    {
        CacheArray l1;
        CacheArray l2;
        PrivateCaches(const SimConfig &c)
            : l1(c.l1Sets, c.l1Ways), l2(c.l2Sets, c.l2Ways)
        {
        }
    };

    std::vector<std::unique_ptr<PrivateCaches>> privs;
    CacheArray llc;

    /** Directory: last writer per line + whether that write is live. */
    struct DirEntry
    {
        std::uint16_t owner = 0;
        bool modified = false;
    };
    std::unordered_map<std::uint64_t, DirEntry> directory;

    EvictFilter evictFilter;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stConflictTransfers;
    std::uint64_t *stL1Hits;
    std::uint64_t *stL2Hits;
    std::uint64_t *stLlcHits;
    std::uint64_t *stPmFills;
    std::uint64_t *stDramFills;
    std::uint64_t *stLlcEvictDelayed;
    std::uint64_t *stLlcDirtyEvicts;
};

} // namespace asap

#endif // ASAP_COHERENCE_CACHE_HIERARCHY_HH
