/**
 * @file
 * Set-associative tag array with LRU replacement.
 *
 * The timing model only needs hit/miss decisions and victim lines, so
 * the array stores tags (line addresses), not data. Data for PM lines
 * lives functionally in the traces and in NvmContents.
 */

#ifndef ASAP_COHERENCE_CACHE_ARRAY_HH
#define ASAP_COHERENCE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "sim/log.hh"

namespace asap
{

/** LRU set-associative tag array. */
class CacheArray
{
  public:
    /** Result of inserting a line. */
    struct Victim
    {
        bool valid = false;         //!< true if a line was evicted
        std::uint64_t line = 0;     //!< the evicted line address
        bool dirty = false;         //!< evicted line had been written
    };

    CacheArray(unsigned sets, unsigned ways)
        : numSets(sets), numWays(ways), entries(sets * ways)
    {
        fatal_if(sets == 0 || ways == 0, "cache must have sets and ways");
    }

    /** True if @p line is resident; refreshes LRU state on hit. */
    bool
    access(std::uint64_t line, bool is_write)
    {
        Entry *e = find(line);
        if (!e)
            return false;
        e->lastUse = ++useClock;
        e->dirty = e->dirty || is_write;
        return true;
    }

    /** Non-updating residency probe. */
    bool
    contains(std::uint64_t line) const
    {
        return const_cast<CacheArray *>(this)->find(line) != nullptr;
    }

    /**
     * Allocate @p line (must not be resident), evicting the set's LRU
     * entry if the set is full.
     */
    Victim
    insert(std::uint64_t line, bool dirty)
    {
        Entry *base = setBase(line);
        Entry *lru = nullptr;
        for (unsigned w = 0; w < numWays; ++w) {
            Entry &e = base[w];
            if (!e.valid) {
                e = Entry{true, dirty, line, ++useClock};
                return Victim{};
            }
            if (!lru || e.lastUse < lru->lastUse)
                lru = &e;
        }
        Victim v{true, lru->line, lru->dirty};
        *lru = Entry{true, dirty, line, ++useClock};
        return v;
    }

    /** Drop @p line if resident (invalidation / drop on LLC evict). */
    void
    invalidate(std::uint64_t line)
    {
        if (Entry *e = find(line))
            e->valid = false;
    }

    /** Clear the dirty bit (line was written back / downgraded). */
    void
    clean(std::uint64_t line)
    {
        if (Entry *e = find(line))
            e->dirty = false;
    }

    /** Number of valid entries (test support). */
    std::size_t
    population() const
    {
        std::size_t n = 0;
        for (const Entry &e : entries)
            n += e.valid ? 1 : 0;
        return n;
    }

  private:
    struct Entry
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t line = 0;
        std::uint64_t lastUse = 0;
    };

    Entry *
    setBase(std::uint64_t line)
    {
        return &entries[(line % numSets) * numWays];
    }

    Entry *
    find(std::uint64_t line)
    {
        Entry *base = setBase(line);
        for (unsigned w = 0; w < numWays; ++w) {
            if (base[w].valid && base[w].line == line)
                return &base[w];
        }
        return nullptr;
    }

    unsigned numSets;
    unsigned numWays;
    std::vector<Entry> entries;
    std::uint64_t useClock = 0;
};

} // namespace asap

#endif // ASAP_COHERENCE_CACHE_ARRAY_HH
