#include "coherence/cache_hierarchy.hh"

#include "sim/log.hh"

namespace asap
{

CacheHierarchy::CacheHierarchy(const SimConfig &cfg, StatSet &stats)
    : cfg(cfg), stats(stats), mediaParams_(resolveMediaParams(cfg)),
      llc(cfg.llcSets, cfg.llcWays),
      stConflictTransfers(&stats.counter("cache.conflictTransfers")),
      stL1Hits(&stats.counter("cache.l1Hits")),
      stL2Hits(&stats.counter("cache.l2Hits")),
      stLlcHits(&stats.counter("cache.llcHits")),
      stPmFills(&stats.counter("cache.pmFills")),
      stDramFills(&stats.counter("cache.dramFills")),
      stLlcEvictDelayed(&stats.counter("cache.llcEvictDelayed")),
      stLlcDirtyEvicts(&stats.counter("cache.llcDirtyEvicts"))
{
    privs.reserve(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; ++i)
        privs.push_back(std::make_unique<PrivateCaches>(cfg));
}

CacheAccess
CacheHierarchy::access(std::uint16_t thread, std::uint64_t line,
                       bool is_write, bool is_pm)
{
    panic_if(thread >= privs.size(), "access from unknown core ", thread);
    CacheAccess res;
    PrivateCaches &pc = *privs[thread];

    // Conflict detection first: MESI would forward the request to the
    // modifying core regardless of where the requester misses. Reads
    // conflict with a *modified* remote line; writes conflict with
    // the last writer even after intermediate readers downgraded it
    // (ownership transfer still orders the stores).
    auto dit = directory.find(line);
    if (dit != directory.end() && dit->second.owner != thread &&
        (dit->second.modified || is_write)) {
        res.conflict = true;
        res.srcThread = dit->second.owner;
        res.latency = cfg.cacheToCacheLatency;
        // The remote copy is downgraded (read) or invalidated (write);
        // either way its private caches no longer hold it modified.
        privs[res.srcThread]->l1.clean(line);
        privs[res.srcThread]->l2.clean(line);
        if (is_write) {
            privs[res.srcThread]->l1.invalidate(line);
            privs[res.srcThread]->l2.invalidate(line);
        }
        ++*stConflictTransfers;
    }

    if (is_write) {
        directory[line] = DirEntry{thread, true};
    } else if (dit != directory.end() && res.conflict) {
        dit->second.modified = false;
    }

    // Walk the hierarchy for the latency unless a dirty transfer
    // already sourced the data.
    if (!res.conflict) {
        if (pc.l1.access(line, is_write)) {
            res.latency = cfg.l1Latency;
            ++*stL1Hits;
        } else if (pc.l2.access(line, is_write)) {
            res.latency = cfg.l2Latency;
            ++*stL2Hits;
        } else if (llc.access(line, is_write)) {
            res.latency = cfg.llcLatency;
            ++*stLlcHits;
        } else {
            res.latency = is_pm ? mediaParams_.readLatency
                                : mediaParams_.dramFillLatency;
            ++*(is_pm ? stPmFills : stDramFills);
        }
    }

    // Allocate the line throughout (write-allocate, mostly-inclusive).
    if (!pc.l1.contains(line))
        pc.l1.insert(line, is_write);
    if (!pc.l2.contains(line))
        pc.l2.insert(line, is_write);
    if (!llc.contains(line)) {
        CacheArray::Victim v = llc.insert(line, is_write);
        if (v.valid && v.dirty) {
            // PM lines are dropped on LLC eviction: durability flows
            // through the persist buffers, not cache write-back. The
            // Bloom filter may ask us to hold the line briefly.
            if (evictFilter && evictFilter(v.line)) {
                ++*stLlcEvictDelayed;
            }
            res.llcPmEvict = true;
            res.evictedLine = v.line;
            ++*stLlcDirtyEvicts;
        }
    }

    return res;
}

void
CacheHierarchy::cleanLine(std::uint16_t thread, std::uint64_t line)
{
    panic_if(thread >= privs.size(), "clean from unknown core ", thread);
    privs[thread]->l1.clean(line);
    privs[thread]->l2.clean(line);
    llc.clean(line);
    auto dit = directory.find(line);
    if (dit != directory.end())
        dit->second.modified = false;
}

int
CacheHierarchy::lastWriter(std::uint64_t line) const
{
    auto it = directory.find(line);
    return it == directory.end() ? -1 : static_cast<int>(it->second.owner);
}

} // namespace asap
