/**
 * @file
 * The ASAP persistence model (the paper's contribution).
 *
 * Per-core persist buffer + epoch table with *eager flushing*: queued
 * writes flush immediately, marked early when their epoch is not yet
 * safe. Memory controllers speculatively persist early flushes,
 * guarded by the Recovery Table. Commit protocol (Section V-C):
 * when the oldest epoch is safe and complete, the epoch table sends
 * commit messages to every controller that received one of its early
 * flushes; after all commit ACKs the epoch is committed and CDR
 * (Cross-thread Dependency Resolved) messages notify dependent
 * threads directly. NACKed flushes flip the persist buffer into
 * conservative flushing until the NACKed epoch commits (Section V-D).
 */

#ifndef ASAP_CORE_ASAP_MODEL_HH
#define ASAP_CORE_ASAP_MODEL_HH

#include <cstdint>
#include <memory>

#include "persist/epoch_table.hh"
#include "persist/model.hh"
#include "persist/persist_buffer.hh"

namespace asap
{

/** ASAP per-core persistence hardware. */
class AsapModel : public PersistModel
{
  public:
    AsapModel(std::uint16_t thread, ModelContext &ctx);

    void pmStore(std::uint64_t line, std::uint64_t value,
                 Callback done) override;
    void ofence(Callback done) override;
    void dfence(Callback done) override;
    void release(Callback done) override;
    void acquire(std::uint16_t src_thread, std::uint64_t src_epoch,
                 Callback done) override;
    std::uint64_t conflictSource(std::uint16_t requester) override;
    void conflictDependent(std::uint16_t src_thread,
                           std::uint64_t src_epoch) override;
    bool registerDependent(std::uint16_t dep_thread,
                           std::uint64_t epoch) override;
    void dependencyResolved(std::uint16_t src_thread,
                            std::uint64_t src_epoch) override;
    std::uint64_t currentEpoch() const override;
    std::uint64_t lastCommittedEpoch() const override
    {
        return et.lastCommitted();
    }
    void crash() override;

    std::vector<std::uint64_t>
    commitInFlightEpochs() const override
    {
        std::vector<std::uint64_t> out;
        for (const EpochTable::Entry &e : et.inFlightEntries())
            if (e.commitInProgress)
                out.push_back(e.ts);
        return out;
    }

    /** Test support. */
    EpochTable &epochTable() { return et; }
    PersistBuffer &persistBuffer() { return pb; }
    bool conservative() const { return conservativeUntil != 0; }

  private:
    /** The oldest epoch became safe + complete: run the commit
     *  protocol (commit messages to MCs, then CDRs). */
    void onCommittable(std::uint64_t ts);

    /** All commit ACKs received: finalize and send CDRs. */
    void finishCommit(std::uint64_t ts);

    FlushMode classify(std::uint64_t epoch) const;

    EpochTable et;
    PersistBuffer pb;

    /** Non-zero: NACK received; eager flushing paused until the epoch
     *  with this timestamp commits. */
    std::uint64_t conservativeUntil = 0;
    bool crashed = false;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stConservativeFallbacks;
    std::uint64_t *stDfenceStalled;
    std::uint64_t *stCommitMessages;
    std::uint64_t *stCdrMessages;
};

} // namespace asap

#endif // ASAP_CORE_ASAP_MODEL_HH
