#include "core/recovery_table.hh"

#include <algorithm>

#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace asap
{

RecoveryTable::RecoveryTable(unsigned mc_id, unsigned capacity,
                             StatSet &stats)
    : mcId(mc_id), capacity(capacity), stats(stats),
      statPrefix("rt" + std::to_string(mc_id) + "."),
      stMaxOcc{&stats.counter(statPrefix + "maxOccupancy"),
               &stats.counter("rt.maxOccupancy")},
      stDelayCoalesced{&stats.counter(statPrefix + "delayCoalesced"),
                       &stats.counter("rt.delayCoalesced")},
      stSameEpochWriteThrough{
          &stats.counter(statPrefix + "sameEpochWriteThrough"),
          &stats.counter("rt.sameEpochWriteThrough")},
      stNacks{&stats.counter(statPrefix + "nacks"),
              &stats.counter("rt.nacks")},
      stTotalDelay{&stats.counter(statPrefix + "totalDelay"),
                   &stats.counter("rt.totalDelay")},
      stTotalUndo{&stats.counter(statPrefix + "totalUndo"),
                  &stats.counter("rt.totalUndo")},
      stDelayAbsorbed{&stats.counter(statPrefix + "delayAbsorbed"),
                      &stats.counter("rt.delayAbsorbed")}
{
    fatal_if(capacity == 0, "recovery table needs at least one entry");
    sumPairs_ = {&stDelayCoalesced, &stSameEpochWriteThrough, &stNacks,
                 &stTotalDelay,     &stTotalUndo,             &stDelayAbsorbed};
}

void
RecoveryTable::attachKernel(EventQueue *eq, bool agg_inline)
{
    eq_ = eq;
    aggInline_ = agg_inline;
}

std::size_t
RecoveryTable::occupancy() const
{
    return undos.size() + delays.size();
}

void
RecoveryTable::statMax()
{
    const std::uint64_t occ = occupancy();
    if (occ > *stMaxOcc.rt)
        *stMaxOcc.rt = occ;
    if (aggInline_ && occ > *stMaxOcc.agg)
        *stMaxOcc.agg = occ;
}

void
RecoveryTable::noteNackMutation()
{
    nackCount_.store(static_cast<std::uint32_t>(nackedLines.size()),
                     std::memory_order_relaxed);
    if (eq_)
        eq_->noteCrossWrite();
}

bool
RecoveryTable::nackPending(std::uint64_t line) const
{
    return nackBloom.test(line);
}

bool
RecoveryTable::hasUndo(std::uint64_t line) const
{
    return undos.count(line) != 0;
}

std::uint64_t
RecoveryTable::undoValue(std::uint64_t line) const
{
    auto it = undos.find(line);
    return it == undos.end() ? 0 : it->second.value;
}

FlushAction
RecoveryTable::onFlush(const FlushPacket &pkt, std::uint64_t current_value)
{
    auto uit = undos.find(pkt.line);

    // A later same-epoch flush to a line with a parked delay record
    // must coalesce into it — whatever happened to the undo record in
    // between — or the commit-time release would resurrect the older
    // parked value over the newer one.
    for (DelayRecord &d : delays) {
        if (d.line == pkt.line && d.thread == pkt.thread &&
            d.epoch == pkt.epoch) {
            d.value = pkt.value;
            inc(stDelayCoalesced);
            if (!pkt.early) {
                auto nit = nackedLines.find(pkt.line);
                if (nit != nackedLines.end()) {
                    nackedLines.erase(nit);
                    nackBloom.remove(pkt.line);
                    noteNackMutation();
                }
            }
            return FlushAction::CreateDelay;
        }
    }

    if (!pkt.early) {
        // A (possibly retried) safe flush arrived: the NACK hold on
        // this line, if any, is lifted.
        auto nit = nackedLines.find(pkt.line);
        if (nit != nackedLines.end()) {
            nackedLines.erase(nit);
            nackBloom.remove(pkt.line);
            noteNackMutation();
        }
        if (uit != undos.end()) {
            if (uit->second.thread == pkt.thread &&
                uit->second.epoch == pkt.epoch) {
                // The undo record was created by this very epoch: the
                // speculative value in memory is an *older* write of
                // the same epoch (flushed early before the epoch
                // became safe), so the incoming value is newer and
                // must reach memory. The undo record keeps the
                // pre-epoch value for rewind.
                inc(stSameEpochWriteThrough);
                return FlushAction::WriteMemory;
            }
            // Memory already holds a speculative later value from a
            // younger epoch; the safe flush becomes the new safe
            // state inside the undo record (Table I, row 1 / col 2).
            uit->second.value = pkt.value;
            return FlushAction::SuppressWrite;
        }
        return FlushAction::WriteMemory;
    }

    // Early flush.
    if (uit != undos.end()) {
        // Write collision: park the value in a delay record
        // (Table I, row 2 / column 2).
        if (occupancy() >= capacity) {
            nackedLines.insert(pkt.line);
            nackBloom.insert(pkt.line);
            noteNackMutation();
            inc(stNacks);
            return FlushAction::Nack;
        }
        delays.push_back(
            DelayRecord{pkt.line, pkt.value, pkt.thread, pkt.epoch});
        inc(stTotalDelay);
        statMax();
        return FlushAction::CreateDelay;
    }

    // No undo record: snapshot the safe value and let the controller
    // speculatively update memory (Table I, row 2 / column 1).
    if (occupancy() >= capacity) {
        nackedLines.insert(pkt.line);
        nackBloom.insert(pkt.line);
        noteNackMutation();
        inc(stNacks);
        return FlushAction::Nack;
    }
    undos.emplace(pkt.line,
                  UndoRecord{current_value, pkt.thread, pkt.epoch});
    inc(stTotalUndo);
    statMax();
    return FlushAction::CreateUndoAndWrite;
}

void
RecoveryTable::onCommit(std::uint16_t thread, std::uint64_t epoch,
                        const WriteOutFn &write_out)
{
    // Delete the committing epoch's undo records first: its
    // speculative values in memory are now the safe values. Doing
    // this before releasing delay records makes a same-epoch delayed
    // value reach memory instead of being absorbed into a dying
    // undo record.
    for (auto it = undos.begin(); it != undos.end();) {
        if (it->second.thread == thread && it->second.epoch == epoch)
            it = undos.erase(it);
        else
            ++it;
    }

    // Release the epoch's delay records as if the flushes had just
    // arrived, now safe (Section V-C).
    for (auto it = delays.begin(); it != delays.end();) {
        if (it->thread == thread && it->epoch == epoch) {
            auto uit = undos.find(it->line);
            if (uit != undos.end()) {
                uit->second.value = it->value;
                inc(stDelayAbsorbed);
            } else {
                write_out(it->line, it->value);
            }
            it = delays.erase(it);
        } else {
            ++it;
        }
    }
}

void
RecoveryTable::onCrash(const WriteOutFn &write_out)
{
    // Rewind every speculative update; delay records belong to
    // uncommitted epochs and are discarded (Section V-E).
    for (const auto &[line, rec] : undos)
        write_out(line, rec.value);
    undos.clear();
    delays.clear();
}

void
RecoveryTable::exportRecords(std::vector<UndoRecordView> &undos_out,
                             std::vector<DelayRecordView> &delays_out) const
{
    undos_out.reserve(undos_out.size() + undos.size());
    for (const auto &[line, rec] : undos)
        undos_out.push_back({line, rec.value, rec.thread, rec.epoch});
    // The map iterates in hash order; sort by line so exports are
    // deterministic across runs and hosts.
    std::sort(undos_out.begin(), undos_out.end(),
              [](const UndoRecordView &a, const UndoRecordView &b) {
                  return a.line < b.line;
              });
    delays_out.reserve(delays_out.size() + delays.size());
    for (const DelayRecord &d : delays)
        delays_out.push_back({d.line, d.value, d.thread, d.epoch});
}

void
RecoveryTable::specSave()
{
    snap_ = std::make_unique<SpecSnapshot>(SpecSnapshot{
        undos, delays, nackBloom, nackedLines, {}, *stMaxOcc.rt});
    snap_->statVals.reserve(sumPairs_.size());
    for (Pair *p : sumPairs_)
        snap_->statVals.push_back(*p->rt);
}

void
RecoveryTable::specRestore()
{
    panic_if(!snap_, "RT specRestore without a checkpoint");
    undos = std::move(snap_->undos);
    delays = std::move(snap_->delays);
    nackBloom = std::move(snap_->nackBloom);
    nackedLines = std::move(snap_->nackedLines);
    for (std::size_t i = 0; i < sumPairs_.size(); ++i)
        *sumPairs_[i]->rt = snap_->statVals[i];
    *stMaxOcc.rt = snap_->maxOcc;
    noteNackMutation();
    snap_.reset();
}

void
RecoveryTable::zeroAggStats()
{
    for (Pair *p : sumPairs_)
        *p->agg = 0;
    *stMaxOcc.agg = 0;
}

void
RecoveryTable::addAggStats()
{
    for (Pair *p : sumPairs_)
        *p->agg += *p->rt;
    if (*stMaxOcc.rt > *stMaxOcc.agg)
        *stMaxOcc.agg = *stMaxOcc.rt;
}

} // namespace asap
