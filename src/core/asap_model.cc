#include "core/asap_model.hh"

#include <memory>
#include <utility>

#include "sim/log.hh"

namespace asap
{

AsapModel::AsapModel(std::uint16_t thread, ModelContext &ctx)
    : PersistModel(thread, ctx),
      et(thread, ctx.cfg.etEntries, ctx.stats),
      pb(thread, ctx.cfg, ctx.eq, ctx.stats, ctx.amap, ctx.mcs),
      stConservativeFallbacks(
          &ctx.stats.counter("asap.conservativeFallbacks")),
      stDfenceStalled(&ctx.stats.counter("core.dfenceStalled")),
      stCommitMessages(&ctx.stats.counter("asap.commitMessages")),
      stCdrMessages(&ctx.stats.counter("asap.cdrMessages"))
{
    et.setCommittableHook([this](std::uint64_t ts) { onCommittable(ts); });
    pb.configure(
        [this](std::uint64_t epoch) { return classify(epoch); },
        [this](std::uint64_t epoch, std::uint64_t line, bool early) {
            if (early)
                et.markEarlyMc(epoch, this->ctx.amap.mcFor(line));
            et.ackWrite(epoch);
        },
        [this](std::uint64_t epoch, std::uint64_t line) {
            (void)line;
            // NACK: fall back to conservative flushing until this
            // epoch commits (Section V-D).
            if (epoch > conservativeUntil)
                conservativeUntil = epoch;
            ++*stConservativeFallbacks;
        });
}

FlushMode
AsapModel::classify(std::uint64_t epoch) const
{
    if (et.isSafe(epoch))
        return FlushMode::Safe;
    if (conservativeUntil != 0)
        return FlushMode::Hold;
    return FlushMode::Early;
}

void
AsapModel::pmStore(std::uint64_t line, std::uint64_t value, Callback done)
{
    const std::uint64_t ts = et.currentEpoch();
    et.addWrite(ts);
    pb.enqueue(line, value, ts, std::move(done));
}

void
AsapModel::ofence(Callback done)
{
    et.closeEpoch(false, [this, done = std::move(done)]() {
        pb.kick();
        done();
    });
}

void
AsapModel::dfence(Callback done)
{
    const Tick start = ctx.eq.now();
    et.closeEpoch(false, [this, start, done = std::move(done)]() {
        pb.kick();
        et.waitAllCommitted([this, start, done]() {
            *stDfenceStalled += ctx.eq.now() - start;
            done();
        });
    });
}

void
AsapModel::release(Callback done)
{
    // 1-sided barrier: close the epoch so the matching acquire can
    // depend on everything before the release.
    ofence(std::move(done));
}

void
AsapModel::acquire(std::uint16_t src_thread, std::uint64_t src_epoch,
                   Callback done)
{
    if (src_epoch == 0 || src_thread == thread) {
        // Unsynchronised acquire (first lock acquisition or self).
        done();
        return;
    }
    et.closeEpoch(false, [this, src_thread, src_epoch,
                          done = std::move(done)]() {
        et.openDependentEpoch(src_thread, src_epoch);
        if (ctx.peers[src_thread]->registerDependent(thread, src_epoch))
            et.resolveDependency(src_thread, src_epoch);
        pb.kick();
        done();
    });
}

std::uint64_t
AsapModel::conflictSource(std::uint16_t requester)
{
    (void)requester;
    const std::uint64_t cur = et.currentEpoch();
    // Reply with the current epoch and start a new one (epoch
    // deadlock avoidance, Section IV-E); never block the coherence
    // response on table space.
    et.closeEpoch(true, []() {});
    pb.kick();
    return cur;
}

void
AsapModel::conflictDependent(std::uint16_t src_thread,
                             std::uint64_t src_epoch)
{
    et.closeEpoch(true, [this, src_thread, src_epoch]() {
        et.openDependentEpoch(src_thread, src_epoch);
        if (ctx.peers[src_thread]->registerDependent(thread, src_epoch))
            et.resolveDependency(src_thread, src_epoch);
        pb.kick();
    });
}

bool
AsapModel::registerDependent(std::uint16_t dep_thread, std::uint64_t epoch)
{
    return et.registerDependent(dep_thread, epoch);
}

void
AsapModel::dependencyResolved(std::uint16_t src_thread,
                              std::uint64_t src_epoch)
{
    et.resolveDependency(src_thread, src_epoch);
    pb.kick();
}

std::uint64_t
AsapModel::currentEpoch() const
{
    return et.currentEpoch();
}

void
AsapModel::onCommittable(std::uint64_t ts)
{
    const EpochTable::Entry *e = et.find(ts);
    panic_if(!e, "committable hook for unknown epoch ", ts);
    const std::uint32_t mask = e->earlyMcMask;
    if (mask == 0) {
        finishCommit(ts);
        return;
    }
    // Send commit messages to every controller that received early
    // flushes from this epoch; commit completes on the last ACK.
    auto remaining = std::make_shared<unsigned>(0);
    for (unsigned mc = 0; mc < ctx.mcs.size(); ++mc) {
        if (mask & (1u << mc))
            ++*remaining;
    }
    for (unsigned mc = 0; mc < ctx.mcs.size(); ++mc) {
        if (!(mask & (1u << mc)))
            continue;
        ++*stCommitMessages;
        ctx.eq.scheduleAfterIn(EventQueue::mcDomain(mc),
                               ctx.cfg.mcMessageLatency,
                               [this, mc, ts, remaining]() {
            if (crashed)
                return;
            ctx.mcs[mc]->receiveCommit(thread, ts,
                                       [this, ts, remaining]() {
                if (crashed)
                    return;
                if (--*remaining == 0)
                    finishCommit(ts);
            });
        });
    }
}

void
AsapModel::finishCommit(std::uint64_t ts)
{
    std::vector<std::uint16_t> dependents = et.markCommitted(ts);
    if (conservativeUntil != 0 && ts >= conservativeUntil) {
        conservativeUntil = 0; // eager flushing resumes
    }
    for (std::uint16_t dep : dependents) {
        ++*stCdrMessages;
        ctx.eq.scheduleAfter(ctx.cfg.interCoreLatency,
                             [this, dep, ts]() {
            if (crashed)
                return;
            ctx.peers[dep]->dependencyResolved(thread, ts);
        });
    }
    pb.kick();
}

void
AsapModel::crash()
{
    crashed = true;
    pb.crash();
}

} // namespace asap
