/**
 * @file
 * Recovery Table (RT) — the heart of ASAP's contribution.
 *
 * A small CAM in each memory controller, inside the ADR persistence
 * domain, holding two kinds of records (Section V-A):
 *
 *  - *undo* records: the safe (pre-speculation) value of a line that
 *    has been speculatively updated by an early flush. On a crash the
 *    undo value rewinds memory.
 *  - *delay* records: the value of an early flush that arrived while
 *    an undo record already existed for its line (write collision,
 *    Section IV-F). The value is applied when its epoch commits.
 *
 * Incoming flushes are classified by the Table I decision matrix. The
 * table NACKs early flushes when full (Section V-D) and remembers
 * NACKed line addresses in a counting Bloom filter so LLC evictions of
 * those lines can be delayed (Section V-F).
 */

#ifndef ASAP_CORE_RECOVERY_TABLE_HH
#define ASAP_CORE_RECOVERY_TABLE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "mem/recovery_policy.hh"
#include "persist/bloom_filter.hh"
#include "sim/stats.hh"

namespace asap
{

/** ASAP's per-controller undo/delay record store. */
class RecoveryTable : public RecoveryPolicy
{
  public:
    /**
     * @param mc_id owning controller (stat labels)
     * @param capacity total record slots (undo + delay; Table II: 32)
     * @param stats shared stats registry
     */
    RecoveryTable(unsigned mc_id, unsigned capacity, StatSet &stats);

    FlushAction onFlush(const FlushPacket &pkt,
                        std::uint64_t current_value) override;

    void onCommit(std::uint16_t thread, std::uint64_t epoch,
                  const WriteOutFn &write_out) override;

    void onCrash(const WriteOutFn &write_out) override;

    std::size_t occupancy() const override;

    /** Is an eviction of @p line to be delayed (NACK pending)? */
    bool nackPending(std::uint64_t line) const;

    /** Test support: current undo value for a line (0 if none). */
    bool hasUndo(std::uint64_t line) const;
    std::uint64_t undoValue(std::uint64_t line) const;
    std::size_t delayCount() const { return delays.size(); }

  private:
    struct UndoRecord
    {
        std::uint64_t value;    //!< safe value to restore on crash
        std::uint16_t thread;   //!< creator thread
        std::uint64_t epoch;    //!< creator epoch (deleted on commit)
    };

    struct DelayRecord
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint16_t thread;
        std::uint64_t epoch;
    };

    void statMax();

    unsigned mcId;
    unsigned capacity;
    StatSet &stats;
    std::string statPrefix;

    // Hot counters resolved once at construction (see StatSet::counter).
    std::uint64_t *stMaxOcc;    //!< per-controller maxOccupancy
    std::uint64_t *stMaxOccAgg; //!< aggregate rt.maxOccupancy
    std::uint64_t *stDelayCoalesced;
    std::uint64_t *stSameEpochWriteThrough;
    std::uint64_t *stNacks;
    std::uint64_t *stTotalDelay;
    std::uint64_t *stTotalUndo;
    std::uint64_t *stDelayAbsorbed;

    std::unordered_map<std::uint64_t, UndoRecord> undos;
    std::list<DelayRecord> delays;

    CountingBloom nackBloom;
    /** Exact shadow of the Bloom contents to drive removals. */
    std::unordered_multiset<std::uint64_t> nackedLines;
};

} // namespace asap

#endif // ASAP_CORE_RECOVERY_TABLE_HH
