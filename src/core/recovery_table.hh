/**
 * @file
 * Recovery Table (RT) — the heart of ASAP's contribution.
 *
 * A small CAM in each memory controller, inside the ADR persistence
 * domain, holding two kinds of records (Section V-A):
 *
 *  - *undo* records: the safe (pre-speculation) value of a line that
 *    has been speculatively updated by an early flush. On a crash the
 *    undo value rewinds memory.
 *  - *delay* records: the value of an early flush that arrived while
 *    an undo record already existed for its line (write collision,
 *    Section IV-F). The value is applied when its epoch commits.
 *
 * Incoming flushes are classified by the Table I decision matrix. The
 * table NACKs early flushes when full (Section V-D) and remembers
 * NACKed line addresses in a counting Bloom filter so LLC evictions of
 * those lines can be delayed (Section V-F).
 */

#ifndef ASAP_CORE_RECOVERY_TABLE_HH
#define ASAP_CORE_RECOVERY_TABLE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/recovery_policy.hh"
#include "persist/bloom_filter.hh"
#include "sim/stats.hh"

namespace asap
{

class EventQueue;

/** ASAP's per-controller undo/delay record store. */
class RecoveryTable : public RecoveryPolicy
{
  public:
    /**
     * @param mc_id owning controller (stat labels)
     * @param capacity total record slots (undo + delay; Table II: 32)
     * @param stats shared stats registry
     */
    RecoveryTable(unsigned mc_id, unsigned capacity, StatSet &stats);

    /**
     * Wire the table to the event kernel. With @p agg_inline false
     * (parallel runs) the shared "rt.*" aggregates are not bumped on
     * the hot path — the harness recomputes them at seal time — and
     * NACK-set mutations are reported to the kernel as cross-domain
     * writes (the core-side eviction filter reads them).
     */
    void attachKernel(EventQueue *eq, bool agg_inline);

    FlushAction onFlush(const FlushPacket &pkt,
                        std::uint64_t current_value) override;

    void onCommit(std::uint16_t thread, std::uint64_t epoch,
                  const WriteOutFn &write_out) override;

    void onCrash(const WriteOutFn &write_out) override;

    std::size_t occupancy() const override;

    void exportRecords(std::vector<UndoRecordView> &undos_out,
                       std::vector<DelayRecordView> &delays_out)
        const override;

    void specSave() override;
    void specRestore() override;

    /** Is an eviction of @p line to be delayed (NACK pending)? */
    bool nackPending(std::uint64_t line) const;

    /**
     * Lines currently NACK-held, readable from any thread. The core
     * domain's eviction filter uses this as its cross-thread fast
     * path: 0 (the overwhelmingly common value) means the Bloom probe
     * must miss, so the exact filter state never needs to be read.
     */
    std::uint32_t
    nackCountRelaxed() const
    {
        return nackCount_.load(std::memory_order_relaxed);
    }

    /** Deterministic "rt.*" aggregate recomputation (see the MC's
     *  zeroAggStats/addAggStats; maxOccupancy max-merges). */
    void zeroAggStats();
    void addAggStats();

    /** Test support: current undo value for a line (0 if none). */
    bool hasUndo(std::uint64_t line) const;
    std::uint64_t undoValue(std::uint64_t line) const;
    std::size_t delayCount() const { return delays.size(); }

  private:
    struct UndoRecord
    {
        std::uint64_t value;    //!< safe value to restore on crash
        std::uint16_t thread;   //!< creator thread
        std::uint64_t epoch;    //!< creator epoch (deleted on commit)
    };

    struct DelayRecord
    {
        std::uint64_t line;
        std::uint64_t value;
        std::uint16_t thread;
        std::uint64_t epoch;
    };

    /** A (per-RT "rtN.*", aggregate "rt.*") counter pair. */
    struct Pair
    {
        std::uint64_t *rt;
        std::uint64_t *agg;
    };

    void
    inc(Pair &p, std::uint64_t delta = 1)
    {
        *p.rt += delta;
        if (aggInline_)
            *p.agg += delta;
    }

    void statMax();

    /** The NACK shadow set changed: refresh the published count and
     *  tell the kernel (cross-domain write for round validation). */
    void noteNackMutation();

    unsigned mcId;
    unsigned capacity;
    StatSet &stats;
    std::string statPrefix;
    EventQueue *eq_ = nullptr;
    bool aggInline_ = true;

    // Hot counters resolved once at construction (see StatSet::counter).
    Pair stMaxOcc; //!< max-merged, not summed
    Pair stDelayCoalesced;
    Pair stSameEpochWriteThrough;
    Pair stNacks;
    Pair stTotalDelay;
    Pair stTotalUndo;
    Pair stDelayAbsorbed;
    /** Sum-merged pairs, for seal/checkpoint iteration. */
    std::vector<Pair *> sumPairs_;

    std::unordered_map<std::uint64_t, UndoRecord> undos;
    std::list<DelayRecord> delays;

    CountingBloom nackBloom;
    /** Exact shadow of the Bloom contents to drive removals. */
    std::unordered_multiset<std::uint64_t> nackedLines;
    /** nackedLines.size(), published for cross-thread fast paths. */
    std::atomic<std::uint32_t> nackCount_{0};

    /** Speculation checkpoint (parallel kernel). */
    struct SpecSnapshot
    {
        std::unordered_map<std::uint64_t, UndoRecord> undos;
        std::list<DelayRecord> delays;
        CountingBloom nackBloom;
        std::unordered_multiset<std::uint64_t> nackedLines;
        std::vector<std::uint64_t> statVals;
        std::uint64_t maxOcc = 0;
    };
    std::unique_ptr<SpecSnapshot> snap_;
};

} // namespace asap

#endif // ASAP_CORE_RECOVERY_TABLE_HH
