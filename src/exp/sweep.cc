#include "exp/sweep.hh"

#include <utility>

namespace asap
{

std::string
toString(JobKind kind)
{
    switch (kind) {
      case JobKind::Crash:
        return "crash";
      case JobKind::Permute:
        return "permute";
      default:
        return "run";
    }
}

std::size_t
SweepSpec::jobCount() const
{
    const std::size_t media =
        mediaProfiles.empty() ? 1 : mediaProfiles.size();
    return workloads.size() * media * models.size() * coreCounts.size();
}

std::vector<ExperimentJob>
SweepSpec::expand() const
{
    // An empty media axis means "whatever the base config says" —
    // one pass with base.mediaProfile untouched.
    std::vector<std::string> media = mediaProfiles;
    if (media.empty())
        media.push_back(base.mediaProfile);
    std::vector<ExperimentJob> jobs;
    jobs.reserve(jobCount());
    for (const std::string &w : workloads) {
        for (const std::string &profile : media) {
            for (const ModelPair &m : models) {
                for (unsigned cores : coreCounts) {
                    ExperimentJob job;
                    job.workload = w;
                    job.cfg = base;
                    job.cfg.mediaProfile = profile;
                    job.cfg.model = m.first;
                    job.cfg.persistency = m.second;
                    job.cfg.numCores = cores;
                    job.cfg.seed = params.seed;
                    job.params = params;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

std::size_t
JobSet::add(std::string workload, const SimConfig &cfg,
            const WorkloadParams &p)
{
    ExperimentJob job;
    job.workload = std::move(workload);
    job.cfg = cfg;
    job.cfg.seed = p.seed;
    job.params = p;
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

std::size_t
JobSet::add(std::string workload, ModelKind model, PersistencyModel pm,
            unsigned cores, const WorkloadParams &p)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.persistency = pm;
    cfg.numCores = cores;
    return add(std::move(workload), cfg, p);
}

std::size_t
JobSet::addCrash(std::string workload, const SimConfig &cfg,
                 const WorkloadParams &p, Tick crash_tick)
{
    const std::size_t i = add(std::move(workload), cfg, p);
    jobs_[i].kind = JobKind::Crash;
    jobs_[i].crashTick = crash_tick;
    return i;
}

std::size_t
JobSet::addPermute(std::string workload, const SimConfig &cfg,
                   const WorkloadParams &p, Tick crash_tick,
                   std::uint64_t bound, std::uint64_t seed,
                   std::string fault, std::string state,
                   std::string engine, unsigned threads)
{
    const std::size_t i = add(std::move(workload), cfg, p);
    jobs_[i].kind = JobKind::Permute;
    jobs_[i].crashTick = crash_tick;
    jobs_[i].permuteBound = bound;
    jobs_[i].permuteSeed = seed;
    jobs_[i].permuteFault = std::move(fault);
    jobs_[i].permuteState = std::move(state);
    jobs_[i].permuteEngine = std::move(engine);
    jobs_[i].permuteThreads = threads;
    return i;
}

} // namespace asap
