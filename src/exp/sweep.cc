#include "exp/sweep.hh"

#include <utility>

namespace asap
{

std::string
toString(JobKind kind)
{
    return kind == JobKind::Crash ? "crash" : "run";
}

std::size_t
SweepSpec::jobCount() const
{
    return workloads.size() * models.size() * coreCounts.size();
}

std::vector<ExperimentJob>
SweepSpec::expand() const
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(jobCount());
    for (const std::string &w : workloads) {
        for (const ModelPair &m : models) {
            for (unsigned cores : coreCounts) {
                ExperimentJob job;
                job.workload = w;
                job.cfg = base;
                job.cfg.model = m.first;
                job.cfg.persistency = m.second;
                job.cfg.numCores = cores;
                job.cfg.seed = params.seed;
                job.params = params;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

std::size_t
JobSet::add(std::string workload, const SimConfig &cfg,
            const WorkloadParams &p)
{
    ExperimentJob job;
    job.workload = std::move(workload);
    job.cfg = cfg;
    job.cfg.seed = p.seed;
    job.params = p;
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

std::size_t
JobSet::add(std::string workload, ModelKind model, PersistencyModel pm,
            unsigned cores, const WorkloadParams &p)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.persistency = pm;
    cfg.numCores = cores;
    return add(std::move(workload), cfg, p);
}

std::size_t
JobSet::addCrash(std::string workload, const SimConfig &cfg,
                 const WorkloadParams &p, Tick crash_tick)
{
    const std::size_t i = add(std::move(workload), cfg, p);
    jobs_[i].kind = JobKind::Crash;
    jobs_[i].crashTick = crash_tick;
    return i;
}

} // namespace asap
