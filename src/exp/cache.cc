#include "exp/cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "sim/log.hh"

namespace asap
{

namespace
{

/** Bump when a change alters simulation results (invalidates disk
 *  entries written by older code).
 *
 *  v2: media-model subsystem (src/media/) — results gained media
 *  byte/queue-delay/bank-occupancy and XPBuffer hit/miss counters,
 *  and the key gained the media profile + override knobs.
 *
 *  v3: results gained eventsExecuted (kernel events per run, a
 *  deterministic stat); entries written by v2 would deserialize with
 *  it silently zero.
 *
 *  v4: the event kernel's same-tick tie-break changed from global
 *  scheduling order to (creator-domain send counter, domain id) so
 *  the domain-parallel engine can reproduce it exactly; same-tick
 *  cross-domain orderings (and therefore some stats) shift. Note
 *  --par-domains itself is deliberately NOT part of the job key: the
 *  parallel engine is bit-identical to the sequential one, so both
 *  may share cache entries.
 *
 *  v5: the serving subsystem (src/serve/) — results gained the
 *  persist-latency tail fields (persistSamples/P50/P99/P999/Max) and
 *  serveRequests; the key conditionally gained mediaPerMc. Entries
 *  written by v4 would deserialize with them silently zero.
 *
 *  v6: the crash-state permuter (src/permute/) — JobKind::Permute
 *  jobs key the enumeration knobs (bound/seed/fault/state) and
 *  results gained the coverage fields (vStatesChecked &c.). Run and
 *  Crash keys are unchanged, but the bump keeps a v5 reader from
 *  choking on permute entries in a shared cache dir. */
constexpr const char *kCodeSalt = "asap-sim-v6";

/** Age beyond which an abandoned temp file is certainly garbage (no
 *  writer holds an insert open for minutes). */
constexpr double kStaleTmpSeconds = 15 * 60.0;

} // namespace

const char *
cacheCodeSalt()
{
    return kCodeSalt;
}

std::string
describeJob(const ExperimentJob &job)
{
    const SimConfig &c = job.cfg;
    const WorkloadParams &p = job.params;
    std::ostringstream os;
    os << "salt=" << kCodeSalt << '\n'
       << "workload=" << job.workload << '\n'
       // Every result-affecting SimConfig knob, in declaration
       // order. A knob missing here would alias configs that differ
       // only in that knob — keep in sync with sim/config.hh. The
       // parallel-kernel knobs (parDomains, parSpecWindow) are
       // excluded on purpose: both engines produce bit-identical
       // results, so keying them would only split the cache.
       << "numCores=" << c.numCores << '\n'
       << "numMCs=" << c.numMCs << '\n'
       << "model=" << toString(c.model) << '\n'
       << "persistency=" << toString(c.persistency) << '\n'
       << "l1Latency=" << c.l1Latency << '\n'
       << "l2Latency=" << c.l2Latency << '\n'
       << "llcLatency=" << c.llcLatency << '\n'
       << "cacheToCacheLatency=" << c.cacheToCacheLatency << '\n'
       << "l1Sets=" << c.l1Sets << " l1Ways=" << c.l1Ways << '\n'
       << "l2Sets=" << c.l2Sets << " l2Ways=" << c.l2Ways << '\n'
       << "llcSets=" << c.llcSets << " llcWays=" << c.llcWays << '\n'
       << "media=" << c.mediaProfile << '\n'
       << "mediaReadLatency=" << c.mediaReadLatency << '\n'
       << "mediaWriteLatency=" << c.mediaWriteLatency << '\n'
       << "mediaBanks=" << c.mediaBanks << '\n'
       << "mediaWriteGBps=" << c.mediaWriteGBps << '\n'
       << "dramLatency=" << c.dramLatency << '\n'
       << "pmReadLatency=" << c.pmReadLatency << '\n'
       << "pmWriteLatency=" << c.pmWriteLatency << '\n'
       << "wpqEntries=" << c.wpqEntries << '\n'
       << "wpqCombineWindow=" << c.wpqCombineWindow << '\n'
       << "nvmBanks=" << c.nvmBanks << '\n'
       << "interleaveBytes=" << c.interleaveBytes << '\n'
       << "xpBufferLines=" << c.xpBufferLines << '\n'
       << "xpBufferHitLatency=" << c.xpBufferHitLatency << '\n'
       << "pbEntries=" << c.pbEntries << '\n'
       << "etEntries=" << c.etEntries << '\n'
       << "rtEntries=" << c.rtEntries << '\n'
       << "pbFlushLatency=" << c.pbFlushLatency << '\n'
       << "pbMaxInflight=" << c.pbMaxInflight << '\n'
       << "clwbMaxInflight=" << c.clwbMaxInflight << '\n'
       << "mcMessageLatency=" << c.mcMessageLatency << '\n'
       << "interCoreLatency=" << c.interCoreLatency << '\n'
       << "hopsPollPeriod=" << c.hopsPollPeriod << '\n'
       << "hopsPollCost=" << c.hopsPollCost << '\n'
       << "eadrDfenceCost=" << c.eadrDfenceCost << '\n'
       << "coreIssueWidth=" << c.coreIssueWidth << '\n'
       << "seed=" << c.seed << '\n'
       << "maxRunTicks=" << c.maxRunTicks << '\n'
       << "opsPerThread=" << p.opsPerThread << '\n'
       << "keySpace=" << p.keySpace << '\n'
       << "valueBytes=" << p.valueBytes << '\n'
       << "updatePct=" << p.updatePct << '\n'
       << "paramSeed=" << p.seed << '\n';
    // Appended only when set so every homogeneous-media key (and the
    // disk caches written before heterogeneous media existed) stays
    // unchanged.
    if (!c.mediaPerMc.empty())
        os << "mediaPerMc=" << c.mediaPerMc << '\n';
    // Appended only for crash jobs so Run keys (and therefore every
    // disk cache written before crash jobs existed) stay unchanged.
    if (job.kind == JobKind::Crash) {
        os << "kind=" << toString(job.kind) << '\n'
           << "crashTick=" << job.crashTick << '\n';
    }
    // Permute jobs additionally key the enumeration knobs: a tighter
    // bound, another sampling seed, a fault hook or a single-state
    // repro all produce different verdicts and must not alias.
    if (job.kind == JobKind::Permute) {
        os << "kind=" << toString(job.kind) << '\n'
           << "crashTick=" << job.crashTick << '\n'
           << "permuteBound=" << job.permuteBound << '\n'
           << "permuteSeed=" << job.permuteSeed << '\n'
           << "permuteFault="
           << (job.permuteFault.empty() ? "-" : job.permuteFault) << '\n'
           << "permuteState="
           << (job.permuteState.empty() ? "-" : job.permuteState) << '\n';
    }
    return os.str();
}

std::string
jobKey(const ExperimentJob &job)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "exp-%016llx",
                  static_cast<unsigned long long>(
                      stableHash64(describeJob(job))));
    return buf;
}

namespace
{

void
appendResultFields(std::ostringstream &os, const RunResult &r)
{
    os << "workload " << r.workload << '\n'
       << "model " << toString(r.model) << '\n'
       << "persistency " << toString(r.persistency) << '\n'
       << "cores " << r.cores << '\n'
       << "runTicks " << r.runTicks << '\n'
       << "pmWrites " << r.pmWrites << '\n'
       << "pmReads " << r.pmReads << '\n'
       << "cyclesBlocked " << r.cyclesBlocked << '\n'
       << "cyclesStalled " << r.cyclesStalled << '\n'
       << "dfenceStalled " << r.dfenceStalled << '\n'
       << "sfenceStalled " << r.sfenceStalled << '\n'
       << "entriesInserted " << r.entriesInserted << '\n'
       << "epochs " << r.epochs << '\n'
       << "crossDeps " << r.crossDeps << '\n'
       << "totSpecWrites " << r.totSpecWrites << '\n'
       << "totalUndo " << r.totalUndo << '\n'
       << "totalDelay " << r.totalDelay << '\n'
       << "nacks " << r.nacks << '\n'
       << "rtMaxOccupancy " << r.rtMaxOccupancy << '\n'
       << "pbOccMean " << r.pbOccMean << '\n'
       << "pbOccP99 " << r.pbOccP99 << '\n'
       << "wpqCoalesced " << r.wpqCoalesced << '\n'
       << "suppressedWrites " << r.suppressedWrites << '\n'
       // Whitespace-delimited format: an empty profile would leave
       // the value slot blank and desync the reader, so stand in "-".
       << "media " << (r.media.empty() ? "-" : r.media) << '\n'
       << "xpHits " << r.xpHits << '\n'
       << "xpMisses " << r.xpMisses << '\n'
       << "mediaBytesWritten " << r.mediaBytesWritten << '\n'
       << "mediaQueueDelayTicks " << r.mediaQueueDelayTicks << '\n'
       << "mediaBankBusyTicks " << r.mediaBankBusyTicks << '\n'
       // hostNs is deliberately absent: host wall time is
       // non-deterministic and must never round-trip through a cache.
       << "eventsExecuted " << r.eventsExecuted << '\n'
       << "persistSamples " << r.persistSamples << '\n'
       << "persistP50 " << r.persistP50 << '\n'
       << "persistP99 " << r.persistP99 << '\n'
       << "persistP999 " << r.persistP999 << '\n'
       << "persistMax " << r.persistMax << '\n'
       << "serveRequests " << r.serveRequests << '\n';
}

} // namespace

std::string
serializeResult(const RunResult &r)
{
    std::ostringstream os;
    appendResultFields(os, r);
    os << "end 1\n";
    return os.str();
}

std::string
serializeEntry(const CachedResult &e)
{
    // Every disk entry leads with the writer's code salt. The salt is
    // also hashed into the key, so a well-behaved writer never creates
    // a mismatching file — the explicit field catches entries copied
    // between cache directories by hand and describeJob() edits that
    // forgot the salt bump, instead of silently trusting them.
    std::ostringstream os;
    os << "codeSalt " << kCodeSalt << '\n';
    if (e.kind == JobKind::Run) {
        appendResultFields(os, e.run);
        os << "end 1\n";
        return os.str();
    }
    os << "kind " << toString(e.kind) << '\n';
    appendResultFields(os, e.run);
    const CrashVerdict &v = e.verdict;
    os << "vConsistent " << (v.consistent ? 1 : 0) << '\n'
       << "vCrashTick " << v.crashTick << '\n'
       << "vActualTick " << v.actualTick << '\n'
       << "vStoresLogged " << v.storesLogged << '\n'
       << "vLinesSurvived " << v.linesSurvived << '\n'
       << "vUndoReplayed " << v.undoReplayed << '\n'
       << "vAdrDrainWrites " << v.adrDrainWrites << '\n';
    os << "vCommitted " << v.committedUpTo.size();
    for (std::uint64_t c : v.committedUpTo)
        os << ' ' << c;
    os << '\n';
    // Permuter coverage; all-zero for plain Crash entries, so they
    // are only written for Permute jobs (readers default them to 0).
    if (e.kind == JobKind::Permute) {
        os << "vStatesChecked " << v.statesChecked << '\n'
           << "vStatesReachable " << v.statesReachable << '\n'
           << "vDistinctStates " << v.distinctStates << '\n'
           << "vPermuteAtoms " << v.permuteAtoms << '\n'
           << "vTruncated " << (v.truncated ? 1 : 0) << '\n'
           << "vInconsistentStates " << v.inconsistentStates << '\n';
        if (!v.firstBadState.empty())
            os << "vFirstBadState " << v.firstBadState << '\n';
    }
    // The violation message may contain spaces: rest-of-line field,
    // written last before the end marker.
    if (!v.message.empty())
        os << "vMessage " << v.message << '\n';
    os << "end 1\n";
    return os.str();
}

bool
deserializeEntry(const std::string &text, CachedResult &out,
                 std::string *why)
{
    const auto reject = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    std::istringstream is(text);
    std::string field;
    CachedResult e;
    RunResult &r = e.run;
    CrashVerdict &v = e.verdict;
    bool complete = false;
    while (is >> field) {
        if (field == "codeSalt") {
            // Absent in pre-hardening entries: those were written
            // under the same key hash, so absence implies a match.
            std::string salt;
            is >> salt;
            if (salt != kCodeSalt) {
                return reject("code-salt mismatch (entry '" + salt +
                              "', running '" + kCodeSalt + "')");
            }
        }
        else if (field == "kind") {
            std::string k;
            is >> k;
            if (k == "run") e.kind = JobKind::Run;
            else if (k == "crash") e.kind = JobKind::Crash;
            else if (k == "permute") e.kind = JobKind::Permute;
            else return reject("unknown job kind '" + k + "'");
        }
        else if (field == "workload") is >> r.workload;
        else if (field == "model") {
            std::string m;
            is >> m;
            r.model = parseModelKind(m);
        } else if (field == "persistency") {
            std::string m;
            is >> m;
            r.persistency = parsePersistencyModel(m);
        }
        else if (field == "cores") is >> r.cores;
        else if (field == "runTicks") is >> r.runTicks;
        else if (field == "pmWrites") is >> r.pmWrites;
        else if (field == "pmReads") is >> r.pmReads;
        else if (field == "cyclesBlocked") is >> r.cyclesBlocked;
        else if (field == "cyclesStalled") is >> r.cyclesStalled;
        else if (field == "dfenceStalled") is >> r.dfenceStalled;
        else if (field == "sfenceStalled") is >> r.sfenceStalled;
        else if (field == "entriesInserted") is >> r.entriesInserted;
        else if (field == "epochs") is >> r.epochs;
        else if (field == "crossDeps") is >> r.crossDeps;
        else if (field == "totSpecWrites") is >> r.totSpecWrites;
        else if (field == "totalUndo") is >> r.totalUndo;
        else if (field == "totalDelay") is >> r.totalDelay;
        else if (field == "nacks") is >> r.nacks;
        else if (field == "rtMaxOccupancy") is >> r.rtMaxOccupancy;
        else if (field == "pbOccMean") is >> r.pbOccMean;
        else if (field == "pbOccP99") is >> r.pbOccP99;
        else if (field == "wpqCoalesced") is >> r.wpqCoalesced;
        else if (field == "suppressedWrites") is >> r.suppressedWrites;
        else if (field == "media") {
            is >> r.media;
            if (r.media == "-") r.media.clear();
        }
        else if (field == "xpHits") is >> r.xpHits;
        else if (field == "xpMisses") is >> r.xpMisses;
        else if (field == "mediaBytesWritten") is >> r.mediaBytesWritten;
        else if (field == "mediaQueueDelayTicks")
            is >> r.mediaQueueDelayTicks;
        else if (field == "mediaBankBusyTicks")
            is >> r.mediaBankBusyTicks;
        else if (field == "eventsExecuted") is >> r.eventsExecuted;
        else if (field == "persistSamples") is >> r.persistSamples;
        else if (field == "persistP50") is >> r.persistP50;
        else if (field == "persistP99") is >> r.persistP99;
        else if (field == "persistP999") is >> r.persistP999;
        else if (field == "persistMax") is >> r.persistMax;
        else if (field == "serveRequests") is >> r.serveRequests;
        else if (field == "vConsistent") {
            int b = 0;
            is >> b;
            v.consistent = b != 0;
        }
        else if (field == "vCrashTick") is >> v.crashTick;
        else if (field == "vActualTick") is >> v.actualTick;
        else if (field == "vStoresLogged") is >> v.storesLogged;
        else if (field == "vLinesSurvived") is >> v.linesSurvived;
        else if (field == "vUndoReplayed") is >> v.undoReplayed;
        else if (field == "vAdrDrainWrites") is >> v.adrDrainWrites;
        else if (field == "vCommitted") {
            std::size_t n = 0;
            is >> n;
            if (!is || n > 4096)
                return reject("malformed committed-frontier length");
            v.committedUpTo.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                is >> v.committedUpTo[i];
        }
        else if (field == "vStatesChecked") is >> v.statesChecked;
        else if (field == "vStatesReachable") is >> v.statesReachable;
        else if (field == "vDistinctStates") is >> v.distinctStates;
        else if (field == "vPermuteAtoms") is >> v.permuteAtoms;
        else if (field == "vTruncated") {
            int b = 0;
            is >> b;
            v.truncated = b != 0;
        }
        else if (field == "vInconsistentStates")
            is >> v.inconsistentStates;
        else if (field == "vFirstBadState") is >> v.firstBadState;
        else if (field == "vMessage") {
            is >> std::ws;
            std::getline(is, v.message);
        }
        else if (field == "end") {
            complete = true;
            break;
        } else {
            // Written by newer code than this reader.
            return reject("unknown field '" + field + "'");
        }
        if (!is)
            return reject("malformed value for field '" + field + "'");
    }
    if (!complete)
        return reject("truncated entry (no end marker)");
    out = std::move(e);
    return true;
}

bool
deserializeResult(const std::string &text, RunResult &out)
{
    CachedResult e;
    if (!deserializeEntry(text, e) || e.kind != JobKind::Run)
        return false;
    out = std::move(e.run);
    return true;
}

std::size_t
cleanStaleCacheTmp(const std::string &dir, double older_than_seconds)
{
    namespace fs = std::filesystem;
    std::size_t removed = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    const auto age = std::chrono::duration_cast<
        fs::file_time_type::duration>(
        std::chrono::duration<double>(older_than_seconds));
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        const auto written = fs::last_write_time(entry.path(), ec);
        if (ec || now - written < age)
            continue;
        if (fs::remove(entry.path(), ec) && !ec)
            ++removed;
    }
    return removed;
}

ResultCache::ResultCache(std::string disk_dir) : dir(std::move(disk_dir))
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            warn("cannot create cache dir ", dir, ": ", ec.message(),
                 "; disk tier disabled");
            dir.clear();
        }
    }
    if (!dir.empty()) {
        // Sweep up temp files from writers that died mid-insert (a
        // killed shard, say). Recent ones may belong to a live
        // concurrent writer, so only old droppings go.
        const std::size_t n = cleanStaleCacheTmp(dir, kStaleTmpSeconds);
        if (n > 0)
            warn("removed ", n, " stale cache temp file(s) from ", dir);
    }
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    return dir + "/" + key + ".result";
}

bool
ResultCache::lookup(const std::string &key, CachedResult &out)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = mem.find(key);
        if (it != mem.end()) {
            out = it->second;
            ++counters.memHits;
            return true;
        }
    }
    if (!dir.empty()) {
        std::ifstream in(diskPath(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            CachedResult e;
            std::string why;
            if (deserializeEntry(text.str(), e, &why)) {
                std::lock_guard<std::mutex> lock(mu);
                mem.emplace(key, e);
                ++counters.diskHits;
                out = e;
                return true;
            }
            // A rejected entry counts as a miss, but say why — a
            // silently re-simulating sweep looks identical to a cold
            // one, and a salt mismatch means someone's cache dir is
            // shared across incompatible builds.
            warn("ignoring cache entry ", diskPath(key), ": ", why);
        }
    }
    std::lock_guard<std::mutex> lock(mu);
    ++counters.misses;
    return false;
}

void
ResultCache::insert(const std::string &key, const CachedResult &e)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        mem[key] = e;
    }
    if (dir.empty())
        return;
    // Unique temp name per thread, fsync, then atomic rename: after a
    // power cut the entry is either absent or complete and durable —
    // multi-host sweeps trust remote entries without re-checking.
    std::ostringstream tmp;
    tmp << diskPath(key) << ".tmp." << std::this_thread::get_id();
    {
        const std::string text = serializeEntry(e);
        std::FILE *out = std::fopen(tmp.str().c_str(), "w");
        if (!out)
            return; // cache is best-effort; simulation result stands
        const bool wrote =
            std::fwrite(text.data(), 1, text.size(), out) ==
                text.size() &&
            std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
        std::fclose(out);
        if (!wrote) {
            std::error_code ec;
            std::filesystem::remove(tmp.str(), ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp.str(), diskPath(key), ec);
    if (ec)
        std::filesystem::remove(tmp.str(), ec);
}

std::string
ResultCache::auxPath(const std::string &key) const
{
    return dir + "/" + key + ".aux";
}

bool
ResultCache::lookupAux(const std::string &key, std::string &out)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = auxMem.find(key);
        if (it != auxMem.end()) {
            out = it->second;
            ++counters.auxHits;
            return true;
        }
    }
    if (!dir.empty()) {
        std::ifstream in(auxPath(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            std::string body = text.str();
            // Salt-stamped header line; a mismatch means the text was
            // derived by an incompatible code version.
            const std::string stamp =
                std::string("codeSalt ") + kCodeSalt + "\n";
            if (body.compare(0, stamp.size(), stamp) == 0) {
                body.erase(0, stamp.size());
                std::lock_guard<std::mutex> lock(mu);
                auxMem.emplace(key, body);
                ++counters.auxHits;
                out = std::move(body);
                return true;
            }
            warn("ignoring aux cache entry ", auxPath(key),
                 ": code-salt mismatch");
        }
    }
    std::lock_guard<std::mutex> lock(mu);
    ++counters.auxMisses;
    return false;
}

void
ResultCache::insertAux(const std::string &key, const std::string &text)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auxMem[key] = text;
    }
    if (dir.empty())
        return;
    std::ostringstream tmp;
    tmp << auxPath(key) << ".tmp." << std::this_thread::get_id();
    {
        const std::string stamped =
            std::string("codeSalt ") + kCodeSalt + "\n" + text;
        std::FILE *out = std::fopen(tmp.str().c_str(), "w");
        if (!out)
            return; // best-effort, like the result tier
        const bool wrote =
            std::fwrite(stamped.data(), 1, stamped.size(), out) ==
                stamped.size() &&
            std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
        std::fclose(out);
        if (!wrote) {
            std::error_code ec;
            std::filesystem::remove(tmp.str(), ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp.str(), auxPath(key), ec);
    if (ec)
        std::filesystem::remove(tmp.str(), ec);
}

bool
ResultCache::lookup(const std::string &key, RunResult &out)
{
    CachedResult e;
    if (!lookup(key, e))
        return false;
    out = std::move(e.run);
    return true;
}

void
ResultCache::insert(const std::string &key, const RunResult &r)
{
    CachedResult e;
    e.kind = JobKind::Run;
    e.run = r;
    insert(key, e);
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    mem.clear();
    auxMem.clear();
    counters = CacheStats{};
}

ResultCache &
processCache()
{
    static ResultCache cache = [] {
        const char *dir = std::getenv("ASAP_CACHE_DIR");
        return ResultCache(dir ? dir : "");
    }();
    return cache;
}

} // namespace asap
