/**
 * @file
 * Sweep specifications: declarative descriptions of experiment
 * cross-products.
 *
 * A SweepSpec names the workloads, (model, persistency) pairs, core
 * counts and workload parameters of a study; expand() turns it into
 * the flat vector of ExperimentJobs the engine executes. Benches that
 * need irregular job lists (per-job config overrides, mixed
 * workloads) build the vector directly with JobSet.
 */

#ifndef ASAP_EXP_SWEEP_HH
#define ASAP_EXP_SWEEP_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/ticks.hh"
#include "workloads/params.hh"

namespace asap
{

/**
 * What a job asks the engine to do, and therefore what its result is:
 * Run jobs produce a RunResult stat bundle; Crash jobs inject a power
 * failure at crashTick and produce a recovery-checker verdict (plus
 * the stats of the truncated run).
 */
enum class JobKind
{
    Run,     //!< complete simulation, RunResult stats
    Crash,   //!< crash injection + consistency check, CrashVerdict
    Permute, //!< crash injection + reachable-state enumeration check
};

/** Printable name ("run"/"crash"/"permute"). */
std::string toString(JobKind kind);

/**
 * One simulation the engine can run: runExperiment(workload, cfg,
 * params). cfg carries the model/persistency/core-count selection.
 * Crash jobs additionally carry the injection tick; Permute jobs
 * carry the injection tick plus the enumeration knobs.
 */
struct ExperimentJob
{
    std::string workload;
    SimConfig cfg;
    WorkloadParams params;
    JobKind kind = JobKind::Run;
    Tick crashTick = 0; //!< power-failure tick (Crash/Permute jobs)

    // Permute jobs only (see src/permute/).
    std::uint64_t permuteBound = 4096; //!< max states checked per tick
    std::uint64_t permuteSeed = 1;     //!< sampling seed above bound
    std::string permuteFault;          //!< fault hook ("", "drop-undo")
    std::string permuteState;          //!< hex mask: single-state repro

    /**
     * Check-loop execution knobs (engine name and worker threads).
     * Like the parallel-kernel knobs on SimConfig, these deliberately
     * do NOT enter job keys, caches or the wire protocol: every
     * engine/thread-count combination produces bit-identical
     * verdicts, so keying them would only split the cache (and
     * daemon-routed jobs simply run the receiver's defaults).
     */
    std::string permuteEngine;   //!< "", "incremental", "naive"
    unsigned permuteThreads = 1; //!< 1 = inline, 0 = hw threads
};

/** A (hardware model, persistency model) column of a figure. */
using ModelPair = std::pair<ModelKind, PersistencyModel>;

/**
 * Declarative cross-product sweep: workloads x mediaProfiles x models
 * x coreCounts.
 *
 * expand() emits jobs workload-major (all media profiles, models and
 * core counts of the first workload, then the second, ...), media
 * profiles next, then models, core counts innermost — the iteration
 * order of the paper's figure tables.
 */
struct SweepSpec
{
    std::vector<std::string> workloads;
    /** Media profiles (src/media/) to sweep; empty = just
     *  base.mediaProfile, which leaves single-media sweeps (all the
     *  paper figures) byte-identical to the pre-media engine. */
    std::vector<std::string> mediaProfiles;
    std::vector<ModelPair> models;
    std::vector<unsigned> coreCounts = {4};
    WorkloadParams params;
    /** Base configuration; model/persistency/numCores/seed are
     *  overwritten per job during expansion. */
    SimConfig base;

    /** Number of jobs expand() will produce. */
    std::size_t jobCount() const;

    /** Expand the cross-product into concrete jobs. */
    std::vector<ExperimentJob> expand() const;
};

/**
 * Builder for irregular job lists. add() returns the job's index so a
 * bench can map table cells to results after the run.
 */
class JobSet
{
  public:
    /** Add a fully specified job. */
    std::size_t add(std::string workload, const SimConfig &cfg,
                    const WorkloadParams &p);

    /** Add a job from parts (remaining config fields are defaults). */
    std::size_t add(std::string workload, ModelKind model,
                    PersistencyModel pm, unsigned cores,
                    const WorkloadParams &p);

    /** Add a crash-injection job: power failure at @p crash_tick,
     *  result is a recovery-checker verdict. */
    std::size_t addCrash(std::string workload, const SimConfig &cfg,
                         const WorkloadParams &p, Tick crash_tick);

    /** Add a crash-state permutation job: power failure at
     *  @p crash_tick, every reachable post-crash state checked (up to
     *  @p bound states, sampled with @p seed beyond it). @p fault
     *  optionally injects a test-only recovery fault; @p state
     *  restricts checking to one hex state mask (--repro).
     *  @p engine / @p threads pick the check loop (execution knobs —
     *  see the field comment). */
    std::size_t addPermute(std::string workload, const SimConfig &cfg,
                           const WorkloadParams &p, Tick crash_tick,
                           std::uint64_t bound, std::uint64_t seed,
                           std::string fault = "",
                           std::string state = "",
                           std::string engine = "",
                           unsigned threads = 1);

    const std::vector<ExperimentJob> &jobs() const { return jobs_; }
    std::size_t size() const { return jobs_.size(); }

  private:
    std::vector<ExperimentJob> jobs_;
};

} // namespace asap

#endif // ASAP_EXP_SWEEP_HH
