#include "exp/emit.hh"

#include <algorithm>
#include <fstream>

#include "sim/log.hh"

namespace asap
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Field list shared by the JSON and CSV emitters. */
struct Field
{
    const char *name;
    double (*get)(const RunResult &);
    bool integral;
};

constexpr Field kFields[] = {
    {"runTicks", [](const RunResult &r) { return double(r.runTicks); },
     true},
    {"pmWrites", [](const RunResult &r) { return double(r.pmWrites); },
     true},
    {"pmReads", [](const RunResult &r) { return double(r.pmReads); },
     true},
    {"cyclesBlocked",
     [](const RunResult &r) { return double(r.cyclesBlocked); }, true},
    {"cyclesStalled",
     [](const RunResult &r) { return double(r.cyclesStalled); }, true},
    {"dfenceStalled",
     [](const RunResult &r) { return double(r.dfenceStalled); }, true},
    {"sfenceStalled",
     [](const RunResult &r) { return double(r.sfenceStalled); }, true},
    {"entriesInserted",
     [](const RunResult &r) { return double(r.entriesInserted); }, true},
    {"epochs", [](const RunResult &r) { return double(r.epochs); },
     true},
    {"crossDeps", [](const RunResult &r) { return double(r.crossDeps); },
     true},
    {"totSpecWrites",
     [](const RunResult &r) { return double(r.totSpecWrites); }, true},
    {"totalUndo", [](const RunResult &r) { return double(r.totalUndo); },
     true},
    {"totalDelay",
     [](const RunResult &r) { return double(r.totalDelay); }, true},
    {"nacks", [](const RunResult &r) { return double(r.nacks); }, true},
    {"rtMaxOccupancy",
     [](const RunResult &r) { return double(r.rtMaxOccupancy); }, true},
    {"pbOccMean", [](const RunResult &r) { return r.pbOccMean; }, false},
    {"pbOccP99", [](const RunResult &r) { return double(r.pbOccP99); },
     true},
    {"wpqCoalesced",
     [](const RunResult &r) { return double(r.wpqCoalesced); }, true},
    {"suppressedWrites",
     [](const RunResult &r) { return double(r.suppressedWrites); },
     true},
};

/** Media + XPBuffer counters: emitted only for sweeps that touch a
 *  non-default media profile, so single-media paper-figure artifacts
 *  keep the pre-media schema byte-for-byte. */
constexpr Field kMediaFields[] = {
    {"xpHits", [](const RunResult &r) { return double(r.xpHits); },
     true},
    {"xpMisses", [](const RunResult &r) { return double(r.xpMisses); },
     true},
    {"mediaBytesWritten",
     [](const RunResult &r) { return double(r.mediaBytesWritten); },
     true},
    {"mediaQueueDelayTicks",
     [](const RunResult &r) { return double(r.mediaQueueDelayTicks); },
     true},
    {"mediaBankBusyTicks",
     [](const RunResult &r) { return double(r.mediaBankBusyTicks); },
     true},
};

/** Persist-latency tail + request throughput: emitted only for sweeps
 *  with serve:* jobs, so every pre-serving artifact keeps its schema.
 *  Latencies are in ticks (cycles @2 GHz); consumers divide by 2 for
 *  nanoseconds. */
constexpr Field kServeFields[] = {
    {"persistSamples",
     [](const RunResult &r) { return double(r.persistSamples); }, true},
    {"persistP50",
     [](const RunResult &r) { return double(r.persistP50); }, true},
    {"persistP99",
     [](const RunResult &r) { return double(r.persistP99); }, true},
    {"persistP999",
     [](const RunResult &r) { return double(r.persistP999); }, true},
    {"persistMax",
     [](const RunResult &r) { return double(r.persistMax); }, true},
    {"serveRequests",
     [](const RunResult &r) { return double(r.serveRequests); }, true},
};

/** Media column label: the profile, or the '+'-joined per-MC list on
 *  heterogeneous jobs (',' is the CSV delimiter). */
std::string
mediaLabel(const SimConfig &cfg)
{
    if (cfg.mediaPerMc.empty())
        return cfg.mediaProfile;
    std::string label = cfg.mediaPerMc;
    for (char &c : label) {
        if (c == ',')
            c = '+';
    }
    return label;
}

void
emitValue(std::ostream &os, const Field &f, const RunResult &r)
{
    if (f.integral)
        os << static_cast<std::uint64_t>(f.get(r));
    else
        os << f.get(r);
}

/** RFC-4180 CSV quoting (verdict messages contain commas). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
emitJson(std::ostream &os, const SweepResult &sr)
{
    os << "{\n  \"sweep\": {\"jobs\": " << sr.jobs.size()
       << ", \"uniqueRuns\": " << sr.uniqueRuns
       << ", \"cacheHits\": " << sr.cacheHits
       << ", \"diskHits\": " << sr.diskHits
       << ", \"traceHits\": " << sr.traceHits
       << ", \"traceMisses\": " << sr.traceMisses
       << ", \"traceDiskHits\": " << sr.traceDiskHits
       << ", \"wallSeconds\": " << sr.wallSeconds;
    // Permute throughput aggregate. Host-side numbers live in the
    // sweep header next to wallSeconds — the one non-deterministic
    // corner of the artifact — so per-row results stay byte-stable
    // across hosts, cache states and shard splits. Zero hostNs (all
    // verdicts cache-served) yields a zero rate.
    if (sr.hasPermuteJobs()) {
        std::uint64_t states = 0, ns = 0;
        for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
            if (sr.jobs[i].kind != JobKind::Permute)
                continue;
            states += sr.verdicts[i].statesChecked;
            ns += sr.verdicts[i].permuteNs;
        }
        const double rate =
            ns ? static_cast<double>(states) * 1e9 /
                     static_cast<double>(ns)
               : 0.0;
        os << ", \"permuteStatesChecked\": " << states
           << ", \"permuteHostNs\": " << ns
           << ", \"permuteStatesPerSec\": " << rate;
    }
    os << "},\n"
       << "  \"results\": [\n";
    const bool media = sr.hasNonDefaultMedia();
    const bool serve = sr.hasServeJobs();
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const ExperimentJob &j = sr.jobs[i];
        const RunResult &r = sr.results[i];
        os << "    {\"workload\": \"" << jsonEscape(j.workload)
           << "\", \"model\": \"" << toString(j.cfg.model)
           << "\", \"persistency\": \"" << toString(j.cfg.persistency)
           << "\", \"cores\": " << j.cfg.numCores;
        if (media)
            os << ", \"media\": \"" << jsonEscape(mediaLabel(j.cfg))
               << '"';
        os << ", \"seed\": " << j.params.seed
           << ", \"opsPerThread\": " << j.params.opsPerThread;
        for (const Field &f : kFields) {
            os << ", \"" << f.name << "\": ";
            emitValue(os, f, r);
        }
        if (media) {
            for (const Field &f : kMediaFields) {
                os << ", \"" << f.name << "\": ";
                emitValue(os, f, r);
            }
        }
        if (serve) {
            for (const Field &f : kServeFields) {
                os << ", \"" << f.name << "\": ";
                emitValue(os, f, r);
            }
        }
        // Crash/permute jobs append the tagged verdict payload;
        // pure-Run sweeps keep the PR 1 schema byte-for-byte.
        if (j.kind != JobKind::Run) {
            const CrashVerdict &v = sr.verdicts[i];
            os << ", \"kind\": \"" << toString(j.kind) << '"'
               << ", \"crashTick\": " << v.crashTick
               << ", \"actualTick\": " << v.actualTick
               << ", \"consistent\": "
               << (v.consistent ? "true" : "false")
               << ", \"message\": \"" << jsonEscape(v.message) << '"'
               << ", \"committedUpTo\": [";
            for (std::size_t t = 0; t < v.committedUpTo.size(); ++t) {
                os << (t ? ", " : "") << v.committedUpTo[t];
            }
            os << "], \"storesLogged\": " << v.storesLogged
               << ", \"linesSurvived\": " << v.linesSurvived
               << ", \"undoReplayed\": " << v.undoReplayed
               << ", \"adrDrainWrites\": " << v.adrDrainWrites;
            // Coverage block: permute jobs only, so legacy crash
            // campaigns keep their per-row schema.
            if (j.kind == JobKind::Permute) {
                os << ", \"statesChecked\": " << v.statesChecked
                   << ", \"statesReachable\": " << v.statesReachable
                   << ", \"distinctStates\": " << v.distinctStates
                   << ", \"permuteAtoms\": " << v.permuteAtoms
                   << ", \"truncated\": "
                   << (v.truncated ? "true" : "false")
                   << ", \"inconsistentStates\": "
                   << v.inconsistentStates << ", \"firstBadState\": \""
                   << jsonEscape(v.firstBadState) << '"';
            }
        }
        os << '}' << (i + 1 < sr.jobs.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

void
emitCsv(std::ostream &os, const SweepResult &sr)
{
    // Verdict columns appear only when the sweep has crash jobs, and
    // media columns only when a non-default profile is present, so
    // existing Run-only artifacts keep their column set.
    const bool crash = sr.hasCrashJobs();
    const bool permute = sr.hasPermuteJobs();
    const bool verdict = crash || permute;
    const bool media = sr.hasNonDefaultMedia();
    const bool serve = sr.hasServeJobs();
    os << "workload,model,persistency,cores";
    if (media)
        os << ",media";
    os << ",seed,opsPerThread";
    for (const Field &f : kFields)
        os << ',' << f.name;
    if (media) {
        for (const Field &f : kMediaFields)
            os << ',' << f.name;
    }
    if (serve) {
        for (const Field &f : kServeFields)
            os << ',' << f.name;
    }
    if (verdict) {
        os << ",kind,crashTick,actualTick,consistent,committedMax,"
              "storesLogged,linesSurvived,undoReplayed,adrDrainWrites";
        // Coverage columns only when the sweep permutes states, so
        // legacy crash-campaign CSVs keep their column set; crash
        // rows in a mixed sweep carry zeros.
        if (permute)
            os << ",statesChecked,statesReachable,distinctStates,"
                  "truncated";
        os << ",message";
    }
    os << '\n';
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const ExperimentJob &j = sr.jobs[i];
        const RunResult &r = sr.results[i];
        os << j.workload << ',' << toString(j.cfg.model) << ','
           << toString(j.cfg.persistency) << ',' << j.cfg.numCores;
        if (media)
            os << ',' << mediaLabel(j.cfg);
        os << ',' << j.params.seed << ',' << j.params.opsPerThread;
        for (const Field &f : kFields) {
            os << ',';
            emitValue(os, f, r);
        }
        if (media) {
            for (const Field &f : kMediaFields) {
                os << ',';
                emitValue(os, f, r);
            }
        }
        if (serve) {
            for (const Field &f : kServeFields) {
                os << ',';
                emitValue(os, f, r);
            }
        }
        if (verdict) {
            const CrashVerdict &v = sr.verdicts[i];
            std::uint64_t committedMax = 0;
            for (std::uint64_t c : v.committedUpTo)
                committedMax = std::max(committedMax, c);
            os << ',' << toString(j.kind) << ',' << v.crashTick << ','
               << v.actualTick << ',' << (v.consistent ? 1 : 0) << ','
               << committedMax << ',' << v.storesLogged << ','
               << v.linesSurvived << ',' << v.undoReplayed << ','
               << v.adrDrainWrites;
            if (permute)
                os << ',' << v.statesChecked << ',' << v.statesReachable
                   << ',' << v.distinctStates << ','
                   << (v.truncated ? 1 : 0);
            os << ',' << csvQuote(v.message);
        }
        os << '\n';
    }
}

bool
emitToFile(const std::string &path, const SweepResult &sr)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write sweep artifact to ", path);
        return false;
    }
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        emitCsv(out, sr);
    else
        emitJson(out, sr);
    return true;
}

} // namespace asap
